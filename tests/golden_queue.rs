//! Golden outcome regression: the event-queue implementation must never
//! shift simulated results.
//!
//! Runs one quick CDNA config and one quick Xen-softvirt config under
//! both queue kinds (the original binary heap and the timer wheel) and
//! asserts the full `RunReport::to_json()` output — every counter,
//! throughput figure, and profile bucket — is byte-identical. Any
//! scheduler or batching change that reorders events, drops one, or
//! perturbs accounting shows up here as a whole-report diff.

use cdna_core::DmaPolicy;
use cdna_system::{run_experiment, Direction, IoModel, NicKind, QueueKind, TestbedConfig};

fn report_json(mut cfg: TestbedConfig, queue: QueueKind) -> String {
    cfg.queue = queue;
    run_experiment(cfg).to_json()
}

fn cdna_cfg(direction: Direction) -> TestbedConfig {
    TestbedConfig::new(
        IoModel::Cdna {
            policy: DmaPolicy::Validated,
        },
        4,
        direction,
    )
    .quick()
}

fn softvirt_cfg(direction: Direction) -> TestbedConfig {
    TestbedConfig::new(
        IoModel::XenBridged {
            nic: NicKind::Intel,
        },
        4,
        direction,
    )
    .quick()
}

#[test]
fn cdna_tx_report_is_queue_invariant() {
    let heap = report_json(cdna_cfg(Direction::Transmit), QueueKind::BinaryHeap);
    let wheel = report_json(cdna_cfg(Direction::Transmit), QueueKind::TimerWheel);
    assert_eq!(heap, wheel, "queue kind changed a CDNA TX report");
}

#[test]
fn cdna_rx_report_is_queue_invariant() {
    let heap = report_json(cdna_cfg(Direction::Receive), QueueKind::BinaryHeap);
    let wheel = report_json(cdna_cfg(Direction::Receive), QueueKind::TimerWheel);
    assert_eq!(heap, wheel, "queue kind changed a CDNA RX report");
}

#[test]
fn softvirt_tx_report_is_queue_invariant() {
    let heap = report_json(softvirt_cfg(Direction::Transmit), QueueKind::BinaryHeap);
    let wheel = report_json(softvirt_cfg(Direction::Transmit), QueueKind::TimerWheel);
    assert_eq!(heap, wheel, "queue kind changed a softvirt TX report");
}

#[test]
fn softvirt_rx_report_is_queue_invariant() {
    let heap = report_json(softvirt_cfg(Direction::Receive), QueueKind::BinaryHeap);
    let wheel = report_json(softvirt_cfg(Direction::Receive), QueueKind::TimerWheel);
    assert_eq!(heap, wheel, "queue kind changed a softvirt RX report");
}

#[test]
fn default_queue_is_the_timer_wheel() {
    // The default-constructed config must run on the wheel — if the
    // default ever flips, the perf trajectory in BENCH.json silently
    // changes meaning.
    let cfg = cdna_cfg(Direction::Transmit);
    assert_eq!(cfg.queue, QueueKind::TimerWheel);
}
