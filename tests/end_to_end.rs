//! Functional end-to-end checks on the assembled machine: packets are
//! conserved, memory stays balanced, and the internal state after a run
//! is consistent with the report.

use cdna_core::DmaPolicy;
use cdna_net::WireDirection;
use cdna_sim::Simulation;
use cdna_system::{Direction, IoModel, NicKind, NicSlot, SystemWorld, TestbedConfig};

fn run_world(cfg: TestbedConfig) -> SystemWorld {
    let end = cfg.warmup + cfg.measure;
    let mut sim = Simulation::new(SystemWorld::build(cfg));
    let primed = sim.world_mut().prime();
    for (t, e) in primed {
        sim.schedule(t, e);
    }
    sim.run_until(end);
    sim.into_world()
}

#[test]
fn cdna_transmit_frames_are_conserved() {
    let world = run_world(
        TestbedConfig::new(
            IoModel::Cdna {
                policy: DmaPolicy::Validated,
            },
            2,
            Direction::Transmit,
        )
        .quick(),
    );
    // Every frame the NICs report transmitting crossed the wire.
    let nic_frames: u64 = world
        .nics
        .iter()
        .map(|n| match n {
            NicSlot::Rice(d) => d.stats().tx_frames,
            NicSlot::Conventional(d) => d.stats().tx_frames,
        })
        .sum();
    let wire_frames: u64 = world
        .wires
        .iter()
        .map(|w| w.frames(WireDirection::Transmit))
        .sum();
    // Frames enter the wire at emission and are counted by the NIC at
    // completion, so the wire may lead by the frames still serializing
    // when the run ends.
    assert!(wire_frames >= nic_frames);
    assert!(
        wire_frames - nic_frames <= 1024,
        "lost frames: wire {wire_frames} vs nic {nic_frames}"
    );
    assert!(nic_frames > 10_000, "only {nic_frames} frames in 150ms");
    // The workloads' committed bytes match NIC payload counts.
    let workload_bytes: u64 = world
        .domains
        .iter()
        .filter_map(|d| d.workload.as_ref())
        .map(|w| w.total_tx_bytes())
        .sum();
    let nic_payload: u64 = world
        .nics
        .iter()
        .map(|n| match n {
            NicSlot::Rice(d) => d.stats().tx_payload_bytes,
            NicSlot::Conventional(d) => d.stats().tx_payload_bytes,
        })
        .sum();
    // Workload commits happen at queue time, so it leads the NIC by at
    // most the in-flight window (rings + batches).
    let inflight = workload_bytes - nic_payload;
    assert!(inflight < 4 * 512 * 1460, "unaccounted bytes: {inflight}");
}

#[test]
fn cdna_receive_delivers_to_every_guest_fairly() {
    let world = run_world(
        TestbedConfig::new(
            IoModel::Cdna {
                policy: DmaPolicy::Validated,
            },
            4,
            Direction::Receive,
        )
        .quick(),
    );
    let per_guest: Vec<u64> = world
        .domains
        .iter()
        .filter_map(|d| d.workload.as_ref())
        .map(|w| w.total_rx_bytes())
        .collect();
    assert_eq!(per_guest.len(), 4);
    let max = *per_guest.iter().max().unwrap() as f64;
    let min = *per_guest.iter().min().unwrap() as f64;
    assert!(min > 0.0, "a guest received nothing: {per_guest:?}");
    assert!(
        min / max > 0.9,
        "unfair delivery across guests: {per_guest:?}"
    );
}

#[test]
fn xen_receive_conserves_frames_through_the_bridge() {
    let world = run_world(
        TestbedConfig::new(
            IoModel::XenBridged {
                nic: NicKind::Intel,
            },
            2,
            Direction::Receive,
        )
        .quick(),
    );
    // NIC-delivered frames either reached a guest channel, were dropped
    // for lack of credit, or are still queued in dom0/channels.
    let delivered: u64 = world
        .nics
        .iter()
        .map(|n| match n {
            NicSlot::Conventional(d) => d.stats().rx_frames,
            NicSlot::Rice(d) => d.stats().rx_frames,
        })
        .sum();
    let to_guests: u64 = world.channels.iter().map(|c| c.stats().rx_packets).sum();
    assert!(delivered >= to_guests);
    assert!(to_guests > 1_000, "only {to_guests} packets reached guests");
    // Page flips happened for every packet that crossed to a guest.
    let flips: u64 = world.channels.iter().map(|c| c.stats().page_flips).sum();
    assert_eq!(flips, to_guests);
}

#[test]
fn memory_stays_balanced_after_a_run() {
    for io in [
        IoModel::XenBridged {
            nic: NicKind::Intel,
        },
        IoModel::Cdna {
            policy: DmaPolicy::Validated,
        },
    ] {
        let world = run_world(TestbedConfig::new(io, 2, Direction::Transmit).quick());
        // Outstanding pins are bounded by ring capacity (in-flight DMA),
        // never growing without bound.
        let bound = (world.cfg.ring_size as u64 + world.cfg.batch_limit as u64)
            * world.cfg.nics as u64
            * (world.cfg.guests as u64 + 1)
            * 2;
        assert!(
            world.mem.outstanding_pins() <= bound,
            "{io:?}: {} pins outstanding (bound {bound})",
            world.mem.outstanding_pins()
        );
        assert!(world.mem.free_pages() > 0);
    }
}

#[test]
fn cdna_contexts_are_assigned_one_per_guest_per_nic() {
    let world = run_world(
        TestbedConfig::new(
            IoModel::Cdna {
                policy: DmaPolicy::Validated,
            },
            5,
            Direction::Transmit,
        )
        .quick(),
    );
    for engine in &world.engines {
        assert_eq!(engine.contexts().assigned_count(), 5);
    }
    assert_eq!(world.ctx_of.len(), 5);
    for ctxs in &world.ctx_of {
        assert_eq!(ctxs.len(), 2, "one context per NIC");
    }
}

#[test]
fn twenty_four_guests_fit_in_the_context_space() {
    // 31 assignable contexts per NIC; the paper's max of 24 guests fits.
    let world = run_world(
        TestbedConfig::new(
            IoModel::Cdna {
                policy: DmaPolicy::Validated,
            },
            24,
            Direction::Transmit,
        )
        .quick(),
    );
    for engine in &world.engines {
        assert_eq!(engine.contexts().assigned_count(), 24);
    }
    assert!(world.faults.is_empty());
}

#[test]
fn native_mode_never_touches_hypervisor_machinery() {
    let world = run_world(
        TestbedConfig::new(
            IoModel::Native {
                nic: NicKind::Intel,
            },
            1,
            Direction::Transmit,
        )
        .quick(),
    );
    assert!(world.engines.is_empty());
    assert!(world.channels.is_empty());
    assert_eq!(
        world.ledger.charged(cdna_xen::ExecCategory::Hypervisor),
        cdna_sim::SimTime::ZERO
    );
}

#[test]
fn runtime_revocation_stops_one_guest_and_spares_the_rest() {
    use cdna_sim::SimTime;
    let cfg = TestbedConfig::new(
        IoModel::Cdna {
            policy: DmaPolicy::Validated,
        },
        2,
        Direction::Transmit,
    )
    .quick();
    let end = cfg.warmup + cfg.measure;
    let mut sim = Simulation::new(SystemWorld::build(cfg));
    let primed = sim.world_mut().prime();
    for (t, e) in primed {
        sim.schedule(t, e);
    }
    // Run half the experiment, then revoke guest 0's contexts.
    sim.run_until(SimTime::from_ms(80));
    let before: Vec<u64> = sim
        .world()
        .domains
        .iter()
        .filter_map(|d| d.workload.as_ref())
        .map(|w| w.total_tx_bytes())
        .collect();
    assert_eq!(before.len(), 2);
    let dropped = sim.world_mut().revoke_guest_contexts(0);
    let _ = dropped; // may be zero if the rings were momentarily drained
    sim.run_until(end);

    let world = sim.world();
    // Guest 1 kept transmitting; guest 0 is frozen at (or within one
    // in-flight window of) its revocation-time count.
    let g1_after = world
        .domains
        .iter()
        .filter_map(|d| d.workload.as_ref())
        .map(|w| w.total_tx_bytes())
        .next()
        .expect("guest 1 workload still present");
    assert!(
        g1_after > before[1] + 1_000_000,
        "surviving guest stalled: {} -> {}",
        before[1],
        g1_after
    );
    // All of guest 0's pinned pages were released by revocation.
    for engine in &world.engines {
        assert_eq!(
            engine.contexts().context_of(cdna_mem::DomainId::guest(0)),
            None
        );
    }
    assert_eq!(world.faults.len(), 0);
}

#[test]
fn inter_vm_traffic_xen_stays_in_memory_cdna_hairpins() {
    use cdna_net::WireDirection;

    // Xen: bridge switches locally; the wires stay silent.
    let xen = run_world(
        TestbedConfig::new(
            IoModel::XenBridged {
                nic: NicKind::Intel,
            },
            2,
            Direction::Transmit,
        )
        .with_inter_guest()
        .quick(),
    );
    let xen_wire: u64 = xen
        .wires
        .iter()
        .map(|w| w.wire_bytes(WireDirection::Transmit) + w.wire_bytes(WireDirection::Receive))
        .sum();
    assert_eq!(xen_wire, 0, "Xen inter-VM traffic must not touch the wire");
    let delivered: u64 = xen.channels.iter().map(|c| c.stats().rx_packets).sum();
    assert!(
        delivered > 1_000,
        "bridge switched only {delivered} packets"
    );

    // CDNA: every packet crosses the wire twice (out and hairpinned back).
    let cdna = run_world(
        TestbedConfig::new(
            IoModel::Cdna {
                policy: DmaPolicy::Validated,
            },
            2,
            Direction::Transmit,
        )
        .with_inter_guest()
        .quick(),
    );
    let tx: u64 = cdna
        .wires
        .iter()
        .map(|w| w.frames(WireDirection::Transmit))
        .sum();
    let rx: u64 = cdna
        .wires
        .iter()
        .map(|w| w.frames(WireDirection::Receive))
        .sum();
    assert!(tx > 1_000);
    assert!(
        rx >= tx - 64 && rx <= tx,
        "every transmitted frame hairpins back: tx {tx} rx {rx}"
    );
    // Both guests actually received each other's data.
    for d in cdna.domains.iter().filter(|d| d.workload.is_some()) {
        let w = d.workload.as_ref().unwrap();
        assert!(w.total_rx_bytes() > 1_000_000, "a guest received nothing");
    }
    assert!(cdna.faults.is_empty());
}

#[test]
fn cdna_transmit_shares_bandwidth_fairly_across_guests() {
    let world = run_world(
        TestbedConfig::new(
            IoModel::Cdna {
                policy: DmaPolicy::Validated,
            },
            8,
            Direction::Transmit,
        )
        .quick(),
    );
    let per_guest: Vec<u64> = world
        .domains
        .iter()
        .filter_map(|d| d.workload.as_ref())
        .map(|w| w.total_tx_bytes())
        .collect();
    assert_eq!(per_guest.len(), 8);
    let max = *per_guest.iter().max().unwrap() as f64;
    let min = *per_guest.iter().min().unwrap() as f64;
    assert!(
        min / max > 0.85,
        "unfair NIC service across guests (paper §3.1): {per_guest:?}"
    );
}

#[test]
fn overloaded_guest_backpressures_at_the_nic_not_the_channel() {
    // Make guest receive processing pathologically slow (400us/packet).
    // The two-tier backpressure behaves like real Xen: the round-robin
    // scheduler lets dom0 push only as much as the guest drains per
    // cycle, so the channel's credit pool never exhausts — instead the
    // physical NIC starves for receive descriptors and sheds the
    // overload there.
    let mut cfg = TestbedConfig::new(
        IoModel::XenBridged {
            nic: NicKind::Intel,
        },
        1,
        Direction::Receive,
    )
    .quick();
    cfg.costs.stack_rx_kernel = cdna_sim::SimTime::from_us(400);
    let world = run_world(cfg);
    let nic_drops: u64 = world
        .nics
        .iter()
        .map(|n| match n {
            NicSlot::Conventional(d) => d.stats().rx_dropped,
            NicSlot::Rice(d) => d.stats().rx_dropped,
        })
        .sum();
    assert!(
        nic_drops > 10_000,
        "overload must shed at the NIC, got {nic_drops} drops"
    );
    assert_eq!(
        world.rx_credit_drops, 0,
        "scheduler equilibrium keeps the credit pool solvent"
    );
    // The system stays consistent: whatever was delivered still balanced.
    let to_guests: u64 = world.channels.iter().map(|c| c.stats().rx_packets).sum();
    let flips: u64 = world.channels.iter().map(|c| c.stats().page_flips).sum();
    assert_eq!(flips, to_guests);
}
