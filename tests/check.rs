//! Tier-1 coverage for the `cdna-check` subsystem: the static pass run
//! against this repository, and the dynamic `DmaShadow` checker wired
//! into [`SystemWorld`] behind [`TestbedConfig::shadow_check`].

use cdna_check::{check_repo, workspace_root};
use cdna_core::{DmaPolicy, FaultKind};
use cdna_mem::DomainId;
use cdna_sim::Simulation;
use cdna_system::{run_experiment, Direction, IoModel, SystemWorld, TestbedConfig};

fn cdna_cfg(policy: DmaPolicy, guests: u16, dir: Direction) -> TestbedConfig {
    TestbedConfig::new(IoModel::Cdna { policy }, guests, dir).quick()
}

/// The repository itself must stay clean under the static rules; this
/// runs in the root package so tier-1 `cargo test` enforces it.
#[test]
fn repository_is_clean_under_static_analysis() {
    let report = check_repo(&workspace_root()).expect("repo scan");
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.render()).collect();
    assert!(
        report.clean(),
        "static violations:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn shadow_checked_cdna_runs_are_clean() {
    for dir in [Direction::Transmit, Direction::Receive] {
        let r = run_experiment(cdna_cfg(DmaPolicy::Validated, 2, dir).with_shadow_check());
        assert_eq!(r.protection_faults, 0, "{dir:?}");
        assert!(r.throughput_mbps > 0.0, "{dir:?}");
    }
}

#[test]
fn shadow_checker_does_not_perturb_the_simulation() {
    // The shadow is an observer: enabling it must not change a single
    // simulated outcome.
    let plain = run_experiment(cdna_cfg(DmaPolicy::Validated, 2, Direction::Transmit));
    let checked =
        run_experiment(cdna_cfg(DmaPolicy::Validated, 2, Direction::Transmit).with_shadow_check());
    assert_eq!(plain.packets, checked.packets);
    assert_eq!(plain.throughput_mbps, checked.throughput_mbps);
    assert_eq!(plain.events_processed, checked.events_processed);
}

#[test]
fn shadow_observes_live_sequence_streams() {
    use cdna_check::shadow::ShadowDir;
    let cfg = cdna_cfg(DmaPolicy::Validated, 2, Direction::Transmit).with_shadow_check();
    let end = cfg.warmup + cfg.measure;
    let mut sim = Simulation::new(SystemWorld::build(cfg));
    let primed = sim.world_mut().prime();
    for (t, e) in primed {
        sim.schedule(t, e);
    }
    sim.run_until(end);
    let world = sim.into_world();
    let shadow = world.shadow().expect("shadow enabled");
    assert!(shadow.violations().is_empty(), "{:?}", shadow.violations());
    let ctx = world.ctx_of[0][0];
    assert!(
        shadow.seq_observed(ctx, ShadowDir::Tx) > 0,
        "transmit stream unobserved"
    );
    assert!(
        shadow.seq_observed(ctx, ShadowDir::Rx) > 0,
        "receive-credit stream unobserved"
    );
    assert!(shadow.events() > 0);
}

#[test]
fn shadow_sync_detects_a_pin_outside_the_protection_path() {
    // A pin PhysMem knows about but no engine accounts for is exactly
    // the kind of bug the whole-pool audit exists to catch.
    let cfg = cdna_cfg(DmaPolicy::Validated, 1, Direction::Transmit).with_shadow_check();
    let mut world = SystemWorld::build(cfg);
    let first = world.shadow_sync();
    assert_eq!(
        first,
        0,
        "fresh world must audit clean: {:?}",
        world.shadow().map(|s| s.violations())
    );

    let rogue = world.mem.alloc(DomainId::guest(0)).expect("page");
    world.mem.pin(rogue).expect("pin");
    let new = world.shadow_sync();
    assert!(new >= 1, "rogue pin not detected");
    assert!(
        world
            .faults
            .iter()
            .any(|f| matches!(f.kind, FaultKind::ShadowViolation { code: 9 })),
        "expected a mirror-divergence protection fault: {:?}",
        world.faults
    );
}

#[test]
fn shadow_disabled_by_default_and_sync_is_a_noop() {
    let mut world = SystemWorld::build(cdna_cfg(DmaPolicy::Validated, 1, Direction::Transmit));
    assert!(world.shadow().is_none());
    assert_eq!(world.shadow_sync(), 0);
    assert!(world.faults.is_empty());
}

// --- Seeded violations for the symbol-graph passes -------------------
//
// Each fixture plants exactly one violation of one interprocedural rule
// and asserts the diagnostic lands on the exact file:line, exercising
// the public `cdna_check::analyze` entry point end to end.

fn lib_file(rel: &str, text: &str) -> cdna_check::SourceFile {
    cdna_check::SourceFile {
        rel: rel.to_string(),
        kind: cdna_check::rules::FileKind::Library,
        text: text.to_string(),
    }
}

#[test]
fn seeded_layering_back_edge_is_pinpointed() {
    // `mem` (layer 2) importing from `system` (layer 6) inverts the DAG.
    let a = cdna_check::analyze(
        &[lib_file(
            "crates/mem/src/seeded.rs",
            "//! Doc.\n\nuse cdna_system::SystemWorld;\n",
        )],
        &[],
    );
    let hits: Vec<(&str, &str, u32)> = a
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.file.as_str(), d.line))
        .collect();
    assert_eq!(
        hits,
        [("layering", "crates/mem/src/seeded.rs", 3)],
        "{:?}",
        a.diagnostics
    );
}

#[test]
fn seeded_pin_leak_is_pinpointed_at_the_early_return() {
    // The `?` on the middle call can exit with the pin still held; the
    // diagnostic must land on that line, not on the pin itself.
    let defs = lib_file(
        "crates/mem/src/pool.rs",
        "//! Doc.\n/// Doc.\npub fn pin_run(s: u32, l: u32) {}\n/// Doc.\npub fn unpin_run(s: u32, l: u32) {}\n",
    );
    let src = "//! Doc.\nfn dma(m: &mut M) -> Result<(), E> {\n    m.pin_run(s, l)?;\n    validate(buf)?;\n    m.unpin_run(s, l);\n    Ok(())\n}\n";
    let a = cdna_check::analyze(&[defs, lib_file("crates/core/src/seeded.rs", src)], &[]);
    let hits: Vec<(&str, &str, u32)> = a
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.file.as_str(), d.line))
        .collect();
    assert_eq!(
        hits,
        [("must-pair", "crates/core/src/seeded.rs", 4)],
        "{:?}",
        a.diagnostics
    );
}

fn hits(a: &cdna_check::Analysis) -> Vec<(&str, &str, u32)> {
    a.diagnostics
        .iter()
        .map(|d| (d.rule, d.file.as_str(), d.line))
        .collect()
}

#[test]
fn seeded_guest_taint_flow_is_pinpointed() {
    // A guest-facing xen entry point stores a guest index straight into
    // the ring with no sanitizer on the path; the sanitized twin is
    // clean, proving the prefix-ordering semantics.
    let nic = lib_file(
        "crates/nic/src/ring.rs",
        "//! Doc.\n/// Doc.\npub fn write_at(i: u64) { let _ = i; }\n",
    );
    let core = lib_file(
        "crates/core/src/protection.rs",
        "//! Doc.\n/// Doc.\npub fn precheck(v: u64) -> bool { v > 0 }\n",
    );
    let bad = "//! Doc.\n/// Doc.\npub fn flush_tx_direct(i: u64) {\n    write_at(i);\n}\n";
    let good = "//! Doc.\n/// Doc.\npub fn flush_tx_validated(i: u64) {\n    if precheck(i) {\n        write_at(i);\n    }\n}\n";
    let a = cdna_check::analyze(
        &[
            nic.clone(),
            core.clone(),
            lib_file("crates/xen/src/seeded.rs", bad),
        ],
        &[],
    );
    assert_eq!(
        hits(&a),
        [("guest-taint", "crates/xen/src/seeded.rs", 4)],
        "{:?}",
        a.diagnostics
    );
    let clean = cdna_check::analyze(
        &[nic, core, lib_file("crates/xen/src/seeded.rs", good)],
        &[],
    );
    assert!(clean.diagnostics.is_empty(), "{:?}", clean.diagnostics);
}

#[test]
fn seeded_taint_propagates_through_a_helper() {
    // The root itself never touches a sink: the violation is the call
    // into the vulnerable helper, and the diagnostic lands there.
    let net = lib_file(
        "crates/net/src/pci.rs",
        "//! Doc.\n/// Doc.\npub fn dma(b: u64) -> u64 { b }\n",
    );
    let src = "//! Doc.\nfn stage(i: u64) {\n    dma(i);\n}\n/// Doc.\npub fn queue_tx(i: u64) {\n    stage(i);\n}\n";
    let a = cdna_check::analyze(&[net, lib_file("crates/xen/src/seeded.rs", src)], &[]);
    assert_eq!(
        hits(&a),
        [("guest-taint", "crates/xen/src/seeded.rs", 7)],
        "{:?}",
        a.diagnostics
    );
}

#[test]
fn seeded_lock_cycle_is_pinpointed_on_both_edges() {
    let src = "//! Doc.\n/// Doc.\npub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {\n    match m.lock() {\n        Ok(g) => g,\n        Err(p) => p.into_inner(),\n    }\n}\n/// Doc.\npub fn ab(a: &Mutex<u32>, b: &Mutex<u32>) {\n    let ga = lock(a);\n    let gb = lock(b);\n    let _ = (ga, gb);\n}\n/// Doc.\npub fn ba(a: &Mutex<u32>, b: &Mutex<u32>) {\n    let gb = lock(b);\n    let ga = lock(a);\n    let _ = (ga, gb);\n}\n";
    let a = cdna_check::analyze(&[lib_file("crates/sim/src/seeded.rs", src)], &[]);
    assert_eq!(
        hits(&a),
        [
            ("lock-order", "crates/sim/src/seeded.rs", 12),
            ("lock-order", "crates/sim/src/seeded.rs", 18),
        ],
        "{:?}",
        a.diagnostics
    );
}

#[test]
fn seeded_lock_held_across_locking_call_is_pinpointed() {
    // `drive` holds `slots` while calling `tick`, which acquires the
    // controller lock; the diagnostic lands on the call, not the lock.
    let src = "//! Doc.\n/// Doc.\npub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {\n    match m.lock() {\n        Ok(g) => g,\n        Err(p) => p.into_inner(),\n    }\n}\n/// Doc.\npub fn tick(ctrl: &Mutex<u32>) {\n    let g = lock(ctrl);\n    let _ = g;\n}\n/// Doc.\npub fn drive(slots: &Mutex<u32>, ctrl: &Mutex<u32>) {\n    let s = lock(slots);\n    tick(ctrl);\n    let _ = s;\n}\n";
    let a = cdna_check::analyze(&[lib_file("crates/sim/src/seeded.rs", src)], &[]);
    assert_eq!(
        hits(&a),
        [("lock-order", "crates/sim/src/seeded.rs", 17)],
        "{:?}",
        a.diagnostics
    );
}

#[test]
fn seeded_send_seam_leak_is_pinpointed_at_the_field() {
    let src = "//! Doc.\n/// Doc.\npub struct BadQueue {\n    /// Doc.\n    pub shared: Rc<u32>,\n}\n/// Doc.\npub trait EventQueue {\n    /// Doc.\n    fn pop(&mut self);\n}\nimpl EventQueue for BadQueue {\n    fn pop(&mut self) {}\n}\n";
    let a = cdna_check::analyze(&[lib_file("crates/model/src/seeded.rs", src)], &[]);
    assert_eq!(
        hits(&a),
        [("send-audit", "crates/model/src/seeded.rs", 5)],
        "{:?}",
        a.diagnostics
    );
}

#[test]
fn new_passes_are_quiet_on_the_real_tree() {
    // Zero false positives: every guest-taint / lock-order / send-audit
    // diagnostic on the actual repository must be covered by an allow.
    let report = check_repo(&workspace_root()).expect("repo scan");
    let noisy: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| matches!(d.rule, "guest-taint" | "lock-order" | "send-audit"))
        .map(|d| d.render())
        .collect();
    assert!(noisy.is_empty(), "{}", noisy.join("\n"));
}

#[test]
fn calibration_corpus_is_fully_caught() {
    // The same corpus CI's calibration step runs: every seeded
    // violation must be caught at its exact file:line, nothing extra.
    let corpus = workspace_root().join("crates/check/tests/corpus");
    let failures = cdna_check::calibrate::calibrate(&corpus).expect("corpus parses");
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn seeded_wildcard_fault_match_is_pinpointed() {
    let src = "//! Doc.\nfn render(v: ViolationKind) -> &'static str {\n    match v {\n        ViolationKind::DoublePin => \"double-pin\",\n        _ => \"other\",\n    }\n}\n";
    let a = cdna_check::analyze(&[lib_file("crates/check/src/seeded.rs", src)], &[]);
    let hits: Vec<(&str, &str, u32)> = a
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.file.as_str(), d.line))
        .collect();
    assert_eq!(
        hits,
        [("exhaustive-fault", "crates/check/src/seeded.rs", 5)],
        "{:?}",
        a.diagnostics
    );
}
