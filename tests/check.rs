//! Tier-1 coverage for the `cdna-check` subsystem: the static pass run
//! against this repository, and the dynamic `DmaShadow` checker wired
//! into [`SystemWorld`] behind [`TestbedConfig::shadow_check`].

use cdna_check::{check_repo, workspace_root};
use cdna_core::{DmaPolicy, FaultKind};
use cdna_mem::DomainId;
use cdna_sim::Simulation;
use cdna_system::{run_experiment, Direction, IoModel, SystemWorld, TestbedConfig};

fn cdna_cfg(policy: DmaPolicy, guests: u16, dir: Direction) -> TestbedConfig {
    TestbedConfig::new(IoModel::Cdna { policy }, guests, dir).quick()
}

/// The repository itself must stay clean under the static rules; this
/// runs in the root package so tier-1 `cargo test` enforces it.
#[test]
fn repository_is_clean_under_static_analysis() {
    let report = check_repo(&workspace_root()).expect("repo scan");
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.render()).collect();
    assert!(
        report.clean(),
        "static violations:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn shadow_checked_cdna_runs_are_clean() {
    for dir in [Direction::Transmit, Direction::Receive] {
        let r = run_experiment(cdna_cfg(DmaPolicy::Validated, 2, dir).with_shadow_check());
        assert_eq!(r.protection_faults, 0, "{dir:?}");
        assert!(r.throughput_mbps > 0.0, "{dir:?}");
    }
}

#[test]
fn shadow_checker_does_not_perturb_the_simulation() {
    // The shadow is an observer: enabling it must not change a single
    // simulated outcome.
    let plain = run_experiment(cdna_cfg(DmaPolicy::Validated, 2, Direction::Transmit));
    let checked =
        run_experiment(cdna_cfg(DmaPolicy::Validated, 2, Direction::Transmit).with_shadow_check());
    assert_eq!(plain.packets, checked.packets);
    assert_eq!(plain.throughput_mbps, checked.throughput_mbps);
    assert_eq!(plain.events_processed, checked.events_processed);
}

#[test]
fn shadow_observes_live_sequence_streams() {
    use cdna_check::shadow::ShadowDir;
    let cfg = cdna_cfg(DmaPolicy::Validated, 2, Direction::Transmit).with_shadow_check();
    let end = cfg.warmup + cfg.measure;
    let mut sim = Simulation::new(SystemWorld::build(cfg));
    let primed = sim.world_mut().prime();
    for (t, e) in primed {
        sim.schedule(t, e);
    }
    sim.run_until(end);
    let world = sim.into_world();
    let shadow = world.shadow().expect("shadow enabled");
    assert!(shadow.violations().is_empty(), "{:?}", shadow.violations());
    let ctx = world.ctx_of[0][0];
    assert!(
        shadow.seq_observed(ctx, ShadowDir::Tx) > 0,
        "transmit stream unobserved"
    );
    assert!(
        shadow.seq_observed(ctx, ShadowDir::Rx) > 0,
        "receive-credit stream unobserved"
    );
    assert!(shadow.events() > 0);
}

#[test]
fn shadow_sync_detects_a_pin_outside_the_protection_path() {
    // A pin PhysMem knows about but no engine accounts for is exactly
    // the kind of bug the whole-pool audit exists to catch.
    let cfg = cdna_cfg(DmaPolicy::Validated, 1, Direction::Transmit).with_shadow_check();
    let mut world = SystemWorld::build(cfg);
    let first = world.shadow_sync();
    assert_eq!(
        first,
        0,
        "fresh world must audit clean: {:?}",
        world.shadow().map(|s| s.violations())
    );

    let rogue = world.mem.alloc(DomainId::guest(0)).expect("page");
    world.mem.pin(rogue).expect("pin");
    let new = world.shadow_sync();
    assert!(new >= 1, "rogue pin not detected");
    assert!(
        world
            .faults
            .iter()
            .any(|f| matches!(f.kind, FaultKind::ShadowViolation { code: 9 })),
        "expected a mirror-divergence protection fault: {:?}",
        world.faults
    );
}

#[test]
fn shadow_disabled_by_default_and_sync_is_a_noop() {
    let mut world = SystemWorld::build(cdna_cfg(DmaPolicy::Validated, 1, Direction::Transmit));
    assert!(world.shadow().is_none());
    assert_eq!(world.shadow_sync(), 0);
    assert!(world.faults.is_empty());
}

// --- Seeded violations for the symbol-graph passes -------------------
//
// Each fixture plants exactly one violation of one interprocedural rule
// and asserts the diagnostic lands on the exact file:line, exercising
// the public `cdna_check::analyze` entry point end to end.

fn lib_file(rel: &str, text: &str) -> cdna_check::SourceFile {
    cdna_check::SourceFile {
        rel: rel.to_string(),
        kind: cdna_check::rules::FileKind::Library,
        text: text.to_string(),
    }
}

#[test]
fn seeded_layering_back_edge_is_pinpointed() {
    // `mem` (layer 2) importing from `system` (layer 6) inverts the DAG.
    let a = cdna_check::analyze(
        &[lib_file(
            "crates/mem/src/seeded.rs",
            "//! Doc.\n\nuse cdna_system::SystemWorld;\n",
        )],
        &[],
    );
    let hits: Vec<(&str, &str, u32)> = a
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.file.as_str(), d.line))
        .collect();
    assert_eq!(
        hits,
        [("layering", "crates/mem/src/seeded.rs", 3)],
        "{:?}",
        a.diagnostics
    );
}

#[test]
fn seeded_pin_leak_is_pinpointed_at_the_early_return() {
    // The `?` on the middle call can exit with the pin still held; the
    // diagnostic must land on that line, not on the pin itself.
    let defs = lib_file(
        "crates/mem/src/pool.rs",
        "//! Doc.\n/// Doc.\npub fn pin_run(s: u32, l: u32) {}\n/// Doc.\npub fn unpin_run(s: u32, l: u32) {}\n",
    );
    let src = "//! Doc.\nfn dma(m: &mut M) -> Result<(), E> {\n    m.pin_run(s, l)?;\n    validate(buf)?;\n    m.unpin_run(s, l);\n    Ok(())\n}\n";
    let a = cdna_check::analyze(&[defs, lib_file("crates/core/src/seeded.rs", src)], &[]);
    let hits: Vec<(&str, &str, u32)> = a
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.file.as_str(), d.line))
        .collect();
    assert_eq!(
        hits,
        [("must-pair", "crates/core/src/seeded.rs", 4)],
        "{:?}",
        a.diagnostics
    );
}

#[test]
fn seeded_wildcard_fault_match_is_pinpointed() {
    let src = "//! Doc.\nfn render(v: ViolationKind) -> &'static str {\n    match v {\n        ViolationKind::DoublePin => \"double-pin\",\n        _ => \"other\",\n    }\n}\n";
    let a = cdna_check::analyze(&[lib_file("crates/check/src/seeded.rs", src)], &[]);
    let hits: Vec<(&str, &str, u32)> = a
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.file.as_str(), d.line))
        .collect();
    assert_eq!(
        hits,
        [("exhaustive-fault", "crates/check/src/seeded.rs", 5)],
        "{:?}",
        a.diagnostics
    );
}
