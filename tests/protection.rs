//! End-to-end security tests for the CDNA protection mechanisms
//! (paper §3.3): a buggy or malicious guest driver must not be able to
//! read or write other domains' memory through the NIC, and every
//! attack must fault in a way that is isolated to the offender.

use cdna_core::{
    layout::Mailbox, ContextError, DmaPolicy, FaultKind, ProtectionEngine, ProtectionError,
    RxRequest, TxRequest,
};
use cdna_mem::{BufferSlice, DomainId, MemError, PhysMem};
use cdna_net::{FlowId, MacAddr, PciBus};
use cdna_nic::{DescFlags, FrameMeta, RingTable};
use cdna_ricenic::{RiceNic, RiceNicConfig};
use cdna_sim::SimTime;

struct Bench {
    mem: PhysMem,
    rings: RingTable,
    bus: PciBus,
    engine: ProtectionEngine,
    nic: RiceNic,
}

fn bench() -> Bench {
    Bench {
        mem: PhysMem::new(2048),
        rings: RingTable::new(),
        bus: PciBus::new_64bit_66mhz(),
        engine: ProtectionEngine::new(),
        nic: RiceNic::new(0, RiceNicConfig::default()),
    }
}

fn attach(b: &mut Bench, guest: DomainId) -> cdna_core::ContextId {
    let ctx = b
        .engine
        .assign_context(guest, DmaPolicy::Validated, 32, &mut b.rings, &mut b.mem)
        .unwrap();
    let st = b.engine.contexts().state(ctx).unwrap();
    b.nic
        .attach_context(ctx, st.tx_ring, st.rx_ring, true, &b.rings)
        .unwrap();
    ctx
}

fn tx_req(b: &mut Bench, owner: DomainId, ctx: cdna_core::ContextId) -> TxRequest {
    let page = b.mem.alloc(owner).unwrap();
    TxRequest {
        buf: BufferSlice::new(page.base_addr(), 1514),
        flags: DescFlags::END_OF_PACKET,
        meta: FrameMeta {
            dst: MacAddr::for_peer(0),
            src: MacAddr::for_context(0, ctx.0),
            tcp_payload: 1460,
            flow: FlowId::new(0, 0),
            seq: 0,
        },
    }
}

#[test]
fn guest_cannot_transmit_from_another_guests_memory() {
    let mut b = bench();
    let attacker = DomainId::guest(0);
    let victim = DomainId::guest(1);
    let ctx = attach(&mut b, attacker);
    // The "secret" lives in the victim's page.
    let secret = b.mem.alloc(victim).unwrap();
    let req = TxRequest {
        buf: BufferSlice::new(secret.base_addr(), 1514),
        flags: DescFlags::END_OF_PACKET,
        meta: FrameMeta {
            dst: MacAddr::for_peer(0),
            src: MacAddr::for_context(0, ctx.0),
            tcp_payload: 1460,
            flow: FlowId::new(0, 0),
            seq: 0,
        },
    };
    let err = b
        .engine
        .enqueue_tx(ctx, attacker, &[req], 0, &mut b.rings, &mut b.mem)
        .unwrap_err();
    assert!(matches!(
        err,
        ProtectionError::Mem(MemError::NotOwner { .. })
    ));
    assert_eq!(b.mem.outstanding_pins(), 0);
}

#[test]
fn guest_cannot_receive_into_another_guests_memory() {
    let mut b = bench();
    let attacker = DomainId::guest(0);
    let victim = DomainId::guest(1);
    let ctx = attach(&mut b, attacker);
    let target = b.mem.alloc(victim).unwrap();
    let err = b
        .engine
        .enqueue_rx(
            ctx,
            attacker,
            &[RxRequest {
                buf: BufferSlice::new(target.base_addr(), 1514),
            }],
            0,
            &mut b.rings,
            &mut b.mem,
        )
        .unwrap_err();
    assert!(matches!(
        err,
        ProtectionError::Mem(MemError::NotOwner { .. })
    ));
}

#[test]
fn guest_cannot_enqueue_on_a_context_it_does_not_own() {
    let mut b = bench();
    let owner = DomainId::guest(0);
    let attacker = DomainId::guest(1);
    let ctx = attach(&mut b, owner);
    let req = tx_req(&mut b, attacker, ctx);
    let err = b
        .engine
        .enqueue_tx(ctx, attacker, &[req], 0, &mut b.rings, &mut b.mem)
        .unwrap_err();
    assert!(matches!(
        err,
        ProtectionError::Context(ContextError::WrongOwner { .. })
    ));
}

#[test]
fn producer_overrun_faults_without_touching_memory() {
    // The malicious driver enqueues one valid descriptor through the
    // hypervisor, then writes a producer index of 5 into its mailbox.
    let mut b = bench();
    let guest = DomainId::guest(0);
    let ctx = attach(&mut b, guest);
    let req = tx_req(&mut b, guest, ctx);
    let out = b
        .engine
        .enqueue_tx(ctx, guest, &[req], 0, &mut b.rings, &mut b.mem)
        .unwrap();
    assert_eq!(out.producer, 1);
    let act = b
        .nic
        .mailbox_write(
            SimTime::ZERO,
            ctx,
            Mailbox::TxProducer.index(),
            5, // lies: only 1 descriptor was validated
            &b.rings,
            &mut b.bus,
        )
        .unwrap();
    assert_eq!(act.faults.len(), 1);
    assert!(matches!(act.faults[0].kind, FaultKind::EmptySlot { .. }));
    assert!(b.nic.is_faulted(ctx));
    // Only the genuinely enqueued frame was emitted.
    assert!(act.emissions.len() <= 1);
}

#[test]
fn replayed_stale_descriptor_is_detected_by_sequence_number() {
    let mut b = bench();
    let guest = DomainId::guest(0);
    let ctx = attach(&mut b, guest);
    // Fill one complete lap of the 32-slot ring, transmitting everything.
    let reqs: Vec<TxRequest> = (0..32).map(|_| tx_req(&mut b, guest, ctx)).collect();
    b.engine
        .enqueue_tx(ctx, guest, &reqs, 0, &mut b.rings, &mut b.mem)
        .unwrap();
    let act = b
        .nic
        .mailbox_write(
            SimTime::ZERO,
            ctx,
            Mailbox::TxProducer.index(),
            32,
            &b.rings,
            &mut b.bus,
        )
        .unwrap();
    assert_eq!(act.emissions.len(), 32);
    for e in &act.emissions {
        b.nic
            .tx_frame_sent(e.ready_at, &e.frame, &b.rings, &mut b.bus);
    }
    // Replay: advance the producer one past what the hypervisor wrote;
    // slot 0 holds the stale lap-old descriptor.
    let act = b
        .nic
        .mailbox_write(
            SimTime::from_ms(1),
            ctx,
            Mailbox::TxProducer.index(),
            33,
            &b.rings,
            &mut b.bus,
        )
        .unwrap();
    assert_eq!(act.faults.len(), 1);
    assert!(
        matches!(
            act.faults[0].kind,
            FaultKind::StaleSequence {
                expected: 32,
                found: 0
            }
        ),
        "got {:?}",
        act.faults[0]
    );
    // The hypervisor collects the fault through the privileged path.
    let collected = b.nic.take_faults();
    assert_eq!(collected.len(), 1);
    assert_eq!(collected[0].ctx, ctx);
}

#[test]
fn freeing_a_page_during_dma_defers_reallocation() {
    let mut b = bench();
    let guest = DomainId::guest(0);
    let ctx = attach(&mut b, guest);
    let req = tx_req(&mut b, guest, ctx);
    let page = req.buf.addr.page();
    b.engine
        .enqueue_tx(ctx, guest, &[req], 0, &mut b.rings, &mut b.mem)
        .unwrap();
    // Guest frees the page while the DMA is outstanding.
    assert_eq!(b.mem.free(guest, page), Err(MemError::Pinned(page)));
    // Exhaust memory: the pinned page must never be reallocated.
    let mut grabbed = Vec::new();
    while let Ok(p) = b.mem.alloc(DomainId::guest(7)) {
        assert_ne!(p, page, "pinned page reallocated during DMA!");
        grabbed.push(p);
    }
    // DMA completes; the engine reaps; the deferred free finishes.
    b.engine.reap(ctx, 1, 0, &mut b.mem).unwrap();
    assert_eq!(b.mem.info(page).unwrap().owner, None);
}

#[test]
fn fault_isolation_other_guests_keep_working() {
    let mut b = bench();
    let evil = DomainId::guest(0);
    let good = DomainId::guest(1);
    let evil_ctx = attach(&mut b, evil);
    let good_ctx = attach(&mut b, good);

    // Fault the evil context via producer overrun.
    let _ = b
        .nic
        .mailbox_write(
            SimTime::ZERO,
            evil_ctx,
            Mailbox::TxProducer.index(),
            1,
            &b.rings,
            &mut b.bus,
        )
        .unwrap();
    assert!(b.nic.is_faulted(evil_ctx));

    // The good guest transmits unaffected.
    let req = tx_req(&mut b, good, good_ctx);
    let out = b
        .engine
        .enqueue_tx(good_ctx, good, &[req], 0, &mut b.rings, &mut b.mem)
        .unwrap();
    let act = b
        .nic
        .mailbox_write(
            SimTime::from_us(1),
            good_ctx,
            Mailbox::TxProducer.index(),
            out.producer,
            &b.rings,
            &mut b.bus,
        )
        .unwrap();
    assert_eq!(act.emissions.len(), 1);
    assert!(act.faults.is_empty());
    assert!(!b.nic.is_faulted(good_ctx));
}

#[test]
fn revocation_shuts_down_exactly_one_context() {
    let mut b = bench();
    let g0 = DomainId::guest(0);
    let g1 = DomainId::guest(1);
    let c0 = attach(&mut b, g0);
    let c1 = attach(&mut b, g1);
    // Queue work on both.
    for (g, c) in [(g0, c0), (g1, c1)] {
        let req = tx_req(&mut b, g, c);
        let out = b
            .engine
            .enqueue_tx(c, g, &[req], 0, &mut b.rings, &mut b.mem)
            .unwrap();
        // Don't ring c0's doorbell yet; leave its work pending.
        if c == c1 {
            b.nic
                .mailbox_write(
                    SimTime::ZERO,
                    c,
                    Mailbox::TxProducer.index(),
                    out.producer,
                    &b.rings,
                    &mut b.bus,
                )
                .unwrap();
        }
    }
    // Revoke guest 0's context.
    b.nic.detach_context(c0);
    b.engine.revoke_context(c0, &mut b.mem).unwrap();
    assert!(!b.nic.is_attached(c0));
    assert!(b.nic.is_attached(c1));
    assert_eq!(b.engine.outstanding(c0), 0, "revocation unpinned c0");
    assert_eq!(b.engine.outstanding(c1), 1, "c1 untouched");
    // The revoked context's mailboxes no longer work.
    assert!(b
        .nic
        .mailbox_write(
            SimTime::from_us(2),
            c0,
            Mailbox::TxProducer.index(),
            1,
            &b.rings,
            &mut b.bus
        )
        .is_err());
}

#[test]
fn benign_full_system_runs_never_fault() {
    use cdna_system::{run_experiment, Direction, IoModel, TestbedConfig};
    for dir in [Direction::Transmit, Direction::Receive] {
        let r = run_experiment(
            TestbedConfig::new(
                IoModel::Cdna {
                    policy: DmaPolicy::Validated,
                },
                4,
                dir,
            )
            .quick(),
        );
        assert_eq!(r.protection_faults, 0, "{dir:?}");
    }
}

#[test]
fn iommu_policy_blocks_foreign_dma_at_the_device() {
    // Under DmaPolicy::Iommu the hypervisor never sees descriptors; the
    // per-context IOMMU on the device's upstream port catches the attack
    // instead (paper §5.3).
    let mut b = bench();
    let attacker = DomainId::guest(0);
    let victim = DomainId::guest(1);
    let ctx = b
        .engine
        .assign_context(attacker, DmaPolicy::Iommu, 32, &mut b.rings, &mut b.mem)
        .unwrap();
    let st = b.engine.contexts().state(ctx).unwrap();
    b.nic
        .attach_context(ctx, st.tx_ring, st.rx_ring, false, &b.rings)
        .unwrap();
    b.nic.install_iommu();
    b.nic.iommu_mut().unwrap().enable(ctx);

    // Honest traffic with mapped pages flows.
    let own = b.mem.alloc(attacker).unwrap();
    b.nic.iommu_mut().unwrap().map(ctx, own);
    let honest = cdna_nic::DmaDescriptor::tx(
        BufferSlice::new(own.base_addr(), 1514),
        DescFlags::END_OF_PACKET,
        FrameMeta {
            dst: MacAddr::for_peer(0),
            src: MacAddr::for_context(0, ctx.0),
            tcp_payload: 1460,
            flow: FlowId::new(0, 0),
            seq: 0,
        },
    );
    b.rings.get_mut(st.tx_ring).unwrap().write_at(0, honest);
    let act = b
        .nic
        .mailbox_write(
            SimTime::ZERO,
            ctx,
            Mailbox::TxProducer.index(),
            1,
            &b.rings,
            &mut b.bus,
        )
        .unwrap();
    assert_eq!(act.emissions.len(), 1);
    assert!(act.faults.is_empty());

    // The attack: a descriptor naming the victim's (unmapped) page.
    let secret = b.mem.alloc(victim).unwrap();
    let steal = cdna_nic::DmaDescriptor::tx(
        BufferSlice::new(secret.base_addr(), 1514),
        DescFlags::END_OF_PACKET,
        FrameMeta {
            dst: MacAddr::for_peer(0),
            src: MacAddr::for_context(0, ctx.0),
            tcp_payload: 1460,
            flow: FlowId::new(0, 0),
            seq: 0,
        },
    );
    b.rings.get_mut(st.tx_ring).unwrap().write_at(1, steal);
    let act = b
        .nic
        .mailbox_write(
            SimTime::from_us(1),
            ctx,
            Mailbox::TxProducer.index(),
            2,
            &b.rings,
            &mut b.bus,
        )
        .unwrap();
    assert!(
        act.emissions.is_empty(),
        "exfiltration frame must not leave"
    );
    assert_eq!(act.faults.len(), 1);
    assert!(matches!(
        act.faults[0].kind,
        cdna_core::FaultKind::IommuViolation { page } if page == secret
    ));
    assert!(b.nic.is_faulted(ctx));
}

#[test]
fn iommu_full_system_run_is_clean_and_fast() {
    use cdna_system::{run_experiment, Direction, IoModel, TestbedConfig};
    let r = run_experiment(
        TestbedConfig::new(
            IoModel::Cdna {
                policy: DmaPolicy::Iommu,
            },
            2,
            Direction::Transmit,
        )
        .quick(),
    );
    assert_eq!(r.protection_faults, 0);
    assert!((r.throughput_mbps - 1867.0).abs() < 40.0);
}

#[test]
fn unprotected_context_would_allow_the_attack_cdna_prevents() {
    // Demonstrates *why* validation matters: with protection disabled
    // (Table 4's ablation) the same foreign-buffer descriptor reaches
    // the NIC unchallenged.
    let mut b = bench();
    let attacker = DomainId::guest(0);
    let victim = DomainId::guest(1);
    let ctx = b
        .engine
        .assign_context(
            attacker,
            DmaPolicy::Unprotected,
            32,
            &mut b.rings,
            &mut b.mem,
        )
        .unwrap();
    let st = b.engine.contexts().state(ctx).unwrap();
    b.nic
        .attach_context(ctx, st.tx_ring, st.rx_ring, false, &b.rings)
        .unwrap();
    let secret = b.mem.alloc(victim).unwrap();
    // The attacker writes its own ring directly.
    let desc = cdna_nic::DmaDescriptor::tx(
        BufferSlice::new(secret.base_addr(), 1514),
        DescFlags::END_OF_PACKET,
        FrameMeta {
            dst: MacAddr::for_peer(0),
            src: MacAddr::for_context(0, ctx.0),
            tcp_payload: 1460,
            flow: FlowId::new(0, 0),
            seq: 0,
        },
    );
    b.rings.get_mut(st.tx_ring).unwrap().write_at(0, desc);
    let act = b
        .nic
        .mailbox_write(
            SimTime::ZERO,
            ctx,
            Mailbox::TxProducer.index(),
            1,
            &b.rings,
            &mut b.bus,
        )
        .unwrap();
    // The frame with the victim's data goes out — the exfiltration CDNA's
    // validated mode blocks.
    assert_eq!(act.emissions.len(), 1);
    assert!(act.faults.is_empty());
}

#[test]
fn device_faults_carry_stable_codes_and_spare_other_contexts() {
    // The fuzzer's coverage keys and the trace wire format match on
    // FaultKind::code()/name(), not on Debug strings — pin the mapping
    // end to end: a real overrun fault produced by the device carries
    // code 2 / "empty-slot" and faults only the offending context.
    let mut b = bench();
    let attacker = DomainId::guest(0);
    let victim = DomainId::guest(1);
    let a_ctx = attach(&mut b, attacker);
    let v_ctx = attach(&mut b, victim);
    // Doorbell the attacker's producer past the (never-written) ring.
    let act = b
        .nic
        .mailbox_write(
            SimTime::ZERO,
            a_ctx,
            Mailbox::TxProducer.index(),
            3,
            &b.rings,
            &mut b.bus,
        )
        .unwrap();
    assert_eq!(act.faults.len(), 1);
    let fault = act.faults[0];
    assert_eq!(fault.ctx, a_ctx);
    assert_eq!(fault.kind.code(), 2);
    assert_eq!(fault.kind.name(), "empty-slot");
    assert_eq!(fault.kind.shadow_code(), None);
    assert!(matches!(fault.kind, FaultKind::EmptySlot { index: 0 }));
    // The victim's context still accepts work through the hypercall.
    let req = tx_req(&mut b, victim, v_ctx);
    b.engine
        .enqueue_tx(v_ctx, victim, &[req], 0, &mut b.rings, &mut b.mem)
        .unwrap();
}
