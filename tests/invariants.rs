//! Property-style tests of the core CDNA invariants, driven over many
//! seeded pseudo-random cases (the repo builds with zero external
//! dependencies, so no property-testing framework).

use cdna_core::{
    BitVectorRing, ContextId, DmaPolicy, InterruptBitVector, ProtectionEngine, SeqChecker,
    SeqStamper, TxRequest, VectorPort,
};
use cdna_mem::{BufferSlice, DomainId, PhysMem};
use cdna_net::{FlowId, MacAddr};
use cdna_nic::{DescFlags, FrameMeta, RingTable};
use cdna_sim::SimRng;

const CASES: u64 = 150;

/// A checker accepts any prefix of a stamper's stream and rejects any
/// single substituted value.
#[test]
fn seqnum_accepts_stream_rejects_substitution() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(0x5E0 ^ case);
        let modulus = 1u32 << rng.range_u64(2..12);
        let len = rng.range_u64(1..500) as usize;
        let corrupt_at = rng.range_u64(0..500) as usize % len;
        let delta = rng.range_u64(1..100) as u32;

        let mut stamper = SeqStamper::new(modulus);
        let stream: Vec<u32> = (0..len).map(|_| stamper.next()).collect();

        let mut checker = SeqChecker::new(modulus);
        for (i, &v) in stream.iter().enumerate() {
            let v = if i == corrupt_at {
                (v + (delta % (modulus - 1)) + 1) % modulus
            } else {
                v
            };
            let result = checker.check(v);
            if i < corrupt_at {
                assert!(result.is_ok());
            } else if i == corrupt_at {
                assert!(result.is_err(), "corruption accepted at {i} (case {case})");
                break;
            }
        }
    }
}

/// A one-lap-stale replay is detected iff the sequence space is at
/// least twice the ring size (the paper's aliasing rule).
#[test]
fn stale_lap_detection_follows_aliasing_rule() {
    for ring_pow in 2u32..8 {
        for extra_pow in 0u32..3 {
            let ring_size = 1u32 << ring_pow;
            let modulus = ring_size << extra_pow; // 1x, 2x, or 4x ring size
            let mut stamper = SeqStamper::new(modulus);
            let mut checker = SeqChecker::new(modulus);
            let first_lap: Vec<u32> = (0..ring_size).map(|_| stamper.next()).collect();
            for &v in &first_lap {
                checker.check(v).unwrap();
            }
            let stale = first_lap[0];
            let detected = checker.check(stale).is_err();
            let rule_satisfied = modulus >= 2 * ring_size;
            assert_eq!(
                detected, rule_satisfied,
                "ring {ring_size}, modulus {modulus}: detected={detected}"
            );
        }
    }
}

/// The vector port + ring never lose a context update, regardless of
/// the interleaving of updates, flushes, and drains.
#[test]
fn interrupt_bit_vectors_never_lose_updates() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(0xB17 ^ case);
        let n = rng.range_u64(1..200) as usize;
        let ops: Vec<(u8, u8)> = (0..n)
            .map(|_| (rng.range_u64(0..3) as u8, rng.range_u64(0..32) as u8))
            .collect();
        let ring_pow = rng.range_u64(1..5) as u32;

        let mut port = VectorPort::new();
        let mut ring = BitVectorRing::new(1 << ring_pow);
        let mut noted = InterruptBitVector::EMPTY;
        let mut seen = InterruptBitVector::EMPTY;
        for (op, ctx) in ops {
            match op {
                0 => {
                    port.note_update(ContextId(ctx));
                    noted.set(ContextId(ctx));
                }
                1 => {
                    let _ = port.flush(&mut ring);
                }
                _ => {
                    seen.merge(ring.drain());
                }
            }
        }
        // Final drain after flushing whatever remains.
        let _ = port.flush(&mut ring);
        seen.merge(ring.drain());
        let _ = port.flush(&mut ring);
        seen.merge(ring.drain());
        assert_eq!(seen, noted, "lost or phantom updates (case {case})");
    }
}

/// After every enqueue/reap interleaving, outstanding pins equal the
/// number of unreaped descriptors, and a full reap releases all pins.
#[test]
fn pins_track_outstanding_descriptors() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(0x419 ^ case);
        let n = rng.range_u64(1..10) as usize;
        let batches: Vec<usize> = (0..n).map(|_| rng.range_u64(1..8) as usize).collect();

        let mut mem = PhysMem::new(4096);
        let mut rings = RingTable::new();
        let mut engine = ProtectionEngine::new();
        let guest = DomainId::guest(0);
        let ctx = engine
            .assign_context(guest, DmaPolicy::Validated, 256, &mut rings, &mut mem)
            .unwrap();

        let mut enqueued = 0u64;
        let mut consumed = 0u64;
        for batch in batches {
            let reqs: Vec<TxRequest> = (0..batch)
                .map(|_| {
                    let page = mem.alloc(guest).unwrap();
                    TxRequest {
                        buf: BufferSlice::new(page.base_addr(), 1514),
                        flags: DescFlags::END_OF_PACKET,
                        meta: FrameMeta {
                            dst: MacAddr::for_peer(0),
                            src: MacAddr::for_context(0, ctx.0),
                            tcp_payload: 1460,
                            flow: FlowId::new(0, 0),
                            seq: 0,
                        },
                    }
                })
                .collect();
            // The NIC has consumed half of what's outstanding.
            consumed += (enqueued - consumed) / 2;
            engine
                .enqueue_tx(ctx, guest, &reqs, consumed, &mut rings, &mut mem)
                .unwrap();
            enqueued += batch as u64;
            assert_eq!(
                mem.outstanding_pins(),
                enqueued - consumed,
                "pins after enqueue (case {case})"
            );
        }
        // Everything completes.
        engine.reap(ctx, enqueued, 0, &mut mem).unwrap();
        assert_eq!(mem.outstanding_pins(), 0);
    }
}

/// Memory conservation: pages never appear or vanish across any mix
/// of allocation, free, transfer, pin and unpin.
#[test]
fn page_conservation() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(0xC09 ^ case);
        let n = rng.range_u64(1..300) as usize;
        let ops: Vec<(u8, u16)> = (0..n)
            .map(|_| (rng.range_u64(0..5) as u8, rng.range_u64(0..4) as u16))
            .collect();

        let total = 64u32;
        let mut mem = PhysMem::new(total);
        let mut owned: Vec<cdna_mem::PageId> = Vec::new();
        for (op, dom) in ops {
            let dom = DomainId::guest(dom);
            match op {
                0 => {
                    if let Ok(p) = mem.alloc(dom) {
                        owned.push(p);
                    }
                }
                1 => {
                    if let Some(p) = owned.pop() {
                        let owner = mem.info(p).unwrap().owner.unwrap();
                        let _ = mem.free(owner, p);
                    }
                }
                2 => {
                    if let Some(&p) = owned.last() {
                        let owner = mem.info(p).unwrap().owner.unwrap();
                        let _ = mem.transfer(p, owner, dom);
                    }
                }
                3 => {
                    if let Some(&p) = owned.last() {
                        mem.pin(p).unwrap();
                    }
                }
                _ => {
                    if let Some(&p) = owned.last() {
                        let _ = mem.unpin(p);
                    }
                }
            }
            // Invariant: free + owned-by-someone == total.
            let owned_count: u32 = (0..5u16).map(|g| mem.owned_by(DomainId::guest(g))).sum();
            let pending = total - mem.free_pages() - owned_count;
            assert!(
                pending <= owned.len() as u32,
                "unaccounted pages (case {case}): free={} owned={}",
                mem.free_pages(),
                owned_count
            );
        }
    }
}

#[test]
fn workload_balances_connections_exactly() {
    use cdna_system::GuestWorkload;
    let mut w = GuestWorkload::new(0, 7, 2);
    for _ in 0..7 * 100 {
        let u = w.next_tx();
        w.commit_tx(u, 1460);
    }
    assert_eq!(w.tx_imbalance(), 0, "paper §5.1: balanced connections");
}
