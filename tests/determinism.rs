//! Reproducibility: identical configurations produce bit-identical
//! reports; seeds and measurement windows behave sanely.

use cdna_core::DmaPolicy;
use cdna_sim::SimTime;
use cdna_system::{run_experiment, Direction, IoModel, NicKind, TestbedConfig};

#[test]
fn identical_configs_produce_identical_reports() {
    let mk = || {
        TestbedConfig::new(
            IoModel::Cdna {
                policy: DmaPolicy::Validated,
            },
            3,
            Direction::Transmit,
        )
        .quick()
    };
    let a = run_experiment(mk());
    let b = run_experiment(mk());
    assert_eq!(a.throughput_mbps, b.throughput_mbps);
    assert_eq!(a.packets, b.packets);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.guest_virq_per_s, b.guest_virq_per_s);
    assert_eq!(a.profile, b.profile);
}

#[test]
fn xen_runs_are_deterministic_too() {
    let mk = || {
        TestbedConfig::new(
            IoModel::XenBridged {
                nic: NicKind::Intel,
            },
            2,
            Direction::Receive,
        )
        .quick()
    };
    let a = run_experiment(mk());
    let b = run_experiment(mk());
    assert_eq!(a.throughput_mbps, b.throughput_mbps);
    assert_eq!(a.rx_dropped, b.rx_dropped);
    assert_eq!(a.domain_switches_per_s, b.domain_switches_per_s);
}

#[test]
fn longer_windows_converge_to_the_same_rate() {
    let mut short = TestbedConfig::new(
        IoModel::Cdna {
            policy: DmaPolicy::Validated,
        },
        1,
        Direction::Transmit,
    );
    short.warmup = SimTime::from_ms(50);
    short.measure = SimTime::from_ms(100);
    let mut long = short.clone();
    long.measure = SimTime::from_ms(500);
    let a = run_experiment(short);
    let b = run_experiment(long);
    assert!(
        (a.throughput_mbps - b.throughput_mbps).abs() < 15.0,
        "short {} vs long {}",
        a.throughput_mbps,
        b.throughput_mbps
    );
}

#[test]
fn packet_accounting_is_consistent_with_throughput() {
    let cfg = TestbedConfig::new(
        IoModel::Cdna {
            policy: DmaPolicy::Validated,
        },
        1,
        Direction::Transmit,
    )
    .quick();
    let window_s = cfg.measure.as_secs_f64();
    let r = run_experiment(cfg);
    let implied_mbps = r.packets as f64 * 1460.0 * 8.0 / window_s / 1e6;
    assert!(
        (implied_mbps - r.throughput_mbps).abs() / r.throughput_mbps < 0.01,
        "packets {} imply {:.0} Mb/s but report says {:.0}",
        r.packets,
        implied_mbps,
        r.throughput_mbps
    );
}

#[test]
fn profile_fractions_always_sum_to_one() {
    for io in [
        IoModel::Native {
            nic: NicKind::Intel,
        },
        IoModel::XenBridged {
            nic: NicKind::Intel,
        },
        IoModel::XenBridged {
            nic: NicKind::RiceNic,
        },
        IoModel::Cdna {
            policy: DmaPolicy::Validated,
        },
    ] {
        for dir in [Direction::Transmit, Direction::Receive] {
            let r = run_experiment(TestbedConfig::new(io, 2, dir).quick());
            assert!(r.profile.sums_to_one(), "{io:?} {dir:?}: {:?}", r.profile);
        }
    }
}
