//! Figure 3/4 shape tests: CDNA holds line rate while its idle time
//! decays to zero; Xen's aggregate bandwidth declines monotonically
//! with diminishing marginal reduction.

use cdna_core::DmaPolicy;
use cdna_system::{run_experiment, Direction, IoModel, NicKind, TestbedConfig};

fn sweep(io: IoModel, dir: Direction, guests: &[u16]) -> Vec<cdna_system::RunReport> {
    guests
        .iter()
        .map(|&g| run_experiment(TestbedConfig::new(io, g, dir).quick()))
        .collect()
}

#[test]
fn fig3_cdna_transmit_holds_bandwidth_as_guests_scale() {
    let reports = sweep(
        IoModel::Cdna {
            policy: DmaPolicy::Validated,
        },
        Direction::Transmit,
        &[1, 2, 4, 8, 16, 24],
    );
    for r in &reports {
        assert!(
            (r.throughput_mbps - 1867.0).abs() < 40.0,
            "CDNA TX sagged to {} at {} guests",
            r.throughput_mbps,
            r.guests
        );
        assert_eq!(r.protection_faults, 0);
    }
}

#[test]
fn fig3_cdna_idle_decreases_to_zero() {
    let reports = sweep(
        IoModel::Cdna {
            policy: DmaPolicy::Validated,
        },
        Direction::Transmit,
        &[1, 2, 4, 8],
    );
    let idles: Vec<f64> = reports.iter().map(|r| r.idle_pct()).collect();
    assert!(idles[0] > 45.0, "1-guest idle {}", idles[0]);
    for w in idles.windows(2) {
        assert!(w[1] <= w[0] + 0.5, "idle not decreasing: {idles:?}");
    }
    assert!(idles[3] < 3.0, "8-guest idle {}", idles[3]);
}

#[test]
fn fig3_xen_transmit_declines_with_diminishing_marginal_reduction() {
    let reports = sweep(
        IoModel::XenBridged {
            nic: NicKind::Intel,
        },
        Direction::Transmit,
        &[1, 4, 12, 24],
    );
    let t: Vec<f64> = reports.iter().map(|r| r.throughput_mbps).collect();
    for w in t.windows(2) {
        assert!(w[1] < w[0], "Xen TX must decline: {t:?}");
    }
    // Still above 500 Mb/s at 24 guests (paper: 891).
    assert!(t[3] > 500.0, "Xen collapsed to {}", t[3]);
}

#[test]
fn fig3_cdna_beats_xen_by_about_2x_at_24_guests() {
    let xen = run_experiment(
        TestbedConfig::new(
            IoModel::XenBridged {
                nic: NicKind::Intel,
            },
            24,
            Direction::Transmit,
        )
        .quick(),
    );
    let cdna = run_experiment(
        TestbedConfig::new(
            IoModel::Cdna {
                policy: DmaPolicy::Validated,
            },
            24,
            Direction::Transmit,
        )
        .quick(),
    );
    let factor = cdna.throughput_mbps / xen.throughput_mbps;
    assert!(
        (1.7..3.4).contains(&factor),
        "TX factor {factor:.2} (paper: 2.1)"
    );
}

#[test]
fn fig4_cdna_receive_holds_bandwidth_as_guests_scale() {
    let reports = sweep(
        IoModel::Cdna {
            policy: DmaPolicy::Validated,
        },
        Direction::Receive,
        &[1, 2, 8, 24],
    );
    for r in &reports {
        assert!(
            (r.throughput_mbps - 1874.0).abs() < 40.0,
            "CDNA RX sagged to {} at {} guests",
            r.throughput_mbps,
            r.guests
        );
    }
}

#[test]
fn fig4_xen_receive_declines_and_cdna_beats_it_by_2_to_3x() {
    let xen1 = run_experiment(
        TestbedConfig::new(
            IoModel::XenBridged {
                nic: NicKind::Intel,
            },
            1,
            Direction::Receive,
        )
        .quick(),
    );
    let xen24 = run_experiment(
        TestbedConfig::new(
            IoModel::XenBridged {
                nic: NicKind::Intel,
            },
            24,
            Direction::Receive,
        )
        .quick(),
    );
    let cdna24 = run_experiment(
        TestbedConfig::new(
            IoModel::Cdna {
                policy: DmaPolicy::Validated,
            },
            24,
            Direction::Receive,
        )
        .quick(),
    );
    assert!(xen24.throughput_mbps < xen1.throughput_mbps);
    let factor = cdna24.throughput_mbps / xen24.throughput_mbps;
    assert!(
        (2.0..4.0).contains(&factor),
        "RX factor {factor:.2} (paper: 3.3)"
    );
}

#[test]
fn bandwidth_is_shared_fairly_at_every_scale() {
    // Paper §5.1: the benchmark "balances the bandwidth across all
    // connections to ensure fairness"; with the NIC's fair round-robin
    // service every guest should see an equal share.
    for guests in [2u16, 8, 16] {
        let r = run_experiment(
            TestbedConfig::new(
                IoModel::Cdna {
                    policy: DmaPolicy::Validated,
                },
                guests,
                Direction::Transmit,
            )
            .quick(),
        );
        assert!(
            r.fairness_index() > 0.98,
            "{guests} guests: Jain index {:.3}, shares {:?}",
            r.fairness_index(),
            r.per_guest_mbps
        );
    }
}

#[test]
fn xen_receive_drops_frames_under_overload_cdna_does_not_at_low_load() {
    let xen = run_experiment(
        TestbedConfig::new(
            IoModel::XenBridged {
                nic: NicKind::Intel,
            },
            1,
            Direction::Receive,
        )
        .quick(),
    );
    // The peer offers 2 NICs of line rate; CPU-bound Xen must shed load.
    assert!(xen.rx_dropped > 0, "Xen RX under overload should drop");
    let cdna = run_experiment(
        TestbedConfig::new(
            IoModel::Cdna {
                policy: DmaPolicy::Validated,
            },
            1,
            Direction::Receive,
        )
        .quick(),
    );
    assert_eq!(cdna.rx_dropped, 0, "CDNA keeps up with line rate");
}
