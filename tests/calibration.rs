//! Paper-vs-simulation calibration tests: every table row must land
//! within tolerance of the published value (shortened measurement
//! windows, hence slightly looser bounds than the bench binaries).

use cdna_core::DmaPolicy;
use cdna_system::{run_experiment, Comparison, Direction, IoModel, NicKind, TestbedConfig};

fn run(io: IoModel, guests: u16, dir: Direction) -> cdna_system::RunReport {
    run_experiment(TestbedConfig::new(io, guests, dir).quick())
}

#[test]
fn table1_native_linux_transmit() {
    let mut cfg = TestbedConfig::new(
        IoModel::Native {
            nic: NicKind::Intel,
        },
        1,
        Direction::Transmit,
    )
    .with_nics(6)
    .quick();
    cfg.conns_per_guest = 12;
    let r = run_experiment(cfg);
    assert!(
        Comparison::new(5126.0, r.throughput_mbps).within(0.12),
        "native TX {} vs paper 5126",
        r.throughput_mbps
    );
}

#[test]
fn table1_native_linux_receive() {
    let mut cfg = TestbedConfig::new(
        IoModel::Native {
            nic: NicKind::Intel,
        },
        1,
        Direction::Receive,
    )
    .with_nics(6)
    .quick();
    cfg.conns_per_guest = 12;
    let r = run_experiment(cfg);
    assert!(
        Comparison::new(3629.0, r.throughput_mbps).within(0.12),
        "native RX {} vs paper 3629",
        r.throughput_mbps
    );
}

#[test]
fn table1_shape_guest_is_about_30_percent_of_native() {
    let mut native = TestbedConfig::new(
        IoModel::Native {
            nic: NicKind::Intel,
        },
        1,
        Direction::Transmit,
    )
    .with_nics(6)
    .quick();
    native.conns_per_guest = 12;
    let native = run_experiment(native);
    let mut xen = TestbedConfig::new(
        IoModel::XenBridged {
            nic: NicKind::Intel,
        },
        1,
        Direction::Transmit,
    )
    .with_nics(6)
    .quick();
    xen.conns_per_guest = 12;
    let xen = run_experiment(xen);
    let frac = xen.throughput_mbps / native.throughput_mbps;
    assert!(
        (0.2..0.45).contains(&frac),
        "Xen guest at {:.0}% of native (paper: ~31%)",
        frac * 100.0
    );
}

#[test]
fn table2_xen_intel_transmit() {
    let r = run(
        IoModel::XenBridged {
            nic: NicKind::Intel,
        },
        1,
        Direction::Transmit,
    );
    assert!(
        Comparison::new(1602.0, r.throughput_mbps).within(0.08),
        "{}",
        r.throughput_mbps
    );
    assert!(
        Comparison::new(19.8, r.profile.hypervisor_frac * 100.0).within(0.25),
        "hyp {}",
        r.profile.hypervisor_frac
    );
    assert!(
        Comparison::new(35.7, r.profile.driver_kernel_frac * 100.0).within(0.25),
        "driver {}",
        r.profile.driver_kernel_frac
    );
}

#[test]
fn table2_xen_ricenic_transmit() {
    let r = run(
        IoModel::XenBridged {
            nic: NicKind::RiceNic,
        },
        1,
        Direction::Transmit,
    );
    assert!(
        Comparison::new(1674.0, r.throughput_mbps).within(0.08),
        "{}",
        r.throughput_mbps
    );
}

#[test]
fn table2_cdna_transmit() {
    let r = run(
        IoModel::Cdna {
            policy: DmaPolicy::Validated,
        },
        1,
        Direction::Transmit,
    );
    assert!(
        Comparison::new(1867.0, r.throughput_mbps).within(0.05),
        "{}",
        r.throughput_mbps
    );
    assert!(
        Comparison::new(50.8, r.profile.idle_frac * 100.0).within(0.10),
        "idle {}",
        r.profile.idle_frac
    );
    assert!(
        Comparison::new(13659.0, r.guest_virq_per_s).within(0.10),
        "guest int {}",
        r.guest_virq_per_s
    );
    assert_eq!(
        r.driver_virq_per_s, 0.0,
        "CDNA has no driver-domain interrupts"
    );
}

#[test]
fn table3_xen_intel_receive() {
    let r = run(
        IoModel::XenBridged {
            nic: NicKind::Intel,
        },
        1,
        Direction::Receive,
    );
    assert!(
        Comparison::new(1112.0, r.throughput_mbps).within(0.08),
        "{}",
        r.throughput_mbps
    );
}

#[test]
fn table3_xen_ricenic_receive() {
    let r = run(
        IoModel::XenBridged {
            nic: NicKind::RiceNic,
        },
        1,
        Direction::Receive,
    );
    assert!(
        Comparison::new(1075.0, r.throughput_mbps).within(0.08),
        "{}",
        r.throughput_mbps
    );
}

#[test]
fn table3_cdna_receive() {
    let r = run(
        IoModel::Cdna {
            policy: DmaPolicy::Validated,
        },
        1,
        Direction::Receive,
    );
    assert!(
        Comparison::new(1874.0, r.throughput_mbps).within(0.05),
        "{}",
        r.throughput_mbps
    );
    assert!(
        Comparison::new(40.9, r.profile.idle_frac * 100.0).within(0.10),
        "idle {}",
        r.profile.idle_frac
    );
}

#[test]
fn table4_disabling_protection_frees_cpu_without_changing_throughput() {
    for dir in [Direction::Transmit, Direction::Receive] {
        let on = run(
            IoModel::Cdna {
                policy: DmaPolicy::Validated,
            },
            1,
            dir,
        );
        let off = run(
            IoModel::Cdna {
                policy: DmaPolicy::Unprotected,
            },
            1,
            dir,
        );
        assert!(
            (on.throughput_mbps - off.throughput_mbps).abs() < 20.0,
            "throughput must be unchanged: {} vs {}",
            on.throughput_mbps,
            off.throughput_mbps
        );
        let idle_gain = (off.profile.idle_frac - on.profile.idle_frac) * 100.0;
        assert!(
            (5.0..14.0).contains(&idle_gain),
            "{dir:?}: idle gain {idle_gain:.1}% (paper: ~9.5%)"
        );
        let hyp_drop = (on.profile.hypervisor_frac - off.profile.hypervisor_frac) * 100.0;
        assert!(
            hyp_drop > 5.0,
            "{dir:?}: hypervisor share must fall: {hyp_drop:.1}%"
        );
    }
}

#[test]
fn cdna_hypervisor_time_is_protection_dominated() {
    // Paper §5.2: with CDNA the hypervisor "spends the bulk of its time
    // managing DMA memory protection" — disabling protection must remove
    // most hypervisor time (Table 4: 10.2% -> 1.9%).
    let on = run(
        IoModel::Cdna {
            policy: DmaPolicy::Validated,
        },
        1,
        Direction::Transmit,
    );
    let off = run(
        IoModel::Cdna {
            policy: DmaPolicy::Unprotected,
        },
        1,
        Direction::Transmit,
    );
    let ratio = off.profile.hypervisor_frac / on.profile.hypervisor_frac;
    assert!(ratio < 0.4, "protection-off hypervisor share ratio {ratio}");
}
