/root/repo/target/release/deps/cdna_xen-47a3aabafb47d344.d: crates/xen/src/lib.rs crates/xen/src/accounting.rs crates/xen/src/bridge.rs crates/xen/src/cdna_driver.rs crates/xen/src/chan.rs crates/xen/src/evtchn.rs crates/xen/src/native.rs crates/xen/src/sched.rs

/root/repo/target/release/deps/libcdna_xen-47a3aabafb47d344.rlib: crates/xen/src/lib.rs crates/xen/src/accounting.rs crates/xen/src/bridge.rs crates/xen/src/cdna_driver.rs crates/xen/src/chan.rs crates/xen/src/evtchn.rs crates/xen/src/native.rs crates/xen/src/sched.rs

/root/repo/target/release/deps/libcdna_xen-47a3aabafb47d344.rmeta: crates/xen/src/lib.rs crates/xen/src/accounting.rs crates/xen/src/bridge.rs crates/xen/src/cdna_driver.rs crates/xen/src/chan.rs crates/xen/src/evtchn.rs crates/xen/src/native.rs crates/xen/src/sched.rs

crates/xen/src/lib.rs:
crates/xen/src/accounting.rs:
crates/xen/src/bridge.rs:
crates/xen/src/cdna_driver.rs:
crates/xen/src/chan.rs:
crates/xen/src/evtchn.rs:
crates/xen/src/native.rs:
crates/xen/src/sched.rs:
