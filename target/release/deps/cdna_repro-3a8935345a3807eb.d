/root/repo/target/release/deps/cdna_repro-3a8935345a3807eb.d: src/lib.rs

/root/repo/target/release/deps/libcdna_repro-3a8935345a3807eb.rlib: src/lib.rs

/root/repo/target/release/deps/libcdna_repro-3a8935345a3807eb.rmeta: src/lib.rs

src/lib.rs:
