/root/repo/target/release/deps/cdna_trace-1918223e89fb6d02.d: crates/trace/src/lib.rs crates/trace/src/json.rs crates/trace/src/histogram.rs crates/trace/src/profile.rs crates/trace/src/registry.rs crates/trace/src/tracer.rs

/root/repo/target/release/deps/libcdna_trace-1918223e89fb6d02.rlib: crates/trace/src/lib.rs crates/trace/src/json.rs crates/trace/src/histogram.rs crates/trace/src/profile.rs crates/trace/src/registry.rs crates/trace/src/tracer.rs

/root/repo/target/release/deps/libcdna_trace-1918223e89fb6d02.rmeta: crates/trace/src/lib.rs crates/trace/src/json.rs crates/trace/src/histogram.rs crates/trace/src/profile.rs crates/trace/src/registry.rs crates/trace/src/tracer.rs

crates/trace/src/lib.rs:
crates/trace/src/json.rs:
crates/trace/src/histogram.rs:
crates/trace/src/profile.rs:
crates/trace/src/registry.rs:
crates/trace/src/tracer.rs:
