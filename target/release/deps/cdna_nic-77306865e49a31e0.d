/root/repo/target/release/deps/cdna_nic-77306865e49a31e0.d: crates/nic/src/lib.rs crates/nic/src/coalesce.rs crates/nic/src/conventional.rs crates/nic/src/descriptor.rs crates/nic/src/mailbox.rs crates/nic/src/ring.rs

/root/repo/target/release/deps/libcdna_nic-77306865e49a31e0.rlib: crates/nic/src/lib.rs crates/nic/src/coalesce.rs crates/nic/src/conventional.rs crates/nic/src/descriptor.rs crates/nic/src/mailbox.rs crates/nic/src/ring.rs

/root/repo/target/release/deps/libcdna_nic-77306865e49a31e0.rmeta: crates/nic/src/lib.rs crates/nic/src/coalesce.rs crates/nic/src/conventional.rs crates/nic/src/descriptor.rs crates/nic/src/mailbox.rs crates/nic/src/ring.rs

crates/nic/src/lib.rs:
crates/nic/src/coalesce.rs:
crates/nic/src/conventional.rs:
crates/nic/src/descriptor.rs:
crates/nic/src/mailbox.rs:
crates/nic/src/ring.rs:
