/root/repo/target/release/deps/cdna_system-c460e8684f575619.d: crates/system/src/lib.rs crates/system/src/config.rs crates/system/src/costs.rs crates/system/src/report.rs crates/system/src/testbed.rs crates/system/src/workload.rs crates/system/src/world.rs

/root/repo/target/release/deps/libcdna_system-c460e8684f575619.rlib: crates/system/src/lib.rs crates/system/src/config.rs crates/system/src/costs.rs crates/system/src/report.rs crates/system/src/testbed.rs crates/system/src/workload.rs crates/system/src/world.rs

/root/repo/target/release/deps/libcdna_system-c460e8684f575619.rmeta: crates/system/src/lib.rs crates/system/src/config.rs crates/system/src/costs.rs crates/system/src/report.rs crates/system/src/testbed.rs crates/system/src/workload.rs crates/system/src/world.rs

crates/system/src/lib.rs:
crates/system/src/config.rs:
crates/system/src/costs.rs:
crates/system/src/report.rs:
crates/system/src/testbed.rs:
crates/system/src/workload.rs:
crates/system/src/world.rs:
