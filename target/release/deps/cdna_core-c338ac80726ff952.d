/root/repo/target/release/deps/cdna_core-c338ac80726ff952.d: crates/core/src/lib.rs crates/core/src/bitvec.rs crates/core/src/context.rs crates/core/src/fault.rs crates/core/src/generic.rs crates/core/src/iommu.rs crates/core/src/layout.rs crates/core/src/protection.rs crates/core/src/seqnum.rs

/root/repo/target/release/deps/libcdna_core-c338ac80726ff952.rlib: crates/core/src/lib.rs crates/core/src/bitvec.rs crates/core/src/context.rs crates/core/src/fault.rs crates/core/src/generic.rs crates/core/src/iommu.rs crates/core/src/layout.rs crates/core/src/protection.rs crates/core/src/seqnum.rs

/root/repo/target/release/deps/libcdna_core-c338ac80726ff952.rmeta: crates/core/src/lib.rs crates/core/src/bitvec.rs crates/core/src/context.rs crates/core/src/fault.rs crates/core/src/generic.rs crates/core/src/iommu.rs crates/core/src/layout.rs crates/core/src/protection.rs crates/core/src/seqnum.rs

crates/core/src/lib.rs:
crates/core/src/bitvec.rs:
crates/core/src/context.rs:
crates/core/src/fault.rs:
crates/core/src/generic.rs:
crates/core/src/iommu.rs:
crates/core/src/layout.rs:
crates/core/src/protection.rs:
crates/core/src/seqnum.rs:
