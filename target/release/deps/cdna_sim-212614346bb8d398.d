/root/repo/target/release/deps/cdna_sim-212614346bb8d398.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libcdna_sim-212614346bb8d398.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libcdna_sim-212614346bb8d398.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
