/root/repo/target/release/deps/fig3-964a94f349c38bbb.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-964a94f349c38bbb: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
