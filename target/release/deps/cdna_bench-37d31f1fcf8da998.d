/root/repo/target/release/deps/cdna_bench-37d31f1fcf8da998.d: crates/bench/src/lib.rs crates/bench/src/paper.rs

/root/repo/target/release/deps/libcdna_bench-37d31f1fcf8da998.rlib: crates/bench/src/lib.rs crates/bench/src/paper.rs

/root/repo/target/release/deps/libcdna_bench-37d31f1fcf8da998.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
