/root/repo/target/release/deps/cdna_mem-73ab5e89c6a17f91.d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/buffer.rs crates/mem/src/pool.rs

/root/repo/target/release/deps/libcdna_mem-73ab5e89c6a17f91.rlib: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/buffer.rs crates/mem/src/pool.rs

/root/repo/target/release/deps/libcdna_mem-73ab5e89c6a17f91.rmeta: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/buffer.rs crates/mem/src/pool.rs

crates/mem/src/lib.rs:
crates/mem/src/addr.rs:
crates/mem/src/buffer.rs:
crates/mem/src/pool.rs:
