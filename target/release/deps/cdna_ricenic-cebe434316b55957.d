/root/repo/target/release/deps/cdna_ricenic-cebe434316b55957.d: crates/ricenic/src/lib.rs crates/ricenic/src/config.rs crates/ricenic/src/device.rs crates/ricenic/src/events.rs

/root/repo/target/release/deps/libcdna_ricenic-cebe434316b55957.rlib: crates/ricenic/src/lib.rs crates/ricenic/src/config.rs crates/ricenic/src/device.rs crates/ricenic/src/events.rs

/root/repo/target/release/deps/libcdna_ricenic-cebe434316b55957.rmeta: crates/ricenic/src/lib.rs crates/ricenic/src/config.rs crates/ricenic/src/device.rs crates/ricenic/src/events.rs

crates/ricenic/src/lib.rs:
crates/ricenic/src/config.rs:
crates/ricenic/src/device.rs:
crates/ricenic/src/events.rs:
