/root/repo/target/release/deps/table2-eb792e9c3a3c9d72.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-eb792e9c3a3c9d72: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
