/root/repo/target/release/deps/cdna_net-a2c4d05c9bba922e.d: crates/net/src/lib.rs crates/net/src/frame.rs crates/net/src/framing.rs crates/net/src/mac.rs crates/net/src/pci.rs crates/net/src/wire.rs

/root/repo/target/release/deps/libcdna_net-a2c4d05c9bba922e.rlib: crates/net/src/lib.rs crates/net/src/frame.rs crates/net/src/framing.rs crates/net/src/mac.rs crates/net/src/pci.rs crates/net/src/wire.rs

/root/repo/target/release/deps/libcdna_net-a2c4d05c9bba922e.rmeta: crates/net/src/lib.rs crates/net/src/frame.rs crates/net/src/framing.rs crates/net/src/mac.rs crates/net/src/pci.rs crates/net/src/wire.rs

crates/net/src/lib.rs:
crates/net/src/frame.rs:
crates/net/src/framing.rs:
crates/net/src/mac.rs:
crates/net/src/pci.rs:
crates/net/src/wire.rs:
