/root/repo/target/release/deps/run-be9c8622779d6b71.d: crates/bench/src/bin/run.rs

/root/repo/target/release/deps/run-be9c8622779d6b71: crates/bench/src/bin/run.rs

crates/bench/src/bin/run.rs:
