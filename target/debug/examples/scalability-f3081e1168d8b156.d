/root/repo/target/debug/examples/scalability-f3081e1168d8b156.d: examples/scalability.rs

/root/repo/target/debug/examples/scalability-f3081e1168d8b156: examples/scalability.rs

examples/scalability.rs:
