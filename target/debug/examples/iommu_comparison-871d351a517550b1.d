/root/repo/target/debug/examples/iommu_comparison-871d351a517550b1.d: examples/iommu_comparison.rs

/root/repo/target/debug/examples/iommu_comparison-871d351a517550b1: examples/iommu_comparison.rs

examples/iommu_comparison.rs:
