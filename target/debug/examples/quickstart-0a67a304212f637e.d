/root/repo/target/debug/examples/quickstart-0a67a304212f637e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0a67a304212f637e: examples/quickstart.rs

examples/quickstart.rs:
