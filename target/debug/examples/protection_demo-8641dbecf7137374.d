/root/repo/target/debug/examples/protection_demo-8641dbecf7137374.d: examples/protection_demo.rs Cargo.toml

/root/repo/target/debug/examples/libprotection_demo-8641dbecf7137374.rmeta: examples/protection_demo.rs Cargo.toml

examples/protection_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
