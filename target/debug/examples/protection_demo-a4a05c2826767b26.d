/root/repo/target/debug/examples/protection_demo-a4a05c2826767b26.d: examples/protection_demo.rs

/root/repo/target/debug/examples/protection_demo-a4a05c2826767b26: examples/protection_demo.rs

examples/protection_demo.rs:
