/root/repo/target/debug/examples/scalability-76931b823c6a8f4d.d: examples/scalability.rs Cargo.toml

/root/repo/target/debug/examples/libscalability-76931b823c6a8f4d.rmeta: examples/scalability.rs Cargo.toml

examples/scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
