/root/repo/target/debug/examples/inter_vm-8af0f0de2977dfa9.d: examples/inter_vm.rs

/root/repo/target/debug/examples/inter_vm-8af0f0de2977dfa9: examples/inter_vm.rs

examples/inter_vm.rs:
