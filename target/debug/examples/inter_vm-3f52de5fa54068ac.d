/root/repo/target/debug/examples/inter_vm-3f52de5fa54068ac.d: examples/inter_vm.rs

/root/repo/target/debug/examples/inter_vm-3f52de5fa54068ac: examples/inter_vm.rs

examples/inter_vm.rs:
