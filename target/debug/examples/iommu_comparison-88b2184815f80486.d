/root/repo/target/debug/examples/iommu_comparison-88b2184815f80486.d: examples/iommu_comparison.rs

/root/repo/target/debug/examples/iommu_comparison-88b2184815f80486: examples/iommu_comparison.rs

examples/iommu_comparison.rs:
