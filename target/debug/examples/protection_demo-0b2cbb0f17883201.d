/root/repo/target/debug/examples/protection_demo-0b2cbb0f17883201.d: examples/protection_demo.rs

/root/repo/target/debug/examples/protection_demo-0b2cbb0f17883201: examples/protection_demo.rs

examples/protection_demo.rs:
