/root/repo/target/debug/examples/quickstart-14f2de46e569b7b7.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-14f2de46e569b7b7: examples/quickstart.rs

examples/quickstart.rs:
