/root/repo/target/debug/examples/quickstart-001f360803d2c005.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-001f360803d2c005.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
