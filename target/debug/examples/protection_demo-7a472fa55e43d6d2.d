/root/repo/target/debug/examples/protection_demo-7a472fa55e43d6d2.d: examples/protection_demo.rs Cargo.toml

/root/repo/target/debug/examples/libprotection_demo-7a472fa55e43d6d2.rmeta: examples/protection_demo.rs Cargo.toml

examples/protection_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
