/root/repo/target/debug/examples/iommu_comparison-1abe936460277d20.d: examples/iommu_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libiommu_comparison-1abe936460277d20.rmeta: examples/iommu_comparison.rs Cargo.toml

examples/iommu_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
