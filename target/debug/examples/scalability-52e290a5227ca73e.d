/root/repo/target/debug/examples/scalability-52e290a5227ca73e.d: examples/scalability.rs Cargo.toml

/root/repo/target/debug/examples/libscalability-52e290a5227ca73e.rmeta: examples/scalability.rs Cargo.toml

examples/scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
