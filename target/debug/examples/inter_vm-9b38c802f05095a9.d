/root/repo/target/debug/examples/inter_vm-9b38c802f05095a9.d: examples/inter_vm.rs Cargo.toml

/root/repo/target/debug/examples/libinter_vm-9b38c802f05095a9.rmeta: examples/inter_vm.rs Cargo.toml

examples/inter_vm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
