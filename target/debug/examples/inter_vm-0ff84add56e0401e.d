/root/repo/target/debug/examples/inter_vm-0ff84add56e0401e.d: examples/inter_vm.rs Cargo.toml

/root/repo/target/debug/examples/libinter_vm-0ff84add56e0401e.rmeta: examples/inter_vm.rs Cargo.toml

examples/inter_vm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
