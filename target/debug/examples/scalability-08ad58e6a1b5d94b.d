/root/repo/target/debug/examples/scalability-08ad58e6a1b5d94b.d: examples/scalability.rs

/root/repo/target/debug/examples/scalability-08ad58e6a1b5d94b: examples/scalability.rs

examples/scalability.rs:
