/root/repo/target/debug/deps/cdna_system-565533b3e66110c7.d: crates/system/src/lib.rs crates/system/src/config.rs crates/system/src/costs.rs crates/system/src/report.rs crates/system/src/testbed.rs crates/system/src/workload.rs crates/system/src/world.rs

/root/repo/target/debug/deps/libcdna_system-565533b3e66110c7.rlib: crates/system/src/lib.rs crates/system/src/config.rs crates/system/src/costs.rs crates/system/src/report.rs crates/system/src/testbed.rs crates/system/src/workload.rs crates/system/src/world.rs

/root/repo/target/debug/deps/libcdna_system-565533b3e66110c7.rmeta: crates/system/src/lib.rs crates/system/src/config.rs crates/system/src/costs.rs crates/system/src/report.rs crates/system/src/testbed.rs crates/system/src/workload.rs crates/system/src/world.rs

crates/system/src/lib.rs:
crates/system/src/config.rs:
crates/system/src/costs.rs:
crates/system/src/report.rs:
crates/system/src/testbed.rs:
crates/system/src/workload.rs:
crates/system/src/world.rs:
