/root/repo/target/debug/deps/scalability-5d59fd65f4f48296.d: tests/scalability.rs

/root/repo/target/debug/deps/scalability-5d59fd65f4f48296: tests/scalability.rs

tests/scalability.rs:
