/root/repo/target/debug/deps/ablation_coalesce-4a90d5b961e24036.d: crates/bench/src/bin/ablation_coalesce.rs

/root/repo/target/debug/deps/ablation_coalesce-4a90d5b961e24036: crates/bench/src/bin/ablation_coalesce.rs

crates/bench/src/bin/ablation_coalesce.rs:
