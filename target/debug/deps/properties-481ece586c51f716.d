/root/repo/target/debug/deps/properties-481ece586c51f716.d: crates/net/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-481ece586c51f716.rmeta: crates/net/tests/properties.rs Cargo.toml

crates/net/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
