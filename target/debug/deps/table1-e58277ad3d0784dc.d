/root/repo/target/debug/deps/table1-e58277ad3d0784dc.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-e58277ad3d0784dc.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
