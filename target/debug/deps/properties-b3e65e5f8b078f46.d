/root/repo/target/debug/deps/properties-b3e65e5f8b078f46.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/properties-b3e65e5f8b078f46: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
