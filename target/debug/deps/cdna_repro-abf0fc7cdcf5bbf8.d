/root/repo/target/debug/deps/cdna_repro-abf0fc7cdcf5bbf8.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcdna_repro-abf0fc7cdcf5bbf8.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
