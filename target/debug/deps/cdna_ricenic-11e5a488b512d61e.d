/root/repo/target/debug/deps/cdna_ricenic-11e5a488b512d61e.d: crates/ricenic/src/lib.rs crates/ricenic/src/config.rs crates/ricenic/src/device.rs crates/ricenic/src/events.rs

/root/repo/target/debug/deps/cdna_ricenic-11e5a488b512d61e: crates/ricenic/src/lib.rs crates/ricenic/src/config.rs crates/ricenic/src/device.rs crates/ricenic/src/events.rs

crates/ricenic/src/lib.rs:
crates/ricenic/src/config.rs:
crates/ricenic/src/device.rs:
crates/ricenic/src/events.rs:
