/root/repo/target/debug/deps/cdna_trace-65447fa9827dbc56.d: crates/trace/src/lib.rs crates/trace/src/json.rs crates/trace/src/histogram.rs crates/trace/src/profile.rs crates/trace/src/registry.rs crates/trace/src/tracer.rs

/root/repo/target/debug/deps/libcdna_trace-65447fa9827dbc56.rlib: crates/trace/src/lib.rs crates/trace/src/json.rs crates/trace/src/histogram.rs crates/trace/src/profile.rs crates/trace/src/registry.rs crates/trace/src/tracer.rs

/root/repo/target/debug/deps/libcdna_trace-65447fa9827dbc56.rmeta: crates/trace/src/lib.rs crates/trace/src/json.rs crates/trace/src/histogram.rs crates/trace/src/profile.rs crates/trace/src/registry.rs crates/trace/src/tracer.rs

crates/trace/src/lib.rs:
crates/trace/src/json.rs:
crates/trace/src/histogram.rs:
crates/trace/src/profile.rs:
crates/trace/src/registry.rs:
crates/trace/src/tracer.rs:
