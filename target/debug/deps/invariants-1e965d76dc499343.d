/root/repo/target/debug/deps/invariants-1e965d76dc499343.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-1e965d76dc499343: tests/invariants.rs

tests/invariants.rs:
