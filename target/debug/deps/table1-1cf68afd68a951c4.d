/root/repo/target/debug/deps/table1-1cf68afd68a951c4.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-1cf68afd68a951c4: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
