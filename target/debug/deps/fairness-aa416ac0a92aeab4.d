/root/repo/target/debug/deps/fairness-aa416ac0a92aeab4.d: crates/ricenic/tests/fairness.rs Cargo.toml

/root/repo/target/debug/deps/libfairness-aa416ac0a92aeab4.rmeta: crates/ricenic/tests/fairness.rs Cargo.toml

crates/ricenic/tests/fairness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
