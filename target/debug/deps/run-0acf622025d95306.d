/root/repo/target/debug/deps/run-0acf622025d95306.d: crates/bench/src/bin/run.rs Cargo.toml

/root/repo/target/debug/deps/librun-0acf622025d95306.rmeta: crates/bench/src/bin/run.rs Cargo.toml

crates/bench/src/bin/run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
