/root/repo/target/debug/deps/cdna_ricenic-a13c4221e0b94502.d: crates/ricenic/src/lib.rs crates/ricenic/src/config.rs crates/ricenic/src/device.rs crates/ricenic/src/events.rs

/root/repo/target/debug/deps/cdna_ricenic-a13c4221e0b94502: crates/ricenic/src/lib.rs crates/ricenic/src/config.rs crates/ricenic/src/device.rs crates/ricenic/src/events.rs

crates/ricenic/src/lib.rs:
crates/ricenic/src/config.rs:
crates/ricenic/src/device.rs:
crates/ricenic/src/events.rs:
