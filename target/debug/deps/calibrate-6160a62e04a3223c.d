/root/repo/target/debug/deps/calibrate-6160a62e04a3223c.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-6160a62e04a3223c.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
