/root/repo/target/debug/deps/whatif_more_nics-c7ed0c2846a165b0.d: crates/bench/src/bin/whatif_more_nics.rs

/root/repo/target/debug/deps/whatif_more_nics-c7ed0c2846a165b0: crates/bench/src/bin/whatif_more_nics.rs

crates/bench/src/bin/whatif_more_nics.rs:
