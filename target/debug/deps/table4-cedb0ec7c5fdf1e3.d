/root/repo/target/debug/deps/table4-cedb0ec7c5fdf1e3.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-cedb0ec7c5fdf1e3: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
