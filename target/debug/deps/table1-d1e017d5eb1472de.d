/root/repo/target/debug/deps/table1-d1e017d5eb1472de.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-d1e017d5eb1472de: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
