/root/repo/target/debug/deps/cdna_ricenic-2e6af98cdae511e3.d: crates/ricenic/src/lib.rs crates/ricenic/src/config.rs crates/ricenic/src/device.rs crates/ricenic/src/events.rs Cargo.toml

/root/repo/target/debug/deps/libcdna_ricenic-2e6af98cdae511e3.rmeta: crates/ricenic/src/lib.rs crates/ricenic/src/config.rs crates/ricenic/src/device.rs crates/ricenic/src/events.rs Cargo.toml

crates/ricenic/src/lib.rs:
crates/ricenic/src/config.rs:
crates/ricenic/src/device.rs:
crates/ricenic/src/events.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
