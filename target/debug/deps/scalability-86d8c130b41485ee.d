/root/repo/target/debug/deps/scalability-86d8c130b41485ee.d: tests/scalability.rs Cargo.toml

/root/repo/target/debug/deps/libscalability-86d8c130b41485ee.rmeta: tests/scalability.rs Cargo.toml

tests/scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
