/root/repo/target/debug/deps/cdna_bench-a165fa7e34704d28.d: crates/bench/src/lib.rs crates/bench/src/paper.rs

/root/repo/target/debug/deps/libcdna_bench-a165fa7e34704d28.rlib: crates/bench/src/lib.rs crates/bench/src/paper.rs

/root/repo/target/debug/deps/libcdna_bench-a165fa7e34704d28.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
