/root/repo/target/debug/deps/calibrate-1066e7122ae6a812.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-1066e7122ae6a812.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
