/root/repo/target/debug/deps/cdna_sim-ce5bd77d866a473d.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/cdna_sim-ce5bd77d866a473d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
