/root/repo/target/debug/deps/run-11bd7c93b6eed478.d: crates/bench/src/bin/run.rs

/root/repo/target/debug/deps/run-11bd7c93b6eed478: crates/bench/src/bin/run.rs

crates/bench/src/bin/run.rs:
