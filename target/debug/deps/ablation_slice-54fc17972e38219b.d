/root/repo/target/debug/deps/ablation_slice-54fc17972e38219b.d: crates/bench/src/bin/ablation_slice.rs Cargo.toml

/root/repo/target/debug/deps/libablation_slice-54fc17972e38219b.rmeta: crates/bench/src/bin/ablation_slice.rs Cargo.toml

crates/bench/src/bin/ablation_slice.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
