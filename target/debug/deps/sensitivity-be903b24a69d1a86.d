/root/repo/target/debug/deps/sensitivity-be903b24a69d1a86.d: crates/bench/src/bin/sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libsensitivity-be903b24a69d1a86.rmeta: crates/bench/src/bin/sensitivity.rs Cargo.toml

crates/bench/src/bin/sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
