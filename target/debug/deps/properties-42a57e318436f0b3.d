/root/repo/target/debug/deps/properties-42a57e318436f0b3.d: crates/net/tests/properties.rs

/root/repo/target/debug/deps/properties-42a57e318436f0b3: crates/net/tests/properties.rs

crates/net/tests/properties.rs:
