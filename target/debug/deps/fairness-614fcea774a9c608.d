/root/repo/target/debug/deps/fairness-614fcea774a9c608.d: crates/ricenic/tests/fairness.rs

/root/repo/target/debug/deps/fairness-614fcea774a9c608: crates/ricenic/tests/fairness.rs

crates/ricenic/tests/fairness.rs:
