/root/repo/target/debug/deps/table3-719a1504ea1b1527.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-719a1504ea1b1527: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
