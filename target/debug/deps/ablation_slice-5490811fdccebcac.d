/root/repo/target/debug/deps/ablation_slice-5490811fdccebcac.d: crates/bench/src/bin/ablation_slice.rs

/root/repo/target/debug/deps/ablation_slice-5490811fdccebcac: crates/bench/src/bin/ablation_slice.rs

crates/bench/src/bin/ablation_slice.rs:
