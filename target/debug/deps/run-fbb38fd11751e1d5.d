/root/repo/target/debug/deps/run-fbb38fd11751e1d5.d: crates/bench/src/bin/run.rs Cargo.toml

/root/repo/target/debug/deps/librun-fbb38fd11751e1d5.rmeta: crates/bench/src/bin/run.rs Cargo.toml

crates/bench/src/bin/run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
