/root/repo/target/debug/deps/run-fbb38fd11751e1d5.d: crates/bench/src/bin/run.rs Cargo.toml

/root/repo/target/debug/deps/librun-fbb38fd11751e1d5.rmeta: crates/bench/src/bin/run.rs Cargo.toml

crates/bench/src/bin/run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
