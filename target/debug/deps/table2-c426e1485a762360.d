/root/repo/target/debug/deps/table2-c426e1485a762360.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-c426e1485a762360: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
