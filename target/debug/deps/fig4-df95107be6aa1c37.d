/root/repo/target/debug/deps/fig4-df95107be6aa1c37.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-df95107be6aa1c37: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
