/root/repo/target/debug/deps/cdna_system-a9b31f191fa69ea1.d: crates/system/src/lib.rs crates/system/src/config.rs crates/system/src/costs.rs crates/system/src/report.rs crates/system/src/testbed.rs crates/system/src/workload.rs crates/system/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libcdna_system-a9b31f191fa69ea1.rmeta: crates/system/src/lib.rs crates/system/src/config.rs crates/system/src/costs.rs crates/system/src/report.rs crates/system/src/testbed.rs crates/system/src/workload.rs crates/system/src/world.rs Cargo.toml

crates/system/src/lib.rs:
crates/system/src/config.rs:
crates/system/src/costs.rs:
crates/system/src/report.rs:
crates/system/src/testbed.rs:
crates/system/src/workload.rs:
crates/system/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
