/root/repo/target/debug/deps/cdna_trace-d76e0ae96be4e064.d: crates/trace/src/lib.rs crates/trace/src/json.rs crates/trace/src/histogram.rs crates/trace/src/profile.rs crates/trace/src/registry.rs crates/trace/src/tracer.rs Cargo.toml

/root/repo/target/debug/deps/libcdna_trace-d76e0ae96be4e064.rmeta: crates/trace/src/lib.rs crates/trace/src/json.rs crates/trace/src/histogram.rs crates/trace/src/profile.rs crates/trace/src/registry.rs crates/trace/src/tracer.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/json.rs:
crates/trace/src/histogram.rs:
crates/trace/src/profile.rs:
crates/trace/src/registry.rs:
crates/trace/src/tracer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
