/root/repo/target/debug/deps/end_to_end-cb601b4b6dca8991.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-cb601b4b6dca8991: tests/end_to_end.rs

tests/end_to_end.rs:
