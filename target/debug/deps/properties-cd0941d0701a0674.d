/root/repo/target/debug/deps/properties-cd0941d0701a0674.d: crates/nic/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-cd0941d0701a0674.rmeta: crates/nic/tests/properties.rs Cargo.toml

crates/nic/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
