/root/repo/target/debug/deps/table3-d2926e6382deb2c7.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-d2926e6382deb2c7: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
