/root/repo/target/debug/deps/calibration-0df4dc789f3db889.d: tests/calibration.rs Cargo.toml

/root/repo/target/debug/deps/libcalibration-0df4dc789f3db889.rmeta: tests/calibration.rs Cargo.toml

tests/calibration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
