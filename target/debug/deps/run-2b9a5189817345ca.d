/root/repo/target/debug/deps/run-2b9a5189817345ca.d: crates/bench/src/bin/run.rs Cargo.toml

/root/repo/target/debug/deps/librun-2b9a5189817345ca.rmeta: crates/bench/src/bin/run.rs Cargo.toml

crates/bench/src/bin/run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
