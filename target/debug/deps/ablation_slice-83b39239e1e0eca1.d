/root/repo/target/debug/deps/ablation_slice-83b39239e1e0eca1.d: crates/bench/src/bin/ablation_slice.rs Cargo.toml

/root/repo/target/debug/deps/libablation_slice-83b39239e1e0eca1.rmeta: crates/bench/src/bin/ablation_slice.rs Cargo.toml

crates/bench/src/bin/ablation_slice.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
