/root/repo/target/debug/deps/fig4-d86ca135f09f1eed.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-d86ca135f09f1eed: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
