/root/repo/target/debug/deps/table3-8a7f97b61364e021.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-8a7f97b61364e021.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
