/root/repo/target/debug/deps/fig4-c7618c81ab9e9a9e.d: crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-c7618c81ab9e9a9e.rmeta: crates/bench/src/bin/fig4.rs Cargo.toml

crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
