/root/repo/target/debug/deps/fig3-17a5f18044c66655.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-17a5f18044c66655.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
