/root/repo/target/debug/deps/cdna_trace-aa78b4ad94b15456.d: crates/trace/src/lib.rs crates/trace/src/json.rs crates/trace/src/histogram.rs crates/trace/src/profile.rs crates/trace/src/registry.rs crates/trace/src/tracer.rs

/root/repo/target/debug/deps/cdna_trace-aa78b4ad94b15456: crates/trace/src/lib.rs crates/trace/src/json.rs crates/trace/src/histogram.rs crates/trace/src/profile.rs crates/trace/src/registry.rs crates/trace/src/tracer.rs

crates/trace/src/lib.rs:
crates/trace/src/json.rs:
crates/trace/src/histogram.rs:
crates/trace/src/profile.rs:
crates/trace/src/registry.rs:
crates/trace/src/tracer.rs:
