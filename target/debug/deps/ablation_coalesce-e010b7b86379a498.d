/root/repo/target/debug/deps/ablation_coalesce-e010b7b86379a498.d: crates/bench/src/bin/ablation_coalesce.rs Cargo.toml

/root/repo/target/debug/deps/libablation_coalesce-e010b7b86379a498.rmeta: crates/bench/src/bin/ablation_coalesce.rs Cargo.toml

crates/bench/src/bin/ablation_coalesce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
