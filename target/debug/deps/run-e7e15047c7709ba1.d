/root/repo/target/debug/deps/run-e7e15047c7709ba1.d: crates/bench/src/bin/run.rs

/root/repo/target/debug/deps/run-e7e15047c7709ba1: crates/bench/src/bin/run.rs

crates/bench/src/bin/run.rs:
