/root/repo/target/debug/deps/cdna_bench-c5e85f5ae62d9e71.d: crates/bench/src/lib.rs crates/bench/src/paper.rs Cargo.toml

/root/repo/target/debug/deps/libcdna_bench-c5e85f5ae62d9e71.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
