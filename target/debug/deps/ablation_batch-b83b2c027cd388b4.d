/root/repo/target/debug/deps/ablation_batch-b83b2c027cd388b4.d: crates/bench/src/bin/ablation_batch.rs Cargo.toml

/root/repo/target/debug/deps/libablation_batch-b83b2c027cd388b4.rmeta: crates/bench/src/bin/ablation_batch.rs Cargo.toml

crates/bench/src/bin/ablation_batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
