/root/repo/target/debug/deps/calibration-174fccf9e4691355.d: tests/calibration.rs Cargo.toml

/root/repo/target/debug/deps/libcalibration-174fccf9e4691355.rmeta: tests/calibration.rs Cargo.toml

tests/calibration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
