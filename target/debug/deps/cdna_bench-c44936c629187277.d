/root/repo/target/debug/deps/cdna_bench-c44936c629187277.d: crates/bench/src/lib.rs crates/bench/src/paper.rs

/root/repo/target/debug/deps/libcdna_bench-c44936c629187277.rlib: crates/bench/src/lib.rs crates/bench/src/paper.rs

/root/repo/target/debug/deps/libcdna_bench-c44936c629187277.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
