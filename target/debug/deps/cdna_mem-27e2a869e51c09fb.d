/root/repo/target/debug/deps/cdna_mem-27e2a869e51c09fb.d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/buffer.rs crates/mem/src/pool.rs

/root/repo/target/debug/deps/libcdna_mem-27e2a869e51c09fb.rlib: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/buffer.rs crates/mem/src/pool.rs

/root/repo/target/debug/deps/libcdna_mem-27e2a869e51c09fb.rmeta: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/buffer.rs crates/mem/src/pool.rs

crates/mem/src/lib.rs:
crates/mem/src/addr.rs:
crates/mem/src/buffer.rs:
crates/mem/src/pool.rs:
