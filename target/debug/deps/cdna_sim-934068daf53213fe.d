/root/repo/target/debug/deps/cdna_sim-934068daf53213fe.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libcdna_sim-934068daf53213fe.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
