/root/repo/target/debug/deps/table4-8ed426c249b55dba.d: crates/bench/src/bin/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-8ed426c249b55dba.rmeta: crates/bench/src/bin/table4.rs Cargo.toml

crates/bench/src/bin/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
