/root/repo/target/debug/deps/sensitivity-cd212289ae7b74c4.d: crates/bench/src/bin/sensitivity.rs

/root/repo/target/debug/deps/sensitivity-cd212289ae7b74c4: crates/bench/src/bin/sensitivity.rs

crates/bench/src/bin/sensitivity.rs:
