/root/repo/target/debug/deps/calibrate-e02384c3d905c39f.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-e02384c3d905c39f.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
