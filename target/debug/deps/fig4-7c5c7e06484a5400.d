/root/repo/target/debug/deps/fig4-7c5c7e06484a5400.d: crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-7c5c7e06484a5400.rmeta: crates/bench/src/bin/fig4.rs Cargo.toml

crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
