/root/repo/target/debug/deps/table2-c6066f72c0947c31.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-c6066f72c0947c31: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
