/root/repo/target/debug/deps/ablation_batch-6de4ebee85266173.d: crates/bench/src/bin/ablation_batch.rs

/root/repo/target/debug/deps/ablation_batch-6de4ebee85266173: crates/bench/src/bin/ablation_batch.rs

crates/bench/src/bin/ablation_batch.rs:
