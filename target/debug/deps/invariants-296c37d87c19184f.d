/root/repo/target/debug/deps/invariants-296c37d87c19184f.d: tests/invariants.rs

/root/repo/target/debug/deps/invariants-296c37d87c19184f: tests/invariants.rs

tests/invariants.rs:
