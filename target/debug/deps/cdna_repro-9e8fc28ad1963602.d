/root/repo/target/debug/deps/cdna_repro-9e8fc28ad1963602.d: src/lib.rs

/root/repo/target/debug/deps/cdna_repro-9e8fc28ad1963602: src/lib.rs

src/lib.rs:
