/root/repo/target/debug/deps/table4-adb00040733cb2a3.d: crates/bench/src/bin/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-adb00040733cb2a3.rmeta: crates/bench/src/bin/table4.rs Cargo.toml

crates/bench/src/bin/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
