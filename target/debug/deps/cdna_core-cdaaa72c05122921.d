/root/repo/target/debug/deps/cdna_core-cdaaa72c05122921.d: crates/core/src/lib.rs crates/core/src/bitvec.rs crates/core/src/context.rs crates/core/src/fault.rs crates/core/src/generic.rs crates/core/src/iommu.rs crates/core/src/layout.rs crates/core/src/protection.rs crates/core/src/seqnum.rs

/root/repo/target/debug/deps/cdna_core-cdaaa72c05122921: crates/core/src/lib.rs crates/core/src/bitvec.rs crates/core/src/context.rs crates/core/src/fault.rs crates/core/src/generic.rs crates/core/src/iommu.rs crates/core/src/layout.rs crates/core/src/protection.rs crates/core/src/seqnum.rs

crates/core/src/lib.rs:
crates/core/src/bitvec.rs:
crates/core/src/context.rs:
crates/core/src/fault.rs:
crates/core/src/generic.rs:
crates/core/src/iommu.rs:
crates/core/src/layout.rs:
crates/core/src/protection.rs:
crates/core/src/seqnum.rs:
