/root/repo/target/debug/deps/cdna_system-4dfe471de43692fb.d: crates/system/src/lib.rs crates/system/src/config.rs crates/system/src/costs.rs crates/system/src/report.rs crates/system/src/testbed.rs crates/system/src/workload.rs crates/system/src/world.rs

/root/repo/target/debug/deps/cdna_system-4dfe471de43692fb: crates/system/src/lib.rs crates/system/src/config.rs crates/system/src/costs.rs crates/system/src/report.rs crates/system/src/testbed.rs crates/system/src/workload.rs crates/system/src/world.rs

crates/system/src/lib.rs:
crates/system/src/config.rs:
crates/system/src/costs.rs:
crates/system/src/report.rs:
crates/system/src/testbed.rs:
crates/system/src/workload.rs:
crates/system/src/world.rs:
