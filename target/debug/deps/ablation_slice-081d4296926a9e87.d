/root/repo/target/debug/deps/ablation_slice-081d4296926a9e87.d: crates/bench/src/bin/ablation_slice.rs

/root/repo/target/debug/deps/ablation_slice-081d4296926a9e87: crates/bench/src/bin/ablation_slice.rs

crates/bench/src/bin/ablation_slice.rs:
