/root/repo/target/debug/deps/table3-31926b4b1e6efbe0.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-31926b4b1e6efbe0.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
