/root/repo/target/debug/deps/calibrate-eadc4a98ed9bada8.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-eadc4a98ed9bada8: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
