/root/repo/target/debug/deps/sensitivity-7dbe408d6f2dfadd.d: crates/bench/src/bin/sensitivity.rs

/root/repo/target/debug/deps/sensitivity-7dbe408d6f2dfadd: crates/bench/src/bin/sensitivity.rs

crates/bench/src/bin/sensitivity.rs:
