/root/repo/target/debug/deps/determinism-e6621e32174923ce.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-e6621e32174923ce.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
