/root/repo/target/debug/deps/calibrate-65d65f645ffa6646.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-65d65f645ffa6646: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
