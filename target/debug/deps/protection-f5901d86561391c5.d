/root/repo/target/debug/deps/protection-f5901d86561391c5.d: tests/protection.rs Cargo.toml

/root/repo/target/debug/deps/libprotection-f5901d86561391c5.rmeta: tests/protection.rs Cargo.toml

tests/protection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
