/root/repo/target/debug/deps/fairness-cc45036df18c2304.d: crates/ricenic/tests/fairness.rs Cargo.toml

/root/repo/target/debug/deps/libfairness-cc45036df18c2304.rmeta: crates/ricenic/tests/fairness.rs Cargo.toml

crates/ricenic/tests/fairness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
