/root/repo/target/debug/deps/sensitivity-8d11914afef32ca3.d: crates/bench/src/bin/sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libsensitivity-8d11914afef32ca3.rmeta: crates/bench/src/bin/sensitivity.rs Cargo.toml

crates/bench/src/bin/sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
