/root/repo/target/debug/deps/protection-76ff30d94e6aa7f8.d: tests/protection.rs

/root/repo/target/debug/deps/protection-76ff30d94e6aa7f8: tests/protection.rs

tests/protection.rs:
