/root/repo/target/debug/deps/scalability-7dc9768ba2af9a2d.d: tests/scalability.rs Cargo.toml

/root/repo/target/debug/deps/libscalability-7dc9768ba2af9a2d.rmeta: tests/scalability.rs Cargo.toml

tests/scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
