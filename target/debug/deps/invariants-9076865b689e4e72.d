/root/repo/target/debug/deps/invariants-9076865b689e4e72.d: tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-9076865b689e4e72.rmeta: tests/invariants.rs Cargo.toml

tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
