/root/repo/target/debug/deps/whatif_more_nics-7706344d8fae48f3.d: crates/bench/src/bin/whatif_more_nics.rs Cargo.toml

/root/repo/target/debug/deps/libwhatif_more_nics-7706344d8fae48f3.rmeta: crates/bench/src/bin/whatif_more_nics.rs Cargo.toml

crates/bench/src/bin/whatif_more_nics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
