/root/repo/target/debug/deps/invariants-cfef8b84f501eed0.d: tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-cfef8b84f501eed0.rmeta: tests/invariants.rs Cargo.toml

tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
