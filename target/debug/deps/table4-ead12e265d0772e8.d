/root/repo/target/debug/deps/table4-ead12e265d0772e8.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-ead12e265d0772e8: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
