/root/repo/target/debug/deps/calibrate-e5c733fa203fd12d.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-e5c733fa203fd12d.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
