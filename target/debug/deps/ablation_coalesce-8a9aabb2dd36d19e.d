/root/repo/target/debug/deps/ablation_coalesce-8a9aabb2dd36d19e.d: crates/bench/src/bin/ablation_coalesce.rs

/root/repo/target/debug/deps/ablation_coalesce-8a9aabb2dd36d19e: crates/bench/src/bin/ablation_coalesce.rs

crates/bench/src/bin/ablation_coalesce.rs:
