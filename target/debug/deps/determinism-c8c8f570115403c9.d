/root/repo/target/debug/deps/determinism-c8c8f570115403c9.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-c8c8f570115403c9: tests/determinism.rs

tests/determinism.rs:
