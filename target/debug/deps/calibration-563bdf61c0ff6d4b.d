/root/repo/target/debug/deps/calibration-563bdf61c0ff6d4b.d: tests/calibration.rs

/root/repo/target/debug/deps/calibration-563bdf61c0ff6d4b: tests/calibration.rs

tests/calibration.rs:
