/root/repo/target/debug/deps/cdna_net-617fb413a8faf9be.d: crates/net/src/lib.rs crates/net/src/frame.rs crates/net/src/framing.rs crates/net/src/mac.rs crates/net/src/pci.rs crates/net/src/wire.rs

/root/repo/target/debug/deps/cdna_net-617fb413a8faf9be: crates/net/src/lib.rs crates/net/src/frame.rs crates/net/src/framing.rs crates/net/src/mac.rs crates/net/src/pci.rs crates/net/src/wire.rs

crates/net/src/lib.rs:
crates/net/src/frame.rs:
crates/net/src/framing.rs:
crates/net/src/mac.rs:
crates/net/src/pci.rs:
crates/net/src/wire.rs:
