/root/repo/target/debug/deps/run-44c5b9649130f678.d: crates/bench/src/bin/run.rs Cargo.toml

/root/repo/target/debug/deps/librun-44c5b9649130f678.rmeta: crates/bench/src/bin/run.rs Cargo.toml

crates/bench/src/bin/run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
