/root/repo/target/debug/deps/whatif_more_nics-169860304489e8f8.d: crates/bench/src/bin/whatif_more_nics.rs

/root/repo/target/debug/deps/whatif_more_nics-169860304489e8f8: crates/bench/src/bin/whatif_more_nics.rs

crates/bench/src/bin/whatif_more_nics.rs:
