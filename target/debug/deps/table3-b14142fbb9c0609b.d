/root/repo/target/debug/deps/table3-b14142fbb9c0609b.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-b14142fbb9c0609b: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
