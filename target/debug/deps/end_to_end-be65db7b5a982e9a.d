/root/repo/target/debug/deps/end_to_end-be65db7b5a982e9a.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-be65db7b5a982e9a: tests/end_to_end.rs

tests/end_to_end.rs:
