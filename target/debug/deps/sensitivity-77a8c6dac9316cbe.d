/root/repo/target/debug/deps/sensitivity-77a8c6dac9316cbe.d: crates/bench/src/bin/sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libsensitivity-77a8c6dac9316cbe.rmeta: crates/bench/src/bin/sensitivity.rs Cargo.toml

crates/bench/src/bin/sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
