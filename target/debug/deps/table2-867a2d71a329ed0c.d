/root/repo/target/debug/deps/table2-867a2d71a329ed0c.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-867a2d71a329ed0c.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
