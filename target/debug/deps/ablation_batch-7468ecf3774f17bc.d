/root/repo/target/debug/deps/ablation_batch-7468ecf3774f17bc.d: crates/bench/src/bin/ablation_batch.rs Cargo.toml

/root/repo/target/debug/deps/libablation_batch-7468ecf3774f17bc.rmeta: crates/bench/src/bin/ablation_batch.rs Cargo.toml

crates/bench/src/bin/ablation_batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
