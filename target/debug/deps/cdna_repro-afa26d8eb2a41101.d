/root/repo/target/debug/deps/cdna_repro-afa26d8eb2a41101.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcdna_repro-afa26d8eb2a41101.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
