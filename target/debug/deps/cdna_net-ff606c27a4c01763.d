/root/repo/target/debug/deps/cdna_net-ff606c27a4c01763.d: crates/net/src/lib.rs crates/net/src/frame.rs crates/net/src/framing.rs crates/net/src/mac.rs crates/net/src/pci.rs crates/net/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libcdna_net-ff606c27a4c01763.rmeta: crates/net/src/lib.rs crates/net/src/frame.rs crates/net/src/framing.rs crates/net/src/mac.rs crates/net/src/pci.rs crates/net/src/wire.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/frame.rs:
crates/net/src/framing.rs:
crates/net/src/mac.rs:
crates/net/src/pci.rs:
crates/net/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
