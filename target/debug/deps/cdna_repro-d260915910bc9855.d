/root/repo/target/debug/deps/cdna_repro-d260915910bc9855.d: src/lib.rs

/root/repo/target/debug/deps/cdna_repro-d260915910bc9855: src/lib.rs

src/lib.rs:
