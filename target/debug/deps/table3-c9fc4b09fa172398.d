/root/repo/target/debug/deps/table3-c9fc4b09fa172398.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-c9fc4b09fa172398: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
