/root/repo/target/debug/deps/table2-3bf51920eeecc12b.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-3bf51920eeecc12b: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
