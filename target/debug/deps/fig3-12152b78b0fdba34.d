/root/repo/target/debug/deps/fig3-12152b78b0fdba34.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-12152b78b0fdba34: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
