/root/repo/target/debug/deps/run-9cb503b24f11d60a.d: crates/bench/src/bin/run.rs

/root/repo/target/debug/deps/run-9cb503b24f11d60a: crates/bench/src/bin/run.rs

crates/bench/src/bin/run.rs:
