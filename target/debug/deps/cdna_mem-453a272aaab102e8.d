/root/repo/target/debug/deps/cdna_mem-453a272aaab102e8.d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/buffer.rs crates/mem/src/pool.rs

/root/repo/target/debug/deps/cdna_mem-453a272aaab102e8: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/buffer.rs crates/mem/src/pool.rs

crates/mem/src/lib.rs:
crates/mem/src/addr.rs:
crates/mem/src/buffer.rs:
crates/mem/src/pool.rs:
