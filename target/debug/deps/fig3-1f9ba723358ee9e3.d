/root/repo/target/debug/deps/fig3-1f9ba723358ee9e3.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-1f9ba723358ee9e3.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
