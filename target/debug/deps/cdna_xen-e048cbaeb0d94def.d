/root/repo/target/debug/deps/cdna_xen-e048cbaeb0d94def.d: crates/xen/src/lib.rs crates/xen/src/accounting.rs crates/xen/src/bridge.rs crates/xen/src/cdna_driver.rs crates/xen/src/chan.rs crates/xen/src/evtchn.rs crates/xen/src/native.rs crates/xen/src/sched.rs

/root/repo/target/debug/deps/libcdna_xen-e048cbaeb0d94def.rlib: crates/xen/src/lib.rs crates/xen/src/accounting.rs crates/xen/src/bridge.rs crates/xen/src/cdna_driver.rs crates/xen/src/chan.rs crates/xen/src/evtchn.rs crates/xen/src/native.rs crates/xen/src/sched.rs

/root/repo/target/debug/deps/libcdna_xen-e048cbaeb0d94def.rmeta: crates/xen/src/lib.rs crates/xen/src/accounting.rs crates/xen/src/bridge.rs crates/xen/src/cdna_driver.rs crates/xen/src/chan.rs crates/xen/src/evtchn.rs crates/xen/src/native.rs crates/xen/src/sched.rs

crates/xen/src/lib.rs:
crates/xen/src/accounting.rs:
crates/xen/src/bridge.rs:
crates/xen/src/cdna_driver.rs:
crates/xen/src/chan.rs:
crates/xen/src/evtchn.rs:
crates/xen/src/native.rs:
crates/xen/src/sched.rs:
