/root/repo/target/debug/deps/sensitivity-6548323bff4a1d9a.d: crates/bench/src/bin/sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libsensitivity-6548323bff4a1d9a.rmeta: crates/bench/src/bin/sensitivity.rs Cargo.toml

crates/bench/src/bin/sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
