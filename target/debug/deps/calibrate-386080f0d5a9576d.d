/root/repo/target/debug/deps/calibrate-386080f0d5a9576d.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-386080f0d5a9576d: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
