/root/repo/target/debug/deps/cdna_system-a9656aa43860b7c7.d: crates/system/src/lib.rs crates/system/src/config.rs crates/system/src/costs.rs crates/system/src/report.rs crates/system/src/testbed.rs crates/system/src/workload.rs crates/system/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libcdna_system-a9656aa43860b7c7.rmeta: crates/system/src/lib.rs crates/system/src/config.rs crates/system/src/costs.rs crates/system/src/report.rs crates/system/src/testbed.rs crates/system/src/workload.rs crates/system/src/world.rs Cargo.toml

crates/system/src/lib.rs:
crates/system/src/config.rs:
crates/system/src/costs.rs:
crates/system/src/report.rs:
crates/system/src/testbed.rs:
crates/system/src/workload.rs:
crates/system/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
