/root/repo/target/debug/deps/cdna_sim-0b4594295b6b4934.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libcdna_sim-0b4594295b6b4934.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libcdna_sim-0b4594295b6b4934.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
