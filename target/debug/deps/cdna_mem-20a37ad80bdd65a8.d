/root/repo/target/debug/deps/cdna_mem-20a37ad80bdd65a8.d: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/buffer.rs crates/mem/src/pool.rs Cargo.toml

/root/repo/target/debug/deps/libcdna_mem-20a37ad80bdd65a8.rmeta: crates/mem/src/lib.rs crates/mem/src/addr.rs crates/mem/src/buffer.rs crates/mem/src/pool.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/addr.rs:
crates/mem/src/buffer.rs:
crates/mem/src/pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
