/root/repo/target/debug/deps/cdna_repro-cca5d6f0b8fb81a7.d: src/lib.rs

/root/repo/target/debug/deps/libcdna_repro-cca5d6f0b8fb81a7.rlib: src/lib.rs

/root/repo/target/debug/deps/libcdna_repro-cca5d6f0b8fb81a7.rmeta: src/lib.rs

src/lib.rs:
