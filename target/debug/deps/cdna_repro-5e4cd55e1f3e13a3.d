/root/repo/target/debug/deps/cdna_repro-5e4cd55e1f3e13a3.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcdna_repro-5e4cd55e1f3e13a3.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
