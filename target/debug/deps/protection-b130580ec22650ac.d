/root/repo/target/debug/deps/protection-b130580ec22650ac.d: tests/protection.rs

/root/repo/target/debug/deps/protection-b130580ec22650ac: tests/protection.rs

tests/protection.rs:
