/root/repo/target/debug/deps/ablation_coalesce-18cea429a829cb38.d: crates/bench/src/bin/ablation_coalesce.rs Cargo.toml

/root/repo/target/debug/deps/libablation_coalesce-18cea429a829cb38.rmeta: crates/bench/src/bin/ablation_coalesce.rs Cargo.toml

crates/bench/src/bin/ablation_coalesce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
