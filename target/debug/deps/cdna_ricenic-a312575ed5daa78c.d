/root/repo/target/debug/deps/cdna_ricenic-a312575ed5daa78c.d: crates/ricenic/src/lib.rs crates/ricenic/src/config.rs crates/ricenic/src/device.rs crates/ricenic/src/events.rs

/root/repo/target/debug/deps/libcdna_ricenic-a312575ed5daa78c.rlib: crates/ricenic/src/lib.rs crates/ricenic/src/config.rs crates/ricenic/src/device.rs crates/ricenic/src/events.rs

/root/repo/target/debug/deps/libcdna_ricenic-a312575ed5daa78c.rmeta: crates/ricenic/src/lib.rs crates/ricenic/src/config.rs crates/ricenic/src/device.rs crates/ricenic/src/events.rs

crates/ricenic/src/lib.rs:
crates/ricenic/src/config.rs:
crates/ricenic/src/device.rs:
crates/ricenic/src/events.rs:
