/root/repo/target/debug/deps/whatif_more_nics-dcf84271eb721222.d: crates/bench/src/bin/whatif_more_nics.rs Cargo.toml

/root/repo/target/debug/deps/libwhatif_more_nics-dcf84271eb721222.rmeta: crates/bench/src/bin/whatif_more_nics.rs Cargo.toml

crates/bench/src/bin/whatif_more_nics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
