/root/repo/target/debug/deps/ablation_coalesce-50870e0f7c6eb6e0.d: crates/bench/src/bin/ablation_coalesce.rs Cargo.toml

/root/repo/target/debug/deps/libablation_coalesce-50870e0f7c6eb6e0.rmeta: crates/bench/src/bin/ablation_coalesce.rs Cargo.toml

crates/bench/src/bin/ablation_coalesce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
