/root/repo/target/debug/deps/calibrate-ed1792168efcb5a2.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-ed1792168efcb5a2: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
