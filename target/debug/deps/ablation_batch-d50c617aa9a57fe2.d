/root/repo/target/debug/deps/ablation_batch-d50c617aa9a57fe2.d: crates/bench/src/bin/ablation_batch.rs

/root/repo/target/debug/deps/ablation_batch-d50c617aa9a57fe2: crates/bench/src/bin/ablation_batch.rs

crates/bench/src/bin/ablation_batch.rs:
