/root/repo/target/debug/deps/whatif_more_nics-ce7e25fbee4b8380.d: crates/bench/src/bin/whatif_more_nics.rs Cargo.toml

/root/repo/target/debug/deps/libwhatif_more_nics-ce7e25fbee4b8380.rmeta: crates/bench/src/bin/whatif_more_nics.rs Cargo.toml

crates/bench/src/bin/whatif_more_nics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
