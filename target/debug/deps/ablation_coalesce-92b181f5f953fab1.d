/root/repo/target/debug/deps/ablation_coalesce-92b181f5f953fab1.d: crates/bench/src/bin/ablation_coalesce.rs

/root/repo/target/debug/deps/ablation_coalesce-92b181f5f953fab1: crates/bench/src/bin/ablation_coalesce.rs

crates/bench/src/bin/ablation_coalesce.rs:
