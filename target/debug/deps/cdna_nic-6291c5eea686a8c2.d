/root/repo/target/debug/deps/cdna_nic-6291c5eea686a8c2.d: crates/nic/src/lib.rs crates/nic/src/coalesce.rs crates/nic/src/conventional.rs crates/nic/src/descriptor.rs crates/nic/src/mailbox.rs crates/nic/src/ring.rs

/root/repo/target/debug/deps/cdna_nic-6291c5eea686a8c2: crates/nic/src/lib.rs crates/nic/src/coalesce.rs crates/nic/src/conventional.rs crates/nic/src/descriptor.rs crates/nic/src/mailbox.rs crates/nic/src/ring.rs

crates/nic/src/lib.rs:
crates/nic/src/coalesce.rs:
crates/nic/src/conventional.rs:
crates/nic/src/descriptor.rs:
crates/nic/src/mailbox.rs:
crates/nic/src/ring.rs:
