/root/repo/target/debug/deps/cdna_core-d440a7eeda8839f3.d: crates/core/src/lib.rs crates/core/src/bitvec.rs crates/core/src/context.rs crates/core/src/fault.rs crates/core/src/generic.rs crates/core/src/iommu.rs crates/core/src/layout.rs crates/core/src/protection.rs crates/core/src/seqnum.rs

/root/repo/target/debug/deps/libcdna_core-d440a7eeda8839f3.rlib: crates/core/src/lib.rs crates/core/src/bitvec.rs crates/core/src/context.rs crates/core/src/fault.rs crates/core/src/generic.rs crates/core/src/iommu.rs crates/core/src/layout.rs crates/core/src/protection.rs crates/core/src/seqnum.rs

/root/repo/target/debug/deps/libcdna_core-d440a7eeda8839f3.rmeta: crates/core/src/lib.rs crates/core/src/bitvec.rs crates/core/src/context.rs crates/core/src/fault.rs crates/core/src/generic.rs crates/core/src/iommu.rs crates/core/src/layout.rs crates/core/src/protection.rs crates/core/src/seqnum.rs

crates/core/src/lib.rs:
crates/core/src/bitvec.rs:
crates/core/src/context.rs:
crates/core/src/fault.rs:
crates/core/src/generic.rs:
crates/core/src/iommu.rs:
crates/core/src/layout.rs:
crates/core/src/protection.rs:
crates/core/src/seqnum.rs:
