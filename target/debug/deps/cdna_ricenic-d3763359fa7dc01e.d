/root/repo/target/debug/deps/cdna_ricenic-d3763359fa7dc01e.d: crates/ricenic/src/lib.rs crates/ricenic/src/config.rs crates/ricenic/src/device.rs crates/ricenic/src/events.rs

/root/repo/target/debug/deps/libcdna_ricenic-d3763359fa7dc01e.rlib: crates/ricenic/src/lib.rs crates/ricenic/src/config.rs crates/ricenic/src/device.rs crates/ricenic/src/events.rs

/root/repo/target/debug/deps/libcdna_ricenic-d3763359fa7dc01e.rmeta: crates/ricenic/src/lib.rs crates/ricenic/src/config.rs crates/ricenic/src/device.rs crates/ricenic/src/events.rs

crates/ricenic/src/lib.rs:
crates/ricenic/src/config.rs:
crates/ricenic/src/device.rs:
crates/ricenic/src/events.rs:
