/root/repo/target/debug/deps/run-b69f1078b442d9e8.d: crates/bench/src/bin/run.rs

/root/repo/target/debug/deps/run-b69f1078b442d9e8: crates/bench/src/bin/run.rs

crates/bench/src/bin/run.rs:
