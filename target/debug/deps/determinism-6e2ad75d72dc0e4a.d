/root/repo/target/debug/deps/determinism-6e2ad75d72dc0e4a.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-6e2ad75d72dc0e4a: tests/determinism.rs

tests/determinism.rs:
