/root/repo/target/debug/deps/ablation_slice-fb1fbb66ea216341.d: crates/bench/src/bin/ablation_slice.rs Cargo.toml

/root/repo/target/debug/deps/libablation_slice-fb1fbb66ea216341.rmeta: crates/bench/src/bin/ablation_slice.rs Cargo.toml

crates/bench/src/bin/ablation_slice.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
