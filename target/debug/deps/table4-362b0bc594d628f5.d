/root/repo/target/debug/deps/table4-362b0bc594d628f5.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-362b0bc594d628f5: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
