/root/repo/target/debug/deps/ablation_slice-f83f92de11ec5559.d: crates/bench/src/bin/ablation_slice.rs

/root/repo/target/debug/deps/ablation_slice-f83f92de11ec5559: crates/bench/src/bin/ablation_slice.rs

crates/bench/src/bin/ablation_slice.rs:
