/root/repo/target/debug/deps/cdna_system-13f6fa12f8d7b05c.d: crates/system/src/lib.rs crates/system/src/config.rs crates/system/src/costs.rs crates/system/src/report.rs crates/system/src/testbed.rs crates/system/src/workload.rs crates/system/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libcdna_system-13f6fa12f8d7b05c.rmeta: crates/system/src/lib.rs crates/system/src/config.rs crates/system/src/costs.rs crates/system/src/report.rs crates/system/src/testbed.rs crates/system/src/workload.rs crates/system/src/world.rs Cargo.toml

crates/system/src/lib.rs:
crates/system/src/config.rs:
crates/system/src/costs.rs:
crates/system/src/report.rs:
crates/system/src/testbed.rs:
crates/system/src/workload.rs:
crates/system/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
