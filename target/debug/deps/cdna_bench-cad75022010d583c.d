/root/repo/target/debug/deps/cdna_bench-cad75022010d583c.d: crates/bench/src/lib.rs crates/bench/src/paper.rs

/root/repo/target/debug/deps/cdna_bench-cad75022010d583c: crates/bench/src/lib.rs crates/bench/src/paper.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
