/root/repo/target/debug/deps/cdna_core-026136d8645b5695.d: crates/core/src/lib.rs crates/core/src/bitvec.rs crates/core/src/context.rs crates/core/src/fault.rs crates/core/src/generic.rs crates/core/src/iommu.rs crates/core/src/layout.rs crates/core/src/protection.rs crates/core/src/seqnum.rs Cargo.toml

/root/repo/target/debug/deps/libcdna_core-026136d8645b5695.rmeta: crates/core/src/lib.rs crates/core/src/bitvec.rs crates/core/src/context.rs crates/core/src/fault.rs crates/core/src/generic.rs crates/core/src/iommu.rs crates/core/src/layout.rs crates/core/src/protection.rs crates/core/src/seqnum.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/bitvec.rs:
crates/core/src/context.rs:
crates/core/src/fault.rs:
crates/core/src/generic.rs:
crates/core/src/iommu.rs:
crates/core/src/layout.rs:
crates/core/src/protection.rs:
crates/core/src/seqnum.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
