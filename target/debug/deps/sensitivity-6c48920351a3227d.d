/root/repo/target/debug/deps/sensitivity-6c48920351a3227d.d: crates/bench/src/bin/sensitivity.rs

/root/repo/target/debug/deps/sensitivity-6c48920351a3227d: crates/bench/src/bin/sensitivity.rs

crates/bench/src/bin/sensitivity.rs:
