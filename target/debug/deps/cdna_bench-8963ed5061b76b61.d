/root/repo/target/debug/deps/cdna_bench-8963ed5061b76b61.d: crates/bench/src/lib.rs crates/bench/src/paper.rs

/root/repo/target/debug/deps/cdna_bench-8963ed5061b76b61: crates/bench/src/lib.rs crates/bench/src/paper.rs

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
