/root/repo/target/debug/deps/cdna_nic-9de185655233cc47.d: crates/nic/src/lib.rs crates/nic/src/coalesce.rs crates/nic/src/conventional.rs crates/nic/src/descriptor.rs crates/nic/src/mailbox.rs crates/nic/src/ring.rs Cargo.toml

/root/repo/target/debug/deps/libcdna_nic-9de185655233cc47.rmeta: crates/nic/src/lib.rs crates/nic/src/coalesce.rs crates/nic/src/conventional.rs crates/nic/src/descriptor.rs crates/nic/src/mailbox.rs crates/nic/src/ring.rs Cargo.toml

crates/nic/src/lib.rs:
crates/nic/src/coalesce.rs:
crates/nic/src/conventional.rs:
crates/nic/src/descriptor.rs:
crates/nic/src/mailbox.rs:
crates/nic/src/ring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
