/root/repo/target/debug/deps/cdna_bench-788fa6a3a778ebce.d: crates/bench/src/lib.rs crates/bench/src/paper.rs Cargo.toml

/root/repo/target/debug/deps/libcdna_bench-788fa6a3a778ebce.rmeta: crates/bench/src/lib.rs crates/bench/src/paper.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/paper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
