/root/repo/target/debug/deps/fig3-7e48ecff2542e0eb.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-7e48ecff2542e0eb: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
