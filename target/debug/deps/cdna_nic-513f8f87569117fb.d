/root/repo/target/debug/deps/cdna_nic-513f8f87569117fb.d: crates/nic/src/lib.rs crates/nic/src/coalesce.rs crates/nic/src/conventional.rs crates/nic/src/descriptor.rs crates/nic/src/mailbox.rs crates/nic/src/ring.rs

/root/repo/target/debug/deps/libcdna_nic-513f8f87569117fb.rlib: crates/nic/src/lib.rs crates/nic/src/coalesce.rs crates/nic/src/conventional.rs crates/nic/src/descriptor.rs crates/nic/src/mailbox.rs crates/nic/src/ring.rs

/root/repo/target/debug/deps/libcdna_nic-513f8f87569117fb.rmeta: crates/nic/src/lib.rs crates/nic/src/coalesce.rs crates/nic/src/conventional.rs crates/nic/src/descriptor.rs crates/nic/src/mailbox.rs crates/nic/src/ring.rs

crates/nic/src/lib.rs:
crates/nic/src/coalesce.rs:
crates/nic/src/conventional.rs:
crates/nic/src/descriptor.rs:
crates/nic/src/mailbox.rs:
crates/nic/src/ring.rs:
