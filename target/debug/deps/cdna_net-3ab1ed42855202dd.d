/root/repo/target/debug/deps/cdna_net-3ab1ed42855202dd.d: crates/net/src/lib.rs crates/net/src/frame.rs crates/net/src/framing.rs crates/net/src/mac.rs crates/net/src/pci.rs crates/net/src/wire.rs

/root/repo/target/debug/deps/libcdna_net-3ab1ed42855202dd.rlib: crates/net/src/lib.rs crates/net/src/frame.rs crates/net/src/framing.rs crates/net/src/mac.rs crates/net/src/pci.rs crates/net/src/wire.rs

/root/repo/target/debug/deps/libcdna_net-3ab1ed42855202dd.rmeta: crates/net/src/lib.rs crates/net/src/frame.rs crates/net/src/framing.rs crates/net/src/mac.rs crates/net/src/pci.rs crates/net/src/wire.rs

crates/net/src/lib.rs:
crates/net/src/frame.rs:
crates/net/src/framing.rs:
crates/net/src/mac.rs:
crates/net/src/pci.rs:
crates/net/src/wire.rs:
