/root/repo/target/debug/deps/table1-c1b1e66b6f4fa7a4.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-c1b1e66b6f4fa7a4.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
