/root/repo/target/debug/deps/table1-64642b37ecdb76e2.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-64642b37ecdb76e2: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
