/root/repo/target/debug/deps/cdna_trace-b58d1c9c174fe5d5.d: crates/trace/src/lib.rs crates/trace/src/json.rs crates/trace/src/histogram.rs crates/trace/src/profile.rs crates/trace/src/registry.rs crates/trace/src/tracer.rs Cargo.toml

/root/repo/target/debug/deps/libcdna_trace-b58d1c9c174fe5d5.rmeta: crates/trace/src/lib.rs crates/trace/src/json.rs crates/trace/src/histogram.rs crates/trace/src/profile.rs crates/trace/src/registry.rs crates/trace/src/tracer.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/json.rs:
crates/trace/src/histogram.rs:
crates/trace/src/profile.rs:
crates/trace/src/registry.rs:
crates/trace/src/tracer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
