/root/repo/target/debug/deps/fig4-41c36906ae23f0a1.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-41c36906ae23f0a1: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
