/root/repo/target/debug/deps/cdna_xen-99a9c6dac262c5ae.d: crates/xen/src/lib.rs crates/xen/src/accounting.rs crates/xen/src/bridge.rs crates/xen/src/cdna_driver.rs crates/xen/src/chan.rs crates/xen/src/evtchn.rs crates/xen/src/native.rs crates/xen/src/sched.rs Cargo.toml

/root/repo/target/debug/deps/libcdna_xen-99a9c6dac262c5ae.rmeta: crates/xen/src/lib.rs crates/xen/src/accounting.rs crates/xen/src/bridge.rs crates/xen/src/cdna_driver.rs crates/xen/src/chan.rs crates/xen/src/evtchn.rs crates/xen/src/native.rs crates/xen/src/sched.rs Cargo.toml

crates/xen/src/lib.rs:
crates/xen/src/accounting.rs:
crates/xen/src/bridge.rs:
crates/xen/src/cdna_driver.rs:
crates/xen/src/chan.rs:
crates/xen/src/evtchn.rs:
crates/xen/src/native.rs:
crates/xen/src/sched.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
