/root/repo/target/debug/deps/fig3-fb2ee7f4254f2fb5.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-fb2ee7f4254f2fb5: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
