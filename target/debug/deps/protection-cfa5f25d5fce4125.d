/root/repo/target/debug/deps/protection-cfa5f25d5fce4125.d: tests/protection.rs Cargo.toml

/root/repo/target/debug/deps/libprotection-cfa5f25d5fce4125.rmeta: tests/protection.rs Cargo.toml

tests/protection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
