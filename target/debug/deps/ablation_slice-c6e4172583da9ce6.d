/root/repo/target/debug/deps/ablation_slice-c6e4172583da9ce6.d: crates/bench/src/bin/ablation_slice.rs Cargo.toml

/root/repo/target/debug/deps/libablation_slice-c6e4172583da9ce6.rmeta: crates/bench/src/bin/ablation_slice.rs Cargo.toml

crates/bench/src/bin/ablation_slice.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
