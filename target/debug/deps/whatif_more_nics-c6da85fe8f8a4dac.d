/root/repo/target/debug/deps/whatif_more_nics-c6da85fe8f8a4dac.d: crates/bench/src/bin/whatif_more_nics.rs

/root/repo/target/debug/deps/whatif_more_nics-c6da85fe8f8a4dac: crates/bench/src/bin/whatif_more_nics.rs

crates/bench/src/bin/whatif_more_nics.rs:
