/root/repo/target/debug/deps/cdna_repro-2ccb4e2ab9a6daef.d: src/lib.rs

/root/repo/target/debug/deps/libcdna_repro-2ccb4e2ab9a6daef.rlib: src/lib.rs

/root/repo/target/debug/deps/libcdna_repro-2ccb4e2ab9a6daef.rmeta: src/lib.rs

src/lib.rs:
