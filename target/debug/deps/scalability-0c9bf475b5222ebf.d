/root/repo/target/debug/deps/scalability-0c9bf475b5222ebf.d: tests/scalability.rs

/root/repo/target/debug/deps/scalability-0c9bf475b5222ebf: tests/scalability.rs

tests/scalability.rs:
