/root/repo/target/debug/deps/table3-fffc9e9b5b1739ae.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-fffc9e9b5b1739ae.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
