/root/repo/target/debug/deps/fig3-78164ec0778ebaf3.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-78164ec0778ebaf3: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
