/root/repo/target/debug/deps/cdna_xen-d8a4d9a5fe57d02f.d: crates/xen/src/lib.rs crates/xen/src/accounting.rs crates/xen/src/bridge.rs crates/xen/src/cdna_driver.rs crates/xen/src/chan.rs crates/xen/src/evtchn.rs crates/xen/src/native.rs crates/xen/src/sched.rs Cargo.toml

/root/repo/target/debug/deps/libcdna_xen-d8a4d9a5fe57d02f.rmeta: crates/xen/src/lib.rs crates/xen/src/accounting.rs crates/xen/src/bridge.rs crates/xen/src/cdna_driver.rs crates/xen/src/chan.rs crates/xen/src/evtchn.rs crates/xen/src/native.rs crates/xen/src/sched.rs Cargo.toml

crates/xen/src/lib.rs:
crates/xen/src/accounting.rs:
crates/xen/src/bridge.rs:
crates/xen/src/cdna_driver.rs:
crates/xen/src/chan.rs:
crates/xen/src/evtchn.rs:
crates/xen/src/native.rs:
crates/xen/src/sched.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
