/root/repo/target/debug/deps/whatif_more_nics-13366bf19c2cd520.d: crates/bench/src/bin/whatif_more_nics.rs Cargo.toml

/root/repo/target/debug/deps/libwhatif_more_nics-13366bf19c2cd520.rmeta: crates/bench/src/bin/whatif_more_nics.rs Cargo.toml

crates/bench/src/bin/whatif_more_nics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
