/root/repo/target/debug/deps/cdna_xen-bc264161e251277e.d: crates/xen/src/lib.rs crates/xen/src/accounting.rs crates/xen/src/bridge.rs crates/xen/src/cdna_driver.rs crates/xen/src/chan.rs crates/xen/src/evtchn.rs crates/xen/src/native.rs crates/xen/src/sched.rs

/root/repo/target/debug/deps/cdna_xen-bc264161e251277e: crates/xen/src/lib.rs crates/xen/src/accounting.rs crates/xen/src/bridge.rs crates/xen/src/cdna_driver.rs crates/xen/src/chan.rs crates/xen/src/evtchn.rs crates/xen/src/native.rs crates/xen/src/sched.rs

crates/xen/src/lib.rs:
crates/xen/src/accounting.rs:
crates/xen/src/bridge.rs:
crates/xen/src/cdna_driver.rs:
crates/xen/src/chan.rs:
crates/xen/src/evtchn.rs:
crates/xen/src/native.rs:
crates/xen/src/sched.rs:
