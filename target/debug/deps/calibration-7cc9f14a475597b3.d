/root/repo/target/debug/deps/calibration-7cc9f14a475597b3.d: tests/calibration.rs

/root/repo/target/debug/deps/calibration-7cc9f14a475597b3: tests/calibration.rs

tests/calibration.rs:
