/root/repo/target/debug/deps/ablation_batch-deea4ca99cea69d0.d: crates/bench/src/bin/ablation_batch.rs

/root/repo/target/debug/deps/ablation_batch-deea4ca99cea69d0: crates/bench/src/bin/ablation_batch.rs

crates/bench/src/bin/ablation_batch.rs:
