/root/repo/target/debug/deps/ablation_coalesce-d5c4071714bc25b6.d: crates/bench/src/bin/ablation_coalesce.rs

/root/repo/target/debug/deps/ablation_coalesce-d5c4071714bc25b6: crates/bench/src/bin/ablation_coalesce.rs

crates/bench/src/bin/ablation_coalesce.rs:
