/root/repo/target/debug/deps/fairness-b1101404d4b8ed41.d: crates/ricenic/tests/fairness.rs

/root/repo/target/debug/deps/fairness-b1101404d4b8ed41: crates/ricenic/tests/fairness.rs

crates/ricenic/tests/fairness.rs:
