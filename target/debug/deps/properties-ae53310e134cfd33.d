/root/repo/target/debug/deps/properties-ae53310e134cfd33.d: crates/nic/tests/properties.rs

/root/repo/target/debug/deps/properties-ae53310e134cfd33: crates/nic/tests/properties.rs

crates/nic/tests/properties.rs:
