/root/repo/target/debug/deps/cdna_ricenic-cc3883a6c93a5bd8.d: crates/ricenic/src/lib.rs crates/ricenic/src/config.rs crates/ricenic/src/device.rs crates/ricenic/src/events.rs Cargo.toml

/root/repo/target/debug/deps/libcdna_ricenic-cc3883a6c93a5bd8.rmeta: crates/ricenic/src/lib.rs crates/ricenic/src/config.rs crates/ricenic/src/device.rs crates/ricenic/src/events.rs Cargo.toml

crates/ricenic/src/lib.rs:
crates/ricenic/src/config.rs:
crates/ricenic/src/device.rs:
crates/ricenic/src/events.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
