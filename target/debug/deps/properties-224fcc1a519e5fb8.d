/root/repo/target/debug/deps/properties-224fcc1a519e5fb8.d: crates/sim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-224fcc1a519e5fb8.rmeta: crates/sim/tests/properties.rs Cargo.toml

crates/sim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
