/root/repo/target/debug/libcdna_mem.rlib: /root/repo/crates/mem/src/addr.rs /root/repo/crates/mem/src/buffer.rs /root/repo/crates/mem/src/lib.rs /root/repo/crates/mem/src/pool.rs
