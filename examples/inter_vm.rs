//! Inter-VM traffic — an architectural trade-off the paper does not
//! evaluate. When two guests on the same host talk to *each other*:
//!
//! * under **Xen**, the driver domain's software bridge switches the
//!   packets entirely in host memory (no NIC, no wire);
//! * under **CDNA**, each guest owns a hardware context, so the packets
//!   leave through the NIC and the external Ethernet switch hairpins
//!   them back — direct access trades host CPU for wire bandwidth.
//!
//! ```sh
//! cargo run --release --example inter_vm
//! ```

use cdna_core::DmaPolicy;
use cdna_net::WireDirection;
use cdna_sim::Simulation;
use cdna_system::{run_experiment, Direction, IoModel, NicKind, SystemWorld, TestbedConfig};

fn wire_utilization(cfg: TestbedConfig) -> (f64, f64) {
    let end = cfg.warmup + cfg.measure;
    let secs = end.as_secs_f64();
    let mut sim = Simulation::new(SystemWorld::build(cfg));
    let primed = sim.world_mut().prime();
    for (t, e) in primed {
        sim.schedule(t, e);
    }
    sim.run_until(end);
    let world = sim.into_world();
    let tx: u64 = world
        .wires
        .iter()
        .map(|w| w.wire_bytes(WireDirection::Transmit))
        .sum();
    let rx: u64 = world
        .wires
        .iter()
        .map(|w| w.wire_bytes(WireDirection::Receive))
        .sum();
    // Fraction of the NICs' aggregate capacity consumed in each direction.
    let capacity = world.wires.len() as f64 * 125e6 * secs;
    (tx as f64 / capacity, rx as f64 / capacity)
}

fn main() {
    println!("Two guests exchanging traffic with each other (inter-VM)\n");
    println!(
        "{:<14} {:>10} {:>8} | {:>12} {:>12}",
        "architecture", "Mb/s", "idle %", "wire TX util", "wire RX util"
    );
    for io in [
        IoModel::XenBridged {
            nic: NicKind::Intel,
        },
        IoModel::Cdna {
            policy: DmaPolicy::Validated,
        },
    ] {
        let cfg = TestbedConfig::new(io, 2, Direction::Transmit).with_inter_guest();
        let report = run_experiment(cfg.clone());
        let (tx_util, rx_util) = wire_utilization(cfg);
        println!(
            "{:<14} {:>10.0} {:>8.1} | {:>11.1}% {:>11.1}%",
            report.label,
            report.throughput_mbps,
            report.idle_pct(),
            tx_util * 100.0,
            rx_util * 100.0,
        );
    }
    println!();
    println!("Xen switches guest-to-guest packets in the driver domain: zero");
    println!("wire usage, but every packet costs the full software path.");
    println!("CDNA's direct access means the packets hairpin through the");
    println!("external switch — higher throughput, but the \"free\" intra-host");
    println!("traffic now consumes NIC and switch capacity in both directions.");
}
