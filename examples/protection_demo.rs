//! Demonstrates CDNA's DMA memory protection (paper §3.3) against a
//! malicious guest device driver, attack by attack:
//!
//! 1. transmitting from another guest's memory — rejected at the
//!    enqueue hypercall;
//! 2. receiving into memory the guest does not own — rejected;
//! 3. freeing a page with DMA in flight — reallocation deferred;
//! 4. overrunning the producer index — the NIC detects the stale
//!    descriptor by its sequence number and halts only that context.
//!
//! ```sh
//! cargo run --release --example protection_demo
//! ```

use cdna_core::{
    layout::Mailbox, DmaPolicy, ProtectionEngine, ProtectionError, RxRequest, TxRequest,
};
use cdna_mem::{BufferSlice, DomainId, MemError, PhysMem};
use cdna_net::{FlowId, MacAddr, PciBus};
use cdna_nic::{DescFlags, FrameMeta, RingTable};
use cdna_ricenic::{RiceNic, RiceNicConfig};
use cdna_sim::SimTime;

fn main() {
    let mut mem = PhysMem::new(1024);
    let mut rings = RingTable::new();
    let mut bus = PciBus::new_64bit_66mhz();
    let mut engine = ProtectionEngine::new();
    let mut nic = RiceNic::new(0, RiceNicConfig::default());

    let attacker = DomainId::guest(0);
    let victim = DomainId::guest(1);

    // The hypervisor assigns each guest a hardware context.
    let ctx = engine
        .assign_context(attacker, DmaPolicy::Validated, 32, &mut rings, &mut mem)
        .expect("context");
    let st = engine.contexts().state(ctx).expect("state");
    nic.attach_context(ctx, st.tx_ring, st.rx_ring, true, &rings)
        .expect("attach");
    println!(
        "hypervisor assigned {ctx} to {attacker} (MAC {})\n",
        nic.mac_for(ctx)
    );

    // --- Attack 1: transmit the victim's memory ---
    let secret_page = mem.alloc(victim).expect("victim page");
    let steal = TxRequest {
        buf: BufferSlice::new(secret_page.base_addr(), 1514),
        flags: DescFlags::END_OF_PACKET,
        meta: meta(ctx),
    };
    match engine.enqueue_tx(ctx, attacker, &[steal], 0, &mut rings, &mut mem) {
        Err(ProtectionError::Mem(MemError::NotOwner { page, .. })) => {
            println!(
                "attack 1 (transmit victim memory): REJECTED — page {page:?} not owned by attacker"
            )
        }
        other => panic!("exfiltration not blocked: {other:?}"),
    }

    // --- Attack 2: receive into the victim's memory ---
    let overwrite = RxRequest {
        buf: BufferSlice::new(secret_page.base_addr(), 1514),
    };
    match engine.enqueue_rx(ctx, attacker, &[overwrite], 0, &mut rings, &mut mem) {
        Err(ProtectionError::Mem(_)) => {
            println!("attack 2 (receive into victim memory): REJECTED by validation")
        }
        other => panic!("corruption not blocked: {other:?}"),
    }

    // --- Attack 3: free a page while its DMA is outstanding ---
    let own_page = mem.alloc(attacker).expect("attacker page");
    let honest = TxRequest {
        buf: BufferSlice::new(own_page.base_addr(), 1514),
        flags: DescFlags::END_OF_PACKET,
        meta: meta(ctx),
    };
    let out = engine
        .enqueue_tx(ctx, attacker, &[honest], 0, &mut rings, &mut mem)
        .expect("honest enqueue");
    match mem.free(attacker, own_page) {
        Err(MemError::Pinned(_)) => println!(
            "attack 3 (free during DMA): DEFERRED — page pinned ({} pin outstanding)",
            mem.outstanding_pins()
        ),
        other => panic!("reallocation hazard: {other:?}"),
    }

    // --- Attack 4: overrun the producer index ---
    let act = nic
        .mailbox_write(
            SimTime::ZERO,
            ctx,
            Mailbox::TxProducer.index(),
            out.producer + 3, // claims 3 descriptors that were never validated
            &rings,
            &mut bus,
        )
        .expect("mailbox");
    println!(
        "attack 4 (producer overrun): NIC raised {:?}",
        act.faults.first().map(|f| f.kind).expect("fault expected")
    );
    println!(
        "  context halted: {} — other contexts unaffected",
        nic.is_faulted(ctx)
    );

    // The hypervisor revokes the offender and recovers its memory.
    nic.detach_context(ctx);
    engine.revoke_context(ctx, &mut mem).expect("revoke");
    println!(
        "\nhypervisor revoked {ctx}; outstanding pins: {}",
        mem.outstanding_pins()
    );
}

fn meta(ctx: cdna_core::ContextId) -> FrameMeta {
    FrameMeta {
        dst: MacAddr::for_peer(0),
        src: MacAddr::for_context(0, ctx.0),
        tcp_payload: 1460,
        flow: FlowId::new(0, 0),
        seq: 0,
    }
}
