//! The paper's §5.3 question: what would CDNA gain from a per-context
//! IOMMU? Runs CDNA with software protection, with an IOMMU (guests
//! enqueue directly; hardware checks addresses), and with protection
//! disabled entirely (Table 4's upper bound), for both directions.
//!
//! ```sh
//! cargo run --release --example iommu_comparison
//! ```

use cdna_core::DmaPolicy;
use cdna_system::{run_experiment, Direction, IoModel, TestbedConfig};

fn main() {
    println!("CDNA DMA-protection variants, 1 guest, 2 NICs\n");
    for direction in [Direction::Transmit, Direction::Receive] {
        println!("--- {direction:?} ---");
        println!(
            "{:<26} {:>10} {:>8} {:>8} {:>12}",
            "policy", "Mb/s", "hyp %", "idle %", "hypercalls/s"
        );
        for policy in [
            DmaPolicy::Validated,
            DmaPolicy::Iommu,
            DmaPolicy::Unprotected,
        ] {
            let report = run_experiment(TestbedConfig::new(IoModel::Cdna { policy }, 1, direction));
            println!(
                "{:<26} {:>10.0} {:>8.1} {:>8.1} {:>12.0}",
                format!("{policy:?}"),
                report.throughput_mbps,
                report.profile.hypervisor_frac * 100.0,
                report.idle_pct(),
                report.hypercalls_per_s,
            );
        }
        println!();
    }
    println!("Throughput is identical in all variants (the NICs are already");
    println!("saturated); protection costs only idle CPU. Note the IOMMU");
    println!("variant recovers almost nothing: per-buffer map/unmap costs");
    println!("rival CDNA's software validation — precisely the \"additional");
    println!("hypervisor overhead to manage the IOMMU that is not accounted");
    println!("for\" the paper warns about in §5.3. Only dropping protection");
    println!("entirely (the unsafe upper bound) frees the ~8-9%.");
}
