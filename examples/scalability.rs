//! Server-consolidation scenario: sweep the number of guest domains
//! from 1 to 24 (the paper's Figures 3 and 4) and print both throughput
//! curves with CDNA's idle-time annotations — the workload that
//! motivates CDNA in the paper's introduction.
//!
//! ```sh
//! cargo run --release --example scalability [tx|rx]
//! ```

use cdna_core::DmaPolicy;
use cdna_system::{run_experiment, Direction, IoModel, NicKind, TestbedConfig};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "tx".into());
    let direction = match arg.as_str() {
        "rx" => Direction::Receive,
        _ => Direction::Transmit,
    };
    println!("Aggregate {direction:?} throughput vs number of guests (2 NICs)\n");
    println!(
        "{:>6} | {:>14} | {:>15} {:>10}",
        "guests", "Xen/Intel Mb/s", "CDNA/RiceNIC Mb/s", "CDNA idle"
    );

    for guests in [1u16, 2, 4, 8, 12, 16, 20, 24] {
        let xen = run_experiment(TestbedConfig::new(
            IoModel::XenBridged {
                nic: NicKind::Intel,
            },
            guests,
            direction,
        ));
        let cdna = run_experiment(TestbedConfig::new(
            IoModel::Cdna {
                policy: DmaPolicy::Validated,
            },
            guests,
            direction,
        ));
        let bar = "#".repeat((cdna.throughput_mbps / 50.0) as usize);
        let xbar = "x".repeat((xen.throughput_mbps / 50.0) as usize);
        println!(
            "{:>6} | {:>14.0} | {:>15.0} {:>9.1}%",
            guests,
            xen.throughput_mbps,
            cdna.throughput_mbps,
            cdna.idle_pct()
        );
        println!("       | {xbar}");
        println!("       | {bar}");
    }

    println!();
    println!("CDNA holds line rate while Xen's driver domain becomes the");
    println!("bottleneck — the consolidation headroom CDNA buys (paper §5.4).");
}
