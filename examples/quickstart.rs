//! Quickstart: run the paper's headline comparison — Xen's software
//! I/O virtualization vs CDNA for one guest on two gigabit NICs — and
//! print the tables-2/3-style rows.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cdna_core::DmaPolicy;
use cdna_system::{run_experiment, Direction, IoModel, NicKind, TestbedConfig};

fn main() {
    println!("CDNA reproduction quickstart: 1 guest, 2 gigabit NICs\n");

    for direction in [Direction::Transmit, Direction::Receive] {
        println!("--- {direction:?} ---");
        for io in [
            IoModel::XenBridged {
                nic: NicKind::Intel,
            },
            IoModel::Cdna {
                policy: DmaPolicy::Validated,
            },
        ] {
            let report = run_experiment(TestbedConfig::new(io, 1, direction));
            println!("{}", report.table_row());
        }
        println!();
    }

    println!("CDNA saturates both NICs with CPU to spare; Xen's driver-domain");
    println!("path consumes the whole CPU below line rate (paper §5.2).");
}
