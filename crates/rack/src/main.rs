//! `cdna-rack` bench binary: runs a hosts × guests × workload matrix
//! of rack scenarios and writes `RACK-BENCH.json`.
//!
//! ```text
//! cargo run --release -p cdna-rack --bin rack                  # full matrix
//! cargo run --release -p cdna-rack --bin rack -- --quick       # CI window
//! cargo run --release -p cdna-rack --bin rack -- --jobs 8      # fan out
//! cargo run --release -p cdna-rack --bin rack -- \
//!     --hosts 16 --guests 24 --workload xhost --stdout         # one cell
//! ```
//!
//! Every scenario is deterministic for a given configuration and seed,
//! independent of `--jobs`: hosts advance in epoch-barrier lockstep and
//! the switch merge order is fixed (see the `cdna_rack` crate docs).
//! `--stdout` prints the single-scenario rack report JSON instead of
//! the suite file, which is what the CI equality guard diffs across
//! worker counts.

use std::time::Instant;

use cdna_bench::take_jobs_flag;
use cdna_rack::{run_rack, RackConfig, RackReport, RackWorkload};
use cdna_sim::par;
use cdna_trace::json::JsonWriter;

/// Bump when the `RACK-BENCH.json` layout changes shape.
const SCHEMA: &str = "cdna-rack-bench/1";

fn usage() -> ! {
    eprintln!(
        "usage: rack [--quick] [--jobs N] [--seed N] [--hosts N] [--guests N] \
         [--workload xhost|txpeer|rxpeer] [--out PATH] [--stdout]"
    );
    std::process::exit(2);
}

/// One cell of the rack matrix, measured.
struct Measured {
    report: RackReport,
    wall_ms: f64,
}

fn measure(cfg: RackConfig, jobs: usize) -> Measured {
    let t0 = Instant::now();
    let report = run_rack(cfg, jobs);
    Measured {
        report,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    }
}

fn write_suite_json(results: &[Measured], quick: bool, jobs: usize) -> String {
    let mut w = JsonWriter::with_capacity(4096);
    w.begin_object();
    w.key("schema");
    w.string(SCHEMA);
    w.key("suite");
    w.string(if quick { "quick" } else { "full" });
    w.key("jobs");
    w.number_u64(jobs as u64);
    w.key("entries");
    w.begin_array();
    for m in results {
        let r = &m.report;
        w.begin_object();
        w.key("id");
        w.string(&format!("{}-{}h-{}g", r.workload, r.hosts, r.guests));
        w.key("hosts");
        w.number_u64(r.hosts as u64);
        w.key("guests_per_host");
        w.number_u64(r.guests as u64);
        w.key("workload");
        w.string(r.workload);
        w.key("seed");
        w.number_u64(r.seed);
        w.key("aggregate_mbps");
        w.number_f64(r.aggregate_mbps());
        w.key("per_host_mbps");
        w.begin_array();
        for h in &r.per_host {
            w.number_f64(h.throughput_mbps);
        }
        w.end_array();
        w.key("switch_forwarded");
        w.number_u64(r.switch.forwarded);
        w.key("total_events");
        w.number_u64(r.total_events());
        w.key("total_faults");
        w.number_u64(r.total_faults());
        w.key("wall_ms");
        w.number_f64(m.wall_ms);
        w.key("events_per_sec");
        // cdna-check: allow(clock-purity): wall-derived simulator speed, reported not compared (the jobs-equality guard diffs the rack report, not this suite file)
        w.number_f64(r.total_events() as f64 / (m.wall_ms / 1e3));
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs_flag = take_jobs_flag(&mut args);
    let mut quick = false;
    let mut stdout = false;
    let mut out: Option<String> = None;
    let mut seed: u64 = 42;
    let mut hosts: Option<u8> = None;
    let mut guests: Option<u16> = None;
    let mut workload: Option<RackWorkload> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--stdout" => {
                stdout = true;
                i += 1;
            }
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--hosts" => {
                hosts = Some(
                    args.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
                i += 2;
            }
            "--guests" => {
                guests = Some(
                    args.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
                i += 2;
            }
            "--workload" => {
                workload = Some(
                    args.get(i + 1)
                        .and_then(|v| RackWorkload::parse(v))
                        .unwrap_or_else(|| usage()),
                );
                i += 2;
            }
            "--out" => {
                out = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            _ => usage(),
        }
    }

    let explicit_cell = hosts.is_some() || guests.is_some() || workload.is_some();
    let scenarios: Vec<RackConfig> = if explicit_cell {
        let mut cfg = RackConfig::new(
            hosts.unwrap_or(2),
            guests.unwrap_or(4),
            workload.unwrap_or(RackWorkload::XHost),
        )
        .with_seed(seed)
        .with_shadow_check();
        if quick {
            cfg = cfg.quick();
        }
        vec![cfg]
    } else {
        // The default matrix: cross-host traffic at increasing rack
        // sizes plus the local-peer scaling baseline.
        let mut v = Vec::new();
        for (h, g) in [(2u8, 4u16), (4, 8), (8, 24), (16, 24)] {
            for wl in [RackWorkload::XHost, RackWorkload::TxPeer] {
                let mut cfg = RackConfig::new(h, g, wl).with_seed(seed);
                if quick {
                    cfg = cfg.quick();
                }
                v.push(cfg);
            }
        }
        v
    };

    let jobs = par::resolve_jobs(jobs_flag, scenarios.len().max(2));
    eprintln!(
        "running {} rack scenario(s) on {} worker(s)",
        scenarios.len(),
        jobs
    );

    // Scenarios run one after another; the parallelism lives inside
    // each rack's epoch loop, where every host is an independent task.
    let results: Vec<Measured> = scenarios
        .into_iter()
        .map(|cfg| {
            let m = measure(cfg, jobs);
            let r = &m.report;
            eprintln!(
                "  {:>7}-{:>2}h-{:>2}g  {:>9.1} Mb/s aggregate  {:>6} switched  {} faults  {:>8.1} ms",
                r.workload,
                r.hosts,
                r.guests,
                r.aggregate_mbps(),
                r.switch.forwarded,
                r.total_faults(),
                m.wall_ms,
            );
            m
        })
        .collect();

    if stdout && results.len() == 1 {
        println!("{}", results[0].report.to_json());
        return;
    }
    let json = write_suite_json(&results, quick, jobs);
    if stdout {
        println!("{json}");
        return;
    }
    let out = out.unwrap_or_else(|| {
        format!("{}/../../RACK-BENCH.json", env!("CARGO_MANIFEST_DIR")) // repo root
    });
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");
}
