//! The store-and-forward top-of-rack switch.
//!
//! One port per (host, NIC) uplink. A frame handed to the switch at its
//! wire-transmit completion time propagates over the ingress link,
//! waits for the egress port to drain (store-and-forward: the whole
//! frame is buffered before it is re-serialized), serializes out at the
//! link rate, and propagates over the egress link. Forwarding decisions
//! come from a MAC table that is pre-loaded by the rack builder and
//! also learns source addresses dynamically, exactly like a real L2
//! switch; frames to unknown destinations are counted and dropped
//! rather than flooded, keeping the simulation's traffic matrix
//! explicit.

use std::collections::BTreeMap;

use cdna_net::{Frame, MacAddr};
use cdna_sim::SimTime;

/// Link and fabric timing for the top-of-rack switch.
#[derive(Debug, Clone, Copy)]
pub struct SwitchConfig {
    /// One-way link latency (propagation plus PHY/processing) between a
    /// host uplink and the switch fabric. Also the rack's conservative
    /// lookahead window: hosts advance in epochs of exactly this
    /// length, and a frame crossing the switch always arrives at least
    /// one full epoch after the epoch it departed in.
    pub latency: SimTime,
    /// Egress serialization rate in nanoseconds per byte (8 ns/B is
    /// 1 Gb/s, matching the hosts' [`cdna_net::GigabitWire`]).
    pub ns_per_byte: u64,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            // The same store-and-forward figure SystemWorld's hairpin
            // path models for the external switch.
            latency: SimTime::from_us(2),
            ns_per_byte: 8,
        }
    }
}

/// Aggregate switch counters for the rack report.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwitchStats {
    /// Frames forwarded to an egress port.
    pub forwarded: u64,
    /// Bytes (wire framing included) forwarded.
    pub forwarded_bytes: u64,
    /// Frames dropped because the destination MAC was unknown.
    pub dropped_unknown: u64,
    /// Source MACs learned dynamically (pre-loaded entries excluded).
    pub learned: u64,
}

/// The switch itself: per-port egress serialization state plus the
/// forwarding table.
#[derive(Debug)]
pub struct TorSwitch {
    cfg: SwitchConfig,
    /// Per-port egress busy horizon: the time the port finishes
    /// re-serializing the last frame queued on it.
    busy_until: Vec<SimTime>,
    mac_table: BTreeMap<MacAddr, usize>,
    stats: SwitchStats,
}

impl TorSwitch {
    /// A switch with `ports` empty per-port queues and an empty MAC
    /// table.
    pub fn new(cfg: SwitchConfig, ports: usize) -> Self {
        TorSwitch {
            cfg,
            busy_until: vec![SimTime::ZERO; ports],
            mac_table: BTreeMap::new(),
            stats: SwitchStats::default(),
        }
    }

    /// The switch configuration.
    pub fn config(&self) -> SwitchConfig {
        self.cfg
    }

    /// Counters so far.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// Pre-loads a forwarding entry (rack inventory; not counted as
    /// learned).
    pub fn preload(&mut self, mac: MacAddr, port: usize) {
        self.mac_table.insert(mac, port);
    }

    /// Learns `mac` as reachable through `port`, counting only new or
    /// moved entries.
    pub fn learn(&mut self, mac: MacAddr, port: usize) {
        if self.mac_table.insert(mac, port) != Some(port) {
            self.stats.learned += 1;
        }
    }

    /// Forwards a frame that finished serializing onto `src_port`'s
    /// ingress wire at `departed`. Returns the egress port and the time
    /// the frame lands on that port's host wire, or `None` if the
    /// destination is unknown.
    ///
    /// The returned delivery time is always at least
    /// `departed + 2 * latency`, which is what makes latency-sized
    /// epochs a safe lookahead window.
    pub fn forward(
        &mut self,
        departed: SimTime,
        src_port: usize,
        frame: &Frame,
    ) -> Option<(usize, SimTime)> {
        self.learn(frame.src, src_port);
        let Some(&dst_port) = self.mac_table.get(&frame.dst) else {
            self.stats.dropped_unknown += 1;
            return None;
        };
        let wire_bytes = frame.wire_bytes() as u64;
        // Ingress propagation, then store-and-forward buffering: the
        // egress port serializes whole frames back-to-back.
        let arrival = departed + self.cfg.latency;
        let start = arrival.max(self.busy_until[dst_port]);
        let done = start + SimTime::from_ns(wire_bytes * self.cfg.ns_per_byte);
        self.busy_until[dst_port] = done;
        self.stats.forwarded += 1;
        self.stats.forwarded_bytes += wire_bytes;
        Some((dst_port, done + self.cfg.latency))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdna_net::FlowId;

    fn frame(src: MacAddr, dst: MacAddr) -> Frame {
        Frame::tcp_data(src, dst, 1460, FlowId { guest: 0, conn: 0 }, 0)
    }

    #[test]
    fn unknown_destination_is_dropped() {
        let mut sw = TorSwitch::new(SwitchConfig::default(), 2);
        let f = frame(
            MacAddr::for_host_context(0, 0, 1),
            MacAddr::for_host_context(1, 0, 1),
        );
        assert!(sw.forward(SimTime::ZERO, 0, &f).is_none());
        assert_eq!(sw.stats().dropped_unknown, 1);
        // The source was learned on the way through.
        assert_eq!(sw.stats().learned, 1);
    }

    #[test]
    fn forward_adds_two_latencies_and_serialization() {
        let cfg = SwitchConfig {
            latency: SimTime::from_us(2),
            ns_per_byte: 8,
        };
        let mut sw = TorSwitch::new(cfg, 4);
        let dst = MacAddr::for_host_context(1, 0, 1);
        sw.preload(dst, 2);
        let f = frame(MacAddr::for_host_context(0, 0, 1), dst);
        let (port, at) = sw.forward(SimTime::from_us(10), 0, &f).expect("known dst");
        assert_eq!(port, 2);
        let ser = SimTime::from_ns(f.wire_bytes() as u64 * 8);
        assert_eq!(at, SimTime::from_us(14) + ser);
    }

    #[test]
    fn egress_port_serializes_back_to_back() {
        let cfg = SwitchConfig {
            latency: SimTime::from_us(2),
            ns_per_byte: 8,
        };
        let mut sw = TorSwitch::new(cfg, 2);
        let dst = MacAddr::for_host_context(1, 0, 1);
        sw.preload(dst, 1);
        let f = frame(MacAddr::for_host_context(0, 0, 1), dst);
        let ser = SimTime::from_ns(f.wire_bytes() as u64 * 8);
        let (_, first) = sw.forward(SimTime::ZERO, 0, &f).expect("known dst");
        // Second frame departs at the same instant: it queues behind
        // the first on the egress port.
        let (_, second) = sw.forward(SimTime::ZERO, 0, &f).expect("known dst");
        assert_eq!(first, SimTime::from_us(4) + ser);
        assert_eq!(second, first + ser);
    }

    #[test]
    fn learning_moves_a_station() {
        let mut sw = TorSwitch::new(SwitchConfig::default(), 3);
        let mac = MacAddr::for_host_context(2, 0, 1);
        sw.learn(mac, 0);
        sw.learn(mac, 0); // unchanged: not re-counted
        sw.learn(mac, 2); // moved
        assert_eq!(sw.stats().learned, 2);
    }
}
