#![warn(missing_docs)]

//! Deterministic multi-host rack simulation (`cdna-rack`).
//!
//! The paper evaluates CDNA on one host; this crate scales the same
//! machine model to a rack: N independent [`SystemWorld`] hosts — each
//! with its own CPU ledger, Xen instance, and RiceNICs — connected
//! through a store-and-forward top-of-rack switch
//! ([`TorSwitch`]).
//!
//! # Epoch-barrier synchronization
//!
//! Cross-host delivery is made deterministic with conservative
//! lookahead: every path between two hosts crosses the switch, and the
//! switch adds at least `2 * latency` to any frame, so a host's events
//! up to time `T` can never be affected by a frame another host
//! transmits after `T - 2 * latency`. Hosts therefore advance in
//! epochs of exactly one link latency. At each epoch barrier the rack
//! drains every host's uplink egress buffer, pushes the frames through
//! the switch in a fixed merge order — `(departure time, source host,
//! capture sequence)` — and schedules the resulting arrivals into the
//! destination hosts, always at times strictly beyond the barrier.
//! The barrier work is serial and the per-epoch host stepping fans out
//! over [`cdna_sim::par::run_rounds`], so `--jobs 1` and `--jobs N`
//! produce byte-identical rack reports.
//!
//! # Example
//!
//! ```
//! use cdna_rack::{RackConfig, RackWorkload};
//!
//! let mut cfg = RackConfig::new(2, 1, RackWorkload::XHost).quick();
//! cfg.measure = cdna_sim::SimTime::from_ms(4);
//! cfg.warmup = cdna_sim::SimTime::from_ms(2);
//! let report = cdna_rack::run_rack(cfg, 1);
//! assert_eq!(report.per_host.len(), 2);
//! assert!(report.switch.forwarded > 0);
//! ```

mod switch;

pub use switch::{SwitchConfig, SwitchStats, TorSwitch};

use cdna_core::DmaPolicy;
use cdna_net::MacAddr;
use cdna_sim::{par, SimTime, Simulation};
use cdna_system::{
    report_from_world, Direction, EgressFrame, Event, IoModel, RunReport, SystemWorld,
    TestbedConfig,
};
use cdna_trace::json::JsonWriter;

/// What every guest in the rack does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RackWorkload {
    /// Cross-host ring: guest `g` on host `h` streams to guest `g`'s
    /// context on host `(h + 1) % hosts`, through the switch. This is
    /// the workload that exercises the fabric.
    XHost,
    /// Every guest transmits to its host-local peer sink; the switch
    /// carries no traffic. The host-scaling baseline.
    TxPeer,
    /// Every guest receives from its host-local peer source.
    RxPeer,
}

impl RackWorkload {
    /// Stable name used in reports and on the command line.
    pub fn name(self) -> &'static str {
        match self {
            RackWorkload::XHost => "xhost",
            RackWorkload::TxPeer => "txpeer",
            RackWorkload::RxPeer => "rxpeer",
        }
    }

    /// Parses a [`RackWorkload::name`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "xhost" => Some(RackWorkload::XHost),
            "txpeer" => Some(RackWorkload::TxPeer),
            "rxpeer" => Some(RackWorkload::RxPeer),
            _ => None,
        }
    }

    fn direction(self) -> Direction {
        match self {
            RackWorkload::RxPeer => Direction::Receive,
            _ => Direction::Transmit,
        }
    }
}

/// A rack scenario: the host/guest matrix plus shared timing.
#[derive(Debug, Clone)]
pub struct RackConfig {
    /// Number of hosts in the rack (each is a full [`SystemWorld`]).
    pub hosts: u8,
    /// Guest domains per host.
    pub guests: u16,
    /// Physical NICs (switch uplinks) per host.
    pub nics: u8,
    /// The traffic pattern.
    pub workload: RackWorkload,
    /// Base RNG seed; host `h` runs at a seed derived from this and
    /// `h`, so hosts are decorrelated but the rack is reproducible.
    pub seed: u64,
    /// Per-host warm-up before measurement.
    pub warmup: SimTime,
    /// Measurement window length.
    pub measure: SimTime,
    /// Run the DMA shadow checker on every host.
    pub shadow_check: bool,
    /// Arm the RiceNIC adversarial mailbox seam on every host
    /// ([`cdna_ricenic::RiceNicConfig::adversarial`]) so a
    /// [`RackWorld::run_with_host_hook`] hook can inject malicious
    /// guest-interface traffic. Off by default; arming it changes no
    /// benign behaviour.
    pub adversarial: bool,
    /// Top-of-rack switch timing. `switch.latency` is also the epoch
    /// length.
    pub switch: SwitchConfig,
}

impl RackConfig {
    /// A rack of `hosts` hosts with `guests` guests each, on the
    /// standard testbed timing (200 ms warm-up, 800 ms window).
    pub fn new(hosts: u8, guests: u16, workload: RackWorkload) -> Self {
        let base = TestbedConfig::new(
            IoModel::Cdna {
                policy: DmaPolicy::Validated,
            },
            guests.max(1),
            workload.direction(),
        );
        RackConfig {
            hosts: hosts.max(1),
            guests: guests.max(1),
            nics: base.nics,
            workload,
            seed: base.seed,
            warmup: base.warmup,
            measure: base.measure,
            shadow_check: false,
            adversarial: false,
            switch: SwitchConfig::default(),
        }
    }

    /// Shrinks the simulated window for smoke tests and CI.
    pub fn quick(mut self) -> Self {
        self.warmup = SimTime::from_ms(30);
        self.measure = SimTime::from_ms(120);
        self
    }

    /// Sets the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables the per-host DMA shadow checker.
    pub fn with_shadow_check(mut self) -> Self {
        self.shadow_check = true;
        self
    }

    /// Arms the adversarial mailbox seam on every host (see
    /// [`RackConfig::adversarial`]).
    pub fn with_adversarial(mut self) -> Self {
        self.adversarial = true;
        self
    }

    /// The per-host testbed configuration for host `host`: identical
    /// across the rack except for the derived seed and the MAC host
    /// namespace.
    pub fn host_config(&self, host: u8) -> TestbedConfig {
        let mut cfg = TestbedConfig::new(
            IoModel::Cdna {
                policy: DmaPolicy::Validated,
            },
            self.guests,
            self.workload.direction(),
        )
        .with_seed(host_seed(self.seed, host));
        cfg.nics = self.nics;
        cfg.warmup = self.warmup;
        cfg.measure = self.measure;
        cfg.shadow_check = self.shadow_check;
        cfg.ricenic.adversarial = self.adversarial;
        cfg.ricenic.mac_host = host;
        cfg
    }
}

/// The derived seed for host `host` (splitmix-style spread so adjacent
/// hosts don't run correlated flows).
pub fn host_seed(base: u64, host: u8) -> u64 {
    base.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(host as u64 + 1))
}

/// Everything a finished rack run reports.
#[derive(Debug, Clone)]
pub struct RackReport {
    /// The scenario's host count.
    pub hosts: u8,
    /// Guests per host.
    pub guests: u16,
    /// Workload name.
    pub workload: &'static str,
    /// Base seed the scenario ran at.
    pub seed: u64,
    /// Epoch (lookahead window) length in nanoseconds.
    pub epoch_ns: u64,
    /// Number of epoch barriers crossed.
    pub epochs: u64,
    /// Per-host reports, host 0 first — each the same computation a
    /// standalone [`cdna_system::run_experiment`] would produce.
    pub per_host: Vec<RunReport>,
    /// Switch counters for the whole run.
    pub switch: SwitchStats,
}

impl RackReport {
    /// Sum of per-host goodput.
    pub fn aggregate_mbps(&self) -> f64 {
        self.per_host.iter().map(|r| r.throughput_mbps).sum()
    }

    /// Sum of per-host simulation events.
    pub fn total_events(&self) -> u64 {
        self.per_host.iter().map(|r| r.events_processed).sum()
    }

    /// Sum of per-host protection faults (0 on a clean run).
    pub fn total_faults(&self) -> u64 {
        self.per_host.iter().map(|r| r.protection_faults).sum()
    }

    /// The full report as deterministic JSON (used byte-for-byte by the
    /// jobs-equivalence differential tests: no floats are formatted
    /// differently across worker counts because the values themselves
    /// are identical).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema");
        w.string("cdna-rack/1");
        w.key("hosts");
        w.number_u64(self.hosts as u64);
        w.key("guests_per_host");
        w.number_u64(self.guests as u64);
        w.key("workload");
        w.string(self.workload);
        w.key("seed");
        w.number_u64(self.seed);
        w.key("epoch_ns");
        w.number_u64(self.epoch_ns);
        w.key("epochs");
        w.number_u64(self.epochs);
        w.key("aggregate_mbps");
        w.number_f64(self.aggregate_mbps());
        w.key("total_events");
        w.number_u64(self.total_events());
        w.key("total_faults");
        w.number_u64(self.total_faults());
        w.key("switch");
        w.begin_object();
        w.key("forwarded");
        w.number_u64(self.switch.forwarded);
        w.key("forwarded_bytes");
        w.number_u64(self.switch.forwarded_bytes);
        w.key("dropped_unknown");
        w.number_u64(self.switch.dropped_unknown);
        w.key("learned");
        w.number_u64(self.switch.learned);
        w.end_object();
        w.key("per_host");
        w.begin_array();
        for r in &self.per_host {
            w.begin_object();
            w.key("throughput_mbps");
            w.number_f64(r.throughput_mbps);
            w.key("packets");
            w.number_u64(r.packets);
            w.key("rx_dropped");
            w.number_u64(r.rx_dropped);
            w.key("protection_faults");
            w.number_u64(r.protection_faults);
            w.key("events_processed");
            w.number_u64(r.events_processed);
            w.key("nic_interrupts_per_s");
            w.number_f64(r.nic_interrupts_per_s);
            w.key("domain_switches_per_s");
            w.number_f64(r.domain_switches_per_s);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

/// The rack: every host world wrapped in its own simulation, plus the
/// switch between them.
#[derive(Debug)]
pub struct RackWorld {
    cfg: RackConfig,
    hosts: Vec<Simulation<SystemWorld>>,
    switch: TorSwitch,
}

impl RackWorld {
    /// Builds the rack: N hosts (host `h` seeded by [`host_seed`] and
    /// MAC-namespaced by `h`), the switch pre-loaded with every guest
    /// context MAC, and — for [`RackWorkload::XHost`] — uplinks enabled
    /// and every guest's destination pointed at its ring successor.
    pub fn build(cfg: RackConfig) -> Self {
        let n = cfg.hosts as usize;
        let nics = cfg.nics as usize;
        let mut hosts: Vec<Simulation<SystemWorld>> = (0..cfg.hosts)
            .map(|h| {
                let host_cfg = cfg.host_config(h);
                let queue = host_cfg.queue;
                Simulation::with_queue(SystemWorld::build(host_cfg), queue)
            })
            .collect();

        // The switch knows where every guest context lives: port
        // h * nics + nic. Dynamic learning is kept as well, so the
        // first frame of a flow does not need the preload to exist.
        let mut switch = TorSwitch::new(cfg.switch, n * nics);
        for (h, sim) in hosts.iter().enumerate() {
            let world = sim.world();
            for g in 0..cfg.guests {
                for nic in 0..nics {
                    switch.preload(world.guest_rx_mac(g, nic), h * nics + nic);
                }
            }
        }

        if cfg.workload == RackWorkload::XHost && n > 1 {
            // Collect destination MACs first (immutable pass), then
            // point each host at its ring successor.
            let rx_macs: Vec<Vec<Vec<MacAddr>>> = hosts
                .iter()
                .map(|sim| {
                    (0..cfg.guests)
                        .map(|g| {
                            (0..nics)
                                .map(|nic| sim.world().guest_rx_mac(g, nic))
                                .collect()
                        })
                        .collect()
                })
                .collect();
            for (h, sim) in hosts.iter_mut().enumerate() {
                let world = sim.world_mut();
                world.enable_uplink();
                world.set_remote_dst(rx_macs[(h + 1) % n].clone());
            }
        }

        RackWorld { cfg, hosts, switch }
    }

    /// The scenario this rack was built for.
    pub fn config(&self) -> &RackConfig {
        &self.cfg
    }

    /// Runs the whole rack to the end of the measurement window on
    /// `jobs` workers and assembles the report. Determinism does not
    /// depend on `jobs`.
    pub fn run(self, jobs: usize) -> RackReport {
        self.run_with_host_hook(jobs, |_, _, _| {})
    }

    /// Like [`RackWorld::run`], but invokes `hook(host, round, sim)`
    /// for every host at the start of each epoch round, *before* the
    /// host simulates that epoch. This is the rack-level adversarial
    /// injection seam (`cdna-fuzz`): a persona perturbs one host's
    /// guest-visible interface between epochs while the other hosts
    /// stay untouched — each hook call sees only its own host, so
    /// determinism is still independent of `jobs`.
    pub fn run_with_host_hook<H>(self, jobs: usize, hook: H) -> RackReport
    where
        H: Fn(usize, u64, &mut Simulation<SystemWorld>) + Sync,
    {
        let RackWorld {
            cfg,
            mut hosts,
            mut switch,
        } = self;
        for sim in &mut hosts {
            let primed = sim.world_mut().prime();
            for (t, e) in primed {
                sim.schedule(t, e);
            }
        }

        let end_ns = (cfg.warmup + cfg.measure).as_ns();
        let epoch_ns = cfg.switch.latency.as_ns().max(1);
        let epochs = end_ns.div_ceil(epoch_ns);
        let nics = cfg.nics as usize;

        let hosts = par::run_rounds(
            jobs,
            hosts,
            |round, hosts| {
                if round > 0 {
                    // Epoch barrier: drain every uplink, cross the
                    // switch in (departure, src host, capture seq)
                    // order, inject arrivals. All times here are beyond
                    // every host's local clock (see crate docs).
                    let mut crossing: Vec<(SimTime, usize, usize, EgressFrame)> = Vec::new();
                    for (h, sim) in hosts.iter_mut().enumerate() {
                        for (i, ef) in sim.world_mut().drain_egress().into_iter().enumerate() {
                            crossing.push((ef.at, h, i, ef));
                        }
                    }
                    crossing.sort_by_key(|(at, h, i, _)| (*at, *h, *i));
                    for (at, h, _, ef) in crossing {
                        let src_port = h * nics + ef.nic;
                        if let Some((dst_port, deliver)) = switch.forward(at, src_port, &ef.frame) {
                            hosts[dst_port / nics].schedule(
                                deliver,
                                Event::WireRxArrive {
                                    nic: dst_port % nics,
                                    frame: ef.frame,
                                },
                            );
                        }
                    }
                }
                round < epochs
            },
            |host, round, sim| {
                hook(host, round, sim);
                sim.run_until(SimTime::from_ns(((round + 1) * epoch_ns).min(end_ns)));
            },
        );

        let per_host: Vec<RunReport> = hosts
            .into_iter()
            .map(|sim| {
                let events = sim.events_processed();
                let mut world = sim.into_world();
                report_from_world(&mut world, events, false)
            })
            .collect();

        RackReport {
            hosts: cfg.hosts,
            guests: cfg.guests,
            workload: cfg.workload.name(),
            seed: cfg.seed,
            epoch_ns,
            epochs,
            per_host,
            switch: switch.stats(),
        }
    }
}

/// Builds and runs a rack scenario on `jobs` workers.
pub fn run_rack(cfg: RackConfig, jobs: usize) -> RackReport {
    RackWorld::build(cfg).run(jobs)
}
