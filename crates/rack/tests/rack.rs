//! Differential tests for the rack: worker-count equivalence and the
//! 1-host degeneration to a bare `SystemWorld` run.

use cdna_rack::{run_rack, RackConfig, RackWorkload};
use cdna_sim::SimTime;
use cdna_system::run_experiment;

/// A rack small enough for debug-mode CI but with real cross-host
/// traffic.
fn small_xhost(hosts: u8, guests: u16) -> RackConfig {
    let mut cfg = RackConfig::new(hosts, guests, RackWorkload::XHost)
        .with_seed(7)
        .with_shadow_check();
    cfg.warmup = SimTime::from_ms(8);
    cfg.measure = SimTime::from_ms(40);
    cfg
}

#[test]
fn jobs_one_and_many_are_byte_identical() {
    let a = run_rack(small_xhost(3, 2), 1).to_json();
    let b = run_rack(small_xhost(3, 2), 3).to_json();
    assert_eq!(a, b, "rack report depends on worker count");
}

#[test]
fn cross_host_flows_actually_cross() {
    let r = run_rack(small_xhost(2, 2), 2);
    assert!(r.switch.forwarded > 0, "no frames crossed the switch");
    assert_eq!(r.switch.dropped_unknown, 0, "switch lost frames");
    assert_eq!(r.total_faults(), 0, "protection/shadow faults");
    for (h, host) in r.per_host.iter().enumerate() {
        assert!(
            host.throughput_mbps > 0.0,
            "host {h} moved no measured traffic"
        );
    }
}

#[test]
fn one_host_rack_matches_bare_system_world() {
    let mut rack_cfg = RackConfig::new(1, 2, RackWorkload::TxPeer).with_seed(11);
    rack_cfg.warmup = SimTime::from_ms(4);
    rack_cfg.measure = SimTime::from_ms(12);
    let host_cfg = rack_cfg.host_config(0);

    let rack = run_rack(rack_cfg, 1);
    let bare = run_experiment(host_cfg);

    // Epoch-chunked stepping with nothing injected processes the exact
    // same event sequence as one uninterrupted run: the reports must be
    // byte-identical, not merely close.
    assert_eq!(rack.per_host.len(), 1);
    assert_eq!(rack.per_host[0].to_json(), bare.to_json());
    assert_eq!(rack.switch.forwarded, 0);
}

#[test]
fn rack_scenario_is_reproducible() {
    let a = run_rack(small_xhost(2, 1), 2).to_json();
    let b = run_rack(small_xhost(2, 1), 2).to_json();
    assert_eq!(a, b);
}

/// A scaled-down version of the acceptance scenario (16 hosts x 24
/// guests, cross-host flows, shadow checker on): short window so debug
/// CI stays fast, full release window covered by the `rack` binary and
/// the `rack-smoke` CI job.
#[test]
fn sixteen_hosts_twentyfour_guests_deterministic_and_clean() {
    let mut cfg = RackConfig::new(16, 24, RackWorkload::XHost)
        .with_seed(42)
        .with_shadow_check();
    cfg.warmup = SimTime::from_ms(3);
    cfg.measure = SimTime::from_ms(16);

    let a = run_rack(cfg.clone(), 1);
    let b = run_rack(cfg, 4);
    assert_eq!(a.to_json(), b.to_json(), "16x24 rack depends on jobs");
    assert_eq!(a.total_faults(), 0, "faults on some host");
    assert!(a.switch.forwarded > 0);
    assert_eq!(a.per_host.len(), 16);
}
