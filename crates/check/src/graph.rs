//! The workspace symbol graph and the interprocedural pass framework.
//!
//! [`SymbolGraph`] aggregates every file's [`FileSymbols`] plus the
//! crate-level dependency edges read from manifests. Function calls are
//! resolved *by name within the workspace*: `mem.pin_run(…)` resolves
//! to every workspace `fn pin_run` — imprecise in general, exactly
//! right for this codebase where the protection primitives have unique
//! names. Passes ([`Pass`]) run over the whole graph and return
//! ordinary [`Diagnostic`]s, so their findings flow through the same
//! allow/report machinery as the token rules.

use crate::parse::{FileSymbols, FnSym};
use crate::rules::{Diagnostic, FileKind};
use std::collections::{BTreeMap, BTreeSet};

/// One scanned file: its symbols plus the classification and test-line
/// set the passes need for exemptions.
#[derive(Debug, Clone)]
pub struct GraphFile {
    /// Parsed symbol summary (path, uses, fns, matches).
    pub symbols: FileSymbols,
    /// How the file is classified (library / test / binary).
    pub kind: FileKind,
    /// Lines occupied by `#[cfg(test)]` / `#[test]` items.
    pub test_lines: BTreeSet<u32>,
    /// String-literal contents by line (see [`crate::lexer::Scrubbed`]);
    /// lets passes resolve the JSON key a `w.key("…")` call names.
    pub strings: Vec<(u32, String)>,
}

impl GraphFile {
    /// First string literal opening on `line`, if any — the resolution
    /// rule for single-argument calls like `w.key("wall_ms")` in this
    /// one-statement-per-line codebase.
    pub fn string_on_line(&self, line: u32) -> Option<&str> {
        self.strings
            .iter()
            .find(|(l, _)| *l == line)
            .map(|(_, s)| s.as_str())
    }
}

/// A crate-level dependency edge harvested from a `Cargo.toml`.
#[derive(Debug, Clone)]
pub struct ManifestDep {
    /// Depending crate's key (e.g. `system`).
    pub from: String,
    /// Depended-on crate's key (e.g. `sim`).
    pub to: String,
    /// Repo-relative manifest path.
    pub file: String,
    /// 1-based line of the dependency entry.
    pub line: u32,
}

/// The whole-workspace symbol graph.
#[derive(Debug, Clone, Default)]
pub struct SymbolGraph {
    /// Every scanned source file.
    pub files: Vec<GraphFile>,
    /// Crate dependency edges from manifests.
    pub manifest_deps: Vec<ManifestDep>,
    /// fn name → (file index, fn index) for name resolution.
    fn_index: BTreeMap<String, Vec<(usize, usize)>>,
}

impl SymbolGraph {
    /// Builds the graph and the name-resolution index.
    pub fn build(files: Vec<GraphFile>, manifest_deps: Vec<ManifestDep>) -> Self {
        let mut fn_index: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (gi, g) in f.symbols.fns.iter().enumerate() {
                fn_index.entry(g.name.clone()).or_default().push((fi, gi));
            }
        }
        SymbolGraph {
            files,
            manifest_deps,
            fn_index,
        }
    }

    /// Workspace functions with the given name (name resolution).
    pub fn fns_named(&self, name: &str) -> impl Iterator<Item = (&GraphFile, &FnSym)> {
        self.fn_index
            .get(name)
            .into_iter()
            .flatten()
            .map(|&(fi, gi)| (&self.files[fi], &self.files[fi].symbols.fns[gi]))
    }

    /// Whether a workspace `fn` with this name is defined in one of the
    /// given crates. Used to keep name resolution honest: a call token
    /// only counts as hitting a protection primitive if that primitive
    /// actually exists where the rule says it lives.
    pub fn defines_fn_in(&self, name: &str, crates: &[&str]) -> bool {
        self.fns_named(name).any(|(f, _)| {
            f.symbols
                .crate_key
                .as_deref()
                .map(|k| crates.contains(&k))
                .unwrap_or(false)
        })
    }

    /// Total number of resolved call edges (call sites whose name
    /// matches at least one workspace `fn`), for report statistics.
    pub fn call_edge_count(&self) -> usize {
        self.files
            .iter()
            .flat_map(|f| &f.symbols.fns)
            .flat_map(|f| &f.calls)
            .filter(|c| self.fn_index.contains_key(&c.callee))
            .count()
    }
}

/// One interprocedural analysis over the symbol graph.
pub trait Pass {
    /// The stable rule name diagnostics are reported under.
    fn rule(&self) -> &'static str;
    /// Runs the pass and returns its findings (unsuppressed; the caller
    /// applies per-file allows).
    fn run(&self, graph: &SymbolGraph) -> Vec<Diagnostic>;
}

/// Runs every registered pass over the graph.
pub fn run_passes(graph: &SymbolGraph, passes: &[&dyn Pass]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for p in passes {
        out.extend(p.run(graph));
    }
    out
}
