//! `DmaShadow` — the dynamic half of cdna-check.
//!
//! The CDNA protection path (`cdna-core`'s `ProtectionEngine` over
//! `cdna-mem`'s `PhysMem`) *claims* a set of invariants: every DMA
//! buffer is ownership-validated and pinned before the NIC sees it,
//! pins outlive the DMA, frees are deferred while pins remain, and
//! per-context sequence numbers advance without replay or gaps. The
//! shadow checker mirrors every page through an explicit
//!
//! ```text
//! Free → Owned → Pinned → InFlight → Completed (→ Owned → Free)
//! ```
//!
//! state machine and every context's sequence stream, fed by the same
//! events the real path processes — so any divergence between what the
//! engine did and what the invariants allow surfaces as a
//! [`ShadowViolation`] instead of silent corruption.
//!
//! The shadow is deliberately independent: it keeps its own
//! `BTreeMap`-backed mirror rather than querying `PhysMem`, and the
//! periodic [`DmaShadow::audit_mem`] / [`DmaShadow::audit_pinned`]
//! passes cross-check mirror against reality.

use cdna_core::ContextId;
use cdna_mem::{DomainId, PageId, PhysMem};
use std::collections::BTreeMap;

/// Which half of a context's DMA stream a sequence number belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShadowDir {
    /// Guest→wire transmit stream.
    Tx,
    /// Wire→guest receive stream.
    Rx,
}

impl ShadowDir {
    /// Short stream name for trace events and reports.
    pub fn name(self) -> &'static str {
        match self {
            ShadowDir::Tx => "tx",
            ShadowDir::Rx => "rx",
        }
    }
}

/// The lifecycle position of a mirrored page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShadowState {
    /// No owner: on the free list.
    Free,
    /// Owned by a domain, no pins.
    Owned,
    /// Pinned for DMA but not yet handed to the device.
    Pinned,
    /// At least one DMA referencing the page is outstanding.
    InFlight,
    /// DMA completed; pins not yet dropped (awaiting lazy reap).
    Completed,
}

/// A DMA-invariant violation detected by the shadow checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// A pin was requested for a page already handed to the device.
    DoublePin,
    /// An unpin arrived with zero shadow pins outstanding.
    UnpinUnderflow,
    /// A free took effect while DMA was still outstanding.
    FreeWhileInFlight,
    /// Ownership transferred while the page was pinned or in flight.
    OwnershipChangeUnderPin,
    /// DMA started on a page with no shadow pin.
    DmaWithoutPin,
    /// A pin was requested for an unowned (free) page.
    PinWithoutOwner,
    /// A sequence number was re-observed (stale descriptor replay).
    SequenceReplay {
        /// The next sequence number the shadow expected.
        expected: u32,
        /// The stale number actually observed.
        found: u32,
    },
    /// One or more sequence numbers were skipped.
    SequenceGap {
        /// The next sequence number the shadow expected.
        expected: u32,
        /// The number actually observed (ahead of expected).
        found: u32,
    },
    /// An audit found the mirror and the real state disagreeing.
    MirrorDivergence {
        /// What diverged, rendered for the report.
        detail: String,
    },
}

impl ViolationKind {
    /// Stable numeric code for embedding in a `FaultKind`.
    pub fn code(&self) -> u32 {
        match self {
            ViolationKind::DoublePin => 1,
            ViolationKind::UnpinUnderflow => 2,
            ViolationKind::FreeWhileInFlight => 3,
            ViolationKind::OwnershipChangeUnderPin => 4,
            ViolationKind::DmaWithoutPin => 5,
            ViolationKind::PinWithoutOwner => 6,
            ViolationKind::SequenceReplay { .. } => 7,
            ViolationKind::SequenceGap { .. } => 8,
            ViolationKind::MirrorDivergence { .. } => 9,
        }
    }

    /// Stable kebab-case name for reports and trace events.
    pub fn name(&self) -> &'static str {
        match self {
            ViolationKind::DoublePin => "double-pin",
            ViolationKind::UnpinUnderflow => "unpin-underflow",
            ViolationKind::FreeWhileInFlight => "free-while-in-flight",
            ViolationKind::OwnershipChangeUnderPin => "ownership-change-under-pin",
            ViolationKind::DmaWithoutPin => "dma-without-pin",
            ViolationKind::PinWithoutOwner => "pin-without-owner",
            ViolationKind::SequenceReplay { .. } => "sequence-replay",
            ViolationKind::SequenceGap { .. } => "sequence-gap",
            ViolationKind::MirrorDivergence { .. } => "mirror-divergence",
        }
    }
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViolationKind::SequenceReplay { expected, found } => {
                write!(f, "sequence-replay (expected {expected}, found {found})")
            }
            ViolationKind::SequenceGap { expected, found } => {
                write!(f, "sequence-gap (expected {expected}, found {found})")
            }
            ViolationKind::MirrorDivergence { detail } => {
                write!(f, "mirror-divergence: {detail}")
            }
            // Deliberately exhaustive (no `_`): a new violation class
            // must decide its own rendering (see the exhaustive-fault
            // rule).
            ViolationKind::DoublePin
            | ViolationKind::UnpinUnderflow
            | ViolationKind::FreeWhileInFlight
            | ViolationKind::OwnershipChangeUnderPin
            | ViolationKind::DmaWithoutPin
            | ViolationKind::PinWithoutOwner => f.write_str(self.name()),
        }
    }
}

/// One recorded violation with its attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShadowViolation {
    /// The context involved, when the event carried one.
    pub ctx: Option<ContextId>,
    /// The page involved, when the event carried one.
    pub page: Option<PageId>,
    /// What went wrong.
    pub kind: ViolationKind,
}

impl std::fmt::Display for ShadowViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shadow violation: {}", self.kind)?;
        if let Some(ctx) = self.ctx {
            write!(f, " ctx={}", ctx.0)?;
        }
        if let Some(page) = self.page {
            write!(f, " page={}", page.0)?;
        }
        Ok(())
    }
}

/// Mirror of one page's protection-relevant state.
#[derive(Debug, Clone, Default)]
struct PageMirror {
    owner: Option<DomainId>,
    pins: u32,
    inflight: u32,
    /// Whether at least one DMA has completed since the last unpin —
    /// distinguishes `Completed` from plain `Pinned` for state reports.
    completed: bool,
    /// Owner freed the page while pinned: the free takes effect when the
    /// last pin drops (mirrors `PhysMem`'s deferred free).
    pending_free: bool,
}

/// Per-(context, direction) expected-sequence tracker.
#[derive(Debug, Clone)]
struct SeqShadow {
    expected: u32,
    modulus: u32,
    observed: u64,
    /// Set by [`DmaShadow::reset_seq_on`]: the next observation reseeds
    /// the expectation instead of being checked against it.
    reseed: bool,
}

/// Appends a violation; free function so event handlers can record
/// while holding a mutable borrow of the page mirror map.
fn record(
    violations: &mut Vec<ShadowViolation>,
    ctx: Option<ContextId>,
    page: Option<PageId>,
    kind: ViolationKind,
) {
    violations.push(ShadowViolation { ctx, page, kind });
}

/// The shadow checker. See the module docs for the model.
///
/// All storage is `BTreeMap`-backed so violation reports iterate in
/// deterministic order regardless of event arrival interleaving.
#[derive(Debug, Default)]
pub struct DmaShadow {
    pages: BTreeMap<PageId, PageMirror>,
    seqs: BTreeMap<(u16, u8, ShadowDir), SeqShadow>,
    violations: Vec<ShadowViolation>,
    events: u64,
}

impl DmaShadow {
    /// Creates an empty shadow; pages are tracked lazily on first event.
    pub fn new() -> Self {
        Self::default()
    }

    /// The lifecycle state the mirror currently assigns to `page`.
    pub fn state(&self, page: PageId) -> ShadowState {
        match self.pages.get(&page) {
            None => ShadowState::Free,
            Some(m) if m.owner.is_none() => ShadowState::Free,
            Some(m) if m.inflight > 0 => ShadowState::InFlight,
            Some(m) if m.pins > 0 && m.completed => ShadowState::Completed,
            Some(m) if m.pins > 0 => ShadowState::Pinned,
            Some(_) => ShadowState::Owned,
        }
    }

    /// All violations recorded so far, in event order.
    pub fn violations(&self) -> &[ShadowViolation] {
        &self.violations
    }

    /// Drains and returns the recorded violations.
    pub fn take_violations(&mut self) -> Vec<ShadowViolation> {
        std::mem::take(&mut self.violations)
    }

    /// Number of events the shadow has processed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Number of pages the mirror currently tracks.
    pub fn pages_tracked(&self) -> usize {
        self.pages.len()
    }

    /// The owner the mirror currently records for `page`, if tracked.
    pub fn owner(&self, page: PageId) -> Option<DomainId> {
        self.pages.get(&page).and_then(|m| m.owner)
    }

    /// A page left the free list with `owner`.
    pub fn on_alloc(&mut self, owner: DomainId, page: PageId) {
        self.events += 1;
        let m = self.pages.entry(page).or_default();
        if m.owner.is_some() {
            let detail = format!("alloc of page {} already owned by {:?}", page.0, m.owner);
            record(
                &mut self.violations,
                None,
                Some(page),
                ViolationKind::MirrorDivergence { detail },
            );
        }
        *self.pages.entry(page).or_default() = PageMirror {
            owner: Some(owner),
            ..PageMirror::default()
        };
    }

    /// The owner asked to free `page`. Mirrors `PhysMem::free`'s
    /// semantics: a free under pins is legal but *deferred*; the shadow
    /// flags it only if DMA is outstanding (the dangerous case) and
    /// otherwise arms `pending_free`.
    pub fn on_free(&mut self, owner: DomainId, page: PageId) {
        self.events += 1;
        let Some(m) = self.pages.get_mut(&page) else {
            let detail = format!("free of untracked page {}", page.0);
            record(
                &mut self.violations,
                None,
                Some(page),
                ViolationKind::MirrorDivergence { detail },
            );
            return;
        };
        if m.owner != Some(owner) {
            let detail = format!(
                "free of page {} by {owner} but mirror owner is {:?}",
                page.0, m.owner
            );
            record(
                &mut self.violations,
                None,
                Some(page),
                ViolationKind::MirrorDivergence { detail },
            );
        }
        if m.inflight > 0 {
            record(
                &mut self.violations,
                None,
                Some(page),
                ViolationKind::FreeWhileInFlight,
            );
            return;
        }
        if m.pins > 0 {
            m.pending_free = true; // deferred free: completes at last unpin
        } else {
            self.pages.remove(&page);
        }
    }

    /// Ownership of `page` moved from `from` to `to` (page flip / grant
    /// transfer). Illegal while pinned or in flight.
    pub fn on_transfer(&mut self, page: PageId, from: DomainId, to: DomainId) {
        self.events += 1;
        let m = self.pages.entry(page).or_default();
        if m.pins > 0 || m.inflight > 0 {
            record(
                &mut self.violations,
                None,
                Some(page),
                ViolationKind::OwnershipChangeUnderPin,
            );
        }
        if m.owner.is_some() && m.owner != Some(from) {
            let detail = format!(
                "transfer of page {} from {from} but mirror owner is {:?}",
                page.0, m.owner
            );
            record(
                &mut self.violations,
                None,
                Some(page),
                ViolationKind::MirrorDivergence { detail },
            );
        }
        m.owner = Some(to);
    }

    /// The protection path pinned `page` for an upcoming DMA.
    pub fn on_pin(&mut self, page: PageId) {
        self.events += 1;
        let m = self.pages.entry(page).or_default();
        if m.owner.is_none() {
            record(
                &mut self.violations,
                None,
                Some(page),
                ViolationKind::PinWithoutOwner,
            );
        }
        if m.inflight > 0 {
            // Pinning a page already handed to the device means the same
            // buffer was validated twice without an intervening reap.
            record(
                &mut self.violations,
                None,
                Some(page),
                ViolationKind::DoublePin,
            );
        }
        m.pins += 1;
        m.completed = false;
    }

    /// The protection path dropped one pin of `page`.
    pub fn on_unpin(&mut self, page: PageId) {
        self.events += 1;
        let Some(m) = self.pages.get_mut(&page) else {
            record(
                &mut self.violations,
                None,
                Some(page),
                ViolationKind::UnpinUnderflow,
            );
            return;
        };
        if m.pins == 0 {
            record(
                &mut self.violations,
                None,
                Some(page),
                ViolationKind::UnpinUnderflow,
            );
            return;
        }
        m.pins -= 1;
        if m.pins == 0 {
            m.completed = false;
            if m.pending_free {
                self.pages.remove(&page); // deferred free completes
            }
        }
    }

    /// A DMA referencing `page` was handed to the device on behalf of
    /// `ctx`.
    pub fn on_dma_start(&mut self, ctx: ContextId, page: PageId) {
        self.events += 1;
        let m = self.pages.entry(page).or_default();
        if m.pins == 0 {
            record(
                &mut self.violations,
                Some(ctx),
                Some(page),
                ViolationKind::DmaWithoutPin,
            );
        }
        m.inflight += 1;
    }

    /// The DMA referencing `page` completed (device is done; pins remain
    /// until the lazy reap unpins).
    pub fn on_dma_complete(&mut self, ctx: ContextId, page: PageId) {
        self.events += 1;
        let m = self.pages.entry(page).or_default();
        if m.inflight == 0 {
            let detail = format!("completion for page {} with no in-flight DMA", page.0);
            record(
                &mut self.violations,
                Some(ctx),
                Some(page),
                ViolationKind::MirrorDivergence { detail },
            );
            return;
        }
        m.inflight -= 1;
        if m.inflight == 0 {
            m.completed = true;
        }
    }

    /// Observes the next sequence number stamped (or checked) on a
    /// context's stream. The first observation per (ctx, dir) seeds the
    /// expectation; after that each number must be exactly `expected`.
    ///
    /// Replay vs gap is discriminated by the modular distance: a number
    /// more than half the modulus *behind* the expectation is a replayed
    /// stale descriptor; anything else ahead is a gap. After a gap the
    /// shadow resynchronises to avoid cascading reports.
    pub fn observe_seq(&mut self, ctx: ContextId, dir: ShadowDir, seq: u32, modulus: u32) {
        self.observe_seq_on(0, ctx, dir, seq, modulus);
    }

    /// Like [`DmaShadow::observe_seq`], but for a specific device:
    /// context ids are per NIC, so when the same id exists on several
    /// NICs their streams must not share an expectation.
    pub fn observe_seq_on(
        &mut self,
        nic: u16,
        ctx: ContextId,
        dir: ShadowDir,
        seq: u32,
        modulus: u32,
    ) {
        self.events += 1;
        let modulus = modulus.max(2);
        let entry = self.seqs.entry((nic, ctx.0, dir)).or_insert(SeqShadow {
            expected: seq % modulus,
            modulus,
            observed: 0,
            reseed: false,
        });
        entry.observed += 1;
        if entry.reseed {
            entry.reseed = false;
            entry.expected = seq % entry.modulus;
        }
        let expected = entry.expected;
        let m = entry.modulus;
        if seq % m == expected {
            entry.expected = (expected + 1) % m;
            return;
        }
        let d = (seq % m + m - expected) % m;
        if d > m / 2 {
            record(
                &mut self.violations,
                Some(ctx),
                None,
                ViolationKind::SequenceReplay {
                    expected,
                    found: seq % m,
                },
            );
            // Keep the expectation: a replay does not advance the stream.
        } else {
            record(
                &mut self.violations,
                Some(ctx),
                None,
                ViolationKind::SequenceGap {
                    expected,
                    found: seq % m,
                },
            );
            entry.expected = (seq % m + 1) % m; // resync past the gap
        }
    }

    /// Forgets one stream's expectation; the next observation reseeds
    /// it without being checked. For auditors that *sample* a stream
    /// and know they missed a window (e.g. a descriptor ring that
    /// wrapped between audit passes) — continuity across the hole
    /// cannot be judged, and reporting it as a gap would be a false
    /// positive.
    pub fn reset_seq_on(&mut self, nic: u16, ctx: ContextId, dir: ShadowDir) {
        if let Some(entry) = self.seqs.get_mut(&(nic, ctx.0, dir)) {
            entry.reseed = true;
        }
    }

    /// Sequence numbers observed on a context's stream so far, summed
    /// across devices.
    pub fn seq_observed(&self, ctx: ContextId, dir: ShadowDir) -> u64 {
        self.seqs
            .iter()
            .filter(|((_, c, d), _)| *c == ctx.0 && *d == dir)
            .map(|(_, s)| s.observed)
            .sum()
    }

    /// Cross-checks the mirror against the real `PhysMem`: every tracked
    /// page's owner and pin count must match, and `PhysMem`'s aggregate
    /// outstanding-pin count must equal the mirror's. Divergences are
    /// recorded and the number found is returned.
    pub fn audit_mem(&mut self, mem: &PhysMem) -> usize {
        let before = self.violations.len();
        let mut mirror_pins: u64 = 0;
        let mut divergences: Vec<(PageId, String)> = Vec::new();
        for (&page, m) in &self.pages {
            mirror_pins += u64::from(m.pins);
            match mem.info(page) {
                Ok(real) => {
                    // A pending-free page shows as owner-less divergence
                    // candidates; PhysMem keeps the owner until the free
                    // completes, and so does the mirror.
                    if real.owner != m.owner {
                        divergences.push((
                            page,
                            format!(
                                "page {} owner: mirror {:?}, pool {:?}",
                                page.0, m.owner, real.owner
                            ),
                        ));
                    }
                    if real.pins != m.pins {
                        divergences.push((
                            page,
                            format!(
                                "page {} pins: mirror {}, pool {}",
                                page.0, m.pins, real.pins
                            ),
                        ));
                    }
                }
                Err(e) => divergences.push((page, format!("page {}: {e}", page.0))),
            }
        }
        if mem.outstanding_pins() != mirror_pins {
            divergences.push((
                PageId(0),
                format!(
                    "aggregate pins: mirror {mirror_pins}, pool {}",
                    mem.outstanding_pins()
                ),
            ));
        }
        for (page, detail) in divergences {
            record(
                &mut self.violations,
                None,
                Some(page),
                ViolationKind::MirrorDivergence { detail },
            );
        }
        self.violations.len() - before
    }

    /// Cross-checks one context's engine-side pinned list (sequence
    /// number + first page of each pinned buffer) against the mirror:
    /// every engine-pinned page must be pinned in the mirror too.
    /// Returns the number of divergences recorded.
    pub fn audit_pinned(&mut self, ctx: ContextId, pinned_pages: &[PageId]) -> usize {
        let before = self.violations.len();
        for &page in pinned_pages {
            let ok = self.pages.get(&page).map(|m| m.pins > 0).unwrap_or(false);
            if !ok {
                let detail = format!(
                    "engine holds page {} pinned for ctx {} but mirror shows no pin",
                    page.0, ctx.0
                );
                record(
                    &mut self.violations,
                    Some(ctx),
                    Some(page),
                    ViolationKind::MirrorDivergence { detail },
                );
            }
        }
        self.violations.len() - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(n: u8) -> ContextId {
        ContextId(n)
    }

    fn guest() -> DomainId {
        DomainId::guest(0)
    }

    #[test]
    fn clean_lifecycle_no_violations() {
        let mut s = DmaShadow::new();
        let p = PageId(7);
        s.on_alloc(guest(), p);
        assert_eq!(s.state(p), ShadowState::Owned);
        s.on_pin(p);
        assert_eq!(s.state(p), ShadowState::Pinned);
        s.on_dma_start(ctx(1), p);
        assert_eq!(s.state(p), ShadowState::InFlight);
        s.on_dma_complete(ctx(1), p);
        assert_eq!(s.state(p), ShadowState::Completed);
        s.on_unpin(p);
        assert_eq!(s.state(p), ShadowState::Owned);
        s.on_free(guest(), p);
        assert_eq!(s.state(p), ShadowState::Free);
        assert!(s.violations().is_empty());
        assert_eq!(s.events(), 6);
    }

    #[test]
    fn double_pin_detected() {
        let mut s = DmaShadow::new();
        let p = PageId(1);
        s.on_alloc(guest(), p);
        s.on_pin(p);
        s.on_dma_start(ctx(0), p);
        s.on_pin(p); // re-validated while in flight
        assert_eq!(s.violations().len(), 1);
        assert_eq!(s.violations()[0].kind, ViolationKind::DoublePin);
    }

    #[test]
    fn unpin_underflow_detected() {
        let mut s = DmaShadow::new();
        let p = PageId(2);
        s.on_alloc(guest(), p);
        s.on_unpin(p);
        assert_eq!(s.violations()[0].kind, ViolationKind::UnpinUnderflow);
    }

    #[test]
    fn free_while_in_flight_detected() {
        let mut s = DmaShadow::new();
        let p = PageId(3);
        s.on_alloc(guest(), p);
        s.on_pin(p);
        s.on_dma_start(ctx(0), p);
        s.on_free(guest(), p);
        assert!(s
            .violations()
            .iter()
            .any(|v| v.kind == ViolationKind::FreeWhileInFlight));
    }

    #[test]
    fn deferred_free_is_legal() {
        let mut s = DmaShadow::new();
        let p = PageId(4);
        s.on_alloc(guest(), p);
        s.on_pin(p);
        s.on_free(guest(), p); // deferred, not a violation
        assert!(s.violations().is_empty());
        s.on_unpin(p); // completes the free
        assert_eq!(s.state(p), ShadowState::Free);
        assert!(s.violations().is_empty());
    }

    #[test]
    fn ownership_change_under_pin_detected() {
        let mut s = DmaShadow::new();
        let p = PageId(5);
        s.on_alloc(guest(), p);
        s.on_pin(p);
        s.on_transfer(p, guest(), DomainId::guest(1));
        assert_eq!(
            s.violations()[0].kind,
            ViolationKind::OwnershipChangeUnderPin
        );
    }

    #[test]
    fn dma_without_pin_and_pin_without_owner() {
        let mut s = DmaShadow::new();
        let p = PageId(6);
        s.on_pin(p); // never allocated
        assert_eq!(s.violations()[0].kind, ViolationKind::PinWithoutOwner);
        let mut s = DmaShadow::new();
        s.on_alloc(guest(), p);
        s.on_dma_start(ctx(2), p); // no pin
        assert_eq!(s.violations()[0].kind, ViolationKind::DmaWithoutPin);
    }

    #[test]
    fn sequence_replay_and_gap() {
        let mut s = DmaShadow::new();
        let m = 64;
        s.observe_seq(ctx(0), ShadowDir::Tx, 10, m); // seeds expected = 11
        s.observe_seq(ctx(0), ShadowDir::Tx, 11, m);
        s.observe_seq(ctx(0), ShadowDir::Tx, 10, m); // replay
        assert!(matches!(
            s.violations()[0].kind,
            ViolationKind::SequenceReplay {
                expected: 12,
                found: 10
            }
        ));
        s.observe_seq(ctx(0), ShadowDir::Tx, 15, m); // gap (12..=14 skipped)
        assert!(matches!(
            s.violations()[1].kind,
            ViolationKind::SequenceGap {
                expected: 12,
                found: 15
            }
        ));
        s.observe_seq(ctx(0), ShadowDir::Tx, 16, m); // resynced
        assert_eq!(s.violations().len(), 2);
        assert_eq!(s.seq_observed(ctx(0), ShadowDir::Tx), 5);
    }

    #[test]
    fn sequence_wraps_cleanly() {
        let mut s = DmaShadow::new();
        let m = 8;
        s.observe_seq(ctx(1), ShadowDir::Rx, 6, m);
        s.observe_seq(ctx(1), ShadowDir::Rx, 7, m);
        s.observe_seq(ctx(1), ShadowDir::Rx, 0, m); // wrap
        s.observe_seq(ctx(1), ShadowDir::Rx, 1, m);
        assert!(s.violations().is_empty());
    }

    #[test]
    fn streams_are_independent() {
        let mut s = DmaShadow::new();
        s.observe_seq(ctx(0), ShadowDir::Tx, 0, 16);
        s.observe_seq(ctx(1), ShadowDir::Tx, 9, 16);
        s.observe_seq(ctx(0), ShadowDir::Rx, 3, 16);
        s.observe_seq(ctx(0), ShadowDir::Tx, 1, 16);
        s.observe_seq(ctx(1), ShadowDir::Tx, 10, 16);
        assert!(s.violations().is_empty());
    }

    #[test]
    fn audit_mem_agrees_with_pool() {
        let mut mem = PhysMem::new(16);
        let mut s = DmaShadow::new();
        let Ok(p) = mem.alloc(guest()) else {
            unreachable!("fresh pool")
        };
        s.on_alloc(guest(), p);
        assert!(mem.pin(p).is_ok());
        s.on_pin(p);
        assert_eq!(s.audit_mem(&mem), 0);
        // Now diverge: unpin for real but not in the mirror.
        assert!(mem.unpin(p).is_ok());
        assert!(s.audit_mem(&mem) > 0);
        assert!(matches!(
            s.violations()[0].kind,
            ViolationKind::MirrorDivergence { .. }
        ));
    }

    #[test]
    fn audit_pinned_catches_ghost_pin() {
        let mut s = DmaShadow::new();
        let p = PageId(9);
        // Engine claims p pinned for ctx 0; mirror never saw a pin.
        assert_eq!(s.audit_pinned(ctx(0), &[p]), 1);
        s.on_alloc(guest(), p);
        s.on_pin(p);
        assert_eq!(s.audit_pinned(ctx(0), &[p]), 0);
    }

    #[test]
    fn display_renders_ctx_and_page() {
        let v = ShadowViolation {
            ctx: Some(ctx(3)),
            page: Some(PageId(12)),
            kind: ViolationKind::DoublePin,
        };
        let text = v.to_string();
        assert!(text.contains("double-pin"));
        assert!(text.contains("ctx=3"));
        assert!(text.contains("page=12"));
    }
}
