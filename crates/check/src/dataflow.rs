//! Def-use and call-summary layer over the symbol graph.
//!
//! The v3 analyses ([`crate::taint`], [`crate::locks`]) need more than
//! per-file symbols: they reason about *paths* through the workspace
//! call graph. This module provides the shared substrate:
//!
//! * a filtered node set — library functions outside `#[cfg(test)]`
//!   items, which is the code the dataflow rules apply to;
//! * name-based call resolution restricted to that node set;
//! * a generic monotone fixpoint driver for interprocedural summaries
//!   (`vulnerable(f)` for taint, transitive lock-acquisition sets for
//!   lock-order);
//! * token-walk utilities (statement boundaries, enclosing blocks,
//!   `let` bindings, call-argument regions, local constructor types)
//!   used to approximate def-use facts without a real CFG.
//!
//! Everything stays name-resolved and token-linear — the same
//! deliberate imprecision as the rest of cdna-check, which is exactly
//! right for this workspace where protection primitives have unique
//! names and bodies are written in a disciplined style.

use crate::graph::{GraphFile, SymbolGraph};
use crate::lexer::Token;
use crate::parse::FnSym;
use crate::rules::FileKind;
use std::collections::BTreeMap;

/// The dataflow view of the workspace: analyzed nodes plus resolution.
pub struct Dataflow<'g> {
    /// The underlying symbol graph.
    pub graph: &'g SymbolGraph,
    /// Analyzed nodes as `(file index, fn index)` into the graph:
    /// library files (plus binaries under
    /// [`Dataflow::build_with_binaries`]), `#[cfg(test)]` items
    /// excluded.
    pub nodes: Vec<(usize, usize)>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl<'g> Dataflow<'g> {
    /// Builds the node set and the name index (library files only).
    pub fn build(graph: &'g SymbolGraph) -> Self {
        Self::build_filtered(graph, false)
    }

    /// Like [`Dataflow::build`], but the node set also includes binary
    /// entry points (`main.rs`, `src/bin/*`). The determinism rules
    /// (CDNA014–017) police serialization and merge sites that live in
    /// bench binaries, which the library-only rules deliberately skip.
    pub fn build_with_binaries(graph: &'g SymbolGraph) -> Self {
        Self::build_filtered(graph, true)
    }

    fn build_filtered(graph: &'g SymbolGraph, include_binaries: bool) -> Self {
        let mut nodes = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (fi, file) in graph.files.iter().enumerate() {
            let included = file.kind == FileKind::Library
                || (include_binaries && file.kind == FileKind::Binary);
            if !included {
                continue;
            }
            for (gi, f) in file.symbols.fns.iter().enumerate() {
                if file.test_lines.contains(&f.line) {
                    continue;
                }
                by_name.entry(f.name.clone()).or_default().push(nodes.len());
                nodes.push((fi, gi));
            }
        }
        Dataflow {
            graph,
            nodes,
            by_name,
        }
    }

    /// The file a node lives in.
    pub fn file(&self, n: usize) -> &GraphFile {
        &self.graph.files[self.nodes[n].0]
    }

    /// The function a node denotes.
    pub fn func(&self, n: usize) -> &FnSym {
        let (fi, gi) = self.nodes[n];
        &self.graph.files[fi].symbols.fns[gi]
    }

    /// The crate key a node lives in (`""` if outside the workspace).
    pub fn crate_key(&self, n: usize) -> &str {
        self.file(n).symbols.crate_key.as_deref().unwrap_or("")
    }

    /// Analyzed nodes a call with this name resolves to.
    pub fn targets(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether a designation `(name, home crates)` is armed: resolution
    /// stays honest by only counting names actually defined where the
    /// rule says the primitive lives.
    pub fn armed(&self, name: &str, crates: &[&str]) -> bool {
        self.graph.defines_fn_in(name, crates)
    }

    /// Monotone fixpoint over per-node summaries: starts from `init`,
    /// re-runs `step` (which may read every node's current summary)
    /// until nothing changes. `step` must be monotone for termination;
    /// a generous iteration cap backstops it either way.
    pub fn fixpoint<S, I, F>(&self, init: I, mut step: F) -> Vec<S>
    where
        S: PartialEq,
        I: Fn(usize) -> S,
        F: FnMut(&Dataflow<'g>, &[S], usize) -> S,
    {
        let mut state: Vec<S> = (0..self.nodes.len()).map(init).collect();
        for _ in 0..self.nodes.len() + 1 {
            let mut changed = false;
            for n in 0..self.nodes.len() {
                let next = step(self, &state, n);
                if next != state[n] {
                    state[n] = next;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        state
    }
}

/// Index of the first token of the statement containing `pos`: the
/// token right after the nearest preceding `;`, `{` or `}`.
pub fn statement_start(body: &[Token], pos: usize) -> usize {
    let mut i = pos;
    while i > 0 {
        match body[i - 1].text.as_str() {
            ";" | "{" | "}" => return i,
            _ => i -= 1,
        }
    }
    0
}

/// Index just past the enclosing block of `pos`: the `}` that drops the
/// brace depth below the level at `pos` (or `body.len()`).
pub fn enclosing_block_end(body: &[Token], pos: usize) -> usize {
    let mut depth = 0i32;
    let mut i = pos;
    while i < body.len() {
        match body[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    body.len()
}

/// End of the temporary-lifetime region starting at `pos`: a temporary
/// guard (no `let`) lives to the end of its statement — the next `;` or
/// block brace at bracket depth 0.
pub fn temporary_end(body: &[Token], pos: usize) -> usize {
    let mut par = 0i32;
    let mut i = pos;
    while i < body.len() {
        match body[i].text.as_str() {
            "(" | "[" => par += 1,
            ")" | "]" => {
                par -= 1;
                if par < 0 {
                    return i; // statement ended inside an outer call
                }
            }
            ";" | "{" | "}" if par == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    body.len()
}

/// If the statement starting at `stmt` is a `let` binding, its bound
/// name (skipping `mut`).
pub fn let_binding(body: &[Token], stmt: usize) -> Option<String> {
    if body.get(stmt)?.text != "let" {
        return None;
    }
    let mut i = stmt + 1;
    if body.get(i)?.text == "mut" {
        i += 1;
    }
    body.get(i).filter(|t| t.is_ident).map(|t| t.text.clone())
}

/// The token range strictly inside the parentheses of the call whose
/// callee token is at `call_pos` (usually `call_pos + 1` is the `(`; a
/// turbofish like `sum::<f64>(…)` is tolerated by skipping to the
/// opening paren).
pub fn arg_region(body: &[Token], call_pos: usize) -> (usize, usize) {
    let mut open = call_pos + 1;
    while open < body.len() && body[open].text != "(" {
        if body[open].text == ";" {
            return (open, open); // statement ends with no call parens
        }
        open += 1;
    }
    let mut par = 0i32;
    let mut i = open;
    while i < body.len() {
        match body[i].text.as_str() {
            "(" => par += 1,
            ")" => {
                par -= 1;
                if par == 0 {
                    return (open + 1, i);
                }
            }
            _ => {}
        }
        i += 1;
    }
    (open + 1, body.len())
}

/// Local `let` constructor types: `let q = Type::ctor(..)`,
/// `let q: Type = ..` and `let q = Type { .. }` all map `q → Type`.
/// Only uppercase-initial type names count (path heads like `std` or
/// locals never start a type in this codebase's style).
pub fn local_types(body: &[Token]) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for (i, t) in body.iter().enumerate() {
        if !(t.is_ident && t.text == "let") {
            continue;
        }
        let mut j = i + 1;
        if body.get(j).map(|t| t.text.as_str()) == Some("mut") {
            j += 1;
        }
        let Some(name) = body.get(j).filter(|t| t.is_ident) else {
            continue;
        };
        let name = name.text.clone();
        // Scan the rest of the statement for the first uppercase-headed
        // type name: works for ascriptions and constructor calls alike.
        let stop = body[j..]
            .iter()
            .position(|t| t.text == ";")
            .map(|p| j + p)
            .unwrap_or(body.len());
        if let Some(c) = body[j + 1..stop]
            .iter()
            .find(|c| c.is_ident && c.text.starts_with(|ch: char| ch.is_ascii_uppercase()))
        {
            out.insert(name, c.text.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{scrub, tokenize};

    fn toks(src: &str) -> Vec<Token> {
        tokenize(&scrub(src).masked)
    }

    #[test]
    fn statement_and_block_boundaries() {
        let b = toks("a(); let x = b(); { c(); } d();");
        // Find token index of `b`.
        let bp = b.iter().position(|t| t.text == "b").unwrap();
        assert_eq!(b[statement_start(&b, bp)].text, "let");
        let cp = b.iter().position(|t| t.text == "c").unwrap();
        assert_eq!(b[enclosing_block_end(&b, cp)].text, "}");
        assert_eq!(enclosing_block_end(&b, bp), b.len());
    }

    #[test]
    fn let_bindings_and_temporaries() {
        let b = toks("let mut guard = lock(&m); use_it(); drop(guard);");
        let lp = b.iter().position(|t| t.text == "lock").unwrap();
        let st = statement_start(&b, lp);
        assert_eq!(let_binding(&b, st).as_deref(), Some("guard"));
        let b2 = toks("lock(&m).push(1); after();");
        let lp2 = b2.iter().position(|t| t.text == "lock").unwrap();
        assert_eq!(b2[temporary_end(&b2, lp2)].text, ";");
        assert_eq!(let_binding(&b2, statement_start(&b2, lp2)), None);
    }

    #[test]
    fn temporary_inside_outer_call_ends_at_outer_paren() {
        let b = toks("f(lock(&m).get(), x); after();");
        let lp = b.iter().position(|t| t.text == "lock").unwrap();
        let end = temporary_end(&b, lp);
        // Ends no later than the statement's `;`.
        let semi = b.iter().position(|t| t.text == ";").unwrap();
        assert!(end <= semi, "end={end} semi={semi}");
    }

    #[test]
    fn arg_regions_and_local_types() {
        let b = toks(
            "let q = PermutationQueue::with_window(a, 3); sim.with_event_queue(w, Box::new(q));",
        );
        let types = local_types(&b);
        assert_eq!(types.get("q").map(String::as_str), Some("PermutationQueue"));
        let cp = b.iter().position(|t| t.text == "with_event_queue").unwrap();
        let (s, e) = arg_region(&b, cp);
        let idents: Vec<&str> = b[s..e]
            .iter()
            .filter(|t| t.is_ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["w", "Box", "new", "q"]);
    }
}
