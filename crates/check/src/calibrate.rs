//! Seeded-violation calibration: proves the dataflow rules actually
//! fire.
//!
//! A static analysis that never fires is indistinguishable from one
//! that is broken, so every dataflow rule — the taint/lock passes
//! (CDNA011–013) and the determinism-soundness passes (CDNA014–017) —
//! ships with a seeded-violation fixture under
//! `crates/check/tests/corpus/` (a directory the repository walker
//! exempts from the real scan). Each fixture is one
//! physical file describing a *virtual multi-file workspace* plus the
//! exact diagnostics it must produce:
//!
//! ```text
//! // cdna-expect: guest-taint crates/xen/src/driver.rs:4
//! // cdna-fixture-file: crates/mem/src/pool.rs
//! pub fn validate_run() {}
//! // cdna-fixture-file: crates/xen/src/driver.rs
//! pub fn flush() { … }
//! ```
//!
//! `cdna-expect` lines must precede the first `cdna-fixture-file`
//! marker (so virtual line numbers stay honest); each marker starts a
//! virtual file whose line 1 is the line after the marker. The
//! calibration harness runs [`analyze`] over the virtual workspace and
//! demands the diagnostic set matches the expectations *exactly* —
//! missing and unexpected findings both fail. It runs in `cargo test`
//! (tier-1) and as `cdna-check --calibrate` in CI, mirroring
//! cdna-model's mutation-calibration gate.

use crate::analyses::{analyze, SourceFile};
use crate::rules::FileKind;
use std::path::Path;

/// One parsed fixture: a virtual workspace plus expected diagnostics.
#[derive(Debug, Default)]
pub struct Fixture {
    /// Virtual files as `(repo-relative path, text)`.
    pub files: Vec<(String, String)>,
    /// Expected diagnostics as `(rule, file, line)`.
    pub expects: Vec<(String, String, u32)>,
}

/// Parses a fixture file. See the module docs for the format.
pub fn parse_fixture(text: &str) -> Result<Fixture, String> {
    let mut fx = Fixture::default();
    let mut current: Option<(String, String)> = None;
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if let Some(rest) = trimmed.strip_prefix("// cdna-fixture-file:") {
            if let Some(done) = current.take() {
                fx.files.push(done);
            }
            current = Some((rest.trim().to_string(), String::new()));
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("// cdna-expect:") {
            if current.is_some() {
                return Err(format!(
                    "line {}: cdna-expect must precede the first fixture file",
                    i + 1
                ));
            }
            let rest = rest.trim();
            let (rule, loc) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {}: malformed cdna-expect", i + 1))?;
            let (file, ln) = loc
                .rsplit_once(':')
                .ok_or_else(|| format!("line {}: cdna-expect needs file:line", i + 1))?;
            let ln: u32 = ln
                .parse()
                .map_err(|e| format!("line {}: bad line number: {e}", i + 1))?;
            fx.expects.push((rule.to_string(), file.to_string(), ln));
            continue;
        }
        if let Some((_, body)) = current.as_mut() {
            body.push_str(line);
            body.push('\n');
        } else if !trimmed.is_empty() {
            return Err(format!(
                "line {}: content before the first cdna-fixture-file marker",
                i + 1
            ));
        }
    }
    if let Some(done) = current.take() {
        fx.files.push(done);
    }
    if fx.files.is_empty() {
        return Err("fixture has no cdna-fixture-file sections".to_string());
    }
    Ok(fx)
}

/// Runs the analyzer over a fixture's virtual workspace and returns the
/// produced `(rule, file, line)` triples, sorted.
pub fn run_fixture(fx: &Fixture) -> Vec<(String, String, u32)> {
    let files: Vec<SourceFile> = fx
        .files
        .iter()
        .map(|(rel, text)| SourceFile {
            rel: rel.clone(),
            kind: FileKind::Library,
            text: text.clone(),
        })
        .collect();
    let mut got: Vec<(String, String, u32)> = analyze(&files, &[])
        .diagnostics
        .into_iter()
        .map(|d| (d.rule.to_string(), d.file, d.line))
        .collect();
    got.sort();
    got
}

/// Calibrates every `seeded_*.rs` fixture under the given corpus
/// directory. Returns human-readable mismatch descriptions; an empty
/// vector means every seeded violation was caught exactly.
pub fn calibrate(corpus_dir: &Path) -> Result<Vec<String>, String> {
    let mut names: Vec<_> = std::fs::read_dir(corpus_dir)
        .map_err(|e| format!("read {}: {e}", corpus_dir.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("seeded_") && n.ends_with(".rs"))
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(format!(
            "no seeded_*.rs fixtures under {}",
            corpus_dir.display()
        ));
    }
    let mut failures = Vec::new();
    for name in names {
        let path = corpus_dir.join(&name);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let fx = parse_fixture(&text).map_err(|e| format!("{name}: {e}"))?;
        let got = run_fixture(&fx);
        let mut want = fx.expects.clone();
        want.sort();
        for w in &want {
            if !got.contains(w) {
                failures.push(format!("{name}: seeded {} {}:{} NOT caught", w.0, w.1, w.2));
            }
        }
        for g in &got {
            if !want.contains(g) {
                failures.push(format!("{name}: unexpected {} {}:{}", g.0, g.1, g.2));
            }
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_parsing_splits_virtual_files() {
        let fx = parse_fixture(
            "// cdna-expect: guest-taint crates/xen/src/d.rs:2\n\
             // cdna-fixture-file: crates/mem/src/pool.rs\n\
             pub fn validate_run() {}\n\
             // cdna-fixture-file: crates/xen/src/d.rs\n\
             pub fn a() {}\n\
             pub fn b() {}\n",
        )
        .expect("parse");
        assert_eq!(fx.files.len(), 2);
        assert_eq!(fx.files[0].0, "crates/mem/src/pool.rs");
        assert_eq!(fx.files[1].1, "pub fn a() {}\npub fn b() {}\n");
        assert_eq!(
            fx.expects,
            vec![(
                "guest-taint".to_string(),
                "crates/xen/src/d.rs".to_string(),
                2
            )]
        );
    }

    #[test]
    fn fixture_parsing_rejects_misplaced_markers() {
        assert!(parse_fixture("pub fn a() {}\n").is_err());
        assert!(
            parse_fixture("// cdna-fixture-file: a.rs\n// cdna-expect: panic a.rs:1\n").is_err()
        );
        assert!(parse_fixture("").is_err());
    }
}
