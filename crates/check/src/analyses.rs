//! The interprocedural analyses: `layering`, `must-pair`,
//! `exhaustive-fault`, and the whole-workspace pipeline that runs them
//! together with the token rules and the `unused-allow` audit.
//!
//! # Layering
//!
//! The workspace is a strict DAG. The enforced order is the *realized*
//! architecture (each crate may only depend on strictly lower layers):
//!
//! | layer | crates |
//! |-------|--------|
//! | 0 | `trace`, `mem` |
//! | 1 | `sim` |
//! | 2 | `net` |
//! | 3 | `nic` |
//! | 4 | `core` |
//! | 5 | `ricenic`, `xen`, `check` |
//! | 6 | `system` |
//! | 7 | `bench` |
//! | 8 | `model` |
//! | 9 | `repro` (the root package) |
//!
//! (`check` sits *below* `system`: the `DmaShadow` runtime mirror lives
//! in `check` and `system` attaches it to the world, so the checker's
//! shadow layer is a dependency of the testbed, not vice versa.)
//!
//! Both manifest dependency entries and `use cdna_*` imports are edges;
//! a back-edge (or same-layer edge) is a diagnostic at the offending
//! line.
//!
//! # Must-pair
//!
//! Every library function that calls a pin primitive (`pin`,
//! `pin_run`, `pin_slice` — resolved by name to their definitions in
//! `crates/mem`) must reach a release (`unpin*`, `reap`) or transfer
//! custody to a pinned ledger (`push_back`) on every non-panic exit.
//! The check is a CFG-lite linear scan over the function's token
//! stream: the statement containing the pin call is atomic (its own
//! `?` is the no-pin failure path); after it, any `return` or `?`
//! before a release token leaks the pin, as does falling off the end
//! of the body. Panic exits (`expect`/`unwrap`/`panic!`) are exempt —
//! a panic tears down the whole simulated world.
//!
//! # Exhaustive-fault
//!
//! A `match` whose arm patterns mention `FaultKind`, `MemError`,
//! `ShadowViolation` or `ViolationKind` must not have a wildcard arm
//! (`_` or a bare binding): adding a fault variant must force every
//! handler to decide what it means.

use crate::graph::{GraphFile, ManifestDep, Pass, SymbolGraph};
use crate::lexer::{scrub, test_lines, tokenize, Allows};
use crate::parse::parse_file;
use crate::rules::{token_rule_diags, Diagnostic, FileKind};
use std::collections::BTreeMap;

/// Crate layer assignments (see module docs). Lower = more fundamental.
pub const LAYERS: &[(&str, u32)] = &[
    ("trace", 0),
    ("mem", 0),
    ("sim", 1),
    ("net", 2),
    ("nic", 3),
    ("core", 4),
    ("ricenic", 5),
    ("xen", 5),
    ("check", 5),
    ("system", 6),
    ("bench", 7),
    ("model", 8),
    ("rack", 8),
    ("fuzz", 9),
    ("repro", 9),
];

fn layer_of(key: &str) -> Option<u32> {
    LAYERS.iter().find(|(k, _)| *k == key).map(|&(_, l)| l)
}

/// Enum names whose matches must stay wildcard-free.
pub const FAULT_ENUMS: &[&str] = &["FaultKind", "MemError", "ShadowViolation", "ViolationKind"];

/// Pin primitives and where they must be defined for a call to count.
const PIN_FNS: &[&str] = &["pin", "pin_run", "pin_slice"];
const PIN_HOME_CRATES: &[&str] = &["mem", "core"];
/// Tokens that discharge the obligation: direct release, batched reap,
/// or custody transfer into a pinned ledger that reap later drains.
const RELEASE_FNS: &[&str] = &["unpin", "unpin_run", "unpin_slice", "reap", "push_back"];

/// The `layering` pass: crate DAG direction.
#[derive(Debug, Default)]
pub struct LayeringPass;

impl Pass for LayeringPass {
    fn rule(&self) -> &'static str {
        "layering"
    }

    fn run(&self, graph: &SymbolGraph) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let mut push = |from: &str, to: &str, file: &str, line: u32| {
            let (Some(lf), Some(lt)) = (layer_of(from), layer_of(to)) else {
                return; // edge into/out of an unknown crate: not ours
            };
            if lf <= lt {
                out.push(Diagnostic {
                    rule: "layering",
                    file: file.to_string(),
                    line,
                    message: format!(
                        "`{from}` (layer {lf}) must not depend on `{to}` (layer {lt}); \
                         the crate DAG flows strictly downward"
                    ),
                });
            }
        };
        for dep in &graph.manifest_deps {
            push(&dep.from, &dep.to, &dep.file, dep.line);
        }
        for f in &graph.files {
            let Some(from) = f.symbols.crate_key.as_deref() else {
                continue;
            };
            for u in &f.symbols.uses {
                if let Some(to) = u.target.strip_prefix("cdna_") {
                    if to != from {
                        push(from, to, &f.symbols.rel, u.line);
                    }
                }
            }
        }
        out
    }
}

/// The `must-pair` pass: pins must be released on all non-panic paths.
#[derive(Debug, Default)]
pub struct MustPairPass;

impl Pass for MustPairPass {
    fn rule(&self) -> &'static str {
        "must-pair"
    }

    fn run(&self, graph: &SymbolGraph) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for f in &graph.files {
            if f.kind != FileKind::Library {
                continue;
            }
            for g in &f.symbols.fns {
                if PIN_FNS.contains(&g.name.as_str()) {
                    continue; // the primitives themselves
                }
                if let Some(d) = check_fn_pairing(graph, f, g) {
                    out.push(d);
                }
            }
        }
        out
    }
}

fn check_fn_pairing(
    graph: &SymbolGraph,
    file: &GraphFile,
    g: &crate::parse::FnSym,
) -> Option<Diagnostic> {
    let body = &g.body;
    // Locate the first pin-primitive call, tracking brace depth.
    let mut brace = 0i32;
    let mut pin_at = None;
    for (i, t) in body.iter().enumerate() {
        match t.text.as_str() {
            "{" => brace += 1,
            "}" => brace -= 1,
            _ => {}
        }
        if t.is_ident
            && PIN_FNS.contains(&t.text.as_str())
            && body.get(i + 1).map(|n| n.text.as_str()) == Some("(")
            && (i == 0 || body[i - 1].text != "fn")
            && !file.test_lines.contains(&t.line)
            && graph.defines_fn_in(&t.text, PIN_HOME_CRATES)
        {
            pin_at = Some((i, t.line, brace));
            break;
        }
    }
    let (pin_idx, pin_line, pin_brace) = pin_at?;
    // The pin's own statement (to the `;` at paren depth 0, back at the
    // pin's brace depth) is atomic: a `?` inside it is the pin *failing*,
    // not a leak.
    let (mut par, mut brace) = (0i32, pin_brace);
    let mut i = pin_idx;
    while i < body.len() {
        match body[i].text.as_str() {
            "(" | "[" => par += 1,
            ")" | "]" => par -= 1,
            "{" => brace += 1,
            "}" => brace -= 1,
            ";" if par <= 0 && brace <= pin_brace => break,
            _ => {}
        }
        i += 1;
    }
    // After the statement: any exit before a release leaks the pin.
    for t in &body[(i + 1).min(body.len())..] {
        if t.is_ident && RELEASE_FNS.contains(&t.text.as_str()) {
            return None; // released / custody transferred
        }
        let exit = match t.text.as_str() {
            "return" => Some("`return`"),
            "?" => Some("`?`"),
            _ => None,
        };
        if let Some(exit) = exit {
            return Some(Diagnostic {
                rule: "must-pair",
                file: file.symbols.rel.clone(),
                line: t.line,
                message: format!(
                    "`{}` pins pages at line {pin_line} but {exit} exits before any \
                     unpin/reap/ledger hand-off",
                    g.name
                ),
            });
        }
    }
    Some(Diagnostic {
        rule: "must-pair",
        file: file.symbols.rel.clone(),
        line: g.end_line,
        message: format!(
            "`{}` pins pages at line {pin_line} but falls off the end of the function \
             without any unpin/reap/ledger hand-off",
            g.name
        ),
    })
}

/// The `exhaustive-fault` pass: no wildcard matches on fault enums.
#[derive(Debug, Default)]
pub struct ExhaustiveFaultPass;

impl Pass for ExhaustiveFaultPass {
    fn rule(&self) -> &'static str {
        "exhaustive-fault"
    }

    fn run(&self, graph: &SymbolGraph) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for f in &graph.files {
            if f.kind != FileKind::Library {
                continue;
            }
            for m in &f.symbols.matches {
                let Some(wl) = m.wildcard_line else { continue };
                if f.test_lines.contains(&m.line) || f.test_lines.contains(&wl) {
                    continue;
                }
                let hit: Vec<&str> = m
                    .pattern_enums
                    .iter()
                    .map(String::as_str)
                    .filter(|e| FAULT_ENUMS.contains(e))
                    .collect();
                if !hit.is_empty() {
                    out.push(Diagnostic {
                        rule: "exhaustive-fault",
                        file: f.symbols.rel.clone(),
                        line: wl,
                        message: format!(
                            "wildcard arm in a match on `{}`; enumerate every variant so \
                             new fault kinds force handling",
                            hit.join("`/`")
                        ),
                    });
                }
            }
        }
        out
    }
}

/// One in-memory source file for [`analyze`].
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path (drives crate attribution and classification).
    pub rel: String,
    /// Rule-subset classification.
    pub kind: FileKind,
    /// Full source text.
    pub text: String,
}

/// Output of [`analyze`].
#[derive(Debug, Default)]
pub struct Analysis {
    /// Suppression-filtered diagnostics from every rule (token rules,
    /// graph passes, manifests, and `unused-allow`), sorted.
    pub diagnostics: Vec<Diagnostic>,
    /// Total `cdna-check: allow` annotations found.
    pub allow_count: usize,
    /// Resolved call edges in the symbol graph (statistics).
    pub call_edges: usize,
}

/// Parses `cdna-*` dependency entries out of a manifest for layering.
fn manifest_dep_edges(rel: &str, text: &str) -> Vec<ManifestDep> {
    let from = if rel == "Cargo.toml" {
        "repro".to_string()
    } else if let Some(k) = rel
        .strip_prefix("crates/")
        .and_then(|r| r.strip_suffix("/Cargo.toml"))
    {
        k.to_string()
    } else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut in_deps = false;
    for (idx, raw) in text.lines().enumerate() {
        let l = raw.trim();
        if l.starts_with('[') {
            let inner = l.trim_matches(|c| c == '[' || c == ']');
            let parts: Vec<&str> = inner.split('.').collect();
            // `[workspace.dependencies]` is the version table, not an
            // edge; real edges live in the package's own dep sections.
            in_deps = parts.first() != Some(&"workspace")
                && parts
                    .last()
                    .map(|p| p.ends_with("dependencies"))
                    .unwrap_or(false);
            continue;
        }
        if !in_deps {
            continue;
        }
        let Some(name) = l.split('=').next() else {
            continue;
        };
        let name = name.trim().trim_end_matches(".workspace").trim();
        if let Some(to) = name.strip_prefix("cdna-") {
            out.push(ManifestDep {
                from: from.clone(),
                to: to.replace('-', "_"),
                file: rel.to_string(),
                line: idx as u32 + 1,
            });
        }
    }
    out
}

/// Everything one file contributes to the pipeline, produced by
/// [`scan_file`] on whichever worker picked the file up. Merging these
/// in path order (the caller's file order is sorted) makes the whole
/// analysis independent of the worker count — the property CDNA014
/// demands of every other fan-out in the workspace.
struct FileScan {
    rel: String,
    diags: Vec<Diagnostic>,
    graph_file: GraphFile,
    allows: Allows,
}

/// The per-file half of the pipeline: scrub, tokenize, token rules,
/// symbol parse, allow harvest. Pure function of the file — safe to
/// run on any worker.
fn scan_file(f: &SourceFile) -> FileScan {
    let scrubbed = scrub(&f.text);
    let tokens = tokenize(&scrubbed.masked);
    let tests = test_lines(&tokens);
    let diags = token_rule_diags(&f.rel, f.kind, &f.text, &tokens, &tests);
    FileScan {
        rel: f.rel.clone(),
        diags,
        graph_file: GraphFile {
            symbols: parse_file(&f.rel, &tokens),
            kind: f.kind,
            test_lines: tests,
            strings: scrubbed.strings,
        },
        allows: scrubbed.allows,
    }
}

/// Runs the complete pipeline over in-memory sources: token rules,
/// symbol-graph passes, manifest checks, allow suppression with "used"
/// accounting, and the `unused-allow` audit — on a single worker.
///
/// `manifests` are `(repo-relative path, text)` pairs.
pub fn analyze(files: &[SourceFile], manifests: &[(String, String)]) -> Analysis {
    analyze_jobs(files, manifests, 1)
}

/// [`analyze`], with the per-file work sharded over `jobs` workers of
/// the `cdna_sim::par` pool. Results are merged in `files` order
/// (index-ordered slots inside [`cdna_sim::par::run_indexed`]), so the
/// analysis — and the serialized report built from it — is
/// byte-identical at any worker count. The whole-workspace graph
/// passes stay on the caller's thread: they need every file at once
/// and are a small share of the wall time.
pub fn analyze_jobs(files: &[SourceFile], manifests: &[(String, String)], jobs: usize) -> Analysis {
    let mut raw: Vec<Diagnostic> = Vec::new();
    let mut graph_files: Vec<GraphFile> = Vec::new();
    let mut per_file_allows: BTreeMap<String, (Allows, Vec<bool>)> = BTreeMap::new();
    let mut allow_count = 0usize;

    let scans =
        cdna_sim::par::run_indexed(jobs, (0..files.len()).collect::<Vec<usize>>(), |_, i| {
            scan_file(&files[i])
        });
    for scan in scans {
        raw.extend(scan.diags);
        graph_files.push(scan.graph_file);
        allow_count += scan.allows.count();
        let used = vec![false; scan.allows.count()];
        per_file_allows.insert(scan.rel, (scan.allows, used));
    }

    let mut manifest_deps = Vec::new();
    for (rel, text) in manifests {
        raw.extend(crate::rules::check_manifest(rel, text));
        manifest_deps.extend(manifest_dep_edges(rel, text));
    }

    let graph = SymbolGraph::build(graph_files, manifest_deps);
    let passes: [&dyn Pass; 10] = [
        &LayeringPass,
        &MustPairPass,
        &ExhaustiveFaultPass,
        &crate::taint::GuestTaintPass,
        &crate::locks::LockOrderPass,
        &crate::locks::SendAuditPass,
        &crate::determinism::MergeOrderPass,
        &crate::determinism::ClockPurityPass,
        &crate::determinism::JobsLeakPass,
        &crate::determinism::FloatAccumPass,
    ];
    raw.extend(crate::graph::run_passes(&graph, &passes));

    // Apply allows, crediting the entry that fired.
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    for d in raw {
        if let Some((allows, used)) = per_file_allows.get_mut(&d.file) {
            if let Some(idx) = allows.match_entry(d.rule, d.line) {
                used[idx] = true;
                continue;
            }
        }
        diagnostics.push(d);
    }

    // Unused allows are themselves diagnostics (warning severity).
    for (rel, (allows, used)) in &per_file_allows {
        for (entry, used) in allows.entries().iter().zip(used) {
            if !used {
                diagnostics.push(Diagnostic {
                    rule: "unused-allow",
                    file: rel.clone(),
                    line: entry.line,
                    message: format!(
                        "`allow{}({})` suppresses no diagnostic; remove the stale escape",
                        if entry.file_wide { "-file" } else { "" },
                        entry.rule
                    ),
                });
            }
        }
    }

    diagnostics.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Analysis {
        diagnostics,
        allow_count,
        call_edges: graph.call_edge_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(rel: &str, text: &str) -> SourceFile {
        SourceFile {
            rel: rel.into(),
            kind: FileKind::Library,
            text: text.into(),
        }
    }

    fn rules_of(a: &Analysis) -> Vec<(&'static str, u32)> {
        a.diagnostics.iter().map(|d| (d.rule, d.line)).collect()
    }

    #[test]
    fn layering_back_edge_fires_on_use_line() {
        let a = analyze(
            &[lib(
                "crates/sim/src/bad.rs",
                "//! Doc.\nuse cdna_system::TestbedConfig;\n",
            )],
            &[],
        );
        assert_eq!(rules_of(&a), [("layering", 2)], "{:?}", a.diagnostics);
    }

    #[test]
    fn layering_manifest_edge_fires() {
        let a = analyze(
            &[],
            &[(
                "crates/mem/Cargo.toml".to_string(),
                "[package]\nname = \"cdna-mem\"\n[dependencies]\ncdna-system.workspace = true\n"
                    .to_string(),
            )],
        );
        assert_eq!(rules_of(&a), [("layering", 4)], "{:?}", a.diagnostics);
    }

    #[test]
    fn forward_edges_are_clean() {
        let a = analyze(
            &[lib(
                "crates/system/src/ok.rs",
                "//! Doc.\nuse cdna_mem::PageId;\nuse cdna_sim::SimTime;\nuse std::fmt;\n",
            )],
            &[],
        );
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    /// A tiny workspace where `pin_run` exists in `mem`, so calls to it
    /// resolve and the must-pair obligation attaches.
    fn pin_defs() -> SourceFile {
        lib(
            "crates/mem/src/pool.rs",
            "//! Doc.\n/// Doc.\npub fn pin_run(s: u32, l: u32) {}\n/// Doc.\npub fn unpin_run(s: u32, l: u32) {}\n",
        )
    }

    #[test]
    fn leaked_pin_on_early_return_fires() {
        let src = "//! Doc.\nfn leak(m: &mut M) -> Result<(), E> {\n    m.pin_run(s, l)?;\n    if bad {\n        return Err(E::Nope);\n    }\n    m.unpin_run(s, l);\n    Ok(())\n}\n";
        let a = analyze(&[pin_defs(), lib("crates/core/src/x.rs", src)], &[]);
        assert_eq!(rules_of(&a), [("must-pair", 5)], "{:?}", a.diagnostics);
    }

    #[test]
    fn paired_pin_is_clean_and_panic_exits_exempt() {
        let src = "//! Doc.\nfn ok(m: &mut M) -> Result<(), E> {\n    m.pin_run(s, l)?;\n    let r = table.get(k).expect(\"present\"); // cdna-check: allow(panic): fixture\n    m.unpin_run(s, l);\n    Ok(())\n}\nfn ledger(m: &mut M) -> Result<(), E> {\n    m.pin_run(s, l)?;\n    pinned.push_back((s, l));\n    Ok(())\n}\n";
        let a = analyze(&[pin_defs(), lib("crates/core/src/x.rs", src)], &[]);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    #[test]
    fn fall_through_leak_fires_and_unresolved_pin_does_not() {
        // `pin_run` resolves (defined in mem) → leak at end of fn.
        let src = "//! Doc.\nfn leak(m: &mut M) {\n    m.pin_run(s, l);\n}\n";
        let a = analyze(&[pin_defs(), lib("crates/core/src/x.rs", src)], &[]);
        assert_eq!(rules_of(&a), [("must-pair", 4)], "{:?}", a.diagnostics);
        // Without a workspace definition the name does not resolve and
        // no obligation attaches.
        let a = analyze(&[lib("crates/core/src/x.rs", src)], &[]);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    #[test]
    fn wildcard_fault_match_fires() {
        let src = "//! Doc.\nfn f(k: FaultKind) -> u32 {\n    match k {\n        FaultKind::EmptySlot { index } => 1,\n        _ => 0,\n    }\n}\n";
        let a = analyze(&[lib("crates/core/src/x.rs", src)], &[]);
        assert_eq!(
            rules_of(&a),
            [("exhaustive-fault", 5)],
            "{:?}",
            a.diagnostics
        );
    }

    #[test]
    fn unused_allow_warns_and_used_allow_does_not() {
        let src = "//! Doc.\nfn f() {\n    x.unwrap(); // cdna-check: allow(panic): fine\n    y(); // cdna-check: allow(panic): stale\n}\n";
        let a = analyze(&[lib("crates/core/src/x.rs", src)], &[]);
        assert_eq!(rules_of(&a), [("unused-allow", 4)], "{:?}", a.diagnostics);
        assert_eq!(a.allow_count, 2);
    }

    #[test]
    fn allow_suppresses_graph_rules_too() {
        let src = "//! Doc.\n// cdna-check: allow(layering): transitional\nuse cdna_system::X;\n";
        let a = analyze(&[lib("crates/sim/src/bad.rs", src)], &[]);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }
}
