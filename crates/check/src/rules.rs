//! The static rule set and the repository walker that applies it.
//!
//! Each rule has a stable kebab-case name, used both in diagnostics and
//! in `// cdna-check: allow(<rule>)` suppression annotations:
//!
//! | rule | code | meaning |
//! |------|------|---------|
//! | `sim-time` | CDNA001 | wall-clock time (`std::time`) in simulation library code |
//! | `nondeterministic-map` | CDNA002 | `HashMap`/`HashSet` in library code (use `BTreeMap`) |
//! | `panic` | CDNA003 | `unwrap()`/`expect()`/`panic!` in non-test library code |
//! | `unsafe` | CDNA004 | any `unsafe` token anywhere |
//! | `hermetic-deps` | CDNA005 | external-registry dependency edge in a `Cargo.toml` |
//! | `missing-docs` | CDNA006 | public item without a `///` doc comment |
//! | `unused-allow` | CDNA007 | an `allow(...)` escape that suppresses nothing |
//! | `layering` | CDNA008 | crate dependency edge against the layer order |
//! | `must-pair` | CDNA009 | pin acquired but not released on a non-panic path |
//! | `exhaustive-fault` | CDNA010 | wildcard `match` arm on a fault enum |
//! | `guest-taint` | CDNA011 | guest-controlled data reaches a pin/DMA/ring sink unvalidated |
//! | `lock-order` | CDNA012 | lock-order cycle or lock held across a call that locks |
//! | `send-audit` | CDNA013 | non-`Send`-safe field in a type crossing the queue `Send` seam |
//! | `merge-order` | CDNA014 | fan-out results merged in arrival order or through a `Hash*` container |
//! | `clock-purity` | CDNA015 | wall-clock value serialized outside a `wall_ms*` field |
//! | `jobs-leak` | CDNA016 | worker count/index or thread identity in compared serialization |
//! | `float-accum` | CDNA017 | order-unstable data fed into an `f64` reduction |
//!
//! CDNA007–010 are produced by the symbol-graph passes in
//! [`crate::analyses`], CDNA011–013 by the dataflow passes in
//! [`crate::taint`] and [`crate::locks`], CDNA014–017 by the
//! determinism-soundness passes in [`crate::determinism`]; this module
//! owns the token-level rules, the rule registry (names, codes,
//! severities), and the repository walker.

use crate::analyses::SourceFile;
use crate::lexer::{scrub, test_lines, tokenize, Token};
use std::path::{Path, PathBuf};

/// Names of every static rule, in report order.
pub const RULE_NAMES: [&str; 17] = [
    "sim-time",
    "nondeterministic-map",
    "panic",
    "unsafe",
    "hermetic-deps",
    "missing-docs",
    "unused-allow",
    "layering",
    "must-pair",
    "exhaustive-fault",
    "guest-taint",
    "lock-order",
    "send-audit",
    "merge-order",
    "clock-purity",
    "jobs-leak",
    "float-accum",
];

/// Stable machine-readable code for a rule (`CDNA001`…), used by the
/// JSON report so CI diffs survive rule renames.
pub fn rule_code(rule: &str) -> &'static str {
    match rule {
        "sim-time" => "CDNA001",
        "nondeterministic-map" => "CDNA002",
        "panic" => "CDNA003",
        "unsafe" => "CDNA004",
        "hermetic-deps" => "CDNA005",
        "missing-docs" => "CDNA006",
        "unused-allow" => "CDNA007",
        "layering" => "CDNA008",
        "must-pair" => "CDNA009",
        "exhaustive-fault" => "CDNA010",
        "guest-taint" => "CDNA011",
        "lock-order" => "CDNA012",
        "send-audit" => "CDNA013",
        "merge-order" => "CDNA014",
        "clock-purity" => "CDNA015",
        "jobs-leak" => "CDNA016",
        "float-accum" => "CDNA017",
        _ => "CDNA000",
    }
}

/// Severity of a rule: `unused-allow` is hygiene (`warning`), all other
/// rules guard correctness (`error`). The binary exits non-zero on
/// either — warnings are cheap to fix and expensive to let rot.
pub fn rule_severity(rule: &str) -> &'static str {
    match rule {
        "unused-allow" => "warning",
        _ => "error",
    }
}

/// How a source file is classified, which decides the rules applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under `src/`: all rules apply.
    Library,
    /// `tests/` and `examples/`: only the `unsafe` rule applies.
    TestOrExample,
    /// Binary entry points (`main.rs`, `src/bin/`): `unsafe` only —
    /// binaries may print, exit, and read the wall clock.
    Binary,
}

/// One rule violation at a file:line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Formats as `file:line: [rule] message` for terminal output.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Aggregate result of a repository scan.
#[derive(Debug, Default)]
pub struct StaticReport {
    /// All violations, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of `Cargo.toml` manifests scanned.
    pub manifests_scanned: usize,
    /// Number of `cdna-check: allow` annotations honoured.
    pub allow_count: usize,
}

impl StaticReport {
    /// True when no rule fired.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Runs every static rule over one file's source text.
///
/// `rel` is the repo-relative path used in diagnostics; `kind` selects
/// the applicable rule subset. Returns the diagnostics plus the number
/// of allow annotations found (even unused ones), so callers can report
/// suppression totals.
pub fn check_source(rel: &str, kind: FileKind, src: &str) -> (Vec<Diagnostic>, usize) {
    let scrubbed = scrub(src);
    let tokens = tokenize(&scrubbed.masked);
    let in_test = test_lines(&tokens);
    let raw = token_rule_diags(rel, kind, src, &tokens, &in_test);
    let out = raw
        .into_iter()
        .filter(|d| !scrubbed.allows.permits(d.rule, d.line))
        .collect();
    (out, scrubbed.allows.count())
}

/// Runs the token-level rules over one scrubbed file, *without* allow
/// suppression — the whole-workspace pipeline
/// ([`crate::analyses::analyze`]) filters
/// later so it can tell which allows were actually used.
pub(crate) fn token_rule_diags(
    rel: &str,
    kind: FileKind,
    src: &str,
    tokens: &[Token],
    in_test: &std::collections::BTreeSet<u32>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut push = |rule: &'static str, line: u32, message: String| {
        out.push(Diagnostic {
            rule,
            file: rel.to_string(),
            line,
            message,
        });
    };

    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident {
            continue;
        }
        let next = |k: usize| tokens.get(i + k).map(|t| t.text.as_str());
        let prev = |k: usize| i.checked_sub(k).map(|j| tokens[j].text.as_str());
        let lib = kind == FileKind::Library && !in_test.contains(&t.line);

        match t.text.as_str() {
            "unsafe" => push(
                "unsafe",
                t.line,
                "`unsafe` is forbidden in this workspace".to_string(),
            ),
            "SystemTime" if lib => push(
                "sim-time",
                t.line,
                "wall-clock `SystemTime` in simulation code; use cdna-sim time".to_string(),
            ),
            "Instant"
                if lib
                    && prev(1) == Some(":")
                    && prev(2) == Some(":")
                    && prev(3) == Some("time") =>
            {
                push(
                    "sim-time",
                    t.line,
                    "wall-clock `time::Instant` in simulation code; use cdna-sim time".to_string(),
                )
            }
            "use"
                if lib
                    && next(1) == Some("std")
                    && next(2) == Some(":")
                    && next(3) == Some(":")
                    && next(4) == Some("time") =>
            {
                push(
                    "sim-time",
                    t.line,
                    "`use std::time` in simulation code; use cdna-sim time".to_string(),
                )
            }
            "HashMap" | "HashSet" if lib => push(
                "nondeterministic-map",
                t.line,
                format!(
                    "`{}` iterates in nondeterministic order; use BTreeMap/BTreeSet",
                    t.text
                ),
            ),
            "unwrap" | "expect" if lib && next(1) == Some("(") && prev(1) == Some(".") => push(
                "panic",
                t.line,
                format!(
                    "`.{}()` can panic in library code; propagate a Result",
                    t.text
                ),
            ),
            "panic" if lib && next(1) == Some("!") => push(
                "panic",
                t.line,
                "`panic!` in library code; return an error instead".to_string(),
            ),
            "pub" if lib => {
                if let Some((item_line, what, name)) = public_item(tokens, i) {
                    if !has_doc_comment(src, item_line) {
                        push(
                            "missing-docs",
                            item_line,
                            format!("public {what} `{name}` has no `///` doc comment"),
                        );
                    }
                }
            }
            _ => {}
        }
    }

    out
}

/// If token `i` is a `pub` introducing a fully-public named item,
/// returns (line, item kind, name). Restricted visibility (`pub(crate)`)
/// and re-exports (`pub use`) are skipped.
fn public_item(tokens: &[Token], i: usize) -> Option<(u32, &'static str, String)> {
    let mut j = i + 1;
    if tokens.get(j)?.text == "(" {
        return None; // pub(crate) etc. — not public API
    }
    // Skip qualifiers between `pub` and the item keyword. `const` is
    // only a qualifier when followed by `fn` (`pub const fn`); in
    // `pub const NAME` it is the item keyword itself.
    loop {
        match tokens.get(j)?.text.as_str() {
            "async" | "unsafe" | "extern" | "\"" => j += 1,
            "const" if tokens.get(j + 1).map(|t| t.text.as_str()) == Some("fn") => j += 1,
            _ => break,
        }
    }
    let what = match tokens.get(j)?.text.as_str() {
        "fn" => "fn",
        "struct" => "struct",
        "enum" => "enum",
        "trait" => "trait",
        "type" => "type alias",
        "const" => "const",
        "static" => "static",
        "mod" => "module",
        "union" => "union",
        _ => return None, // pub use, pub impl-in-macro, etc.
    };
    let name = tokens.get(j + 1).filter(|t| t.is_ident)?.text.clone();
    if what == "module" && tokens.get(j + 2).map(|t| t.text.as_str()) == Some(";") {
        return None; // out-of-line module: documented by its file's `//!`
    }
    Some((tokens[i].line, what, name))
}

/// Whether the item starting at 1-based `line` has a doc comment (or a
/// `#[doc]` attribute) directly above it, skipping attribute lines.
fn has_doc_comment(src: &str, line: u32) -> bool {
    let lines: Vec<&str> = src.lines().collect();
    let mut j = line as usize; // lines[j - 1] is the item; start above it
    while j > 1 {
        let above = lines.get(j - 2).map(|l| l.trim_start()).unwrap_or("");
        if above.starts_with("///")
            || above.starts_with("/**")
            || above.starts_with("#![doc")
            || above.starts_with("//!")
        {
            return true;
        }
        if above.starts_with("#[")
            || above.starts_with(")]")
            || above.starts_with("]")
            || above.starts_with("//")
        {
            // Attributes (possibly multi-line) and plain comments sit
            // between a doc comment and its item without detaching it.
            j -= 1;
        } else {
            return false;
        }
    }
    false
}

/// Checks one `Cargo.toml` for external-registry dependency edges.
///
/// Every entry in a dependency section must be a path dependency or a
/// `workspace = true` reference; bare version strings (`foo = "1.0"`)
/// and registry tables without `path` are violations.
pub fn check_manifest(rel: &str, src: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut in_dep_section = false;
    // A `[dependencies.foo]` subsection being accumulated:
    let mut subsection: Option<(u32, String, bool)> = None; // (line, name, saw path/workspace)

    let is_dep_kind = |s: &str| {
        matches!(
            s,
            "dependencies" | "dev-dependencies" | "build-dependencies"
        )
    };

    let flush_subsection = |sub: &mut Option<(u32, String, bool)>, out: &mut Vec<Diagnostic>| {
        if let Some((line, name, ok)) = sub.take() {
            if !ok {
                out.push(Diagnostic {
                    rule: "hermetic-deps",
                    file: rel.to_string(),
                    line,
                    message: format!("dependency `{name}` has no `path`/`workspace` source"),
                });
            }
        }
    };

    for (idx, raw) in src.lines().enumerate() {
        let line = idx as u32 + 1;
        let l = raw.trim();
        if l.starts_with('#') || l.is_empty() {
            continue;
        }
        if l.starts_with('[') {
            flush_subsection(&mut subsection, &mut out);
            in_dep_section = false;
            let inner = l.trim_matches(|c| c == '[' || c == ']');
            let parts: Vec<&str> = inner.split('.').collect();
            if parts.last().map(|p| is_dep_kind(p)).unwrap_or(false) {
                // `[dependencies]`, `[workspace.dependencies]`,
                // `[target.'cfg'.dependencies]` — a plain dep table.
                in_dep_section = true;
            } else if parts.iter().rev().skip(1).any(|p| is_dep_kind(p)) {
                // `[dependencies.foo]` — one dependency as a subsection;
                // it must contain a `path` or `workspace` key.
                if let Some(name) = parts.last() {
                    subsection = Some((line, name.to_string(), false));
                }
            }
            continue;
        }
        if let Some((_, _, ok)) = subsection.as_mut() {
            let key = l.split('=').next().unwrap_or("").trim();
            if key == "path" || key == "workspace" {
                *ok = true;
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let Some((name, value)) = l.split_once('=') else {
            continue;
        };
        let name = name.trim();
        let value = value.trim();
        if name.ends_with(".workspace") {
            continue; // `foo.workspace = true`
        }
        if value.starts_with('"') || value.starts_with('\'') {
            out.push(Diagnostic {
                rule: "hermetic-deps",
                file: rel.to_string(),
                line,
                message: format!(
                    "dependency `{name}` pulls from a registry; use a path/workspace dep"
                ),
            });
        } else if value.starts_with('{') && !value.contains("path") && !value.contains("workspace")
        {
            out.push(Diagnostic {
                rule: "hermetic-deps",
                file: rel.to_string(),
                line,
                message: format!("dependency `{name}` has no `path`/`workspace` source"),
            });
        }
    }
    flush_subsection(&mut subsection, &mut out);
    out
}

/// Classifies a repo-relative path, or returns `None` if the file is
/// exempt from scanning (e.g. the seeded-violation corpus).
pub fn classify(rel: &str) -> Option<FileKind> {
    if rel.contains("tests/corpus/") {
        return None; // fixtures that violate rules on purpose
    }
    if rel.contains("/tests/")
        || rel.starts_with("tests/")
        || rel.contains("/examples/")
        || rel.starts_with("examples/")
    {
        return Some(FileKind::TestOrExample);
    }
    if rel.ends_with("/main.rs") || rel.contains("/src/bin/") {
        return Some(FileKind::Binary);
    }
    Some(FileKind::Library)
}

/// Walks the repository at `root` and applies every static rule: the
/// token rules, the symbol-graph passes (`layering`, `must-pair`,
/// `exhaustive-fault`), and the `unused-allow` audit.
///
/// Scans `src/`, `tests/`, `examples/` at the root and under each
/// `crates/*`, plus every `Cargo.toml`. Paths are sorted so output is
/// deterministic. Per-file work runs on one worker; see
/// [`check_repo_jobs`] for the fanned-out scan.
pub fn check_repo(root: &Path) -> std::io::Result<StaticReport> {
    check_repo_jobs(root, Some(1))
}

/// [`check_repo`], with per-file lex/parse/token-rule work sharded over
/// `jobs` workers of the `cdna_sim::par` pool (`None` resolves the
/// worker count like every other binary: `CDNA_JOBS`, then available
/// parallelism). The scanner self-hosts the guarantee it checks: the
/// merge is path-ordered, so the report is byte-identical at any
/// worker count.
pub fn check_repo_jobs(root: &Path, jobs: Option<usize>) -> std::io::Result<StaticReport> {
    let mut rs_files: Vec<PathBuf> = Vec::new();
    let mut manifests: Vec<PathBuf> = vec![root.join("Cargo.toml")];

    let mut roots: Vec<PathBuf> = ["src", "tests", "examples"]
        .iter()
        .map(|d| root.join(d))
        .collect();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for c in crate_dirs {
            manifests.push(c.join("Cargo.toml"));
            for d in ["src", "tests", "examples"] {
                roots.push(c.join(d));
            }
        }
    }
    for r in roots {
        if r.is_dir() {
            collect_rs(&r, &mut rs_files)?;
        }
    }
    rs_files.sort();

    let mut sources: Vec<SourceFile> = Vec::new();
    for path in &rs_files {
        let rel = rel_path(root, path);
        let Some(kind) = classify(&rel) else { continue };
        sources.push(SourceFile {
            rel,
            kind,
            text: std::fs::read_to_string(path)?,
        });
    }
    let mut manifest_srcs: Vec<(String, String)> = Vec::new();
    for path in &manifests {
        if !path.is_file() {
            continue;
        }
        manifest_srcs.push((rel_path(root, path), std::fs::read_to_string(path)?));
    }

    let resolved = cdna_sim::par::resolve_jobs(jobs, sources.len());
    let analysis = crate::analyses::analyze_jobs(&sources, &manifest_srcs, resolved);
    Ok(StaticReport {
        diagnostics: analysis.diagnostics,
        files_scanned: sources.len(),
        manifests_scanned: manifest_srcs.len(),
        allow_count: analysis.allow_count,
    })
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            // `target/` never appears under src/tests/examples, but be safe.
            if p.file_name().map(|n| n == "target").unwrap_or(false) {
                continue;
            }
            collect_rs(&p, out)?;
        } else if p.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(p);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(kind: FileKind, src: &str) -> Vec<Diagnostic> {
        check_source("x.rs", kind, src).0
    }

    #[test]
    fn unwrap_flagged_in_library() {
        let d = diags(FileKind::Library, "fn f() { x.unwrap(); }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "panic");
    }

    #[test]
    fn unwrap_or_not_flagged() {
        let d = diags(
            FileKind::Library,
            "fn f() { x.unwrap_or(0); x.unwrap_or_else(y); }",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn unwrap_in_test_mod_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}";
        assert!(diags(FileKind::Library, src).is_empty());
    }

    #[test]
    fn allow_annotation_suppresses() {
        let src = "fn f() {\n // cdna-check: allow(panic): startup only\n x.unwrap();\n}";
        assert!(diags(FileKind::Library, src).is_empty());
    }

    #[test]
    fn hashmap_flagged_instant_in_enum_not() {
        let d = diags(
            FileKind::Library,
            "fn f() { let m: HashMap<u32, u32> = x; }",
        );
        assert_eq!(d[0].rule, "nondeterministic-map");
        // A bare `Instant` ident (e.g. an enum variant) is NOT sim-time.
        let d = diags(FileKind::Library, "fn g() -> Phase { Phase::Instant }");
        assert!(d.is_empty());
    }

    #[test]
    fn std_time_flagged() {
        let d = diags(FileKind::Library, "use std::time::Instant;\nfn f() {}");
        assert!(d.iter().any(|d| d.rule == "sim-time"));
        let d = diags(
            FileKind::Library,
            "fn f() { let t = std::time::Instant::now(); }",
        );
        assert!(d.iter().any(|d| d.rule == "sim-time"));
    }

    #[test]
    fn unsafe_flagged_even_in_tests() {
        let d = diags(FileKind::TestOrExample, "fn f() { unsafe { boom() } }");
        assert_eq!(d[0].rule, "unsafe");
    }

    #[test]
    fn binary_may_panic() {
        assert!(diags(FileKind::Binary, "fn main() { x.unwrap(); }").is_empty());
    }

    #[test]
    fn missing_docs_on_pub_fn() {
        let d = diags(FileKind::Library, "pub fn naked() {}\n");
        assert_eq!(d[0].rule, "missing-docs");
        let d = diags(FileKind::Library, "/// Documented.\npub fn fine() {}\n");
        assert!(d.is_empty());
    }

    #[test]
    fn missing_docs_skips_attrs_and_restricted() {
        let src = "/// Doc above attrs.\n#[derive(Debug)]\n#[repr(C)]\npub struct S;\n";
        assert!(diags(FileKind::Library, src).is_empty());
        assert!(diags(FileKind::Library, "pub(crate) fn hidden() {}\n").is_empty());
        assert!(diags(FileKind::Library, "pub use foo::Bar;\n").is_empty());
    }

    #[test]
    fn manifest_registry_dep_flagged() {
        let toml = "[package]\nname = \"x\"\n[dependencies]\nserde = \"1.0\"\n";
        let d = check_manifest("Cargo.toml", toml);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "hermetic-deps");
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn manifest_path_and_workspace_ok() {
        let toml = "[dependencies]\na.workspace = true\nb = { path = \"../b\" }\n\
                    [workspace.dependencies]\nc = { path = \"crates/c\" }\n";
        assert!(check_manifest("Cargo.toml", toml).is_empty());
    }

    #[test]
    fn manifest_subsection_without_path_flagged() {
        let toml = "[dependencies.serde]\nversion = \"1\"\nfeatures = [\"derive\"]\n";
        let d = check_manifest("Cargo.toml", toml);
        assert_eq!(d.len(), 1);
        let toml = "[dependencies.local]\npath = \"../local\"\n";
        assert!(check_manifest("Cargo.toml", toml).is_empty());
    }

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/mem/src/pool.rs"), Some(FileKind::Library));
        assert_eq!(
            classify("crates/mem/tests/t.rs"),
            Some(FileKind::TestOrExample)
        );
        assert_eq!(classify("src/main.rs"), Some(FileKind::Binary));
        assert_eq!(classify("crates/check/tests/corpus/bad.rs"), None);
    }
}
