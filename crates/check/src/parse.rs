//! Item-level parsing on top of the token stream: extracts the per-file
//! symbol summary the interprocedural passes ([`crate::analyses`]) run
//! over.
//!
//! This is deliberately not a real Rust parser. The passes only need
//! three structural facts, all recoverable from the scrubbed token
//! stream by brace matching:
//!
//! * `use` edges — the first path segment of every `use` declaration
//!   (enough to resolve `use cdna_mem::…` to a workspace crate);
//! * `fn` items — name, line, body token range, and the call sites
//!   inside the body (identifier immediately followed by `(`);
//! * `match` expressions — which enum paths the arm *patterns* mention
//!   and whether any arm is a wildcard (`_` or a bare lowercase
//!   binding).

use crate::lexer::Token;
use std::collections::BTreeSet;

/// A `use` (or manifest dependency) edge out of a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseEdge {
    /// First path segment of the `use` declaration (e.g. `cdna_mem`).
    pub target: String,
    /// 1-based line of the declaration.
    pub line: u32,
}

/// One named call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The identifier directly before the `(` (method or function name;
    /// resolution is by name within the workspace, not by type).
    pub callee: String,
    /// 1-based line of the call.
    pub line: u32,
    /// Index of the callee token within the function's body tokens, so
    /// dataflow passes can order calls and inspect their surroundings.
    pub pos: usize,
}

/// One `fn` item with its body tokens.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Line of the body's closing brace (fall-through exit point).
    pub end_line: u32,
    /// Tokens strictly inside the body braces (nested items included).
    pub body: Vec<Token>,
    /// Call sites found in the body.
    pub calls: Vec<CallSite>,
}

/// One named field of a struct definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldSym {
    /// Field name (`"0"`, `"1"`, … for tuple-struct elements).
    pub name: String,
    /// 1-based line of the field name.
    pub line: u32,
    /// Identifier tokens of the field's type (`Arc<Mutex<Controller>>`
    /// yields `["Arc", "Mutex", "Controller"]`).
    pub type_idents: Vec<String>,
    /// Whether the type contains a raw pointer (`*const` / `*mut`).
    pub raw_ptr: bool,
}

/// One `struct` definition.
#[derive(Debug, Clone)]
pub struct StructSym {
    /// The struct's name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Fields (empty for unit structs).
    pub fields: Vec<FieldSym>,
}

/// One `impl Trait for Type` block header (inherent impls are skipped —
/// the passes only need trait implementations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImplSym {
    /// The trait's last path segment (`EventQueue` in
    /// `impl cdna_sim::EventQueue<E> for Q`).
    pub trait_name: String,
    /// The implementing type's first identifier after `for`.
    pub type_name: String,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
}

/// Summary of one `match` expression.
#[derive(Debug, Clone)]
pub struct MatchSym {
    /// 1-based line of the `match` keyword.
    pub line: u32,
    /// Identifiers that appear immediately before `::` in arm patterns
    /// (e.g. `FaultKind` in `FaultKind::StaleSequence { .. }`).
    pub pattern_enums: BTreeSet<String>,
    /// Line of the first wildcard arm (`_` or a bare lowercase
    /// binding), if any.
    pub wildcard_line: Option<u32>,
}

/// Everything the passes need to know about one source file.
#[derive(Debug, Clone)]
pub struct FileSymbols {
    /// Repo-relative path.
    pub rel: String,
    /// Workspace crate key (`mem` for `crates/mem/…`, `repro` for the
    /// root package), or `None` for paths outside both.
    pub crate_key: Option<String>,
    /// `use` edges out of this file.
    pub uses: Vec<UseEdge>,
    /// `fn` items.
    pub fns: Vec<FnSym>,
    /// `match` expressions.
    pub matches: Vec<MatchSym>,
    /// `struct` definitions.
    pub structs: Vec<StructSym>,
    /// `impl Trait for Type` headers.
    pub impls: Vec<ImplSym>,
}

/// Maps a repo-relative path to its workspace crate key.
pub fn crate_key_of(rel: &str) -> Option<String> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        return rest.split('/').next().map(str::to_string);
    }
    if rel.starts_with("src/") || rel.starts_with("tests/") || rel.starts_with("examples/") {
        return Some("repro".to_string());
    }
    None
}

/// Extracts the symbol summary of one file from its scrubbed tokens.
pub fn parse_file(rel: &str, tokens: &[Token]) -> FileSymbols {
    FileSymbols {
        rel: rel.to_string(),
        crate_key: crate_key_of(rel),
        uses: parse_uses(tokens),
        fns: parse_fns(tokens),
        matches: parse_matches(tokens),
        structs: parse_structs(tokens),
        impls: parse_impls(tokens),
    }
}

fn parse_uses(tokens: &[Token]) -> Vec<UseEdge> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_ident && t.text == "use") {
            continue;
        }
        // `use` must start a declaration, not be e.g. a field named use
        // (impossible — keyword) or `pub use`: both forms count.
        let mut j = i + 1;
        // Skip leading `::` of `use ::std::…`.
        while tokens.get(j).map(|t| t.text.as_str()) == Some(":") {
            j += 1;
        }
        if let Some(first) = tokens.get(j).filter(|t| t.is_ident) {
            out.push(UseEdge {
                target: first.text.clone(),
                line: t.line,
            });
        }
    }
    out
}

fn parse_fns(tokens: &[Token]) -> Vec<FnSym> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_ident && tokens[i].text == "fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1).filter(|t| t.is_ident) else {
            i += 1;
            continue;
        };
        // Walk the signature to the body `{` (paren depth 0) or a `;`
        // (trait method declaration — no body).
        let mut j = i + 2;
        let mut par = 0i32;
        let mut open = None;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "(" | "[" => par += 1,
                ")" | "]" => par -= 1,
                "{" if par == 0 => {
                    open = Some(j);
                    break;
                }
                ";" if par == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        // Brace-match the body.
        let mut depth = 0i32;
        let mut k = open;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let close = k.min(tokens.len().saturating_sub(1));
        let body: Vec<Token> = tokens[open + 1..close.max(open + 1)].to_vec();
        out.push(FnSym {
            name: name_tok.text.clone(),
            line: tokens[i].line,
            end_line: tokens[close].line,
            calls: parse_calls(&body),
            body,
        });
        i = close + 1;
    }
    out
}

fn parse_calls(body: &[Token]) -> Vec<CallSite> {
    let mut out = Vec::new();
    for (i, t) in body.iter().enumerate() {
        if !t.is_ident || is_keyword(&t.text) {
            continue;
        }
        // `name(` is a call unless it is a definition (`fn name(`) or a
        // macro invocation (`name!(`). `name::<T>(` (turbofish) counts
        // too — `sum::<f64>()` is the repo's idiomatic reduction shape.
        if body.get(i + 1).map(|n| n.text.as_str()) != Some("(") && !turbofish_call(body, i) {
            continue;
        }
        if i > 0 && (body[i - 1].text == "fn" || body[i - 1].text == "!") {
            continue;
        }
        out.push(CallSite {
            callee: t.text.clone(),
            line: t.line,
            pos: i,
        });
    }
    out
}

/// Whether the identifier at `i` heads a turbofish call:
/// `name::<…>(`. Plain comparisons can never match because of the
/// required `::<` prefix.
fn turbofish_call(body: &[Token], i: usize) -> bool {
    if body.get(i + 1).map(|t| t.text.as_str()) != Some(":")
        || body.get(i + 2).map(|t| t.text.as_str()) != Some(":")
        || body.get(i + 3).map(|t| t.text.as_str()) != Some("<")
    {
        return false;
    }
    let mut depth = 1i32;
    let mut j = i + 4;
    // Generic argument lists are short; the bound only guards against
    // runaway scans on malformed input.
    while j < body.len() && j < i + 64 {
        let s = body[j].text.as_str();
        if matches!(s, ";" | "{" | ")") {
            return false;
        }
        depth += s.matches('<').count() as i32;
        depth -= s.matches('>').count() as i32;
        if depth <= 0 {
            return body.get(j + 1).map(|t| t.text.as_str()) == Some("(");
        }
        j += 1;
    }
    false
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "fn"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "in"
            | "as"
            | "else"
            | "impl"
            | "where"
            | "pub"
            | "use"
            | "mod"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "const"
            | "static"
            | "dyn"
    )
}

fn parse_matches(tokens: &[Token]) -> Vec<MatchSym> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident && t.text == "match" {
            if let Some(sym) = parse_one_match(tokens, i) {
                out.push(sym);
            }
        }
    }
    out
}

/// Parses the `match` whose keyword is at token `i`. Arms are split
/// structurally (depth-aware `=>` / `,` scanning), so enum paths in arm
/// *bodies* never count as scrutinized patterns.
fn parse_one_match(tokens: &[Token], i: usize) -> Option<MatchSym> {
    // Scrutinee runs to the first `{` at bracket depth 0 (Rust forbids
    // bare struct literals there, so this brace is the match body).
    let mut j = i + 1;
    let (mut par, mut brk) = (0i32, 0i32);
    loop {
        let t = tokens.get(j)?;
        match t.text.as_str() {
            "(" => par += 1,
            ")" => par -= 1,
            "[" => brk += 1,
            "]" => brk -= 1,
            "{" if par == 0 && brk == 0 => break,
            ";" if par == 0 => return None, // not a match expression after all
            _ => {}
        }
        j += 1;
    }
    let mut sym = MatchSym {
        line: tokens[i].line,
        pattern_enums: BTreeSet::new(),
        wildcard_line: None,
    };
    // Arm scanning inside the body.
    let (mut par, mut brk, mut rel) = (0i32, 0i32, 0i32);
    let mut in_pattern = true;
    let mut pat: Vec<usize> = Vec::new();
    j += 1;
    while j < tokens.len() {
        let text = tokens[j].text.as_str();
        let top = par == 0 && brk == 0 && rel == 0;
        if top && text == "}" {
            break; // end of match body
        }
        if in_pattern
            && top
            && text == "="
            && tokens.get(j + 1).map(|t| t.text.as_str()) == Some(">")
        {
            analyze_pattern(tokens, &pat, &mut sym);
            pat.clear();
            in_pattern = false;
            j += 2;
            continue;
        }
        if !in_pattern && top && text == "," {
            in_pattern = true;
            j += 1;
            continue;
        }
        match text {
            "(" => par += 1,
            ")" => par -= 1,
            "[" => brk += 1,
            "]" => brk -= 1,
            "{" => rel += 1,
            "}" => {
                rel -= 1;
                // A `{ … }` arm body just closed: the next tokens start
                // a new pattern (the separating comma is optional).
                if !in_pattern && par == 0 && brk == 0 && rel == 0 {
                    in_pattern = true;
                    j += 1;
                    continue;
                }
            }
            _ => {}
        }
        if in_pattern {
            if top && text == "," {
                pat.clear(); // stray separator (e.g. after a block arm)
            } else {
                pat.push(j);
            }
        }
        j += 1;
    }
    Some(sym)
}

fn analyze_pattern(tokens: &[Token], pat: &[usize], sym: &mut MatchSym) {
    // Cut a trailing `if` guard; strip leading or-pattern pipes.
    let guard = pat
        .iter()
        .position(|&k| tokens[k].is_ident && tokens[k].text == "if");
    let mut p = &pat[..guard.unwrap_or(pat.len())];
    while p.first().map(|&k| tokens[k].text.as_str()) == Some("|") {
        p = &p[1..];
    }
    if p.len() == 1 {
        let t = &tokens[p[0]];
        let binding = t.is_ident
            && !is_keyword(&t.text)
            && t.text != "true"
            && t.text != "false"
            && t.text.starts_with(|c: char| c.is_ascii_lowercase());
        if (t.text == "_" || binding) && sym.wildcard_line.is_none() {
            sym.wildcard_line = Some(t.line);
        }
    }
    for (a, &k) in p.iter().enumerate() {
        let t = &tokens[k];
        if t.is_ident
            && p.get(a + 1).map(|&x| tokens[x].text.as_str()) == Some(":")
            && p.get(a + 2).map(|&x| tokens[x].text.as_str()) == Some(":")
        {
            sym.pattern_enums.insert(t.text.clone());
        }
    }
}

/// Skips a `<…>` generic region starting at the `<` token at `i`;
/// returns the index just past the matching `>`. A `>` preceded by `-`
/// (a `->` arrow inside an `fn(..) -> T` type) does not close.
fn skip_angles(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "<" => depth += 1,
            ">" if j > 0 && tokens[j - 1].text == "-" => {}
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Collects the identifiers of one field-type token region, skipping
/// lifetimes (`'a`), and notes raw pointers.
fn field_from_type(name: &str, line: u32, tokens: &[Token], region: &[usize]) -> FieldSym {
    let mut type_idents = Vec::new();
    let mut raw_ptr = false;
    for (a, &k) in region.iter().enumerate() {
        let t = &tokens[k];
        if t.text == "*" {
            if let Some(&n) = region.get(a + 1) {
                if tokens[n].text == "const" || tokens[n].text == "mut" {
                    raw_ptr = true;
                }
            }
        }
        if !t.is_ident || is_keyword(&t.text) {
            continue;
        }
        if a > 0 && tokens[region[a - 1]].text == "'" {
            continue; // lifetime name
        }
        type_idents.push(t.text.clone());
    }
    FieldSym {
        name: name.to_string(),
        line,
        type_idents,
        raw_ptr,
    }
}

fn parse_structs(tokens: &[Token]) -> Vec<StructSym> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_ident && tokens[i].text == "struct") {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1).filter(|t| t.is_ident) else {
            i += 1;
            continue;
        };
        let mut sym = StructSym {
            name: name_tok.text.clone(),
            line: tokens[i].line,
            fields: Vec::new(),
        };
        // Past optional generics and a `where` clause to the body.
        let mut j = i + 2;
        if tokens.get(j).map(|t| t.text.as_str()) == Some("<") {
            j = skip_angles(tokens, j);
        }
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                ";" => {
                    // Unit struct (or `struct Foo(..);` terminator).
                    break;
                }
                "(" => {
                    // Tuple struct: elements at paren depth 1, split on
                    // top-level commas, named by position.
                    let (mut par, mut ang) = (0i32, 0i32);
                    let mut region: Vec<usize> = Vec::new();
                    let mut idx = 0usize;
                    let start_line = tokens[j].line;
                    while j < tokens.len() {
                        let text = tokens[j].text.as_str();
                        match text {
                            "(" | "[" => par += 1,
                            ")" | "]" => par -= 1,
                            "<" => ang += 1,
                            ">" if tokens[j - 1].text != "-" => ang -= 1,
                            _ => {}
                        }
                        let elem_end = (text == "," && par == 1 && ang == 0) || par == 0;
                        if elem_end {
                            if !region.is_empty() {
                                sym.fields.push(field_from_type(
                                    &idx.to_string(),
                                    start_line,
                                    tokens,
                                    &region,
                                ));
                                idx += 1;
                                region.clear();
                            }
                            if par == 0 {
                                break;
                            }
                        } else if par >= 1 && text != "(" && text != "pub" {
                            region.push(j);
                        }
                        j += 1;
                    }
                    break;
                }
                "{" => {
                    // Braced body: `name: Type,` fields at depth 1.
                    let (mut brc, mut par, mut ang) = (0i32, 0i32, 0i32);
                    let mut field: Option<(String, u32)> = None;
                    let mut region: Vec<usize> = Vec::new();
                    while j < tokens.len() {
                        let text = tokens[j].text.as_str();
                        match text {
                            "{" => brc += 1,
                            "}" => brc -= 1,
                            "(" | "[" => par += 1,
                            ")" | "]" => par -= 1,
                            "<" => ang += 1,
                            ">" if tokens[j - 1].text != "-" => ang -= 1,
                            _ => {}
                        }
                        let at_top = brc == 1 && par == 0 && ang == 0;
                        if field.is_none()
                            && at_top
                            && tokens[j].is_ident
                            && tokens[j].text != "pub"
                            && !is_keyword(&tokens[j].text)
                            && tokens.get(j + 1).map(|t| t.text.as_str()) == Some(":")
                            && tokens.get(j + 2).map(|t| t.text.as_str()) != Some(":")
                        {
                            field = Some((tokens[j].text.clone(), tokens[j].line));
                            j += 2; // skip the name and the `:`
                            continue;
                        }
                        let ends = (text == "," && at_top) || brc == 0;
                        if ends {
                            if let Some((name, line)) = field.take() {
                                sym.fields
                                    .push(field_from_type(&name, line, tokens, &region));
                            }
                            region.clear();
                            if brc == 0 {
                                break;
                            }
                        } else if field.is_some() {
                            region.push(j);
                        }
                        j += 1;
                    }
                    break;
                }
                _ => j += 1,
            }
        }
        out.push(sym);
        i = j.max(i + 2);
    }
    out
}

fn parse_impls(tokens: &[Token]) -> Vec<ImplSym> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_ident && tokens[i].text == "impl") {
            i += 1;
            continue;
        }
        let line = tokens[i].line;
        let mut j = i + 1;
        if tokens.get(j).map(|t| t.text.as_str()) == Some("<") {
            j = skip_angles(tokens, j);
        }
        // Trait path: idents separated by `::`, optional trailing
        // generic args. `impl Type { … }` (no `for`) is skipped.
        let mut last_seg: Option<String> = None;
        let mut found_for = false;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_ident && t.text == "for" {
                found_for = true;
                j += 1;
                break;
            }
            if t.text == "{" || t.text == ";" || t.text == "(" {
                break;
            }
            if t.text == "<" {
                j = skip_angles(tokens, j);
                continue;
            }
            if t.is_ident && !is_keyword(&t.text) {
                last_seg = Some(t.text.clone());
            }
            j += 1;
        }
        if !found_for {
            i = j.max(i + 1);
            continue;
        }
        // Implementing type: last path segment before `<` or `{`.
        let mut type_name: Option<String> = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.text == "{" || t.text == ";" {
                break;
            }
            if t.text == "<" {
                j = skip_angles(tokens, j);
                continue;
            }
            let lifetime = j > 0 && tokens[j - 1].text == "'";
            if t.is_ident && !is_keyword(&t.text) && t.text != "for" && !lifetime {
                type_name = Some(t.text.clone());
            }
            j += 1;
        }
        if let (Some(trait_name), Some(type_name)) = (last_seg, type_name) {
            out.push(ImplSym {
                trait_name,
                type_name,
                line,
            });
        }
        i = j.max(i + 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{scrub, tokenize};

    fn sym(src: &str) -> FileSymbols {
        parse_file("crates/mem/src/x.rs", &tokenize(&scrub(src).masked))
    }

    #[test]
    fn crate_keys() {
        assert_eq!(
            crate_key_of("crates/mem/src/pool.rs").as_deref(),
            Some("mem")
        );
        assert_eq!(crate_key_of("tests/check.rs").as_deref(), Some("repro"));
        assert_eq!(crate_key_of("README.md"), None);
    }

    #[test]
    fn uses_extracted() {
        let s = sym("use cdna_mem::PageId;\nuse std::fmt;\npub use crate::x::Y;\n");
        let targets: Vec<&str> = s.uses.iter().map(|u| u.target.as_str()).collect();
        assert_eq!(targets, ["cdna_mem", "std", "crate"]);
        assert_eq!(s.uses[0].line, 1);
    }

    #[test]
    fn fns_and_calls_extracted() {
        let s = sym("fn a() { b(); c.d(1); }\nimpl X { fn e(&self) -> u32 { f() } }\n");
        let names: Vec<&str> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "e"]);
        let calls: Vec<&str> = s.fns[0].calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(calls, ["b", "d"]);
        assert_eq!(s.fns[1].calls[0].callee, "f");
    }

    #[test]
    fn macro_invocations_are_not_calls() {
        let s = sym("fn a() { assert!(x); write!(w, \"y\"); real(); }");
        let calls: Vec<&str> = s.fns[0].calls.iter().map(|c| c.callee.as_str()).collect();
        assert_eq!(calls, ["real"]);
    }

    #[test]
    fn match_wildcard_and_enums() {
        let s = sym(
            "fn a(k: FaultKind) -> u32 {\n match k {\n  FaultKind::EmptySlot { index } => 1,\n  _ => 0,\n }\n}",
        );
        assert_eq!(s.matches.len(), 1);
        let m = &s.matches[0];
        assert!(m.pattern_enums.contains("FaultKind"));
        assert_eq!(m.wildcard_line, Some(4));
    }

    #[test]
    fn exhaustive_match_has_no_wildcard() {
        let s = sym(
            "fn a(e: MemError) {\n match e {\n  MemError::OutOfMemory => {}\n  MemError::Pinned | MemError::NotPinned => {}\n  MemError::NoSuchPage => {}\n  MemError::NotOwner { page, claimed, actual } => {}\n }\n}",
        );
        let m = &s.matches[0];
        assert!(m.pattern_enums.contains("MemError"));
        assert_eq!(m.wildcard_line, None);
    }

    #[test]
    fn enum_in_arm_body_is_not_a_pattern() {
        // `FaultKind::…` on the value side must not mark the match as
        // scrutinizing FaultKind.
        let s = sym("fn a(x: u32) -> FaultKind {\n match x {\n  0 => FaultKind::EmptySlot { index: 0 },\n  n => FaultKind::ShadowViolation { code: n },\n }\n}");
        let m = &s.matches[0];
        assert!(m.pattern_enums.is_empty(), "{:?}", m.pattern_enums);
        assert_eq!(m.wildcard_line, Some(4), "binding arm is a wildcard");
    }

    #[test]
    fn structs_extracted_with_field_types() {
        let s = sym(
            "pub struct Q<E> {\n pub pending: Vec<(u64, E)>,\n ctrl: Arc<Mutex<Controller>>,\n}\nstruct Unit;\nstruct Pair(pub u32, Rc<Frame>);\n",
        );
        let names: Vec<&str> = s.structs.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, ["Q", "Unit", "Pair"]);
        let q = &s.structs[0];
        assert_eq!(q.fields.len(), 2);
        assert_eq!(q.fields[0].name, "pending");
        assert_eq!(q.fields[0].line, 2);
        assert_eq!(q.fields[0].type_idents, ["Vec", "u64", "E"]);
        assert_eq!(q.fields[1].type_idents, ["Arc", "Mutex", "Controller"]);
        assert!(s.structs[1].fields.is_empty());
        let pair = &s.structs[2];
        assert_eq!(pair.fields.len(), 2);
        assert_eq!(pair.fields[0].name, "0");
        assert_eq!(pair.fields[1].type_idents, ["Rc", "Frame"]);
    }

    #[test]
    fn raw_pointer_fields_are_marked() {
        let s = sym("struct P {\n ptr: *mut u8,\n n: usize,\n}\n");
        assert!(s.structs[0].fields[0].raw_ptr);
        assert!(!s.structs[0].fields[1].raw_ptr);
    }

    #[test]
    fn trait_impls_extracted_inherent_skipped() {
        let s = sym(
            "impl Q { fn a(&self) {} }\nimpl<E: Clone> EventQueue<E> for Q<E> { fn pop(&mut self) {} }\nimpl fmt::Debug for Unit {}\n",
        );
        assert_eq!(s.impls.len(), 2);
        assert_eq!(s.impls[0].trait_name, "EventQueue");
        assert_eq!(s.impls[0].type_name, "Q");
        assert_eq!(s.impls[0].line, 2);
        assert_eq!(s.impls[1].trait_name, "Debug");
        assert_eq!(s.impls[1].type_name, "Unit");
    }

    #[test]
    fn call_positions_are_body_token_indices() {
        let s = sym("fn a() { b(); c(); }");
        let calls = &s.fns[0].calls;
        assert!(calls[0].pos < calls[1].pos);
        assert_eq!(s.fns[0].body[calls[1].pos].text, "c");
    }

    #[test]
    fn guard_and_bool_matches() {
        let s = sym("fn a(b: bool) {\n match b {\n  true => {}\n  false => {}\n }\n}");
        assert_eq!(
            s.matches[0].wildcard_line, None,
            "bool literals are not bindings"
        );
        let s =
            sym("fn a(k: K) {\n match k {\n  K::A => {}\n  _ if noisy() => {}\n  _ => {}\n }\n}");
        assert_eq!(
            s.matches[0].wildcard_line,
            Some(4),
            "guarded wildcard counts"
        );
    }
}
