//! cdna-check: hermetic static analysis + dynamic DMA-invariant
//! checking for the CDNA workspace.
//!
//! CDNA's safety argument rests on invariants — strictly increasing
//! sequence numbers, page-ownership validation, pins that outlive
//! in-flight DMA — that historically lived only implicitly in
//! `cdna-core`'s protection engine and `cdna-mem`'s page pool. This
//! crate makes them mechanically checkable, twice over:
//!
//! * **Static pass** ([`rules`], on top of [`lexer`]): a hand-rolled
//!   token scanner that walks the workspace and enforces the repo's
//!   correctness rules — no wall-clock time in simulation code, no
//!   nondeterministic map iteration, no panics in library code, no
//!   `unsafe`, no external-registry dependencies, no undocumented
//!   public items. Violations can be suppressed in-source with
//!   `// cdna-check: allow(<rule>)` annotations; an annotation that
//!   suppresses nothing is itself a `unused-allow` warning.
//! * **Symbol-graph pass** ([`parse`], [`graph`], [`analyses`]): an
//!   item-level parser extracts per-crate symbols (`use` edges, `fn`
//!   call sites, `match` summaries) and three interprocedural rules run
//!   over the whole workspace at once — `layering` (the crate DAG must
//!   flow strictly downward), `must-pair` (every pin reaches an unpin/
//!   reap on all non-panic paths, via a CFG-lite token walk), and
//!   `exhaustive-fault` (no wildcard `match` on `FaultKind`/`MemError`/
//!   `ShadowViolation`).
//! * **Determinism-soundness passes** ([`determinism`], on the
//!   [`dataflow`] substrate): `merge-order`, `clock-purity`,
//!   `jobs-leak`, and `float-accum` prove the repo's
//!   `--jobs 1 ≡ --jobs N` byte-identity guarantee over the code
//!   instead of sampling it with differential tests. The scanner also
//!   eats the dogfood: [`analyses::analyze_jobs`] shards per-file work
//!   over `cdna_sim::par` and merges in path order, so its own report
//!   is byte-identical at any worker count.
//! * **Dynamic pass** ([`shadow`]): a [`DmaShadow`] that mirrors every
//!   page through the `Free → Owned → Pinned → InFlight → Completed`
//!   lifecycle and every context's sequence stream, independently
//!   re-checking what the protection path claims at runtime.
//!
//! Both run under `cargo test` and as the `cdna-check` binary
//! (`cargo run -p cdna-check`), which exits non-zero on any violation
//! and can emit a machine-readable JSON report ([`report`]).

#![warn(missing_docs)]

pub mod analyses;
pub mod calibrate;
pub mod dataflow;
pub mod determinism;
pub mod graph;
pub mod lexer;
pub mod locks;
pub mod parse;
pub mod report;
pub mod rules;
pub mod shadow;
pub mod taint;

pub use analyses::{analyze, analyze_jobs, Analysis, SourceFile};
pub use report::render_json;
pub use rules::check_repo_jobs;
pub use rules::{
    check_manifest, check_repo, check_source, rule_code, rule_severity, Diagnostic, FileKind,
    StaticReport, RULE_NAMES,
};
pub use shadow::{DmaShadow, ShadowDir, ShadowState, ShadowViolation, ViolationKind};

use std::path::PathBuf;

/// The workspace root this crate was built from, for self-checking:
/// `crates/check` → two levels up.
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}
