//! A minimal hand-rolled Rust source scanner.
//!
//! The static pass does not need a real parser: every rule it enforces
//! is visible at the token level once comments and string literals are
//! out of the way. This module provides the passes the rules build on:
//!
//! 1. [`scrub`] — replaces comments and string/char-literal *contents*
//!    with spaces (newlines preserved, so line numbers survive), while
//!    harvesting `// cdna-check: allow(...)` annotations from the
//!    comment text it removes.
//! 2. [`tokenize`] — splits the scrubbed text into identifier and
//!    punctuation tokens with line numbers.
//! 3. [`test_lines`] — marks the line ranges occupied by `#[cfg(test)]`
//!    / `#[test]` items so rules can exempt test code.

use std::collections::BTreeMap;

/// A per-line or per-file lint suppression harvested from comments.
///
/// Syntax, anywhere inside a `//` or `/* */` comment:
///
/// ```text
/// // cdna-check: allow(panic)
/// // cdna-check: allow(panic, nondeterministic-map): justification
/// // cdna-check: allow-file(sim-time): justification
/// ```
///
/// A line-scoped `allow` suppresses diagnostics on its own line and the
/// line immediately after it; `allow-file` suppresses the rule for the
/// whole file.
#[derive(Debug, Clone, Default)]
pub struct Allows {
    /// line number (1-based) → rule names allowed on that line.
    by_line: BTreeMap<u32, Vec<String>>,
    /// Rule names allowed for the entire file.
    file_wide: Vec<String>,
}

impl Allows {
    /// Whether `rule` is suppressed at `line`.
    pub fn permits(&self, rule: &str, line: u32) -> bool {
        if self.file_wide.iter().any(|r| r == rule || r == "all") {
            return true;
        }
        // An annotation applies to its own line (trailing comment) and
        // to the following line (comment above the offending code).
        for l in [line, line.saturating_sub(1)] {
            if let Some(rules) = self.by_line.get(&l) {
                if rules.iter().any(|r| r == rule || r == "all") {
                    return true;
                }
            }
        }
        false
    }

    /// Total number of annotations present (for report statistics).
    pub fn count(&self) -> usize {
        self.by_line.values().map(Vec::len).sum::<usize>() + self.file_wide.len()
    }

    fn record(&mut self, comment: &str, line: u32) {
        for (marker, file_wide) in [
            ("cdna-check: allow-file(", true),
            ("cdna-check: allow(", false),
        ] {
            let Some(start) = comment.find(marker) else {
                continue;
            };
            let rest = &comment[start + marker.len()..];
            let Some(end) = rest.find(')') else { continue };
            for rule in rest[..end].split(',') {
                let rule = rule.trim().to_string();
                if rule.is_empty() {
                    continue;
                }
                if file_wide {
                    self.file_wide.push(rule);
                } else {
                    self.by_line.entry(line).or_default().push(rule);
                }
            }
            return; // "allow-file(" contains "allow(": don't double-record
        }
    }
}

/// Result of [`scrub`]: comment/string-free source plus the harvested
/// annotations.
#[derive(Debug)]
pub struct Scrubbed {
    /// The source with comments and literal contents blanked to spaces.
    /// Newlines are preserved so positions map to original lines.
    pub masked: String,
    /// Lint suppressions found in the removed comments.
    pub allows: Allows,
}

/// Strips comments and string/char-literal contents from Rust source.
///
/// Handles line comments, nested block comments, string literals with
/// escapes, raw strings (`r"…"`, `r#"…"#`, any hash depth, with `b`
/// prefixes), and the `'x'` char-literal vs `'a` lifetime ambiguity.
/// The scanner is byte-wise: every delimiter it cares about is ASCII,
/// and non-ASCII bytes are simply copied (outside literals) or blanked
/// (inside), so multi-byte characters are never split across modes.
pub fn scrub(src: &str) -> Scrubbed {
    let bytes = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut allows = Allows::default();
    let mut line: u32 = 1;
    let mut i = 0;

    // Blanks bytes i..end into `out`, preserving newlines and counting
    // lines; returns with i == end.
    let blank = |out: &mut Vec<u8>, line: &mut u32, bytes: &[u8], from: usize, to: usize| {
        for &b in &bytes[from..to] {
            if b == b'\n' {
                *line += 1;
                out.push(b'\n');
            } else {
                out.push(b' ');
            }
        }
    };

    while i < bytes.len() {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied().unwrap_or(0);
        if b == b'/' && next == b'/' {
            // Line comment: blank to end of line, harvest annotation.
            let end = src[i..].find('\n').map(|o| i + o).unwrap_or(bytes.len());
            allows.record(&src[i..end], line);
            blank(&mut out, &mut line, bytes, i, end);
            i = end;
        } else if b == b'/' && next == b'*' {
            // Block comment, possibly nested.
            let start_line = line;
            let start = i;
            let mut depth = 1;
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            allows.record(&src[start..i], start_line);
            blank(&mut out, &mut line, bytes, start, i);
        } else if b == b'"' {
            // String literal: blank the contents, keep the quotes.
            out.push(b'"');
            i += 1;
            let body = i;
            while i < bytes.len() {
                if bytes[i] == b'\\' {
                    i = (i + 2).min(bytes.len());
                } else if bytes[i] == b'"' {
                    break;
                } else {
                    i += 1;
                }
            }
            blank(&mut out, &mut line, bytes, body, i);
            if i < bytes.len() {
                out.push(b'"');
                i += 1;
            }
        } else if (b == b'r' || b == b'b') && raw_string_open(bytes, i).is_some() {
            // Raw (byte) string: r"…", r#"…"#, br#"…"#, …
            let (hashes, body) = raw_string_open(bytes, i).unwrap_or((0, i + 2));
            out.extend(std::iter::repeat_n(b' ', body - 1 - i));
            out.push(b'"');
            let close = format!("\"{}", "#".repeat(hashes));
            let end = src[body..]
                .find(&close)
                .map(|o| body + o)
                .unwrap_or(bytes.len());
            blank(&mut out, &mut line, bytes, body, end);
            out.push(b'"');
            let after = (end + close.len()).min(bytes.len());
            out.extend(std::iter::repeat_n(b' ', after.saturating_sub(end + 1)));
            i = after;
        } else if b == b'\'' {
            // Char literal or lifetime.
            if let Some(len) = char_literal_len(bytes, i) {
                out.push(b'\'');
                blank(&mut out, &mut line, bytes, i + 1, i + len - 1);
                out.push(b'\'');
                i += len;
            } else {
                out.push(b'\'');
                i += 1;
            }
        } else {
            if b == b'\n' {
                line += 1;
            }
            out.push(b);
            i += 1;
        }
    }

    Scrubbed {
        masked: String::from_utf8_lossy(&out).into_owned(),
        allows,
    }
}

/// If a raw string starts at byte `i` (an `r` or `b`), returns
/// (hash count, index of the first body byte).
fn raw_string_open(bytes: &[u8], i: usize) -> Option<(usize, usize)> {
    // Reject identifier context (e.g. the trailing r of `for`).
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return None;
    }
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&b'"') {
        Some((hashes, j + 1))
    } else {
        None
    }
}

/// If a char literal starts at byte `i` (a `'`), returns its byte
/// length including both quotes; `None` for lifetimes.
fn char_literal_len(bytes: &[u8], i: usize) -> Option<usize> {
    let first = *bytes.get(i + 1)?;
    if first == b'\\' {
        // Escaped char: find the closing quote within a short window.
        let window = &bytes[i + 3..(i + 14).min(bytes.len())];
        // Window starts 3 bytes past `i`; +1 includes the quote itself.
        window.iter().position(|&b| b == b'\'').map(|off| off + 4)
    } else if first != b'\'' {
        // Find the end of the (possibly multi-byte) char.
        let mut j = i + 2;
        while j < bytes.len() && bytes[j] & 0xC0 == 0x80 {
            j += 1; // UTF-8 continuation bytes
        }
        if bytes.get(j) == Some(&b'\'') {
            Some(j + 1 - i)
        } else {
            None // lifetime like 'a
        }
    } else {
        None
    }
}

/// One token of scrubbed source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text (identifier, number, or single punctuation char).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// Whether this is an identifier/keyword token.
    pub is_ident: bool,
}

/// Splits scrubbed source into identifier and punctuation tokens.
pub fn tokenize(masked: &str) -> Vec<Token> {
    let bytes = masked.as_bytes();
    let mut tokens = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
        } else if b.is_ascii_whitespace() {
            i += 1;
        } else if b.is_ascii_alphanumeric() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            tokens.push(Token {
                text: masked[start..i].to_string(),
                line,
                is_ident: !b.is_ascii_digit(),
            });
        } else {
            // Single punctuation byte (non-ASCII bytes land here too and
            // are carried through opaquely).
            let start = i;
            i += 1;
            while i < bytes.len() && bytes[i] & 0xC0 == 0x80 {
                i += 1; // keep a multi-byte char as one token
            }
            tokens.push(Token {
                text: masked[start..i].to_string(),
                line,
                is_ident: false,
            });
        }
    }
    tokens
}

/// Returns the set of 1-based lines that belong to test-only items:
/// anything under a `#[cfg(test)]` attribute or a `#[test]` function.
///
/// Detection is token-based: on seeing the attribute, the scanner skips
/// any further attributes, then brace-matches the next `{ … }` block and
/// marks every line it spans.
pub fn test_lines(tokens: &[Token]) -> std::collections::BTreeSet<u32> {
    let mut lines = std::collections::BTreeSet::new();
    let mut i = 0;
    while i < tokens.len() {
        if let Some(attr_end) = match_test_attr(tokens, i) {
            // Skip any further attributes (e.g. #[allow(...)]).
            let mut j = attr_end;
            while j + 1 < tokens.len() && tokens[j].text == "#" && tokens[j + 1].text == "[" {
                j = skip_attr(tokens, j);
            }
            // Find the item's opening brace and match it. A `;` first
            // means an item with no body (e.g. `mod tests;`).
            while j < tokens.len() && tokens[j].text != "{" && tokens[j].text != ";" {
                j += 1;
            }
            if j < tokens.len() && tokens[j].text == "{" {
                let mut depth = 0;
                let start_line = tokens[i].line;
                while j < tokens.len() {
                    match tokens[j].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let end_line = tokens[j.min(tokens.len() - 1)].line;
                for l in start_line..=end_line {
                    lines.insert(l);
                }
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    lines
}

/// If `#[test]` or `#[cfg(test)]` (or `#[cfg(…, test, …)]`) starts at
/// token `i`, returns the index one past the closing `]`.
fn match_test_attr(tokens: &[Token], i: usize) -> Option<usize> {
    if tokens.get(i)?.text != "#" || tokens.get(i + 1)?.text != "[" {
        return None;
    }
    let end = skip_attr(tokens, i);
    let inner: Vec<&str> = tokens[i + 2..end.saturating_sub(1)]
        .iter()
        .map(|t| t.text.as_str())
        .collect();
    let is_test = match inner.as_slice() {
        ["test"] => true,
        ["cfg", "(", rest @ ..] => rest.contains(&"test"),
        _ => false,
    };
    is_test.then_some(end)
}

/// Returns the index one past the `]` closing the attribute whose `#`
/// is at token `i`.
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    let mut depth = 0;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let x = \"unwrap()\"; // unwrap()\nlet y = 1; /* panic! */";
        let s = scrub(src);
        assert!(!s.masked.contains("unwrap"));
        assert!(!s.masked.contains("panic"));
        assert_eq!(s.masked.lines().count(), src.lines().count());
    }

    #[test]
    fn escaped_quote_does_not_close_string() {
        let src = r#"let x = "a\"unwrap()\"b"; let y = 1;"#;
        let s = scrub(src);
        assert!(!s.masked.contains("unwrap"));
        assert!(s.masked.contains("let y"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = r##"let x = r#"HashMap"#; let y = 2;"##;
        let s = scrub(src);
        assert!(!s.masked.contains("HashMap"));
        assert!(s.masked.contains("let y"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner unsafe */ still comment */ fn f() {}";
        let s = scrub(src);
        assert!(!s.masked.contains("unsafe"));
        assert!(s.masked.contains("fn f"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = '\"'; let d = 'x'; }";
        let s = scrub(src);
        assert!(s.masked.contains("fn f<'a>"));
        // The quote inside the char literal must not open a string.
        assert!(s.masked.contains("let d"));
    }

    #[test]
    fn unicode_in_strings_survives() {
        let src = "let s = \"ünïcode\"; let t = 9;";
        let s = scrub(src);
        assert!(s.masked.contains("let t"));
    }

    #[test]
    fn line_allow_harvested() {
        let src = "foo(); // cdna-check: allow(panic): reason\nbar();";
        let s = scrub(src);
        assert!(s.allows.permits("panic", 1));
        assert!(s.allows.permits("panic", 2), "applies to next line too");
        assert!(!s.allows.permits("panic", 3));
        assert!(!s.allows.permits("unsafe", 1));
    }

    #[test]
    fn file_allow_harvested() {
        let src = "// cdna-check: allow-file(sim-time): wall clock ok here\nfn f() {}\n";
        let s = scrub(src);
        assert!(s.allows.permits("sim-time", 40));
        assert!(!s.allows.permits("panic", 1));
    }

    #[test]
    fn multi_rule_allow() {
        let src = "x(); // cdna-check: allow(panic, nondeterministic-map)";
        let s = scrub(src);
        assert!(s.allows.permits("panic", 1));
        assert!(s.allows.permits("nondeterministic-map", 1));
    }

    #[test]
    fn tokenizer_line_numbers() {
        let toks = tokenize("a\nb c\n  d");
        let lines: Vec<(String, u32)> = toks.iter().map(|t| (t.text.clone(), t.line)).collect();
        assert_eq!(
            lines,
            vec![
                ("a".into(), 1),
                ("b".into(), 2),
                ("c".into(), 2),
                ("d".into(), 3)
            ]
        );
    }

    #[test]
    fn cfg_test_block_detected() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn more() {}";
        let s = scrub(src);
        let toks = tokenize(&s.masked);
        let tl = test_lines(&toks);
        assert!(!tl.contains(&1));
        assert!(tl.contains(&4));
        assert!(!tl.contains(&6));
    }

    #[test]
    fn test_fn_attr_detected() {
        let src = "#[test]\nfn t() {\n  boom();\n}\nfn lib() {}";
        let s = scrub(src);
        let tl = test_lines(&tokenize(&s.masked));
        assert!(tl.contains(&3));
        assert!(!tl.contains(&5));
    }

    #[test]
    fn should_panic_attr_between_test_and_body() {
        let src = "#[test]\n#[should_panic(expected = \"boom\")]\nfn t() {\n  boom();\n}";
        let s = scrub(src);
        let tl = test_lines(&tokenize(&s.masked));
        assert!(tl.contains(&4));
    }
}
