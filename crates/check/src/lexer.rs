//! A minimal hand-rolled Rust source scanner.
//!
//! The static pass does not need a real parser: every rule it enforces
//! is visible at the token level once comments and string literals are
//! out of the way. This module provides the passes the rules build on:
//!
//! 1. [`scrub`] — replaces comments and string/char-literal *contents*
//!    with spaces (newlines preserved, so line numbers survive), while
//!    harvesting `// cdna-check: allow(...)` annotations from the
//!    comment text it removes.
//! 2. [`tokenize`] — splits the scrubbed text into identifier and
//!    punctuation tokens with line numbers.
//! 3. [`test_lines`] — marks the line ranges occupied by `#[cfg(test)]`
//!    / `#[test]` items so rules can exempt test code.

/// One harvested suppression annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// 1-based line the annotation text sits on (for multi-line block
    /// comments, the line of the `cdna-check:` marker itself, not the
    /// line the comment opened on).
    pub line: u32,
    /// The rule name being allowed (or `all`).
    pub rule: String,
    /// Whether this is an `allow-file` (whole-file) suppression.
    pub file_wide: bool,
}

/// A per-line or per-file lint suppression harvested from comments.
///
/// Syntax, anywhere inside a `//` or `/* */` comment:
///
/// ```text
/// // cdna-check: allow(panic)
/// // cdna-check: allow(panic, nondeterministic-map): justification
/// // cdna-check: allow-file(sim-time): justification
/// ```
///
/// A line-scoped `allow` suppresses diagnostics on its own line and the
/// line immediately after it; `allow-file` suppresses the rule for the
/// whole file. Doc comments (`///`, `//!`, `/** */`, `/*! */`) are NOT
/// harvested: annotation syntax quoted in documentation (like the block
/// above) must never become a live suppression.
#[derive(Debug, Clone, Default)]
pub struct Allows {
    entries: Vec<AllowEntry>,
}

impl Allows {
    /// Whether `rule` is suppressed at `line`.
    pub fn permits(&self, rule: &str, line: u32) -> bool {
        self.match_entry(rule, line).is_some()
    }

    /// Index of the entry that suppresses `rule` at `line`, if any.
    /// Line-scoped entries win over file-wide ones, so "used allow"
    /// accounting credits the most specific annotation.
    pub fn match_entry(&self, rule: &str, line: u32) -> Option<usize> {
        let hits = |e: &AllowEntry| e.rule == rule || e.rule == "all";
        // A line annotation applies to its own line (trailing comment)
        // and to the following line (comment above the offending code).
        // Exact-line matches are credited before line-above matches so
        // adjacent annotations each claim their own diagnostic.
        self.entries
            .iter()
            .position(|e| !e.file_wide && hits(e) && e.line == line)
            .or_else(|| {
                self.entries
                    .iter()
                    .position(|e| !e.file_wide && hits(e) && e.line + 1 == line)
            })
            .or_else(|| self.entries.iter().position(|e| e.file_wide && hits(e)))
    }

    /// Every harvested annotation, in source order.
    pub fn entries(&self) -> &[AllowEntry] {
        &self.entries
    }

    /// Total number of annotations present (for report statistics).
    pub fn count(&self) -> usize {
        self.entries.len()
    }

    fn record(&mut self, comment: &str, line: u32) {
        if is_doc_comment_text(comment) {
            return;
        }
        for (marker, file_wide) in [
            ("cdna-check: allow-file(", true),
            ("cdna-check: allow(", false),
        ] {
            let Some(start) = comment.find(marker) else {
                continue;
            };
            // Attribute the annotation to the line the marker text is
            // on, not the line the (possibly multi-line) comment opened
            // on — otherwise block-comment annotations suppress the
            // wrong span.
            let marker_line = line + comment[..start].matches('\n').count() as u32;
            let rest = &comment[start + marker.len()..];
            let Some(end) = rest.find(')') else { continue };
            for rule in rest[..end].split(',') {
                let rule = rule.trim().to_string();
                if rule.is_empty() {
                    continue;
                }
                self.entries.push(AllowEntry {
                    line: marker_line,
                    rule,
                    file_wide,
                });
            }
            return; // "allow-file(" contains "allow(": don't double-record
        }
    }
}

/// Whether comment text (starting at its `//` or `/*` delimiter) is a
/// doc comment. `////…` and `/**/` are plain comments per the Rust
/// reference, so they stay harvestable.
fn is_doc_comment_text(c: &str) -> bool {
    (c.starts_with("///") && !c.starts_with("////"))
        || c.starts_with("//!")
        || (c.starts_with("/**") && !c.starts_with("/**/"))
        || c.starts_with("/*!")
}

/// Result of [`scrub`]: comment/string-free source plus the harvested
/// annotations.
#[derive(Debug)]
pub struct Scrubbed {
    /// The source with comments and literal contents blanked to spaces.
    /// Newlines are preserved so positions map to original lines.
    pub masked: String,
    /// Lint suppressions found in the removed comments.
    pub allows: Allows,
    /// Contents of ordinary `"…"` literals, keyed by the line the
    /// opening quote sits on, in source order. The masked text blanks
    /// literal bodies, so passes that need to resolve a string — e.g.
    /// the JSON key naming a serialized field (CDNA015/CDNA016) — look
    /// it up here by line instead.
    pub strings: Vec<(u32, String)>,
}

/// Strips comments and string/char-literal contents from Rust source.
///
/// Handles line comments, nested block comments, string literals with
/// escapes, raw strings (`r"…"`, `r#"…"#`, any hash depth, with `b`
/// prefixes), and the `'x'` char-literal vs `'a` lifetime ambiguity.
/// The scanner is byte-wise: every delimiter it cares about is ASCII,
/// and non-ASCII bytes are simply copied (outside literals) or blanked
/// (inside), so multi-byte characters are never split across modes.
pub fn scrub(src: &str) -> Scrubbed {
    let bytes = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut allows = Allows::default();
    let mut strings: Vec<(u32, String)> = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;

    // Blanks bytes i..end into `out`, preserving newlines and counting
    // lines; returns with i == end.
    let blank = |out: &mut Vec<u8>, line: &mut u32, bytes: &[u8], from: usize, to: usize| {
        for &b in &bytes[from..to] {
            if b == b'\n' {
                *line += 1;
                out.push(b'\n');
            } else {
                out.push(b' ');
            }
        }
    };

    while i < bytes.len() {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied().unwrap_or(0);
        if b == b'/' && next == b'/' {
            // Line comment: blank to end of line, harvest annotation.
            let end = src[i..].find('\n').map(|o| i + o).unwrap_or(bytes.len());
            allows.record(&src[i..end], line);
            blank(&mut out, &mut line, bytes, i, end);
            i = end;
        } else if b == b'/' && next == b'*' {
            // Block comment, possibly nested.
            let start_line = line;
            let start = i;
            let mut depth = 1;
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            allows.record(&src[start..i], start_line);
            blank(&mut out, &mut line, bytes, start, i);
        } else if b == b'"' {
            // String literal: blank the contents, keep the quotes.
            out.push(b'"');
            i += 1;
            let body = i;
            let open_line = line;
            while i < bytes.len() {
                if bytes[i] == b'\\' {
                    i = (i + 2).min(bytes.len());
                } else if bytes[i] == b'"' {
                    break;
                } else {
                    i += 1;
                }
            }
            strings.push((open_line, src[body..i].to_string()));
            blank(&mut out, &mut line, bytes, body, i);
            if i < bytes.len() {
                out.push(b'"');
                i += 1;
            }
        } else if (b == b'r' || b == b'b') && raw_string_open(bytes, i).is_some() {
            // Raw (byte) string: r"…", r#"…"#, br#"…"#, …
            let (hashes, body) = raw_string_open(bytes, i).unwrap_or((0, i + 2));
            out.extend(std::iter::repeat_n(b' ', body - 1 - i));
            out.push(b'"');
            let close = format!("\"{}", "#".repeat(hashes));
            let end = src[body..]
                .find(&close)
                .map(|o| body + o)
                .unwrap_or(bytes.len());
            blank(&mut out, &mut line, bytes, body, end);
            if end < bytes.len() {
                // Close found: keep a quote in its place (plus blanks
                // for the trailing hashes) so masked positions line up.
                out.push(b'"');
                let after = (end + close.len()).min(bytes.len());
                out.extend(std::iter::repeat_n(b' ', after.saturating_sub(end + 1)));
                i = after;
            } else {
                // Unterminated raw string: do NOT invent a phantom
                // closing quote past end-of-input.
                i = end;
            }
        } else if b == b'\'' {
            // Char literal or lifetime.
            if let Some(len) = char_literal_len(bytes, i) {
                out.push(b'\'');
                blank(&mut out, &mut line, bytes, i + 1, i + len - 1);
                out.push(b'\'');
                i += len;
            } else {
                out.push(b'\'');
                i += 1;
            }
        } else {
            if b == b'\n' {
                line += 1;
            }
            out.push(b);
            i += 1;
        }
    }

    Scrubbed {
        masked: String::from_utf8_lossy(&out).into_owned(),
        allows,
        strings,
    }
}

/// If a raw string starts at byte `i` (an `r` or `b`), returns
/// (hash count, index of the first body byte).
fn raw_string_open(bytes: &[u8], i: usize) -> Option<(usize, usize)> {
    // Reject identifier context (e.g. the trailing r of `for`).
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return None;
    }
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) == Some(&b'"') {
        Some((hashes, j + 1))
    } else {
        None
    }
}

/// If a char literal starts at byte `i` (a `'`), returns its byte
/// length including both quotes; `None` for lifetimes.
fn char_literal_len(bytes: &[u8], i: usize) -> Option<usize> {
    let first = *bytes.get(i + 1)?;
    if first == b'\\' {
        // Escaped char: find the closing quote within a short window.
        let window = &bytes[i + 3..(i + 14).min(bytes.len())];
        // Window starts 3 bytes past `i`; +1 includes the quote itself.
        window.iter().position(|&b| b == b'\'').map(|off| off + 4)
    } else if first != b'\'' {
        // Find the end of the (possibly multi-byte) char.
        let mut j = i + 2;
        while j < bytes.len() && bytes[j] & 0xC0 == 0x80 {
            j += 1; // UTF-8 continuation bytes
        }
        if bytes.get(j) == Some(&b'\'') {
            Some(j + 1 - i)
        } else {
            None // lifetime like 'a
        }
    } else {
        None
    }
}

/// One token of scrubbed source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text (identifier, number, or single punctuation char).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// Whether this is an identifier/keyword token.
    pub is_ident: bool,
}

/// Splits scrubbed source into identifier and punctuation tokens.
pub fn tokenize(masked: &str) -> Vec<Token> {
    let bytes = masked.as_bytes();
    let mut tokens = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
        } else if b.is_ascii_whitespace() {
            i += 1;
        } else if b.is_ascii_alphanumeric() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            tokens.push(Token {
                text: masked[start..i].to_string(),
                line,
                is_ident: !b.is_ascii_digit(),
            });
        } else {
            // Single punctuation byte (non-ASCII bytes land here too and
            // are carried through opaquely).
            let start = i;
            i += 1;
            while i < bytes.len() && bytes[i] & 0xC0 == 0x80 {
                i += 1; // keep a multi-byte char as one token
            }
            tokens.push(Token {
                text: masked[start..i].to_string(),
                line,
                is_ident: false,
            });
        }
    }
    tokens
}

/// Returns the set of 1-based lines that belong to test-only items:
/// anything under a `#[cfg(test)]` attribute or a `#[test]` function.
///
/// Detection is token-based: on seeing the attribute, the scanner skips
/// any further attributes, then brace-matches the next `{ … }` block and
/// marks every line it spans.
pub fn test_lines(tokens: &[Token]) -> std::collections::BTreeSet<u32> {
    let mut lines = std::collections::BTreeSet::new();
    let mut i = 0;
    while i < tokens.len() {
        if let Some(attr_end) = match_test_attr(tokens, i) {
            // Skip any further attributes (e.g. #[allow(...)]).
            let mut j = attr_end;
            while j + 1 < tokens.len() && tokens[j].text == "#" && tokens[j + 1].text == "[" {
                j = skip_attr(tokens, j);
            }
            // Find the item's opening brace and match it. A `;` first
            // means an item with no body (e.g. `mod tests;`).
            while j < tokens.len() && tokens[j].text != "{" && tokens[j].text != ";" {
                j += 1;
            }
            if j < tokens.len() && tokens[j].text == "{" {
                let mut depth = 0;
                let start_line = tokens[i].line;
                while j < tokens.len() {
                    match tokens[j].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let end_line = tokens[j.min(tokens.len() - 1)].line;
                for l in start_line..=end_line {
                    lines.insert(l);
                }
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    lines
}

/// If `#[test]` or `#[cfg(test)]` (or `#[cfg(…, test, …)]`) starts at
/// token `i`, returns the index one past the closing `]`.
fn match_test_attr(tokens: &[Token], i: usize) -> Option<usize> {
    if tokens.get(i)?.text != "#" || tokens.get(i + 1)?.text != "[" {
        return None;
    }
    let end = skip_attr(tokens, i);
    let inner: Vec<&str> = tokens[i + 2..end.saturating_sub(1)]
        .iter()
        .map(|t| t.text.as_str())
        .collect();
    let is_test = match inner.as_slice() {
        ["test"] => true,
        ["cfg", "(", rest @ ..] => rest.contains(&"test"),
        _ => false,
    };
    is_test.then_some(end)
}

/// Returns the index one past the `]` closing the attribute whose `#`
/// is at token `i`.
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    let mut depth = 0;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let x = \"unwrap()\"; // unwrap()\nlet y = 1; /* panic! */";
        let s = scrub(src);
        assert!(!s.masked.contains("unwrap"));
        assert!(!s.masked.contains("panic"));
        assert_eq!(s.masked.lines().count(), src.lines().count());
    }

    #[test]
    fn escaped_quote_does_not_close_string() {
        let src = r#"let x = "a\"unwrap()\"b"; let y = 1;"#;
        let s = scrub(src);
        assert!(!s.masked.contains("unwrap"));
        assert!(s.masked.contains("let y"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = r##"let x = r#"HashMap"#; let y = 2;"##;
        let s = scrub(src);
        assert!(!s.masked.contains("HashMap"));
        assert!(s.masked.contains("let y"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner unsafe */ still comment */ fn f() {}";
        let s = scrub(src);
        assert!(!s.masked.contains("unsafe"));
        assert!(s.masked.contains("fn f"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = '\"'; let d = 'x'; }";
        let s = scrub(src);
        assert!(s.masked.contains("fn f<'a>"));
        // The quote inside the char literal must not open a string.
        assert!(s.masked.contains("let d"));
    }

    #[test]
    fn unicode_in_strings_survives() {
        let src = "let s = \"ünïcode\"; let t = 9;";
        let s = scrub(src);
        assert!(s.masked.contains("let t"));
    }

    #[test]
    fn line_allow_harvested() {
        let src = "foo(); // cdna-check: allow(panic): reason\nbar();";
        let s = scrub(src);
        assert!(s.allows.permits("panic", 1));
        assert!(s.allows.permits("panic", 2), "applies to next line too");
        assert!(!s.allows.permits("panic", 3));
        assert!(!s.allows.permits("unsafe", 1));
    }

    #[test]
    fn file_allow_harvested() {
        let src = "// cdna-check: allow-file(sim-time): wall clock ok here\nfn f() {}\n";
        let s = scrub(src);
        assert!(s.allows.permits("sim-time", 40));
        assert!(!s.allows.permits("panic", 1));
    }

    #[test]
    fn block_comment_allow_attributed_to_marker_line() {
        // The annotation sits on line 3 of a comment opened on line 1;
        // it must suppress line 3/4, not line 1/2.
        let src =
            "/* rationale paragraph\n   spanning lines\n   cdna-check: allow(panic): ok\n*/\nx();";
        let s = scrub(src);
        assert!(s.allows.permits("panic", 3));
        assert!(s.allows.permits("panic", 4));
        assert!(
            !s.allows.permits("panic", 1),
            "comment-open line is not the marker line"
        );
        assert!(!s.allows.permits("panic", 5));
    }

    #[test]
    fn doc_comments_are_not_harvested() {
        // Annotation syntax quoted in docs must not become live
        // suppressions (this very file documents the syntax!).
        for src in [
            "/// `// cdna-check: allow(panic)`\nfn f() {}",
            "//! cdna-check: allow-file(panic)\nfn f() {}",
            "/** cdna-check: allow(panic) */\nfn f() {}",
            "/*! cdna-check: allow-file(unsafe) */\nfn f() {}",
        ] {
            let s = scrub(src);
            assert_eq!(s.allows.count(), 0, "harvested from doc comment: {src}");
        }
        // Plain comments still work, including the //// pseudo-doc form.
        let s = scrub("//// cdna-check: allow(panic)\nx();");
        assert_eq!(s.allows.count(), 1);
    }

    #[test]
    fn allow_entries_exposed_with_lines() {
        let src = "// cdna-check: allow-file(sim-time)\nx(); // cdna-check: allow(panic)\n";
        let s = scrub(src);
        let e = s.allows.entries();
        assert_eq!(e.len(), 2);
        assert!(e[0].file_wide && e[0].rule == "sim-time" && e[0].line == 1);
        assert!(!e[1].file_wide && e[1].rule == "panic" && e[1].line == 2);
    }

    #[test]
    fn multiline_raw_string_with_hashes_preserves_spans() {
        // Lines inside the raw string must stay as newlines so rule
        // diagnostics after it land on the right line; fake comment
        // markers and fake closes inside the body must not confuse the
        // scanner.
        let src = "let s = r##\"line one \"# not closed\n// cdna-check: allow(panic)\n/* still string */\"##;\nx.unwrap();";
        let s = scrub(src);
        assert_eq!(s.allows.count(), 0, "allow inside raw string harvested");
        assert!(!s.masked.contains("not closed"));
        let toks = tokenize(&s.masked);
        let unwrap = toks
            .iter()
            .find(|t| t.text == "unwrap")
            .expect("unwrap token");
        assert_eq!(unwrap.line, 4, "span drifted across the raw string");
    }

    #[test]
    fn unterminated_raw_string_adds_no_phantom_quote() {
        let src = "let s = r#\"never closed";
        let s = scrub(src);
        assert_eq!(s.masked.len(), src.len());
        assert_eq!(s.masked.matches('"').count(), 1);
    }

    #[test]
    fn multi_rule_allow() {
        let src = "x(); // cdna-check: allow(panic, nondeterministic-map)";
        let s = scrub(src);
        assert!(s.allows.permits("panic", 1));
        assert!(s.allows.permits("nondeterministic-map", 1));
    }

    #[test]
    fn tokenizer_line_numbers() {
        let toks = tokenize("a\nb c\n  d");
        let lines: Vec<(String, u32)> = toks.iter().map(|t| (t.text.clone(), t.line)).collect();
        assert_eq!(
            lines,
            vec![
                ("a".into(), 1),
                ("b".into(), 2),
                ("c".into(), 2),
                ("d".into(), 3)
            ]
        );
    }

    #[test]
    fn cfg_test_block_detected() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn more() {}";
        let s = scrub(src);
        let toks = tokenize(&s.masked);
        let tl = test_lines(&toks);
        assert!(!tl.contains(&1));
        assert!(tl.contains(&4));
        assert!(!tl.contains(&6));
    }

    #[test]
    fn test_fn_attr_detected() {
        let src = "#[test]\nfn t() {\n  boom();\n}\nfn lib() {}";
        let s = scrub(src);
        let tl = test_lines(&tokenize(&s.masked));
        assert!(tl.contains(&3));
        assert!(!tl.contains(&5));
    }

    #[test]
    fn should_panic_attr_between_test_and_body() {
        let src = "#[test]\n#[should_panic(expected = \"boom\")]\nfn t() {\n  boom();\n}";
        let s = scrub(src);
        let tl = test_lines(&tokenize(&s.masked));
        assert!(tl.contains(&4));
    }
}
