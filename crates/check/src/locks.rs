//! CDNA012 `lock-order` and CDNA013 `send-audit`: concurrency hazards
//! introduced by the `Rc/RefCell → Arc<Mutex>` migration (PR 6).
//!
//! **`lock-order`** builds a lock-acquisition graph over the workspace.
//! An acquisition site is either a `.lock()` method call or a call to
//! the workspace's poison-tolerant `lock(…)` helpers
//! (`cdna_sim::par::lock`, `cdna_model`'s queue helper); the lock's
//! identity is the receiver/argument's final field or variable name —
//! name-based, like all cdna-check resolution, and exactly right here
//! because every mutex in the workspace has a unique field name. Guard
//! lifetime is approximated from token structure: a `let`-bound guard
//! lives to the end of its enclosing block (or an explicit `drop`), a
//! temporary to the end of its statement. While a guard is held:
//!
//! * another acquisition adds an *order edge* `held → acquired`;
//! * a call into a function whose transitive acquisition set (a
//!   [`Dataflow`] fixpoint) is non-empty is flagged immediately — the
//!   callee locks behind the caller's back, the pattern that turns
//!   into a deadlock the moment lock identities collide;
//! * any cycle in the accumulated order graph is flagged at each
//!   participating edge.
//!
//! **`send-audit`** starts from the types that cross the `Send` seam —
//! implementors of `EventQueue` (boxed into `QueueImpl::Custom`) and
//! anything passed to `Simulation::with_event_queue`, resolved through
//! local `let` bindings — closes over their field types, and flags any
//! reachable field holding a non-`Send`-safe pattern (`Rc`, `RefCell`,
//! `Cell`, `UnsafeCell`, `NonNull`, raw pointers). The compiler checks
//! `Send` for real, of course; the audit exists to catch the *design*
//! regression early (a field type that would force an `unsafe impl
//! Send` or an `Rc` smuggled behind a raw pointer) and to document the
//! seam's obligations as a machine-checked table.

use crate::dataflow::Dataflow;
use crate::dataflow::{
    arg_region, enclosing_block_end, let_binding, local_types, statement_start, temporary_end,
};
use crate::graph::{Pass, SymbolGraph};
use crate::parse::FnSym;
use crate::rules::Diagnostic;
use std::collections::{BTreeMap, BTreeSet};

/// One lock-acquisition site inside a function body.
struct Acquisition {
    /// Lock identity (receiver / argument name).
    name: String,
    /// Call-list index of the acquiring call.
    call: usize,
    /// Body-token range the guard is held over.
    held: (usize, usize),
}

/// Extracts the lock identity of an acquisition call at `calls[ci]`.
fn lock_name(f: &FnSym, ci: usize) -> Option<String> {
    let pos = f.calls[ci].pos;
    let body = &f.body;
    if pos > 0 && body[pos - 1].text == "." {
        // Method form `expr.name.lock()`: the receiver's last ident.
        return body
            .get(pos.wrapping_sub(2))
            .filter(|t| t.is_ident)
            .map(|t| t.text.clone());
    }
    // Helper form `lock(&self.ctrl)` / `lock(&slots[i])`: last ident of
    // the first argument at bracket depth 0 (indices don't identify).
    let (s, e) = arg_region(body, pos);
    let mut depth = 0i32;
    let mut name = None;
    for t in &body[s..e] {
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "," if depth == 0 => break,
            _ => {
                if depth == 0 && t.is_ident && t.text != "self" && t.text != "mut" {
                    name = Some(t.text.clone());
                }
            }
        }
    }
    name
}

/// All acquisitions in a function, with held ranges.
fn acquisitions(df: &Dataflow, n: usize) -> Vec<Acquisition> {
    let f = df.func(n);
    let mut out = Vec::new();
    for (ci, c) in f.calls.iter().enumerate() {
        if !is_acquire(df, f, ci) {
            continue;
        }
        let Some(name) = lock_name(f, ci) else {
            continue;
        };
        let pos = c.pos;
        let stmt = statement_start(&f.body, pos);
        // A `let` statement binds the *guard* only when the lock call is
        // the whole right-hand side (`let g = lock(&m);`); in
        // `let v = lock(&m).pop_front();` the guard is a temporary and
        // only the popped value survives the statement.
        let (_, close) = arg_region(&f.body, pos);
        let whole_rhs = f.body.get(close + 1).map(|t| t.text.as_str()) == Some(";");
        let held_to = if let Some(g) = let_binding(&f.body, stmt).filter(|_| whole_rhs) {
            // `let guard = lock(..)`: to the block end or `drop(guard)`.
            let block = enclosing_block_end(&f.body, pos);
            f.calls
                .iter()
                .find(|d| {
                    d.callee == "drop"
                        && d.pos > pos
                        && d.pos < block
                        && f.body.get(d.pos + 2).map(|t| t.text.as_str()) == Some(g.as_str())
                })
                .map(|d| d.pos)
                .unwrap_or(block)
        } else {
            temporary_end(&f.body, pos)
        };
        out.push(Acquisition {
            name,
            call: ci,
            held: (pos, held_to),
        });
    }
    out
}

/// Whether `calls[ci]` acquires a lock: a `.lock()` method call, or a
/// call to a workspace `lock` helper (armed only if one exists).
fn is_acquire(df: &Dataflow, f: &FnSym, ci: usize) -> bool {
    let c = &f.calls[ci];
    if c.callee != "lock" {
        return false;
    }
    let method = c.pos > 0 && f.body[c.pos - 1].text == ".";
    method || !df.targets("lock").is_empty()
}

/// The CDNA012 pass. See the module docs for the model.
pub struct LockOrderPass;

impl Pass for LockOrderPass {
    fn rule(&self) -> &'static str {
        "lock-order"
    }

    fn run(&self, graph: &SymbolGraph) -> Vec<Diagnostic> {
        let df = Dataflow::build(graph);
        // Transitive acquisition summaries. The `lock` helpers
        // themselves are excluded: a call *to* them is an acquisition
        // at the call site, never a call-that-locks.
        let acquires: Vec<BTreeSet<String>> = df.fixpoint(
            |_| BTreeSet::new(),
            |df, state, n| {
                if df.func(n).name == "lock" {
                    return BTreeSet::new();
                }
                let mut set = BTreeSet::new();
                for a in acquisitions(df, n) {
                    set.insert(a.name);
                }
                for c in &df.func(n).calls {
                    if c.callee == "lock" {
                        continue;
                    }
                    for &t in df.targets(&c.callee) {
                        if t != n {
                            set.extend(state[t].iter().cloned());
                        }
                    }
                }
                set
            },
        );
        let mut out = Vec::new();
        // Order edges: (held, acquired) → first site seen.
        let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
        for n in 0..df.nodes.len() {
            let f = df.func(n);
            if f.name == "lock" {
                continue;
            }
            let rel = &df.file(n).symbols.rel;
            let acqs = acquisitions(&df, n);
            for a in &acqs {
                for (ci, c) in f.calls.iter().enumerate() {
                    if c.pos <= a.held.0 || c.pos >= a.held.1 || c.callee == "drop" {
                        continue;
                    }
                    if let Some(inner) = acqs.iter().find(|b| b.call == ci) {
                        // Nested acquisition: an order edge.
                        edges
                            .entry((a.name.clone(), inner.name.clone()))
                            .or_insert_with(|| (rel.clone(), c.line));
                        continue;
                    }
                    // A call whose summary says it locks.
                    let hidden: BTreeSet<&String> = df
                        .targets(&c.callee)
                        .iter()
                        .filter(|&&t| t != n)
                        .flat_map(|&t| acquires[t].iter())
                        .collect();
                    if hidden.is_empty() {
                        continue;
                    }
                    for h in &hidden {
                        edges
                            .entry((a.name.clone(), (*h).clone()))
                            .or_insert_with(|| (rel.clone(), c.line));
                    }
                    let locked: Vec<String> = hidden.iter().map(|s| s.to_string()).collect();
                    out.push(Diagnostic {
                        rule: self.rule(),
                        file: rel.clone(),
                        line: c.line,
                        message: format!(
                            "`{}` holds lock `{}` across the call to `{}`, which \
                             acquires `{}` behind the caller's back; release the \
                             guard first or annotate why the nesting is ordered",
                            f.name,
                            a.name,
                            c.callee,
                            locked.join("`, `")
                        ),
                    });
                }
            }
        }
        // Cycle detection: flag every edge that lies on a cycle.
        let adj: BTreeMap<&String, BTreeSet<&String>> =
            edges.keys().fold(BTreeMap::new(), |mut m, (a, b)| {
                m.entry(a).or_default().insert(b);
                m
            });
        for ((a, b), (file, line)) in &edges {
            if reaches(&adj, b, a) {
                out.push(Diagnostic {
                    rule: self.rule(),
                    file: file.clone(),
                    line: *line,
                    message: format!(
                        "lock-order cycle: `{a}` is held while acquiring `{b}`, \
                         but `{b}` can also be held while (transitively) \
                         acquiring `{a}`; pick one global order"
                    ),
                });
            }
        }
        out
    }
}

/// Whether `to` is reachable from `from` in the order graph.
fn reaches(adj: &BTreeMap<&String, BTreeSet<&String>>, from: &String, to: &String) -> bool {
    let mut seen = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(x) = stack.pop() {
        if x == to {
            return true;
        }
        if seen.insert(x.clone()) {
            if let Some(next) = adj.get(x) {
                stack.extend(next.iter().copied());
            }
        }
    }
    false
}

/// Field type heads that are not `Send`-safe.
const NON_SEND: &[&str] = &["Rc", "RefCell", "Cell", "UnsafeCell", "NonNull"];

/// The CDNA013 pass. See the module docs for the model.
pub struct SendAuditPass;

impl Pass for SendAuditPass {
    fn rule(&self) -> &'static str {
        "send-audit"
    }

    fn run(&self, graph: &SymbolGraph) -> Vec<Diagnostic> {
        let df = Dataflow::build(graph);
        // Struct index over library files (test items excluded).
        let mut structs: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
        for (fi, file) in graph.files.iter().enumerate() {
            if file.kind != crate::rules::FileKind::Library {
                continue;
            }
            for (si, s) in file.symbols.structs.iter().enumerate() {
                if !file.test_lines.contains(&s.line) {
                    structs.entry(&s.name).or_default().push((fi, si));
                }
            }
        }
        // Roots: EventQueue implementors + types handed to the
        // with_event_queue / QueueImpl::Custom seam (via def-use on
        // local `let` constructor bindings).
        let mut roots: BTreeMap<String, String> = BTreeMap::new(); // type → why
        for file in &graph.files {
            if file.kind != crate::rules::FileKind::Library {
                continue;
            }
            for im in &file.symbols.impls {
                if im.trait_name == "EventQueue" && !file.test_lines.contains(&im.line) {
                    roots
                        .entry(im.type_name.clone())
                        .or_insert_with(|| "implements EventQueue".to_string());
                }
            }
        }
        let seam_armed = df.armed("with_event_queue", &["sim"]);
        for n in 0..df.nodes.len() {
            let f = df.func(n);
            let locals = local_types(&f.body);
            for c in &f.calls {
                let custom = c.callee == "Custom"
                    && c.pos >= 2
                    && f.body[c.pos - 1].text == ":"
                    && f.body[c.pos - 2].text == ":";
                let seam = seam_armed && c.callee == "with_event_queue";
                if !custom && !seam {
                    continue;
                }
                let (s, e) = arg_region(&f.body, c.pos);
                for t in &f.body[s..e] {
                    if !t.is_ident {
                        continue;
                    }
                    let ty = locals.get(&t.text).cloned().unwrap_or(t.text.clone());
                    if structs.contains_key(ty.as_str()) {
                        roots
                            .entry(ty)
                            .or_insert_with(|| format!("crosses the Send seam in `{}`", f.name));
                    }
                }
            }
        }
        // Containment closure over field types.
        let mut reached: BTreeMap<String, String> = BTreeMap::new();
        let mut queue: Vec<(String, String)> =
            roots.iter().map(|(t, w)| (t.clone(), w.clone())).collect();
        while let Some((ty, why)) = queue.pop() {
            if reached.contains_key(&ty) {
                continue;
            }
            reached.insert(ty.clone(), why.clone());
            for &(fi, si) in structs.get(ty.as_str()).into_iter().flatten() {
                for field in &graph.files[fi].symbols.structs[si].fields {
                    for id in &field.type_idents {
                        if structs.contains_key(id.as_str()) && !reached.contains_key(id) {
                            queue.push((id.clone(), format!("contained in `{ty}` ({why})")));
                        }
                    }
                }
            }
        }
        let mut out = Vec::new();
        for (ty, why) in &reached {
            for &(fi, si) in structs.get(ty.as_str()).into_iter().flatten() {
                let s = &graph.files[fi].symbols.structs[si];
                for field in &s.fields {
                    let bad = field
                        .type_idents
                        .iter()
                        .find(|id| NON_SEND.contains(&id.as_str()));
                    if bad.is_none() && !field.raw_ptr {
                        continue;
                    }
                    let what = bad
                        .map(|b| format!("`{b}`"))
                        .unwrap_or_else(|| "a raw pointer".to_string());
                    out.push(Diagnostic {
                        rule: self.rule(),
                        file: graph.files[fi].symbols.rel.clone(),
                        line: field.line,
                        message: format!(
                            "`{}.{}` holds {}, which is not Send-safe, but `{}` \
                             {} and so must stay Send; use Arc/Mutex or keep the \
                             type off the queue seam",
                            ty, field.name, what, ty, why
                        ),
                    });
                }
            }
        }
        out
    }
}
