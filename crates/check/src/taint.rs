//! CDNA011 `guest-taint`: interprocedural guest-taint dataflow.
//!
//! CDNA's protection story is a *validate-before-use* discipline: every
//! guest-controlled value (descriptor fields, mailbox producer indices,
//! hypercall arguments) must pass a validation primitive before it
//! reaches a privileged sink — a page pin/unpin, a DMA issue, or a
//! descriptor-ring store. This pass proves the discipline statically
//! for all paths, complementing the runtime [`crate::shadow`] mirror
//! and the planned fuzzing campaign (ROADMAP item 5), which only cover
//! executed paths.
//!
//! The model is deliberately simple and token-linear, mirroring the
//! codebase's own style rules (validation is always sequenced before
//! the operation it guards, in the same function or a caller):
//!
//! * **Sources** — *roots* (functions whose parameters are
//!   guest-controlled: the xen hypercall surface, the ricenic mailbox
//!   and wire entry points, the core protection enqueue paths) and
//!   *imports* (calls that return guest-written data: descriptor-ring
//!   and mailbox loads).
//! * **Sinks** — pin/unpin primitives in `cdna-mem`, `PciBus::dma`
//!   issue in `cdna-net`, descriptor-ring stores in `cdna-nic`.
//! * **Sanitizers** — the validation primitives in `cdna-mem` /
//!   `cdna-core` plus ricenic's MAC-to-context demux.
//!
//! A function is **vulnerable** if some call in its body reaches a sink
//! (directly, or transitively through a vulnerable callee) with no
//! sanitizer call sequenced before it. The transitive part is a
//! monotone fixpoint over [`Dataflow`] summaries. A diagnostic fires at
//! every root that is vulnerable and at every unsanitized
//! import-to-sink flow; all designations are armed only when the named
//! primitive is really defined in its home crate, and the bodies of the
//! primitives themselves are exempt.

use crate::dataflow::Dataflow;
use crate::graph::{Pass, SymbolGraph};
use crate::rules::Diagnostic;

/// Root sources: `(fn name, home crates)` whose parameters are
/// guest-controlled.
const ROOTS: &[(&str, &[&str])] = &[
    ("mailbox_write", &["ricenic"]),
    ("frame_from_wire", &["ricenic"]),
    ("enqueue_tx", &["core"]),
    ("enqueue_rx", &["core"]),
    ("queue_tx", &["xen"]),
    ("queue_tx_extern", &["xen"]),
    ("flush_tx_validated", &["xen"]),
    ("flush_tx_direct", &["xen"]),
    ("flush_tx_iommu", &["xen"]),
    ("post_rx_validated", &["xen"]),
    ("post_rx_direct", &["xen"]),
    ("post_rx_iommu", &["xen"]),
];

/// Import sources: calls that load guest-written memory.
const IMPORTS: &[(&str, &[&str])] = &[("read_at", &["nic"]), ("read", &["nic"])];

/// Privileged sinks.
const SINKS: &[(&str, &[&str])] = &[
    ("pin", &["mem"]),
    ("pin_slice", &["mem"]),
    ("pin_run", &["mem"]),
    ("unpin", &["mem"]),
    ("unpin_slice", &["mem"]),
    ("unpin_run", &["mem"]),
    ("dma", &["net"]),
    ("write_at", &["nic"]),
];

/// Sanitizers: a call to any of these before a sink discharges taint.
const SANITIZERS: &[(&str, &[&str])] = &[
    ("validate_slice", &["mem"]),
    ("validate_run", &["mem"]),
    ("validate", &["core"]),
    ("precheck", &["core"]),
    ("check", &["core"]),
    ("is_valid", &["core"]),
    ("map_slice", &["core"]),
    ("ctx_by_mac", &["ricenic"]),
];

fn armed(df: &Dataflow, table: &[(&str, &[&str])], name: &str) -> bool {
    table
        .iter()
        .any(|(n, homes)| *n == name && df.armed(n, homes))
}

/// Whether node `n` *is* one of the designated primitives (its body is
/// the implementation under audit, not a use site).
fn is_primitive(df: &Dataflow, n: usize) -> bool {
    let name = df.func(n).name.as_str();
    let key = df.crate_key(n);
    SINKS
        .iter()
        .chain(SANITIZERS)
        .chain(IMPORTS)
        .any(|(s, homes)| *s == name && homes.contains(&key))
}

fn is_root(df: &Dataflow, n: usize) -> bool {
    let name = df.func(n).name.as_str();
    let key = df.crate_key(n);
    ROOTS
        .iter()
        .any(|(r, homes)| *r == name && homes.contains(&key))
}

/// First offending call in node `n` at or after body token position
/// `from`: a call that reaches a sink (directly or via a vulnerable
/// callee) with no sanitizer sequenced before it. Returns the index
/// into the node's call list.
fn first_offense(df: &Dataflow, vuln: &[Option<usize>], n: usize, from: usize) -> Option<usize> {
    let f = df.func(n);
    for (ci, c) in f.calls.iter().enumerate() {
        if c.pos < from {
            continue;
        }
        let sinks_here = armed(df, SINKS, &c.callee)
            || df
                .targets(&c.callee)
                .iter()
                .any(|&t| t != n && vuln[t].is_some());
        if !sinks_here {
            continue;
        }
        let sanitized = f
            .calls
            .iter()
            .any(|s| s.pos < c.pos && armed(df, SANITIZERS, &s.callee));
        if !sanitized {
            return Some(ci);
        }
    }
    None
}

/// Renders the call chain from node `n`'s offending call down to the
/// sink, e.g. `pump_tx → dma`.
fn chain(df: &Dataflow, vuln: &[Option<usize>], n: usize, ci: usize) -> String {
    let mut parts = Vec::new();
    let (mut n, mut ci) = (n, ci);
    for _ in 0..6 {
        let c = &df.func(n).calls[ci];
        parts.push(c.callee.clone());
        if armed(df, SINKS, &c.callee) {
            break;
        }
        let step = df
            .targets(&c.callee)
            .iter()
            .find_map(|&t| (t != n).then_some(vuln[t].map(|v| (t, v))).flatten());
        let Some((next, off)) = step else {
            break;
        };
        (n, ci) = (next, off);
    }
    parts.join(" → ")
}

/// The CDNA011 pass. See the module docs for the model.
pub struct GuestTaintPass;

impl Pass for GuestTaintPass {
    fn rule(&self) -> &'static str {
        "guest-taint"
    }

    fn run(&self, graph: &SymbolGraph) -> Vec<Diagnostic> {
        let df = Dataflow::build(graph);
        // Interprocedural summary: vuln[n] = Some(call index of the
        // first unsanitized sink-reaching call) — "calling n with
        // tainted arguments can reach a sink unvalidated".
        let vuln = df.fixpoint(
            |_| None,
            |df, state, n| {
                if is_primitive(df, n) {
                    return None;
                }
                first_offense(df, state, n, 0)
            },
        );
        let mut out = Vec::new();
        for n in 0..df.nodes.len() {
            if is_primitive(&df, n) {
                continue;
            }
            let f = df.func(n);
            // Roots: parameters are tainted from the first token.
            let offense = if is_root(&df, n) {
                vuln[n].map(|ci| (ci, "guest-controlled arguments"))
            } else {
                // Imports: taint starts at the first guest-memory load.
                f.calls
                    .iter()
                    .find(|c| armed(&df, IMPORTS, &c.callee))
                    .and_then(|imp| first_offense(&df, &vuln, n, imp.pos + 1))
                    .map(|ci| (ci, "guest-written ring/mailbox data"))
            };
            if let Some((ci, what)) = offense {
                let c = &f.calls[ci];
                out.push(Diagnostic {
                    rule: self.rule(),
                    file: df.file(n).symbols.rel.clone(),
                    line: c.line,
                    message: format!(
                        "`{}` lets {} reach a privileged sink (path: {}) with no \
                         sanitizer call before it; validate first (validate_run / \
                         precheck / check / …) or annotate the ablation",
                        f.name,
                        what,
                        chain(&df, &vuln, n, ci)
                    ),
                });
            }
        }
        out
    }
}
