//! `cdna-check` binary: runs the static pass over the workspace and
//! exits non-zero on any violation.
//!
//! ```text
//! cargo run -p cdna-check                 # scan, print diagnostics
//! cargo run -p cdna-check -- --json out.json   # also write JSON report
//! cargo run -p cdna-check -- --jobs 4     # fan the scan out (same bytes)
//! cargo run -p cdna-check -- --format github  # ::error annotations
//! cargo run -p cdna-check -- --root /path/to/repo
//! cargo run -p cdna-check -- --baseline old-report.json   # ratchet mode
//! cargo run -p cdna-check -- --calibrate  # seeded-fixture calibration
//! ```
//!
//! **Parallel scan** (`--jobs N`, or the `CDNA_JOBS` env var): per-file
//! lex/parse/pass work is sharded over the `cdna_sim::par` worker pool
//! and merged in path order, so the output — terminal, annotations, and
//! the JSON artifact — is byte-identical at any worker count. The
//! scanner self-hosts the determinism guarantee CDNA014–017 enforce on
//! everything else.
//!
//! **Ratchet mode** (`--baseline`): violations already present in the
//! given report (matched by rule + file + line) are printed as
//! `baselined` and do not fail the run; only *new* violations exit 1.
//! This lets a new rule land warn-first — commit the report it produces
//! as the baseline, then burn the baseline down to empty and drop the
//! flag.
//!
//! **Calibration mode** (`--calibrate`): runs the seeded-violation
//! fixtures under `crates/check/tests/corpus/` and exits 1 unless every
//! seeded violation (CDNA011–017) is caught at its exact file:line
//! (and nothing else fires) — the proof that the analyses actually
//! detect what they claim to.
//!
//! **GitHub annotations** (`--format github`): diagnostics print as
//! workflow commands (`::error file=…,line=…::CDNA014 …`) that GitHub
//! renders inline on the PR diff. The summary line and JSON artifact
//! are unchanged.

use cdna_check::{
    calibrate, check_repo_jobs, render_json, report::parse_baseline, report::render_github,
    workspace_root,
};
use std::path::PathBuf;

fn usage() -> ! {
    println!(
        "usage: cdna-check [--root DIR] [--jobs N] [--json REPORT.json] \
         [--format text|github] [--baseline REPORT.json] [--calibrate]"
    );
    std::process::exit(0);
}

fn main() {
    let mut root = workspace_root();
    let mut json_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut run_calibration = false;
    let mut jobs: Option<usize> = None;
    let mut github = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = args.next().map(PathBuf::from),
            "--baseline" => baseline_path = args.next().map(PathBuf::from),
            "--calibrate" => run_calibration = true,
            "--jobs" => {
                jobs = args.next().and_then(|v| v.parse().ok());
                if jobs.is_none() {
                    eprintln!("cdna-check: --jobs expects a positive integer");
                    std::process::exit(2);
                }
            }
            "--format" => match args.next().as_deref() {
                Some("github") => github = true,
                Some("text") => github = false,
                other => {
                    eprintln!(
                        "cdna-check: unknown format `{}` (expected text|github)",
                        other.unwrap_or("")
                    );
                    std::process::exit(2);
                }
            },
            "--root" => {
                if let Some(r) = args.next() {
                    root = PathBuf::from(r);
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("cdna-check: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    if run_calibration {
        let corpus = root.join("crates/check/tests/corpus");
        match calibrate::calibrate(&corpus) {
            Ok(failures) if failures.is_empty() => {
                println!("cdna-check: calibration OK — every seeded violation caught");
                return;
            }
            Ok(failures) => {
                for f in &failures {
                    eprintln!("cdna-check: calibration: {f}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("cdna-check: calibration failed: {e}");
                std::process::exit(2);
            }
        }
    }

    let baseline = match &baseline_path {
        Some(path) => match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(text) => match parse_baseline(&text) {
                Ok(entries) => Some(entries),
                Err(e) => {
                    eprintln!("cdna-check: bad baseline {}: {e}", path.display());
                    std::process::exit(2);
                }
            },
            Err(e) => {
                eprintln!("cdna-check: cannot read {}: {e}", path.display());
                std::process::exit(2);
            }
        },
        None => None,
    };

    let report = match check_repo_jobs(&root, jobs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cdna-check: scan failed: {e}");
            std::process::exit(2);
        }
    };

    if github {
        // Annotation lines for the PR overlay; stdout so the workflow
        // command processor sees them.
        print!("{}", render_github(&report));
    }

    let mut new_violations = 0usize;
    let mut baselined = 0usize;
    for d in &report.diagnostics {
        let known = baseline.as_ref().is_some_and(|b| {
            b.iter()
                .any(|(r, f, l)| r == d.rule && *f == d.file && *l == d.line)
        });
        if known {
            baselined += 1;
            if !github {
                println!("{} [baselined]", d.render());
            }
        } else {
            new_violations += 1;
            if !github {
                println!("{}", d.render());
            }
        }
    }
    println!(
        "cdna-check: {} file(s), {} manifest(s), {} allow annotation(s), {} violation(s){}",
        report.files_scanned,
        report.manifests_scanned,
        report.allow_count,
        report.diagnostics.len(),
        if baseline.is_some() {
            format!(" ({baselined} baselined, {new_violations} new)")
        } else {
            String::new()
        }
    );

    if let Some(path) = json_path {
        // The artifact always reflects the full scan; the baseline only
        // affects the exit code, so committed reports stay comparable.
        if let Err(e) = std::fs::write(&path, render_json(&report)) {
            eprintln!("cdna-check: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
        println!("cdna-check: JSON report written to {}", path.display());
    }

    if new_violations > 0 {
        std::process::exit(1);
    }
}
