//! `cdna-check` binary: runs the static pass over the workspace and
//! exits non-zero on any violation.
//!
//! ```text
//! cargo run -p cdna-check                 # scan, print diagnostics
//! cargo run -p cdna-check -- --json out.json   # also write JSON report
//! cargo run -p cdna-check -- --root /path/to/repo
//! cargo run -p cdna-check -- --baseline old-report.json   # ratchet mode
//! cargo run -p cdna-check -- --calibrate  # seeded-fixture calibration
//! ```
//!
//! **Ratchet mode** (`--baseline`): violations already present in the
//! given report (matched by rule + file + line) are printed as
//! `baselined` and do not fail the run; only *new* violations exit 1.
//! This lets a new rule land warn-first — commit the report it produces
//! as the baseline, then burn the baseline down to empty and drop the
//! flag.
//!
//! **Calibration mode** (`--calibrate`): runs the seeded-violation
//! fixtures under `crates/check/tests/corpus/` and exits 1 unless every
//! seeded CDNA011/012/013 violation is caught at its exact file:line
//! (and nothing else fires) — the proof that the analyses actually
//! detect what they claim to.

use cdna_check::{calibrate, check_repo, render_json, report::parse_baseline, workspace_root};
use std::path::PathBuf;

fn main() {
    let mut root = workspace_root();
    let mut json_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut run_calibration = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = args.next().map(PathBuf::from),
            "--baseline" => baseline_path = args.next().map(PathBuf::from),
            "--calibrate" => run_calibration = true,
            "--root" => {
                if let Some(r) = args.next() {
                    root = PathBuf::from(r);
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: cdna-check [--root DIR] [--json REPORT.json] \
                     [--baseline REPORT.json] [--calibrate]"
                );
                return;
            }
            other => {
                eprintln!("cdna-check: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    if run_calibration {
        let corpus = root.join("crates/check/tests/corpus");
        match calibrate::calibrate(&corpus) {
            Ok(failures) if failures.is_empty() => {
                println!("cdna-check: calibration OK — every seeded violation caught");
                return;
            }
            Ok(failures) => {
                for f in &failures {
                    eprintln!("cdna-check: calibration: {f}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("cdna-check: calibration failed: {e}");
                std::process::exit(2);
            }
        }
    }

    let baseline = match &baseline_path {
        Some(path) => match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(text) => match parse_baseline(&text) {
                Ok(entries) => Some(entries),
                Err(e) => {
                    eprintln!("cdna-check: bad baseline {}: {e}", path.display());
                    std::process::exit(2);
                }
            },
            Err(e) => {
                eprintln!("cdna-check: cannot read {}: {e}", path.display());
                std::process::exit(2);
            }
        },
        None => None,
    };

    let report = match check_repo(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cdna-check: scan failed: {e}");
            std::process::exit(2);
        }
    };

    let mut new_violations = 0usize;
    let mut baselined = 0usize;
    for d in &report.diagnostics {
        let known = baseline.as_ref().is_some_and(|b| {
            b.iter()
                .any(|(r, f, l)| r == d.rule && *f == d.file && *l == d.line)
        });
        if known {
            baselined += 1;
            println!("{} [baselined]", d.render());
        } else {
            new_violations += 1;
            println!("{}", d.render());
        }
    }
    println!(
        "cdna-check: {} file(s), {} manifest(s), {} allow annotation(s), {} violation(s){}",
        report.files_scanned,
        report.manifests_scanned,
        report.allow_count,
        report.diagnostics.len(),
        if baseline.is_some() {
            format!(" ({baselined} baselined, {new_violations} new)")
        } else {
            String::new()
        }
    );

    if let Some(path) = json_path {
        // The artifact always reflects the full scan; the baseline only
        // affects the exit code, so committed reports stay comparable.
        if let Err(e) = std::fs::write(&path, render_json(&report)) {
            eprintln!("cdna-check: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
        println!("cdna-check: JSON report written to {}", path.display());
    }

    if new_violations > 0 {
        std::process::exit(1);
    }
}
