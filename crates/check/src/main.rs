//! `cdna-check` binary: runs the static pass over the workspace and
//! exits non-zero on any violation.
//!
//! ```text
//! cargo run -p cdna-check                 # scan, print diagnostics
//! cargo run -p cdna-check -- --json out.json   # also write JSON report
//! cargo run -p cdna-check -- --root /path/to/repo
//! ```

use cdna_check::{check_repo, render_json, workspace_root};
use std::path::PathBuf;

fn main() {
    let mut root = workspace_root();
    let mut json_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = args.next().map(PathBuf::from),
            "--root" => {
                if let Some(r) = args.next() {
                    root = PathBuf::from(r);
                }
            }
            "--help" | "-h" => {
                println!("usage: cdna-check [--root DIR] [--json REPORT.json]");
                return;
            }
            other => {
                eprintln!("cdna-check: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    let report = match check_repo(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cdna-check: scan failed: {e}");
            std::process::exit(2);
        }
    };

    for d in &report.diagnostics {
        println!("{}", d.render());
    }
    println!(
        "cdna-check: {} file(s), {} manifest(s), {} allow annotation(s), {} violation(s)",
        report.files_scanned,
        report.manifests_scanned,
        report.allow_count,
        report.diagnostics.len()
    );

    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, render_json(&report)) {
            eprintln!("cdna-check: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
        println!("cdna-check: JSON report written to {}", path.display());
    }

    if !report.clean() {
        std::process::exit(1);
    }
}
