//! Machine-readable JSON report for CI, built on `cdna-trace`'s
//! [`JsonWriter`] so the checker stays dependency-free.
//!
//! Shape (`schema_version` 4 — since the determinism-soundness rules
//! CDNA014–017 and the parallel self-hosted scan; version 3 covered
//! the dataflow rules CDNA011–013, version 2 the symbol-graph rules):
//!
//! ```json
//! {
//!   "tool": "cdna-check",
//!   "schema_version": 4,
//!   "clean": false,
//!   "files_scanned": 42,
//!   "manifests_scanned": 11,
//!   "allow_annotations": 9,
//!   "counts": { "panic": 2, "unsafe": 1 },
//!   "diagnostics": [
//!     { "rule": "panic", "code": "CDNA003", "severity": "error",
//!       "file": "crates/x/src/y.rs", "line": 17,
//!       "message": "`.unwrap()` can panic in library code; ..." }
//!   ]
//! }
//! ```
//!
//! `counts` and `diagnostics` are sorted, so the report is byte-stable
//! across runs — diffable in CI artifacts — and, because the scan
//! itself merges per-file work in path order, byte-identical at any
//! `--jobs` count (the worker count is deliberately *not* a report
//! field; CDNA016 would flag it). Rule codes (`CDNA001`…) are
//! append-only: a rule rename never reassigns a code, so report diffs
//! across PRs stay meaningful.

use crate::rules::{rule_code, rule_severity, StaticReport};
use cdna_trace::json::JsonWriter;
use std::collections::BTreeMap;

/// The report schema version; bump when a field changes meaning or is
/// removed (adding fields is not a bump).
pub const SCHEMA_VERSION: u64 = 4;

/// Renders a [`StaticReport`] as GitHub workflow-command annotation
/// lines (`::error file=…,line=…::CDNA003 message`), one per
/// diagnostic, so CI surfaces violations inline on the PR diff. The
/// JSON artifact remains the machine-readable record; this is the
/// human-facing overlay. Newlines inside messages are escaped per the
/// workflow-command syntax (`%0A`).
pub fn render_github(report: &StaticReport) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let msg = format!("{} {}", rule_code(d.rule), d.message)
            .replace('%', "%25")
            .replace('\r', "%0D")
            .replace('\n', "%0A");
        out.push_str(&format!(
            "::{} file={},line={}::{}\n",
            rule_severity(d.rule),
            d.file,
            d.line,
            msg
        ));
    }
    out
}

/// Renders a [`StaticReport`] as a JSON document.
pub fn render_json(report: &StaticReport) -> String {
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for d in &report.diagnostics {
        *counts.entry(d.rule).or_insert(0) += 1;
    }

    let mut w = JsonWriter::with_capacity(4096 + report.diagnostics.len() * 128);
    w.begin_object();
    w.key("tool");
    w.string("cdna-check");
    w.key("schema_version");
    w.number_u64(SCHEMA_VERSION);
    w.key("clean");
    w.boolean(report.clean());
    w.key("files_scanned");
    w.number_u64(report.files_scanned as u64);
    w.key("manifests_scanned");
    w.number_u64(report.manifests_scanned as u64);
    w.key("allow_annotations");
    w.number_u64(report.allow_count as u64);
    w.key("counts");
    w.begin_object();
    for (rule, n) in &counts {
        w.key(rule);
        w.number_u64(*n);
    }
    w.end_object();
    w.key("diagnostics");
    w.begin_array();
    for d in &report.diagnostics {
        w.begin_object();
        w.key("rule");
        w.string(d.rule);
        w.key("code");
        w.string(rule_code(d.rule));
        w.key("severity");
        w.string(rule_severity(d.rule));
        w.key("file");
        w.string(&d.file);
        w.key("line");
        w.number_u64(u64::from(d.line));
        w.key("message");
        w.string(&d.message);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// One baselined violation: `(rule, file, line)`. Messages are
/// deliberately not part of the identity — rewording a diagnostic must
/// not un-baseline it.
pub type BaselineEntry = (String, String, u32);

/// Parses the `diagnostics` array out of a previously emitted report
/// (the `--baseline` ratchet input). Hand-rolled scanner over our own
/// byte-stable format — tolerant of whitespace and reordered keys, so
/// hand-edited baselines keep working. Returns an error string on
/// malformed input rather than silently baselining nothing.
pub fn parse_baseline(json: &str) -> Result<Vec<BaselineEntry>, String> {
    let bytes = json.as_bytes();
    let key = "\"diagnostics\"";
    let Some(mut i) = json.find(key) else {
        return Err("no \"diagnostics\" key in baseline".to_string());
    };
    i += key.len();
    // To the opening `[`.
    while i < bytes.len() && bytes[i] != b'[' {
        i += 1;
    }
    if i == bytes.len() {
        return Err("\"diagnostics\" is not an array".to_string());
    }
    i += 1;
    let mut out = Vec::new();
    loop {
        skip_ws(bytes, &mut i);
        match bytes.get(i) {
            Some(b']') => return Ok(out),
            Some(b',') => {
                i += 1;
                continue;
            }
            Some(b'{') => {
                i += 1;
                let mut rule = None;
                let mut file = None;
                let mut line = None;
                loop {
                    skip_ws(bytes, &mut i);
                    match bytes.get(i) {
                        Some(b'}') => {
                            i += 1;
                            break;
                        }
                        Some(b',') | Some(b':') => {
                            i += 1;
                            continue;
                        }
                        Some(b'"') => {
                            let k = parse_string(json, &mut i)?;
                            skip_ws(bytes, &mut i);
                            if bytes.get(i) != Some(&b':') {
                                return Err(format!("expected `:` after key {k:?}"));
                            }
                            i += 1;
                            skip_ws(bytes, &mut i);
                            match k.as_str() {
                                "rule" => rule = Some(parse_string(json, &mut i)?),
                                "file" => file = Some(parse_string(json, &mut i)?),
                                "line" => line = Some(parse_number(bytes, &mut i)?),
                                _ => skip_value(json, &mut i)?,
                            }
                        }
                        _ => return Err("malformed diagnostic object".to_string()),
                    }
                }
                match (rule, file, line) {
                    (Some(r), Some(f), Some(l)) => out.push((r, f, l)),
                    _ => return Err("diagnostic missing rule/file/line".to_string()),
                }
            }
            _ => return Err("malformed diagnostics array".to_string()),
        }
    }
}

fn skip_ws(bytes: &[u8], i: &mut usize) {
    while bytes
        .get(*i)
        .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
    {
        *i += 1;
    }
}

fn parse_string(json: &str, i: &mut usize) -> Result<String, String> {
    let bytes = json.as_bytes();
    if bytes.get(*i) != Some(&b'"') {
        return Err("expected string".to_string());
    }
    *i += 1;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*i) {
        match b {
            b'"' => {
                *i += 1;
                return Ok(out);
            }
            b'\\' => {
                *i += 1;
                match bytes.get(*i) {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        // `\uXXXX`: decode the code unit (reports only
                        // ever emit BMP escapes).
                        let hex = json.get(*i + 1..*i + 5).ok_or("truncated \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *i += 4;
                    }
                    Some(&c) => out.push(c as char),
                    None => return Err("truncated escape".to_string()),
                }
                *i += 1;
            }
            _ => {
                // Copy the full UTF-8 scalar starting here.
                let s = &json[*i..];
                let ch = s.chars().next().ok_or("truncated string")?;
                out.push(ch);
                *i += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(bytes: &[u8], i: &mut usize) -> Result<u32, String> {
    let start = *i;
    let mut value: u64 = 0;
    while let Some(&b) = bytes.get(*i).filter(|b| b.is_ascii_digit()) {
        value = value.saturating_mul(10).saturating_add(u64::from(b - b'0'));
        *i += 1;
    }
    if start == *i {
        return Err("expected number".to_string());
    }
    u32::try_from(value).map_err(|e| e.to_string())
}

/// Skips one scalar value (string or number/keyword) — enough for the
/// flat diagnostic objects the report emits.
fn skip_value(json: &str, i: &mut usize) -> Result<(), String> {
    let bytes = json.as_bytes();
    if bytes.get(*i) == Some(&b'"') {
        parse_string(json, i).map(|_| ())
    } else {
        while bytes
            .get(*i)
            .is_some_and(|b| !matches!(b, b',' | b'}' | b']'))
        {
            *i += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Diagnostic;

    #[test]
    fn clean_report_shape() {
        let r = StaticReport {
            files_scanned: 3,
            manifests_scanned: 2,
            allow_count: 1,
            ..StaticReport::default()
        };
        let json = render_json(&r);
        assert!(json.contains(r#""tool":"cdna-check""#));
        assert!(json.contains(r#""schema_version":4"#));
        assert!(json.contains(r#""clean":true"#));
        assert!(json.contains(r#""files_scanned":3"#));
        assert!(json.contains(r#""diagnostics":[]"#));
    }

    #[test]
    fn diagnostics_serialized_with_counts() {
        let r = StaticReport {
            diagnostics: vec![
                Diagnostic {
                    rule: "panic",
                    file: "a.rs".into(),
                    line: 5,
                    message: "boom \"quoted\"".into(),
                },
                Diagnostic {
                    rule: "panic",
                    file: "b.rs".into(),
                    line: 1,
                    message: "again".into(),
                },
            ],
            files_scanned: 2,
            manifests_scanned: 0,
            allow_count: 0,
        };
        let json = render_json(&r);
        assert!(json.contains(r#""clean":false"#));
        assert!(json.contains(r#""panic":2"#));
        assert!(json.contains(r#""code":"CDNA003""#));
        assert!(json.contains(r#""severity":"error""#));
        assert!(json.contains(r#""line":5"#));
        assert!(json.contains(r#"\"quoted\""#), "message must be escaped");
    }

    #[test]
    fn github_format_annotates_per_diagnostic() {
        let r = StaticReport {
            diagnostics: vec![
                Diagnostic {
                    rule: "merge-order",
                    file: "crates/x/src/y.rs".into(),
                    line: 9,
                    message: "arrival order".into(),
                },
                Diagnostic {
                    rule: "unused-allow",
                    file: "a.rs".into(),
                    line: 2,
                    message: "two\nlines".into(),
                },
            ],
            files_scanned: 1,
            manifests_scanned: 0,
            allow_count: 0,
        };
        let out = render_github(&r);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[0],
            "::error file=crates/x/src/y.rs,line=9::CDNA014 arrival order"
        );
        assert_eq!(lines[1], "::warning file=a.rs,line=2::CDNA007 two%0Alines");
        assert_eq!(lines.len(), 2);
        assert!(render_github(&StaticReport::default()).is_empty());
    }

    #[test]
    fn rule_codes_are_stable_and_unique() {
        use crate::rules::{rule_code, rule_severity, RULE_NAMES};
        let codes: Vec<&str> = RULE_NAMES.iter().map(|r| rule_code(r)).collect();
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), RULE_NAMES.len(), "duplicate code: {codes:?}");
        assert_eq!(rule_code("sim-time"), "CDNA001");
        assert_eq!(rule_code("exhaustive-fault"), "CDNA010");
        assert_eq!(rule_code("guest-taint"), "CDNA011");
        assert_eq!(rule_code("lock-order"), "CDNA012");
        assert_eq!(rule_code("send-audit"), "CDNA013");
        assert_eq!(rule_code("merge-order"), "CDNA014");
        assert_eq!(rule_code("clock-purity"), "CDNA015");
        assert_eq!(rule_code("jobs-leak"), "CDNA016");
        assert_eq!(rule_code("float-accum"), "CDNA017");
        assert_eq!(rule_severity("unused-allow"), "warning");
        assert_eq!(rule_severity("merge-order"), "error");
        assert_eq!(rule_severity("must-pair"), "error");
        assert_eq!(rule_severity("guest-taint"), "error");
    }

    #[test]
    fn baseline_round_trips_through_render() {
        let r = StaticReport {
            diagnostics: vec![
                Diagnostic {
                    rule: "guest-taint",
                    file: "crates/xen/src/cdna_driver.rs".into(),
                    line: 42,
                    message: "path: pump_tx → dma, \"quoted\"".into(),
                },
                Diagnostic {
                    rule: "lock-order",
                    file: "crates/sim/src/par.rs".into(),
                    line: 7,
                    message: "cycle".into(),
                },
            ],
            files_scanned: 1,
            manifests_scanned: 1,
            allow_count: 0,
        };
        let entries = parse_baseline(&render_json(&r)).expect("parse");
        assert_eq!(
            entries,
            vec![
                (
                    "guest-taint".to_string(),
                    "crates/xen/src/cdna_driver.rs".to_string(),
                    42
                ),
                (
                    "lock-order".to_string(),
                    "crates/sim/src/par.rs".to_string(),
                    7
                ),
            ]
        );
    }

    #[test]
    fn baseline_tolerates_whitespace_and_rejects_garbage() {
        let ok = r#"{ "diagnostics": [
            { "file": "a.rs", "line": 3, "rule": "panic", "extra": "x" }
        ] }"#;
        assert_eq!(
            parse_baseline(ok).expect("parse"),
            vec![("panic".to_string(), "a.rs".to_string(), 3)]
        );
        assert!(parse_baseline("{}").is_err(), "missing key must error");
        assert!(
            parse_baseline(r#"{"diagnostics":[{"rule":"x"}]}"#).is_err(),
            "incomplete entries must error"
        );
    }
}
