//! Machine-readable JSON report for CI, built on `cdna-trace`'s
//! [`JsonWriter`] so the checker stays dependency-free.
//!
//! Shape (`schema_version` 2 — stable since the symbol-graph rules):
//!
//! ```json
//! {
//!   "tool": "cdna-check",
//!   "schema_version": 2,
//!   "clean": false,
//!   "files_scanned": 42,
//!   "manifests_scanned": 11,
//!   "allow_annotations": 9,
//!   "counts": { "panic": 2, "unsafe": 1 },
//!   "diagnostics": [
//!     { "rule": "panic", "code": "CDNA003", "severity": "error",
//!       "file": "crates/x/src/y.rs", "line": 17,
//!       "message": "`.unwrap()` can panic in library code; ..." }
//!   ]
//! }
//! ```
//!
//! `counts` and `diagnostics` are sorted, so the report is byte-stable
//! across runs — diffable in CI artifacts. Rule codes (`CDNA001`…) are
//! append-only: a rule rename never reassigns a code, so report diffs
//! across PRs stay meaningful.

use crate::rules::{rule_code, rule_severity, StaticReport};
use cdna_trace::json::JsonWriter;
use std::collections::BTreeMap;

/// The report schema version; bump when a field changes meaning or is
/// removed (adding fields is not a bump).
pub const SCHEMA_VERSION: u64 = 2;

/// Renders a [`StaticReport`] as a JSON document.
pub fn render_json(report: &StaticReport) -> String {
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    for d in &report.diagnostics {
        *counts.entry(d.rule).or_insert(0) += 1;
    }

    let mut w = JsonWriter::with_capacity(4096 + report.diagnostics.len() * 128);
    w.begin_object();
    w.key("tool");
    w.string("cdna-check");
    w.key("schema_version");
    w.number_u64(SCHEMA_VERSION);
    w.key("clean");
    w.boolean(report.clean());
    w.key("files_scanned");
    w.number_u64(report.files_scanned as u64);
    w.key("manifests_scanned");
    w.number_u64(report.manifests_scanned as u64);
    w.key("allow_annotations");
    w.number_u64(report.allow_count as u64);
    w.key("counts");
    w.begin_object();
    for (rule, n) in &counts {
        w.key(rule);
        w.number_u64(*n);
    }
    w.end_object();
    w.key("diagnostics");
    w.begin_array();
    for d in &report.diagnostics {
        w.begin_object();
        w.key("rule");
        w.string(d.rule);
        w.key("code");
        w.string(rule_code(d.rule));
        w.key("severity");
        w.string(rule_severity(d.rule));
        w.key("file");
        w.string(&d.file);
        w.key("line");
        w.number_u64(u64::from(d.line));
        w.key("message");
        w.string(&d.message);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Diagnostic;

    #[test]
    fn clean_report_shape() {
        let r = StaticReport {
            files_scanned: 3,
            manifests_scanned: 2,
            allow_count: 1,
            ..StaticReport::default()
        };
        let json = render_json(&r);
        assert!(json.contains(r#""tool":"cdna-check""#));
        assert!(json.contains(r#""schema_version":2"#));
        assert!(json.contains(r#""clean":true"#));
        assert!(json.contains(r#""files_scanned":3"#));
        assert!(json.contains(r#""diagnostics":[]"#));
    }

    #[test]
    fn diagnostics_serialized_with_counts() {
        let r = StaticReport {
            diagnostics: vec![
                Diagnostic {
                    rule: "panic",
                    file: "a.rs".into(),
                    line: 5,
                    message: "boom \"quoted\"".into(),
                },
                Diagnostic {
                    rule: "panic",
                    file: "b.rs".into(),
                    line: 1,
                    message: "again".into(),
                },
            ],
            files_scanned: 2,
            manifests_scanned: 0,
            allow_count: 0,
        };
        let json = render_json(&r);
        assert!(json.contains(r#""clean":false"#));
        assert!(json.contains(r#""panic":2"#));
        assert!(json.contains(r#""code":"CDNA003""#));
        assert!(json.contains(r#""severity":"error""#));
        assert!(json.contains(r#""line":5"#));
        assert!(json.contains(r#"\"quoted\""#), "message must be escaped");
    }

    #[test]
    fn rule_codes_are_stable_and_unique() {
        use crate::rules::{rule_code, rule_severity, RULE_NAMES};
        let codes: Vec<&str> = RULE_NAMES.iter().map(|r| rule_code(r)).collect();
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), RULE_NAMES.len(), "duplicate code: {codes:?}");
        assert_eq!(rule_code("sim-time"), "CDNA001");
        assert_eq!(rule_code("exhaustive-fault"), "CDNA010");
        assert_eq!(rule_severity("unused-allow"), "warning");
        assert_eq!(rule_severity("must-pair"), "error");
    }
}
