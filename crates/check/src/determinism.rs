//! CDNA014–017: determinism-soundness proofs over the fan-out/merge
//! surface.
//!
//! Every artifact this repo compares across worker counts — BENCH.json,
//! RACK-BENCH.json, the model/fuzz digests — stakes its claim on
//! `--jobs 1 ≡ --jobs N` byte-identity. The differential tests probe a
//! handful of configurations; these passes prove the property over the
//! code instead, by policing the three ways it silently breaks:
//!
//! * **CDNA014 `merge-order`** — every fan-out call site
//!   ([`cdna_sim::par`]'s `run_indexed` / `run_indexed_init` /
//!   `run_rounds`, `cdna_bench`'s `run_parallel_jobs`, or a raw
//!   `std::thread::scope`) must merge worker results through an
//!   index-ordered slot (`lock(&slots[i])`) or follow the fan-out with
//!   a deterministically keyed sort. Arrival-order appends to locked
//!   shared state inside the worker region — directly or through a
//!   callee — and merge paths that iterate an unordered `Hash*`
//!   container are flagged.
//! * **CDNA015 `clock-purity`** — interprocedural taint from
//!   `Instant::now` / `SystemTime` / `.elapsed()` sources into any
//!   serialized sink (the `cdna_trace` `JsonWriter` emitters). The one
//!   sanctioned escape is the declared wall-clock carrier contract:
//!   JSON keys and struct fields named `wall_ms*`.
//! * **CDNA016 `jobs-leak`** — the worker count, worker index, and
//!   thread identity must not reach comparison-relevant serialization.
//!   Jobs values are tracked through the `jobs` naming discipline
//!   (`jobs`, `*_jobs`, `jobs_*`, `njobs` — the same declared-carrier
//!   contract as `wall_ms*`), through the designated jobs primitives
//!   (`resolve_jobs`, `take_jobs_flag`, …), and through fan-out worker
//!   closure parameters. The one sanctioned sink is the literal
//!   `"jobs"` key every suite artifact uses to *report* (not compare)
//!   its worker count.
//! * **CDNA017 `float-accum`** — `f64` addition does not reassociate,
//!   so an order-sensitive reduction (`sum` / `product` / `fold`) over
//!   arrival-order-merged or `Hash*`-ordered data is nondeterministic
//!   even when the multiset of inputs is identical. Reductions over
//!   index-ordered fan-out results are fine: their order is fixed.
//!
//! Like the rest of cdna-check, the analyses are name-resolved and
//! token-linear. Taint propagates through `let` bindings and
//! push-family mutations but deliberately *not* through field
//! projections or `for` bindings — the declared-carrier naming
//! contract (`wall_ms*`, `*jobs*`) covers exactly the cross-boundary
//! flows this codebase uses, and everything else would be false
//! positives on deterministic per-item data.

use crate::dataflow::{
    arg_region, enclosing_block_end, let_binding, local_types, statement_start, temporary_end,
    Dataflow,
};
use crate::graph::{GraphFile, Pass, SymbolGraph};
use crate::lexer::Token;
use crate::parse::{CallSite, FnSym};
use crate::rules::Diagnostic;
use std::collections::BTreeSet;

/// Fan-out primitives: `(callee, home crates)`. A call only counts as
/// a fan-out when the primitive is actually defined in its home crate
/// (same honesty rule as every other designation in cdna-check).
const FAN_OUT: &[(&str, &[&str])] = &[
    ("run_indexed", &["sim"]),
    ("run_indexed_init", &["sim"]),
    ("run_rounds", &["sim"]),
    ("run_parallel_jobs", &["bench"]),
];

/// Appends whose result order is the workers' arrival order when the
/// receiver is lock-shared state.
const PUSH_FNS: &[&str] = &["push", "insert", "extend", "append", "push_back"];

/// Sorts that re-key a merged collection deterministically.
const SORT_FNS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// Serialization sinks: the `JsonWriter` value emitters, resolved to
/// their home crate. Everything the repo compares flows through these.
const SINK_FNS: &[&str] = &["string", "number_u64", "number_f64", "boolean"];
const SINK_HOME: &[&str] = &["trace"];

/// Iteration entry points whose order is the container's.
const ITER_FNS: &[&str] = &["iter", "iter_mut", "into_iter", "keys", "values", "drain"];

/// Order-sensitive floating-point reductions.
const REDUCE_FNS: &[&str] = &["sum", "product", "fold"];

/// Whether this name *is* one of the fan-out primitives. The
/// primitives' own bodies are the merge machinery (queue, slots,
/// barrier) and are exempt, exactly like the `lock` helpers under
/// CDNA012.
fn is_fan_out_primitive(name: &str) -> bool {
    FAN_OUT.iter().any(|(n, _)| *n == name)
}

/// Whether call `c` in `f` is a fan-out site: an armed primitive or a
/// raw `thread::scope`.
fn is_fan_out_call(df: &Dataflow, f: &FnSym, c: &CallSite) -> bool {
    if FAN_OUT
        .iter()
        .any(|(n, homes)| *n == c.callee && df.armed(n, homes))
    {
        return true;
    }
    c.callee == "scope"
        && c.pos >= 3
        && f.body[c.pos - 1].text == ":"
        && f.body[c.pos - 2].text == ":"
        && f.body[c.pos - 3].text == "thread"
}

/// Whether call `ci` acquires a lock (same model as CDNA012): the
/// `.lock()` method, or a workspace `lock(&m)` helper if one exists.
fn is_acquire(df: &Dataflow, f: &FnSym, c: &CallSite) -> bool {
    if c.callee != "lock" {
        return false;
    }
    let method = c.pos > 0 && f.body[c.pos - 1].text == ".";
    method || !df.targets("lock").is_empty()
}

/// The locked target's display name and whether it is index-addressed
/// (`lock(&slots[i])` / `slots[i].lock()`) — the sanctioned
/// index-ordered merge shape.
fn lock_target(f: &FnSym, c: &CallSite) -> (String, bool) {
    let body = &f.body;
    let (lo, hi) = if c.pos > 0 && body[c.pos - 1].text == "." {
        // Method form: the receiver tokens back to the statement start.
        (statement_start(body, c.pos), c.pos - 1)
    } else {
        // Helper form: the argument tokens.
        arg_region(body, c.pos)
    };
    let toks = &body[lo..hi];
    let indexed = toks.iter().any(|t| t.text == "[");
    let name = toks
        .iter()
        .rev()
        .find(|t| t.is_ident && t.text != "self" && t.text != "mut" && t.text != "let")
        .map(|t| t.text.clone())
        .unwrap_or_else(|| "<shared>".to_string());
    (name, indexed)
}

/// How long the guard from acquisition `c` lives (same model as
/// CDNA012): a `let`-bound guard whose whole RHS is the acquisition
/// lives to its enclosing block end; anything else to statement end.
fn guard_extent(f: &FnSym, c: &CallSite) -> usize {
    let stmt = statement_start(&f.body, c.pos);
    let (_, close) = arg_region(&f.body, c.pos);
    let whole_rhs = f.body.get(close + 1).map(|t| t.text.as_str()) == Some(";");
    if whole_rhs && let_binding(&f.body, stmt).is_some() {
        enclosing_block_end(&f.body, c.pos)
    } else {
        temporary_end(&f.body, c.pos)
    }
}

/// One arrival-order append: a push-family call inside the guard extent
/// of a non-indexed lock acquisition.
struct SharedPush {
    /// Token position of the push-family callee.
    pos: usize,
    /// 1-based line of the push.
    line: u32,
    /// The locked target being appended to.
    target: String,
}

/// Every arrival-order append in `f`. Index-addressed slots are the
/// sanctioned merge shape and never count.
fn shared_pushes(df: &Dataflow, f: &FnSym) -> Vec<SharedPush> {
    let mut out = Vec::new();
    for c in &f.calls {
        if !is_acquire(df, f, c) {
            continue;
        }
        let (target, indexed) = lock_target(f, c);
        if indexed {
            continue;
        }
        let extent = guard_extent(f, c);
        for p in &f.calls {
            if p.pos > c.pos && p.pos < extent && PUSH_FNS.contains(&p.callee.as_str()) {
                out.push(SharedPush {
                    pos: p.pos,
                    line: p.line,
                    target: target.clone(),
                });
            }
        }
    }
    out
}

/// End of the statement starting at `from`: the `;` (or the `}` closing
/// the enclosing block for a tail expression) at bracket depth 0.
/// Unlike [`temporary_end`] this tracks brace depth too, so a `let`
/// whose RHS is a struct literal or block spans the whole statement.
fn stmt_end(body: &[Token], from: usize) -> usize {
    let mut depth = 0i32;
    let mut i = from;
    while i < body.len() {
        match body[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" => depth -= 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            ";" if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    body.len()
}

/// Whether the token at `i` carries taint: an ident in the computed
/// set, an ident matching the declared-carrier `axiom`, or a position
/// the rule designates as a source (clock call, jobs primitive, …).
fn token_tainted(
    body: &[Token],
    i: usize,
    set: &BTreeSet<String>,
    axiom: &dyn Fn(&str) -> bool,
    source_at: &dyn Fn(&[Token], usize) -> bool,
) -> bool {
    let t = &body[i];
    if t.is_ident && (axiom(&t.text) || set.contains(&t.text)) {
        return true;
    }
    source_at(body, i)
}

/// Intra-function forward taint to a fixpoint: a `let` whose RHS
/// contains a tainted token taints its binding; pushing a tainted value
/// into a collection taints the collection. Deliberately does not
/// propagate through `for` bindings or field projections (see module
/// docs).
fn propagate_taint(
    f: &FnSym,
    axiom: &dyn Fn(&str) -> bool,
    source_at: &dyn Fn(&[Token], usize) -> bool,
) -> BTreeSet<String> {
    let body = &f.body;
    let mut set: BTreeSet<String> = BTreeSet::new();
    // Each round can only add bindings, and a binding chain is at most
    // as long as the body; a small cap covers every realistic function.
    for _ in 0..16 {
        let mut changed = false;
        for (i, t) in body.iter().enumerate() {
            if t.text != "let" {
                continue;
            }
            let Some(name) = let_binding(body, i) else {
                continue;
            };
            if set.contains(&name) {
                continue;
            }
            let end = stmt_end(body, i);
            if (i..end).any(|j| token_tainted(body, j, &set, axiom, source_at)) {
                set.insert(name);
                changed = true;
            }
        }
        for c in &f.calls {
            if !PUSH_FNS.contains(&c.callee.as_str()) {
                continue;
            }
            if c.pos == 0 || body[c.pos - 1].text != "." {
                continue;
            }
            let Some(recv) = body.get(c.pos.wrapping_sub(2)).filter(|t| t.is_ident) else {
                continue;
            };
            if set.contains(&recv.text) {
                continue;
            }
            let (s, e) = arg_region(body, c.pos);
            if (s..e).any(|j| token_tainted(body, j, &set, axiom, source_at)) {
                set.insert(recv.text.clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    set
}

/// The JSON key governing sink call `c`: the string literal on the
/// nearest preceding `key(…)` call's line.
fn governing_key<'a>(file: &'a GraphFile, f: &FnSym, c: &CallSite) -> Option<&'a str> {
    f.calls
        .iter()
        .rfind(|k| k.callee == "key" && k.pos < c.pos)
        .and_then(|k| file.string_on_line(k.line))
}

/// Flags every armed serialization sink whose argument carries taint
/// and whose governing key is not sanctioned.
#[allow(clippy::too_many_arguments)] // internal plumbing shared by two rules
fn sink_violations(
    df: &Dataflow,
    file: &GraphFile,
    f: &FnSym,
    rule: &'static str,
    set: &BTreeSet<String>,
    axiom: &dyn Fn(&str) -> bool,
    source_at: &dyn Fn(&[Token], usize) -> bool,
    sanctioned: &dyn Fn(&str) -> bool,
    what: &str,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for c in &f.calls {
        if !SINK_FNS.contains(&c.callee.as_str()) || !df.armed(&c.callee, SINK_HOME) {
            continue;
        }
        let (s, e) = arg_region(&f.body, c.pos);
        let Some(bad) = (s..e)
            .find(|&j| token_tainted(&f.body, j, set, axiom, source_at))
            .map(|j| f.body[j].text.clone())
        else {
            continue;
        };
        let key = governing_key(file, f, c);
        if key.map(sanctioned).unwrap_or(false) {
            continue;
        }
        let under = key
            .map(|k| format!("under key `{k}`"))
            .unwrap_or_else(|| "under a computed key".to_string());
        out.push(Diagnostic {
            rule,
            file: file.symbols.rel.clone(),
            line: c.line,
            message: format!(
                "`{}` serializes {what} `{bad}` {under}; {}",
                f.name,
                match rule {
                    "clock-purity" => {
                        "wall-clock values may only reach fields named `wall_ms*`"
                    }
                    _ => "the worker count may only be reported under the literal `jobs` key",
                },
            ),
        });
    }
    out
}

/// The CDNA014 pass. See the module docs for the model.
pub struct MergeOrderPass;

impl Pass for MergeOrderPass {
    fn rule(&self) -> &'static str {
        "merge-order"
    }

    fn run(&self, graph: &SymbolGraph) -> Vec<Diagnostic> {
        let df = Dataflow::build_with_binaries(graph);
        // Transitive summary: the locked target this function (or a
        // callee) appends to in arrival order, if any. The fan-out
        // primitives and the `lock` helpers are the machinery itself.
        let summary: Vec<Option<String>> = df.fixpoint(
            |_| None,
            |df, state, n| {
                if state[n].is_some() {
                    return state[n].clone();
                }
                let f = df.func(n);
                if is_fan_out_primitive(&f.name) || f.name == "lock" {
                    return None;
                }
                if let Some(p) = shared_pushes(df, f).into_iter().next() {
                    return Some(p.target);
                }
                for c in &f.calls {
                    if c.callee == "lock" {
                        continue;
                    }
                    for &t in df.targets(&c.callee) {
                        if let Some(tgt) = &state[t] {
                            return Some(tgt.clone());
                        }
                    }
                }
                None
            },
        );

        let mut out = Vec::new();
        for n in 0..df.nodes.len() {
            let f = df.func(n);
            if is_fan_out_primitive(&f.name) {
                continue;
            }
            let fan_outs: Vec<&CallSite> = f
                .calls
                .iter()
                .filter(|c| is_fan_out_call(&df, f, c))
                .collect();
            if fan_outs.is_empty() {
                continue;
            }
            let file = df.file(n);
            let pushes = shared_pushes(&df, f);
            let mut flagged_lines: BTreeSet<u32> = BTreeSet::new();
            let mut merge_start = usize::MAX;
            for c in &fan_outs {
                let (rs, re) = arg_region(&f.body, c.pos);
                merge_start = merge_start.min(re);
                // A deterministically keyed sort after the fan-out
                // discharges arrival-order merges for this site.
                let sorted_after = f
                    .calls
                    .iter()
                    .any(|s| s.pos >= re && SORT_FNS.contains(&s.callee.as_str()));
                if sorted_after {
                    continue;
                }
                for p in &pushes {
                    if p.pos > rs && p.pos < re && flagged_lines.insert(p.line) {
                        out.push(Diagnostic {
                            rule: self.rule(),
                            file: file.symbols.rel.clone(),
                            line: p.line,
                            message: format!(
                                "`{}` merges `{}` worker results into locked `{}` in \
                                 arrival order; merge through an index-ordered slot or \
                                 sort the merged results by a deterministic key",
                                f.name, c.callee, p.target,
                            ),
                        });
                    }
                }
                for c2 in &f.calls {
                    if c2.pos <= rs || c2.pos >= re {
                        continue;
                    }
                    if c2.callee == "lock"
                        || PUSH_FNS.contains(&c2.callee.as_str())
                        || is_fan_out_call(&df, f, c2)
                    {
                        continue;
                    }
                    let hit = df
                        .targets(&c2.callee)
                        .iter()
                        .find_map(|&t| summary[t].clone());
                    if let Some(tgt) = hit {
                        if flagged_lines.insert(c2.line) {
                            out.push(Diagnostic {
                                rule: self.rule(),
                                file: file.symbols.rel.clone(),
                                line: c2.line,
                                message: format!(
                                    "`{}` calls `{}` inside the `{}` fan-out, which \
                                     (transitively) appends to locked `{}` in arrival \
                                     order; workers must write index-ordered slots",
                                    f.name, c2.callee, c.callee, tgt,
                                ),
                            });
                        }
                    }
                }
            }
            // Unordered-container merges: iterating a Hash* local after
            // the fan-out feeds hash order into the merged result.
            let types = local_types(&f.body);
            let hash_local = |t: &Token| {
                t.is_ident
                    && types
                        .get(&t.text)
                        .map(|ty| ty.starts_with("Hash"))
                        .unwrap_or(false)
            };
            for (i, t) in f.body.iter().enumerate() {
                if i < merge_start {
                    continue;
                }
                let in_for = t.text == "for"
                    && f.body[i + 1..]
                        .iter()
                        .take_while(|x| x.text != "{")
                        .skip_while(|x| x.text != "in")
                        .any(hash_local);
                let in_iter = ITER_FNS.contains(&t.text.as_str())
                    && i >= 2
                    && f.body[i - 1].text == "."
                    && hash_local(&f.body[i - 2])
                    && f.body.get(i + 1).map(|x| x.text.as_str()) == Some("(");
                if (in_for || in_iter) && flagged_lines.insert(t.line) {
                    out.push(Diagnostic {
                        rule: self.rule(),
                        file: file.symbols.rel.clone(),
                        line: t.line,
                        message: format!(
                            "`{}` iterates an unordered `Hash*` container in the merge \
                             path after its fan-out; use a BTree container or sort \
                             before merging",
                            f.name,
                        ),
                    });
                }
            }
        }
        out
    }
}

/// Whether the token at `i` is a direct wall-clock source:
/// `Instant::now`, any `SystemTime` use, or an `.elapsed()` call. Bare
/// `Instant` deliberately does not match — the tracer has a
/// `Phase::Instant` enum variant that has nothing to do with clocks.
fn direct_clock_at(body: &[Token], i: usize) -> bool {
    let t = &body[i];
    if t.text == "SystemTime" {
        return true;
    }
    if t.text == "Instant"
        && body.get(i + 1).map(|x| x.text.as_str()) == Some(":")
        && body.get(i + 2).map(|x| x.text.as_str()) == Some(":")
        && body.get(i + 3).map(|x| x.text.as_str()) == Some("now")
    {
        return true;
    }
    t.text == "elapsed"
        && i > 0
        && body[i - 1].text == "."
        && body.get(i + 1).map(|x| x.text.as_str()) == Some("(")
}

/// The CDNA015 pass. See the module docs for the model.
pub struct ClockPurityPass;

impl Pass for ClockPurityPass {
    fn rule(&self) -> &'static str {
        "clock-purity"
    }

    fn run(&self, graph: &SymbolGraph) -> Vec<Diagnostic> {
        let df = Dataflow::build_with_binaries(graph);
        // Interprocedural summary: does calling this function yield a
        // wall-clock-derived value (directly or transitively)?
        let clocky: Vec<bool> = df.fixpoint(
            |_| false,
            |df, state, n| {
                if state[n] {
                    return true;
                }
                let f = df.func(n);
                (0..f.body.len()).any(|i| direct_clock_at(&f.body, i))
                    || f.calls
                        .iter()
                        .any(|c| df.targets(&c.callee).iter().any(|&t| state[t]))
            },
        );

        let axiom = |name: &str| name.starts_with("wall_ms");
        let mut out = Vec::new();
        for n in 0..df.nodes.len() {
            let f = df.func(n);
            let file = df.file(n);
            let src_pos: BTreeSet<usize> = f
                .calls
                .iter()
                .filter(|c| df.targets(&c.callee).iter().any(|&t| clocky[t]))
                .map(|c| c.pos)
                .collect();
            let source_at =
                |body: &[Token], i: usize| direct_clock_at(body, i) || src_pos.contains(&i);
            let set = propagate_taint(f, &axiom, &source_at);
            out.extend(sink_violations(
                &df,
                file,
                f,
                self.rule(),
                &set,
                &axiom,
                &source_at,
                &|key| key.starts_with("wall_ms"),
                "wall-clock-derived",
            ));
            // Struct-literal stores: a clock-derived value assigned to
            // a field not named `wall_ms*` escapes the naming contract
            // the interprocedural axiom depends on.
            out.extend(field_stores(file, f, self.rule(), &set, &axiom, &source_at));
        }
        out
    }
}

/// Flags struct-literal fields (`name: value`) whose value carries
/// taint but whose name is outside the `wall_ms*` carrier contract.
fn field_stores(
    file: &GraphFile,
    f: &FnSym,
    rule: &'static str,
    set: &BTreeSet<String>,
    axiom: &dyn Fn(&str) -> bool,
    source_at: &dyn Fn(&[Token], usize) -> bool,
) -> Vec<Diagnostic> {
    let body = &f.body;
    let mut out = Vec::new();
    for i in 1..body.len() {
        let t = &body[i];
        if !t.is_ident || t.text.starts_with("wall_ms") {
            continue;
        }
        let prev = body[i - 1].text.as_str();
        if prev != "{" && prev != "," {
            continue;
        }
        if body.get(i + 1).map(|x| x.text.as_str()) != Some(":")
            || body.get(i + 2).map(|x| x.text.as_str()) == Some(":")
        {
            continue;
        }
        // Value region: to the `,` or closing `}` at bracket depth 0.
        let mut depth = 0i32;
        let mut j = i + 2;
        let mut end = body.len();
        while j < body.len() {
            match body[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" => depth -= 1,
                "}" => {
                    if depth == 0 {
                        end = j;
                        break;
                    }
                    depth -= 1;
                }
                "," if depth == 0 => {
                    end = j;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        if (i + 2..end).any(|k| token_tainted(body, k, set, axiom, source_at)) {
            out.push(Diagnostic {
                rule,
                file: file.symbols.rel.clone(),
                line: t.line,
                message: format!(
                    "`{}` stores a wall-clock-derived value in field `{}`; only \
                     `wall_ms*` fields may carry wall-clock (rename the field or \
                     derive the value from sim time)",
                    f.name, t.text,
                ),
            });
        }
    }
    out
}

/// Jobs primitives whose results are worker counts: `(callee, homes)`.
const JOBS_SOURCE_FNS: &[(&str, &[&str])] = &[
    ("resolve_jobs", &["sim"]),
    ("available_jobs", &["sim"]),
    ("jobs_for", &["bench"]),
    ("jobs_flag_in", &["bench"]),
    ("jobs_flag_from_argv", &["bench"]),
    ("take_jobs_flag", &["bench"]),
];

/// The declared-carrier naming contract for worker counts.
fn jobs_axiom(name: &str) -> bool {
    name == "jobs" || name == "njobs" || name.ends_with("_jobs") || name.starts_with("jobs_")
}

/// Direct jobs/thread-identity source tokens: `available_parallelism`,
/// `ThreadId`, `thread::current`.
fn direct_jobs_at(body: &[Token], i: usize) -> bool {
    let t = &body[i];
    if t.text == "available_parallelism" || t.text == "ThreadId" {
        return true;
    }
    t.text == "current"
        && i >= 3
        && body[i - 1].text == ":"
        && body[i - 2].text == ":"
        && body[i - 3].text == "thread"
}

/// The CDNA016 pass. See the module docs for the model.
pub struct JobsLeakPass;

impl Pass for JobsLeakPass {
    fn rule(&self) -> &'static str {
        "jobs-leak"
    }

    fn run(&self, graph: &SymbolGraph) -> Vec<Diagnostic> {
        let df = Dataflow::build_with_binaries(graph);
        let mut out = Vec::new();
        for n in 0..df.nodes.len() {
            let f = df.func(n);
            if is_fan_out_primitive(&f.name)
                || JOBS_SOURCE_FNS.iter().any(|(name, _)| *name == f.name)
            {
                // The primitives hand jobs values around by design.
                continue;
            }
            let file = df.file(n);
            let src_pos: BTreeSet<usize> = f
                .calls
                .iter()
                .filter(|c| {
                    JOBS_SOURCE_FNS
                        .iter()
                        .any(|(name, homes)| *name == c.callee && df.armed(name, homes))
                })
                .map(|c| c.pos)
                .collect();
            // Worker closure parameters of fan-out sites carry the
            // worker/item index: `run_indexed(jobs, v, |i, x| …)`.
            let mut param_taint: BTreeSet<String> = BTreeSet::new();
            for c in &f.calls {
                if !is_fan_out_call(&df, f, c) {
                    continue;
                }
                let (rs, re) = arg_region(&f.body, c.pos);
                for i in rs..re {
                    if f.body[i].text != "|" {
                        continue;
                    }
                    let Some(p) = f.body.get(i + 1).filter(|t| t.is_ident) else {
                        continue;
                    };
                    if p.text == "_" || p.text == "mut" {
                        continue;
                    }
                    // Only a genuine first closure param: followed by a
                    // `,`, `|`, or a type ascription.
                    if matches!(
                        f.body.get(i + 2).map(|t| t.text.as_str()),
                        Some(",") | Some("|") | Some(":")
                    ) {
                        param_taint.insert(p.text.clone());
                    }
                }
            }
            let axiom = |name: &str| jobs_axiom(name) || param_taint.contains(name);
            let source_at =
                |body: &[Token], i: usize| direct_jobs_at(body, i) || src_pos.contains(&i);
            let set = propagate_taint(f, &axiom, &source_at);
            out.extend(sink_violations(
                &df,
                file,
                f,
                self.rule(),
                &set,
                &axiom,
                &source_at,
                &|key| key == "jobs",
                "the jobs-derived value",
            ));
        }
        out
    }
}

/// The CDNA017 pass. See the module docs for the model.
pub struct FloatAccumPass;

impl Pass for FloatAccumPass {
    fn rule(&self) -> &'static str {
        "float-accum"
    }

    fn run(&self, graph: &SymbolGraph) -> Vec<Diagnostic> {
        let df = Dataflow::build_with_binaries(graph);
        // Summary: does this function perform an f64 reduction
        // (directly or transitively)?
        let reduces: Vec<bool> = df.fixpoint(
            |_| false,
            |df, state, n| {
                if state[n] {
                    return true;
                }
                let f = df.func(n);
                f.calls
                    .iter()
                    .any(|c| f64_reduce(f, c) || df.targets(&c.callee).iter().any(|&t| state[t]))
            },
        );

        let mut out = Vec::new();
        for n in 0..df.nodes.len() {
            let f = df.func(n);
            if is_fan_out_primitive(&f.name) || !f.calls.iter().any(|c| is_fan_out_call(&df, f, c))
            {
                continue;
            }
            let file = df.file(n);
            // Order-unstable data: arrival-order-merged lock targets
            // (unless later sorted) and Hash*-typed locals. Plain
            // fan-out results are index-ordered and perfectly fine to
            // reduce.
            let mut unstable: BTreeSet<String> = BTreeSet::new();
            for p in shared_pushes(&df, f) {
                let sorted_later = f
                    .calls
                    .iter()
                    .any(|s| s.pos > p.pos && SORT_FNS.contains(&s.callee.as_str()));
                if !sorted_later {
                    unstable.insert(p.target);
                }
            }
            for (name, ty) in local_types(&f.body) {
                if ty.starts_with("Hash") {
                    unstable.insert(name);
                }
            }
            if unstable.is_empty() {
                continue;
            }
            for c in &f.calls {
                let stmt = statement_start(&f.body, c.pos);
                let end = stmt_end(&f.body, stmt);
                let stmt_has = |pred: &dyn Fn(&Token) -> bool| f.body[stmt..end].iter().any(pred);
                let direct =
                    f64_reduce(f, c) && stmt_has(&|t| t.is_ident && unstable.contains(&t.text));
                let transitive = !REDUCE_FNS.contains(&c.callee.as_str())
                    && df.targets(&c.callee).iter().any(|&t| reduces[t])
                    && {
                        let (s, e) = arg_region(&f.body, c.pos);
                        f.body[s..e]
                            .iter()
                            .any(|t| t.is_ident && unstable.contains(&t.text))
                    };
                if direct || transitive {
                    out.push(Diagnostic {
                        rule: self.rule(),
                        file: file.symbols.rel.clone(),
                        line: c.line,
                        message: format!(
                            "`{}` feeds order-unstable data into an `f64` reduction \
                             {}; float addition does not reassociate — sort the \
                             inputs by a deterministic key first",
                            f.name,
                            if REDUCE_FNS.contains(&c.callee.as_str()) {
                                format!("(`{}`)", c.callee)
                            } else {
                                format!("via `{}`", c.callee)
                            },
                        ),
                    });
                }
            }
        }
        out
    }
}

/// Whether call `c` is an `f64` reduction: a `sum`/`product`/`fold`
/// whose statement mentions `f64` (turbofish, ascription, or cast).
fn f64_reduce(f: &FnSym, c: &CallSite) -> bool {
    if !REDUCE_FNS.contains(&c.callee.as_str()) {
        return false;
    }
    let stmt = statement_start(&f.body, c.pos);
    let end = stmt_end(&f.body, stmt);
    f.body[stmt..end].iter().any(|t| t.text.contains("f64"))
}
