//! Tier-1 enforcement for the determinism-soundness layer (CDNA014–017)
//! and the parallel self-hosted scanner.
//!
//! The seeded calibration fixtures under `tests/corpus/` carry the
//! exact file:line expectations; running them here (not just in CI)
//! makes a silently-dead pass a test failure. The differential test
//! proves the scanner honors the very property the new rules enforce:
//! `--jobs 1 ≡ --jobs 4`, byte for byte.

use cdna_check::{
    analyze, calibrate::calibrate, check_repo_jobs, render_json, workspace_root, FileKind,
    SourceFile,
};

#[test]
fn calibration_catches_every_seeded_violation() {
    let corpus = workspace_root().join("crates/check/tests/corpus");
    let failures = match calibrate(&corpus) {
        Ok(f) => f,
        Err(e) => panic!("calibration harness error: {e}"),
    };
    assert!(
        failures.is_empty(),
        "calibration failures:\n{}",
        failures.join("\n")
    );
}

#[test]
fn parallel_scan_is_byte_identical_to_serial() {
    let root = workspace_root();
    let serial = match check_repo_jobs(&root, Some(1)) {
        Ok(r) => r,
        Err(e) => panic!("serial scan failed: {e}"),
    };
    let parallel = match check_repo_jobs(&root, Some(4)) {
        Ok(r) => r,
        Err(e) => panic!("parallel scan failed: {e}"),
    };
    assert_eq!(
        render_json(&serial),
        render_json(&parallel),
        "--jobs must not change the report"
    );
}

fn lib(rel: &str, text: &str) -> SourceFile {
    SourceFile {
        rel: rel.into(),
        kind: FileKind::Library,
        text: text.into(),
    }
}

#[test]
fn merge_order_fires_at_exact_line() {
    let par = "\
//! Pool stub.
use std::sync::{Mutex, MutexGuard};
/// Lock helper.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() { Ok(g) => g, Err(p) => p.into_inner() }
}
/// Fan-out stub.
pub fn run_indexed<T, R>(jobs: usize, items: Vec<T>, f: impl Fn(usize, T) -> R) -> Vec<R> {
    let _ = jobs;
    items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect()
}
";
    let merge = "\
//! Arrival-order merge.
use std::sync::Mutex;
use cdna_sim::par::{lock, run_indexed};
/// Seeded violation.
pub fn arrival(jobs: usize, items: Vec<u64>) -> Vec<u64> {
    let out = Mutex::new(Vec::new());
    run_indexed(jobs, items, |_, x| {
        lock(&out).push(x);
    });
    out.into_inner().unwrap_or_default()
}
";
    let analysis = analyze(
        &[
            lib("crates/sim/src/par.rs", par),
            lib("crates/model/src/m.rs", merge),
        ],
        &[],
    );
    let hits: Vec<_> = analysis
        .diagnostics
        .iter()
        .filter(|d| d.rule == "merge-order")
        .collect();
    assert_eq!(hits.len(), 1, "{:#?}", analysis.diagnostics);
    assert_eq!(hits[0].file, "crates/model/src/m.rs");
    assert_eq!(hits[0].line, 8, "the locked arrival-order push line");
}

#[test]
fn clock_purity_fires_at_exact_line_and_honors_wall_ms() {
    let trace = "\
//! Writer stub.
/// Writer.
pub struct JsonWriter;
impl JsonWriter {
    /// Key.
    pub fn key(&mut self, k: &str) { let _ = k; }
    /// Float value.
    pub fn number_f64(&mut self, v: f64) { let _ = v; }
}
";
    let timing = "\
//! Timing.
use std::time::Instant;
use cdna_trace::json::JsonWriter;
/// Seeded violation plus the sanctioned carrier.
pub fn emit(w: &mut JsonWriter) {
    let ms = Instant::now().elapsed().as_secs_f64();
    w.key(\"latency_ms\");
    w.number_f64(ms);
    w.key(\"wall_ms\");
    w.number_f64(ms);
}
";
    let analysis = analyze(
        &[
            lib("crates/trace/src/json.rs", trace),
            lib("crates/bench/src/timing.rs", timing),
        ],
        &[],
    );
    let hits: Vec<_> = analysis
        .diagnostics
        .iter()
        .filter(|d| d.rule == "clock-purity")
        .collect();
    assert_eq!(hits.len(), 1, "{:#?}", analysis.diagnostics);
    assert_eq!(hits[0].file, "crates/bench/src/timing.rs");
    assert_eq!(
        hits[0].line, 8,
        "the `latency_ms` sink; `wall_ms` is sanctioned"
    );
}
