//! Seeded-violation corpus: proves every static rule and every
//! `DmaShadow` violation class actually fires.
//!
//! The fixtures live in `tests/corpus/` (a plain directory, so cargo
//! does not compile them and the repo-wide scan skips them).

use cdna_check::shadow::{DmaShadow, ShadowDir, ViolationKind};
use cdna_check::{check_manifest, check_source, FileKind};
use cdna_core::ContextId;
use cdna_mem::{DomainId, PageId};

fn corpus(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(name);
    match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => panic!("corpus fixture {name} unreadable: {e}"),
    }
}

fn rules_fired(name: &str, kind: FileKind) -> Vec<&'static str> {
    let (diags, _) = check_source(name, kind, &corpus(name));
    diags.iter().map(|d| d.rule).collect()
}

#[test]
fn sim_time_rule_fires() {
    let fired = rules_fired("sim_time.rs", FileKind::Library);
    // `use std::time::Instant`, `time::Instant` path use, `SystemTime`,
    // and the struct field type all hit.
    assert!(fired.iter().filter(|r| **r == "sim-time").count() >= 3);
}

#[test]
fn nondeterministic_map_rule_fires() {
    let fired = rules_fired("nondet_map.rs", FileKind::Library);
    assert!(
        fired
            .iter()
            .filter(|r| **r == "nondeterministic-map")
            .count()
            >= 3,
        "import + two field types: {fired:?}"
    );
}

#[test]
fn panic_rule_fires_with_exemptions() {
    let (diags, allows) = check_source("panics.rs", FileKind::Library, &corpus("panics.rs"));
    let panics: Vec<_> = diags.iter().filter(|d| d.rule == "panic").collect();
    // unwrap + expect + panic! in `lookup` fire; the annotated unwrap in
    // `allowed_lookup` and the unwrap inside #[cfg(test)] do not.
    assert_eq!(panics.len(), 3, "{panics:?}");
    assert!(panics.iter().all(|d| d.line <= 12));
    assert_eq!(allows, 1, "the suppression annotation is counted");
}

#[test]
fn unsafe_rule_fires_even_in_test_code() {
    let (diags, _) = check_source(
        "unsafe_code.rs",
        FileKind::Library,
        &corpus("unsafe_code.rs"),
    );
    let lines: Vec<u32> = diags
        .iter()
        .filter(|d| d.rule == "unsafe")
        .map(|d| d.line)
        .collect();
    assert_eq!(lines.len(), 2, "library + test-module unsafe: {lines:?}");
}

#[test]
fn missing_docs_rule_fires() {
    let (diags, _) = check_source(
        "missing_docs.rs",
        FileKind::Library,
        &corpus("missing_docs.rs"),
    );
    let named: Vec<&str> = diags
        .iter()
        .filter(|d| d.rule == "missing-docs")
        .map(|d| d.message.as_str())
        .collect();
    assert_eq!(named.len(), 2, "{named:?}");
    assert!(named.iter().any(|m| m.contains("naked_function")));
    assert!(named.iter().any(|m| m.contains("NakedStruct")));
}

#[test]
fn hermetic_deps_rule_fires() {
    let diags = check_manifest("bad_manifest.toml", &corpus("bad_manifest.toml"));
    let names: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
    // serde, tokio (registry table), rand (subsection), criterion — but
    // not local-ok (path) or workspace-ok (workspace = true).
    assert_eq!(diags.len(), 4, "{names:?}");
    assert!(names.iter().any(|m| m.contains("`serde`")));
    assert!(names.iter().any(|m| m.contains("`tokio`")));
    assert!(names.iter().any(|m| m.contains("`rand`")));
    assert!(names.iter().any(|m| m.contains("`criterion`")));
}

#[test]
fn tests_and_examples_exempt_from_panic_and_map_rules() {
    let (diags, _) = check_source("panics.rs", FileKind::TestOrExample, &corpus("panics.rs"));
    assert!(diags.is_empty(), "{diags:?}");
    let (diags, _) = check_source(
        "nondet_map.rs",
        FileKind::TestOrExample,
        &corpus("nondet_map.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn raw_strings_do_not_fire_and_spans_survive() {
    let (diags, _) = check_source(
        "raw_strings.rs",
        FileKind::Library,
        &corpus("raw_strings.rs"),
    );
    let panics: Vec<u32> = diags
        .iter()
        .filter(|d| d.rule == "panic")
        .map(|d| d.line)
        .collect();
    // Only the real unwrap after the raw string fires, at its true line.
    assert_eq!(panics, [14], "{diags:?}");
}

#[test]
fn nested_block_comments_scrubbed_with_correct_spans() {
    let (diags, allows) = check_source(
        "nested_comments.rs",
        FileKind::Library,
        &corpus("nested_comments.rs"),
    );
    let panics: Vec<u32> = diags
        .iter()
        .filter(|d| d.rule == "panic")
        .map(|d| d.line)
        .collect();
    // The unwrap mentioned inside the nested comment is scrubbed; the
    // allowed expect is suppressed; only the final unwrap fires.
    assert_eq!(panics, [14], "{diags:?}");
    assert_eq!(allows, 1);
}

// --- DmaShadow violation classes -----------------------------------------

fn kinds(shadow: &DmaShadow) -> Vec<&'static str> {
    shadow.violations().iter().map(|v| v.kind.name()).collect()
}

#[test]
fn shadow_double_pin_fires() {
    let mut s = DmaShadow::new();
    let p = PageId(1);
    s.on_alloc(DomainId::guest(0), p);
    s.on_pin(p);
    s.on_dma_start(ContextId(0), p);
    s.on_pin(p);
    assert_eq!(kinds(&s), ["double-pin"]);
}

#[test]
fn shadow_unpin_underflow_fires() {
    let mut s = DmaShadow::new();
    let p = PageId(2);
    s.on_alloc(DomainId::guest(0), p);
    s.on_unpin(p);
    assert_eq!(kinds(&s), ["unpin-underflow"]);
}

#[test]
fn shadow_free_while_in_flight_fires() {
    let mut s = DmaShadow::new();
    let p = PageId(3);
    s.on_alloc(DomainId::guest(1), p);
    s.on_pin(p);
    s.on_dma_start(ContextId(1), p);
    s.on_free(DomainId::guest(1), p);
    assert_eq!(kinds(&s), ["free-while-in-flight"]);
}

#[test]
fn shadow_ownership_change_under_pin_fires() {
    let mut s = DmaShadow::new();
    let p = PageId(4);
    s.on_alloc(DomainId::guest(0), p);
    s.on_pin(p);
    s.on_transfer(p, DomainId::guest(0), DomainId::DRIVER);
    assert_eq!(kinds(&s), ["ownership-change-under-pin"]);
}

#[test]
fn shadow_dma_without_pin_fires() {
    let mut s = DmaShadow::new();
    let p = PageId(5);
    s.on_alloc(DomainId::guest(0), p);
    s.on_dma_start(ContextId(2), p);
    assert_eq!(kinds(&s), ["dma-without-pin"]);
}

#[test]
fn shadow_pin_without_owner_fires() {
    let mut s = DmaShadow::new();
    s.on_pin(PageId(6));
    assert_eq!(kinds(&s), ["pin-without-owner"]);
}

#[test]
fn shadow_sequence_replay_fires() {
    let mut s = DmaShadow::new();
    let (ctx, m) = (ContextId(0), 32);
    s.observe_seq(ctx, ShadowDir::Tx, 5, m);
    s.observe_seq(ctx, ShadowDir::Tx, 6, m);
    s.observe_seq(ctx, ShadowDir::Tx, 5, m); // stale descriptor replayed
    assert_eq!(kinds(&s), ["sequence-replay"]);
    assert!(matches!(
        s.violations()[0].kind,
        ViolationKind::SequenceReplay {
            expected: 7,
            found: 5
        }
    ));
}

#[test]
fn shadow_sequence_gap_fires() {
    let mut s = DmaShadow::new();
    let (ctx, m) = (ContextId(3), 32);
    s.observe_seq(ctx, ShadowDir::Rx, 0, m);
    s.observe_seq(ctx, ShadowDir::Rx, 4, m); // 1..=3 skipped
    assert_eq!(kinds(&s), ["sequence-gap"]);
}

#[test]
fn shadow_mirror_divergence_fires() {
    let mut s = DmaShadow::new();
    // Engine claims a pinned page the mirror never saw.
    s.audit_pinned(ContextId(0), &[PageId(9)]);
    assert_eq!(kinds(&s), ["mirror-divergence"]);
}
