//! The static pass run against this repository itself, as a `#[test]`
//! so tier-1 `cargo test` enforces the rules on every change.

use cdna_check::{check_repo, render_json, workspace_root};

#[test]
fn repository_passes_static_checks() {
    let report = match check_repo(&workspace_root()) {
        Ok(r) => r,
        Err(e) => panic!("scan failed: {e}"),
    };
    assert!(report.files_scanned > 50, "scan looks truncated");
    assert!(report.manifests_scanned >= 11, "missing crate manifests");
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.render()).collect();
    assert!(
        report.clean(),
        "static violations:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn repo_report_is_valid_deterministic_json() {
    let report = match check_repo(&workspace_root()) {
        Ok(r) => r,
        Err(e) => panic!("scan failed: {e}"),
    };
    let a = render_json(&report);
    let b = render_json(&report);
    assert_eq!(a, b, "report must be byte-stable");
    assert!(a.starts_with('{') && a.ends_with('}'));
    assert!(a.contains(r#""clean":true"#));
}
