// cdna-expect: lock-order crates/sim/src/par.rs:13
// cdna-expect: lock-order crates/sim/src/par.rs:19
// cdna-expect: lock-order crates/sim/src/par.rs:30
// cdna-fixture-file: crates/sim/src/par.rs
//! Lock helpers and the seeded inversion.
use std::sync::{Mutex, MutexGuard};
/// Poison-tolerant lock helper (its body is the acquisition itself).
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}
/// Takes `a` then `b`: one half of the seeded cycle.
pub fn ab(a: &Mutex<u32>, b: &Mutex<u32>) {
    let ga = lock(a);
    let gb = lock(b);
    let _ = (ga, gb);
}
/// Takes `b` then `a`: the inversion that closes the cycle.
pub fn ba(a: &Mutex<u32>, b: &Mutex<u32>) {
    let gb = lock(b);
    let ga = lock(a);
    let _ = (ga, gb);
}
/// Locks the controller (a hidden acquisition behind a call).
pub fn tick(ctrl: &Mutex<u32>) {
    let g = lock(ctrl);
    let _ = g;
}
/// Holds `slots` across a call that locks: the seeded pattern.
pub fn drive(slots: &Mutex<u32>, ctrl: &Mutex<u32>) {
    let s = lock(slots);
    tick(ctrl);
    let _ = s;
}
