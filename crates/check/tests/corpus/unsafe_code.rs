//! Corpus fixture: unsafe code (unsafe rule). The rule applies even in
//! test modules.

/// Reads a raw pointer.
pub fn peek(p: *const u32) -> u32 {
    unsafe { *p }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unsafe_in_tests_still_flagged() {
        let x = 7u32;
        let y = unsafe { *(&x as *const u32) };
        assert_eq!(y, 7);
    }
}
