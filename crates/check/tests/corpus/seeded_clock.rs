// cdna-expect: clock-purity crates/bench/src/timing.rs:12
// cdna-expect: clock-purity crates/bench/src/timing.rs:20
// cdna-expect: clock-purity crates/bench/src/timing.rs:30
// cdna-expect: sim-time crates/bench/src/timing.rs:2
// cdna-fixture-file: crates/trace/src/json.rs
//! JSON writer stub: arms the serialization sinks.
/// Minimal writer (fixture stub).
pub struct JsonWriter;
impl JsonWriter {
    /// Emits an object key.
    pub fn key(&mut self, k: &str) {
        let _ = k;
    }
    /// Emits a string value.
    pub fn string(&mut self, v: &str) {
        let _ = v;
    }
    /// Emits an unsigned value.
    pub fn number_u64(&mut self, v: u64) {
        let _ = v;
    }
    /// Emits a float value.
    pub fn number_f64(&mut self, v: f64) {
        let _ = v;
    }
}
// cdna-fixture-file: crates/bench/src/timing.rs
//! Wall-clock reporting fixtures for the clock-purity rule.
use std::time::Instant;
use cdna_trace::json::JsonWriter;
/// Milliseconds since `t0` (wall-clock-derived).
fn elapsed_ms(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}
/// Serializes wall time under a non-wall key: the seeded direct case.
pub fn write_report(w: &mut JsonWriter) {
    let ms = Instant::now().elapsed().as_secs_f64() * 1e3;
    w.key("latency_ms");
    w.number_f64(ms);
    w.key("wall_ms");
    w.number_f64(ms);
}
/// Serializes wall time computed by a callee: the transitive case.
pub fn write_derived(w: &mut JsonWriter, t0: Instant) {
    let cost = elapsed_ms(t0);
    w.key("cost_ms");
    w.number_f64(cost);
}
/// A measurement row (fixture).
pub struct Row {
    /// Wall time mislabeled as a generic cost.
    pub cost_ms: f64,
}
/// Stores wall time in a non-`wall_ms*` field: the field-contract case.
pub fn tag_run(t0: Instant) -> Row {
    let spent = elapsed_ms(t0);
    Row { cost_ms: spent }
}
