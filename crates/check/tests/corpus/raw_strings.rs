//! Raw-string fixture: text inside raw strings is data, not code, and
//! spans after a multi-line raw string with `#` delimiters stay exact.

/// Returns a shader-like blob full of rule-bait.
pub fn blob() -> &'static str {
    r##"
        .unwrap() inside a raw string must not fire the panic rule;
        neither should "quoted # text" or unsafe { blocks } in here.
    "##
}

/// A real violation after the raw string, for span checking.
pub fn after(v: Option<u32>) -> u32 {
    v.unwrap()
}
