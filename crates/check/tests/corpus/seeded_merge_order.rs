// cdna-expect: merge-order crates/model/src/merge.rs:13
// cdna-expect: merge-order crates/model/src/merge.rs:20
// cdna-expect: merge-order crates/model/src/merge.rs:31
// cdna-expect: nondeterministic-map crates/model/src/merge.rs:2
// cdna-expect: nondeterministic-map crates/model/src/merge.rs:26
// cdna-fixture-file: crates/sim/src/par.rs
//! Worker-pool stubs for the merge-order fixture.
use std::sync::{Mutex, MutexGuard};
/// Poison-tolerant lock helper (its body is the acquisition itself).
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}
/// Index-ordered fan-out primitive (stub: runs the workers inline).
pub fn run_indexed<T, R>(jobs: usize, items: Vec<T>, f: impl Fn(usize, T) -> R) -> Vec<R> {
    let _ = jobs;
    items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect()
}
// cdna-fixture-file: crates/model/src/merge.rs
//! Merge-path fixtures: arrival-order and hash-order merges.
use std::collections::HashMap;
use std::sync::Mutex;
use cdna_sim::par::{lock, run_indexed};
/// Appends one result to the shared accumulator (arrival order).
fn record(out: &Mutex<Vec<u64>>, x: u64) {
    lock(out).push(x);
}
/// Merges worker results in arrival order: the seeded direct case.
pub fn arrival_merge(jobs: usize, items: Vec<u64>) -> Vec<u64> {
    let out = Mutex::new(Vec::new());
    run_indexed(jobs, items, |_, x| {
        lock(&out).push(x * 2);
    });
    out.into_inner().unwrap_or_default()
}
/// Same merge through a helper: the seeded transitive case.
pub fn arrival_merge_via_helper(jobs: usize, items: Vec<u64>) -> Vec<u64> {
    let out = Mutex::new(Vec::new());
    run_indexed(jobs, items, |_, x| record(&out, x));
    out.into_inner().unwrap_or_default()
}
/// Bins results by key, then iterates hash order into the merge.
pub fn hash_merge(jobs: usize, items: Vec<u64>) -> Vec<u64> {
    let pairs = run_indexed(jobs, items, |i, x| (i as u64, x));
    let mut bins = HashMap::new();
    for (k, v) in pairs {
        bins.insert(k % 3, v);
    }
    let mut merged = Vec::new();
    for (_k, v) in &bins {
        merged.push(v);
    }
    merged
}
