// cdna-expect: send-audit crates/model/src/queue.rs:8
// cdna-expect: send-audit crates/model/src/queue.rs:13
// cdna-expect: send-audit crates/model/src/queue.rs:43
// cdna-fixture-file: crates/sim/src/engine.rs
//! Engine stand-in: owns the Send seam.
/// Installs a custom event queue (the Send seam).
pub fn with_event_queue(q: u32) -> u32 { q }
// cdna-fixture-file: crates/model/src/queue.rs
//! Send-seam fixture.
use std::rc::Rc;
/// Event type.
pub struct Event;
/// Queue crossing the Send seam with a non-Send field: seeded.
pub struct BadQueue {
    /// Shared counter — wrong type for a Send seam.
    pub shared: Rc<u32>,
}
/// Inner state reached through containment.
pub struct Inner {
    /// Raw pointer smuggled behind a clean-looking wrapper.
    pub ptr: *mut u32,
}
/// Queue reaching `Inner` via a field (containment closure).
pub struct WrapQueue {
    /// Contained state.
    pub inner: Inner,
}
/// The queue trait (local stand-in for `cdna_sim::EventQueue`).
pub trait EventQueue {
    /// Pops the next event.
    fn pop(&mut self) -> Option<Event>;
}
impl EventQueue for BadQueue {
    fn pop(&mut self) -> Option<Event> {
        None
    }
}
impl EventQueue for WrapQueue {
    fn pop(&mut self) -> Option<Event> {
        None
    }
}
/// Def-use: a local constructor flows into the seam.
pub fn install() {
    let q = LeakQueue::new(7);
    with_event_queue(q);
}
/// A queue passed by value through the seam (no impl block).
pub struct LeakQueue {
    /// Interior mutability is not Send-safe.
    pub cell: std::cell::RefCell<u32>,
}
impl LeakQueue {
    /// Builds the queue.
    pub fn new(v: u32) -> Self {
        LeakQueue {
            cell: std::cell::RefCell::new(v),
        }
    }
}
