// cdna-expect: float-accum crates/bench/src/stats.rs:15
// cdna-expect: float-accum crates/bench/src/stats.rs:25
// cdna-fixture-file: crates/sim/src/par.rs
//! Worker-pool stubs for the float-accum fixture.
use std::sync::{Mutex, MutexGuard};
/// Poison-tolerant lock helper (its body is the acquisition itself).
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}
/// Index-ordered fan-out primitive (stub: runs the workers inline).
pub fn run_indexed<T, R>(jobs: usize, items: Vec<T>, f: impl Fn(usize, T) -> R) -> Vec<R> {
    let _ = jobs;
    items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect()
}
// cdna-fixture-file: crates/bench/src/stats.rs
//! Reduction fixtures for the float-accum rule.
use std::sync::Mutex;
use cdna_sim::par::{lock, run_indexed};
/// Sums a sample slice (the reducing callee).
fn total_of(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>()
}
/// Reduces arrival-order-merged floats: the seeded direct case.
pub fn mean_half(jobs: usize, items: Vec<f64>) -> f64 {
    let acc = Mutex::new(Vec::new());
    let halves = run_indexed(jobs, items, |_, x| x * 0.5);
    for h in halves {
        lock(&acc).push(h);
    }
    let total: f64 = lock(&acc).iter().sum();
    total / 2.0
}
/// Reduces through a helper: the seeded transitive case.
pub fn skew(jobs: usize, items: Vec<f64>) -> f64 {
    let acc = Mutex::new(Vec::new());
    let doubles = run_indexed(jobs, items, |_, x| x + x);
    for d in doubles {
        lock(&acc).push(d);
    }
    total_of(&lock(&acc))
}
