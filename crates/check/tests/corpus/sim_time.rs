//! Corpus fixture: wall-clock time in simulation code (sim-time rule).
//! This file is NOT compiled or scanned as part of the repo; the corpus
//! test feeds it to the checker and asserts the rule fires.

use std::time::Instant;

pub struct Timer {
    start: Instant,
}

impl Timer {
    pub fn elapsed_hack() -> u64 {
        let t0 = std::time::Instant::now();
        let wall = std::time::SystemTime::now();
        drop(wall);
        t0.elapsed().as_nanos() as u64
    }
}
