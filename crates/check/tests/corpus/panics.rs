//! Corpus fixture: panicking calls in library code (panic rule), with a
//! test module proving the exemption and an annotated line proving the
//! suppression.

/// Looks up a value the panicky way.
pub fn lookup(v: &[u32]) -> u32 {
    let first = v.first().unwrap();
    let second = v.get(1).expect("needs two elements");
    if *first == *second {
        panic!("duplicates");
    }
    *first
}

/// This one is suppressed and must NOT be reported.
pub fn allowed_lookup(v: &[u32]) -> u32 {
    // cdna-check: allow(panic): corpus demonstrates suppression
    *v.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v = [1u32];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
