//! Corpus fixture: HashMap/HashSet in library code
//! (nondeterministic-map rule).

use std::collections::{HashMap, HashSet};

/// Report rows keyed nondeterministically.
pub struct Rows {
    /// Iterating this for a report is order-unstable.
    pub by_name: HashMap<String, u64>,
    /// Same problem.
    pub seen: HashSet<u32>,
}
