// cdna-expect: jobs-leak crates/rack/src/summary.rs:11
// cdna-expect: jobs-leak crates/rack/src/summary.rs:17
// cdna-fixture-file: crates/sim/src/par.rs
//! Worker-pool stubs for the jobs-leak fixture.
/// Resolves the requested worker count against the task count.
pub fn resolve_jobs(requested: Option<usize>, tasks: usize) -> usize {
    requested.unwrap_or(tasks).max(1)
}
/// Index-ordered fan-out primitive (stub: runs the workers inline).
pub fn run_indexed<T, R>(jobs: usize, items: Vec<T>, f: impl Fn(usize, T) -> R) -> Vec<R> {
    let _ = jobs;
    items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect()
}
// cdna-fixture-file: crates/trace/src/json.rs
//! JSON writer stub: arms the serialization sinks.
/// Minimal writer (fixture stub).
pub struct JsonWriter;
impl JsonWriter {
    /// Emits an object key.
    pub fn key(&mut self, k: &str) {
        let _ = k;
    }
    /// Emits a string value.
    pub fn string(&mut self, v: &str) {
        let _ = v;
    }
    /// Emits an unsigned value.
    pub fn number_u64(&mut self, v: u64) {
        let _ = v;
    }
    /// Emits a float value.
    pub fn number_f64(&mut self, v: f64) {
        let _ = v;
    }
}
// cdna-fixture-file: crates/rack/src/summary.rs
//! Suite-summary fixtures for the jobs-leak rule.
use cdna_sim::par::{resolve_jobs, run_indexed};
use cdna_trace::json::JsonWriter;
/// Reports the worker count twice: sanctioned under the literal
/// `jobs` key, leaked under `shards` — the seeded direct case.
pub fn write_summary(w: &mut JsonWriter, requested: Option<usize>, tasks: usize) {
    let workers = resolve_jobs(requested, tasks);
    w.key("jobs");
    w.number_u64(workers as u64);
    w.key("shards");
    w.number_u64(workers as u64);
}
/// Leaks the worker index through the fan-out closure parameter.
pub fn write_ids(w: &mut JsonWriter, items: Vec<u64>) {
    let ids = run_indexed(2, items, |worker, x| worker as u64 + x);
    w.key("first_tag");
    w.number_u64(ids[0]);
}
