//! Corpus fixture: undocumented public items (missing-docs rule).

pub fn naked_function() {}

pub struct NakedStruct;

/// Documented, must not be reported.
pub fn documented_function() {}

pub(crate) fn restricted_is_exempt() {}
