//! Nested-comment fixture: block comments nest in Rust; the lexer must
//! track depth and keep line numbers for the code that follows.

/* outer /* inner mentions .unwrap() and unsafe { blocks } */
   still inside the outer comment across
   multiple lines */
/// Panics when empty; the trailing allow suppresses the diagnostic.
pub fn first(v: Option<u32>) -> u32 {
    v.expect("fixture") // cdna-check: allow(panic): fixture
}

/// Fires at a known line after the nested comment.
pub fn second(v: Option<u32>) -> u32 {
    v.unwrap()
}
