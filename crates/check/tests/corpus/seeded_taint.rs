// cdna-expect: guest-taint crates/xen/src/driver.rs:10
// cdna-expect: guest-taint crates/xen/src/driver.rs:18
// cdna-expect: guest-taint crates/ricenic/src/device.rs:5
// cdna-fixture-file: crates/nic/src/ring.rs
//! Ring model for the taint fixture.
/// Stores a descriptor (privileged sink).
pub fn write_at(idx: u64) { let _ = idx; }
/// Loads a descriptor (guest-memory import).
pub fn read_at(idx: u64) -> u64 { idx }
// cdna-fixture-file: crates/net/src/pci.rs
//! Bus model.
/// Issues a DMA transfer (privileged sink).
pub fn dma(bytes: u64) -> u64 { bytes }
// cdna-fixture-file: crates/core/src/protection.rs
//! Validation primitives.
/// Validates a producer index (sanitizer).
pub fn precheck(v: u64) -> bool { v > 0 }
/// Sequence-number check (sanitizer).
pub fn check(seq: u64) -> bool { seq > 0 }
// cdna-fixture-file: crates/xen/src/driver.rs
//! Hypercall surface for the taint fixture.
/// Validated flush: precheck is sequenced before the ring store.
pub fn flush_tx_validated(idx: u64) {
    if precheck(idx) {
        write_at(idx);
    }
}
/// Direct flush: the seeded violation — no sanitizer on the path.
pub fn flush_tx_direct(idx: u64) {
    write_at(idx);
}
/// Stages a descriptor and issues the transfer (vulnerable helper).
fn stage(idx: u64) {
    dma(idx);
}
/// Transitive seeded violation: the tainted root reaches `dma` via `stage`.
pub fn queue_tx(idx: u64) {
    stage(idx);
}
// cdna-fixture-file: crates/ricenic/src/device.rs
//! Device model for the taint fixture.
/// Seeded import violation: a ring load flows to DMA unchecked.
pub fn pump(idx: u64) {
    let d = read_at(idx);
    dma(d);
}
/// Clean: the sequence check sanitizes before the DMA issue.
pub fn pump_checked(idx: u64) {
    let d = read_at(idx);
    if check(d) {
        dma(d);
    }
}
