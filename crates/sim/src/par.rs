//! `cdna-par`: a zero-dependency, deterministic parallel fan-out runner.
//!
//! Every fan-out in this repository — the `cdna-perf` bench matrix, the
//! paper figure/table sweeps, the sensitivity and ablation grids, and
//! `cdna-model`'s schedule-tree shards — is *embarrassingly parallel*:
//! each task is a self-contained, seeded simulation whose outcome
//! depends only on its own inputs. Parallelism therefore affects
//! wall-clock time and nothing else, the same per-tenant independence
//! argument multi-tenant NIC designs (CDNA contexts, OSMOSIS tenants)
//! make for concurrently schedulable device contexts.
//!
//! The runner keeps that property observable:
//!
//! * **Shared chunked work queue.** Items go into a
//!   `Mutex<VecDeque<(index, T)>>`; each worker repeatedly grabs a small
//!   *batch* of items under the lock and processes them locally, so
//!   lock traffic is `O(items / batch)` rather than `O(items)` and an
//!   unlucky long task never strands work behind it (idle workers keep
//!   draining the shared queue — stealing from the common pool).
//! * **Deterministic, index-ordered results.** Each result lands in the
//!   slot of its input index; callers get `Vec<R>` in input order no
//!   matter which worker ran what when. Combined with per-task
//!   determinism this makes `jobs=1` and `jobs=N` outputs byte-identical
//!   — proven by the differential tests in `crates/bench/tests/` and
//!   `crates/model/tests/`, not asserted by hand. `cdna-check` both
//!   *polices* this contract (the CDNA014–017 determinism-soundness
//!   passes flag arrival-order merges, clock/jobs leaks, and unstable
//!   `f64` reductions at fan-out sites) and *self-hosts* on this pool:
//!   its `--jobs N` scan shards per-file work through [`run_indexed`]
//!   and merges in path order, byte-identical at any worker count.
//! * **Bounded workers over [`std::thread::scope`].** No detached
//!   threads, no channels, no external crates; a worker panic propagates
//!   to the caller when the scope joins.
//!
//! Worker threads are *not* simulation threads: nothing here touches
//! [`crate::SimTime`] or the event queue. The pool is plain wall-clock
//! plumbing around independently deterministic runs.

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard};

/// Worker threads the host offers, per `std::thread::available_parallelism`
/// (1 when the host cannot say).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves the worker count for a fan-out of `tasks` items.
///
/// Priority: an explicit request (e.g. a `--jobs N` flag), then the
/// `CDNA_JOBS` environment variable, then [`available_jobs`]. The result
/// is clamped to `1..=tasks` — more workers than tasks is pure overhead,
/// and zero workers is nonsense.
pub fn resolve_jobs(requested: Option<usize>, tasks: usize) -> usize {
    requested
        .or_else(|| std::env::var("CDNA_JOBS").ok().and_then(|v| v.parse().ok()))
        .unwrap_or_else(available_jobs)
        .clamp(1, tasks.max(1))
}

/// Items a worker takes from the shared queue per lock acquisition:
/// small enough that the tail of the run load-balances, large enough
/// that the lock is cold. With `items ≤ 4 × jobs` this degenerates to 1
/// and every task is stolen individually.
fn batch_size(items: usize, jobs: usize) -> usize {
    (items / (jobs * 4)).max(1)
}

/// Locks a mutex, treating poisoning as benign: a poisoned pool mutex
/// means a worker panicked, and that panic is re-raised by the scope
/// join anyway — the data under the lock is plain queue/slot state with
/// no broken invariants to protect.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f(index, item)` for every item on a pool of `jobs` workers and
/// returns the results in input (index) order.
///
/// `jobs` is clamped to `1..=items.len()`; with one worker (or one
/// item) everything runs inline on the caller's thread, bit-identically
/// to the multi-worker path. A panicking task propagates out of the
/// scope join and aborts the whole fan-out.
///
/// # Example
///
/// ```
/// let squares = cdna_sim::par::run_indexed(4, (0u64..100).collect(), |i, x| {
///     assert_eq!(i as u64, x);
///     x * x
/// });
/// assert_eq!(squares[7], 49);
/// assert_eq!(squares.len(), 100);
/// ```
pub fn run_indexed<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    run_indexed_init(jobs, items, || {}, f)
}

/// Like [`run_indexed`], but runs `init()` once on every worker thread
/// before it takes any work.
///
/// This is the seam for thread-local state that must follow the fan-out:
/// `cdna-model` uses it to mirror the active protocol mutation (a
/// `thread_local` switch in `cdna-mem`) onto each worker, so a mutated
/// exploration behaves identically whether sharded or not. On the
/// `jobs == 1` inline path `init` runs on the caller's thread, which by
/// construction already carries its own thread-local state — callers
/// must keep `init` idempotent there.
pub fn run_indexed_init<T, R, F, I>(jobs: usize, items: Vec<T>, init: I, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
    I: Fn() + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, n);
    if jobs == 1 {
        init();
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    let batch = batch_size(n, jobs);
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    init();
                    let mut local: Vec<(usize, T)> = Vec::with_capacity(batch);
                    loop {
                        {
                            let mut q = lock(&queue);
                            for _ in 0..batch {
                                match q.pop_front() {
                                    Some(it) => local.push(it),
                                    None => break,
                                }
                            }
                        }
                        if local.is_empty() {
                            break;
                        }
                        for (i, item) in local.drain(..) {
                            let r = f(i, item);
                            *lock(&slots[i]) = Some(r);
                        }
                    }
                })
            })
            .collect();
        // Join explicitly so a worker's panic payload (not the scope's
        // generic "a scoped thread panicked") reaches the caller.
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    let mut out = Vec::with_capacity(n);
    for s in slots {
        if let Some(r) = s.into_inner().unwrap_or_else(|e| e.into_inner()) {
            out.push(r);
        }
    }
    // Every slot is written exactly once before the scope joins; a hole
    // could only mean a worker died without panicking, which cannot
    // happen under std's threading model.
    assert_eq!(out.len(), n, "parallel fan-out lost results");
    out
}

/// Runs `states` through repeated *rounds* of parallel stepping with a
/// serial barrier between rounds — the conservative epoch-barrier
/// pattern `cdna-rack` uses to advance N independent host simulations
/// in lookahead windows.
///
/// Each iteration first calls `sync(round, &mut states)` on the
/// caller's thread with every state at the same logical round — the
/// place to exchange information *between* states (route frames, merge
/// counters) and to decide whether to continue (`false` stops the loop
/// and returns the states). It then runs `step(index, round, &mut
/// state)` for every state across `jobs` persistent workers.
///
/// Determinism: `sync` always runs single-threaded over index-ordered
/// states, and each `step` call sees only its own state, so the outcome
/// is independent of `jobs` — `jobs=1` (which runs everything inline on
/// the caller's thread) and `jobs=N` produce identical final states.
///
/// Unlike [`run_indexed`], the workers persist across rounds: a rack
/// run has tens of thousands of epochs, and spawning threads per epoch
/// would cost more than the epoch's work. A panic in `step` is caught,
/// carried across the barrier, and re-raised on the caller's thread
/// after the workers shut down cleanly.
pub fn run_rounds<T, S, F>(jobs: usize, states: Vec<T>, mut sync: S, step: F) -> Vec<T>
where
    T: Send,
    S: FnMut(u64, &mut Vec<T>) -> bool,
    F: Fn(usize, u64, &mut T) + Sync,
{
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Barrier;

    let n = states.len();
    let jobs = jobs.clamp(1, n.max(1));
    let mut states = states;
    if jobs == 1 {
        let mut round = 0u64;
        while sync(round, &mut states) {
            for (i, t) in states.iter_mut().enumerate() {
                step(i, round, t);
            }
            round += 1;
        }
        return states;
    }

    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let work: Mutex<VecDeque<usize>> = Mutex::new(VecDeque::with_capacity(n));
    let round_no = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    // Two barriers per round: `start` releases the workers into the
    // round's work queue, `finish` hands control back to the caller.
    let start = Barrier::new(jobs + 1);
    let finish = Barrier::new(jobs + 1);
    let panicked: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    let mut payload = None;
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                start.wait();
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let r = round_no.load(Ordering::Acquire);
                loop {
                    let next = lock(&work).pop_front();
                    let Some(i) = next else { break };
                    let mut slot = lock(&slots[i]);
                    if let Some(t) = slot.as_mut() {
                        // Catch instead of unwinding through the barrier
                        // protocol: an unwinding worker would leave the
                        // caller waiting on `finish` forever.
                        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            // The slot mutex is per-index and `step` only
                            // touches its own slot's state; no other holder
                            // ever acquires a second lock, so the nesting
                            // cannot invert.
                            // cdna-check: allow(lock-order): per-index slot mutex
                            step(i, r, t)
                        }));
                        if let Err(p) = caught {
                            *lock(&panicked) = Some(p);
                        }
                    }
                }
                finish.wait();
            });
        }

        let mut round = 0u64;
        loop {
            if lock(&panicked).is_some() || !sync(round, &mut states) {
                stop.store(true, Ordering::Release);
                start.wait();
                break;
            }
            for (i, t) in states.drain(..).enumerate() {
                *lock(&slots[i]) = Some(t);
            }
            {
                let mut q = lock(&work);
                q.clear();
                q.extend(0..n);
            }
            round_no.store(round, Ordering::Release);
            start.wait();
            finish.wait();
            for slot in &slots {
                if let Some(t) = lock(slot).take() {
                    states.push(t);
                }
            }
            assert_eq!(states.len(), n, "round-barrier fan-out lost states");
            round += 1;
        }
        payload = lock(&panicked).take();
    });
    if let Some(p) = payload {
        std::panic::resume_unwind(p);
    }
    states
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_input_order() {
        // Make early items the slowest so completion order inverts
        // submission order; output order must not care.
        let items: Vec<u64> = (0..64).collect();
        let out = run_indexed(8, items, |i, x| {
            let mut acc = 0u64;
            for k in 0..((64 - i as u64) * 1000) {
                acc = acc.wrapping_add(k ^ x);
            }
            (x, acc, i)
        });
        for (i, (x, _, idx)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
            assert_eq!(*idx, i);
        }
    }

    #[test]
    fn single_job_and_many_jobs_agree() {
        let a = run_indexed(1, (0u32..33).collect(), |i, x| (i, x * 3));
        let b = run_indexed(7, (0u32..33).collect(), |i, x| (i, x * 3));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = run_indexed(4, Vec::<u32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn init_runs_on_every_worker() {
        let inits = AtomicUsize::new(0);
        let out = run_indexed_init(
            3,
            (0..30).collect::<Vec<u32>>(),
            || {
                inits.fetch_add(1, Ordering::SeqCst);
            },
            |_, x| x,
        );
        assert_eq!(out.len(), 30);
        // One init per spawned worker (workers = min(3, 30) = 3).
        assert_eq!(inits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn jobs_clamp_to_task_count() {
        assert_eq!(resolve_jobs(Some(64), 3), 3);
        assert_eq!(resolve_jobs(Some(0), 3), 1);
        assert_eq!(resolve_jobs(Some(2), 100), 2);
        // No request, no env override in this test's scope: whatever the
        // host offers, the clamp keeps it in range.
        let j = resolve_jobs(None, 5);
        assert!((1..=5).contains(&j));
    }

    #[test]
    fn batch_sizes_shrink_with_jobs() {
        assert_eq!(batch_size(100, 4), 6);
        assert_eq!(batch_size(12, 8), 1);
        assert_eq!(batch_size(1, 1), 1);
    }

    #[test]
    #[should_panic(expected = "task failed")]
    fn worker_panic_propagates() {
        let _ = run_indexed(4, (0..16).collect::<Vec<u32>>(), |_, x| {
            if x == 9 {
                panic!("task failed");
            }
            x
        });
    }

    /// Reference epoch loop: each round, every state absorbs its left
    /// neighbour's value from the previous round (cross-state exchange
    /// in `sync`), then advances independently in `step`.
    fn rounds_reference(jobs: usize) -> Vec<u64> {
        run_rounds(
            jobs,
            (0..9u64).collect(),
            |round, states| {
                if round >= 5 {
                    return false;
                }
                let prev: Vec<u64> = states.clone();
                for (i, s) in states.iter_mut().enumerate() {
                    *s = s.wrapping_add(prev[(i + 8) % 9]);
                }
                true
            },
            |i, round, s| {
                *s = s.wrapping_mul(31).wrapping_add(i as u64 ^ round);
            },
        )
    }

    #[test]
    fn rounds_jobs_one_and_many_agree() {
        let a = rounds_reference(1);
        let b = rounds_reference(4);
        let c = rounds_reference(9);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn rounds_stop_before_first_round_returns_states_untouched() {
        let out = run_rounds(
            4,
            vec![7u32, 8, 9],
            |_, _| false,
            |_, _, s| {
                *s = 0;
            },
        );
        assert_eq!(out, vec![7, 8, 9]);
    }

    #[test]
    fn rounds_sync_sees_every_round_in_order() {
        let mut seen = Vec::new();
        let out = run_rounds(
            3,
            vec![0u64; 5],
            |round, _| {
                seen.push(round);
                round < 3
            },
            |_, _, s| {
                *s += 1;
            },
        );
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert_eq!(out, vec![3; 5]);
    }

    #[test]
    #[should_panic(expected = "round step failed")]
    fn rounds_step_panic_propagates() {
        let _ = run_rounds(
            4,
            (0..8u32).collect(),
            |round, _| round < 10,
            |i, round, _| {
                if i == 5 && round == 2 {
                    panic!("round step failed");
                }
            },
        );
    }
}
