//! Pluggable event queues: the original binary heap and a hierarchical
//! timer wheel.
//!
//! Both implementations deliver events in identical order — ascending
//! `(time, seq)`, so equal-time events fire strictly FIFO — which the
//! differential tests in `tests/differential.rs` verify against hundreds
//! of randomized schedules. The [`TimerWheel`] is the default: inserts
//! into the near-future wheel are O(1) and pops come off a small
//! active-epoch heap instead of one global heap holding every pending
//! timer.
//!
//! # Timer wheel determinism argument
//!
//! Time is split into power-of-two *epochs* of [`EPOCH_NS`] nanoseconds.
//! The wheel keeps three structures:
//!
//! * `front`: a `Vec` sorted *descending* by `(time, seq)` holding only
//!   events of the *active* epoch `epoch0` — the minimum is at the end,
//!   so a pop is a plain `Vec::pop`;
//! * `slots`: [`WHEEL_SLOTS`] buckets covering epochs
//!   `(epoch0, epoch0 + WHEEL_SLOTS]`, each an unordered `Vec`;
//! * `overflow`: a `Vec` sorted descending by `(time, seq)` for epochs
//!   beyond the wheel span.
//!
//! Invariants (each preserved by `push` and `advance`):
//!
//! 1. Every event in `front` has epoch `epoch0`; every event in `slots`
//!    or `overflow` has a strictly later epoch. Hence the last element
//!    of `front` is the global minimum, and popping it yields exactly
//!    the `(time, seq)`-minimal pending event.
//! 2. A non-empty slot holds events of exactly one epoch. Two epochs
//!    mapping to the same slot differ by a multiple of [`WHEEL_SLOTS`];
//!    inserting the later one would require `epoch0` to have advanced
//!    *past* the earlier one — impossible, because `advance` always
//!    moves `epoch0` to the minimum pending epoch, which the occupied
//!    slot bounds from above.
//! 3. `advance` (called only when `front` is empty) finds the minimum
//!    pending epoch — the first occupied slot in cyclic order, or the
//!    overflow minimum, whichever is earlier — drains *both* sources
//!    for that epoch into `front`, and sorts it. Equal-time events
//!    therefore always meet in `front`, where the `(time, seq)` order
//!    makes ties FIFO.
//!
//! Because scheduling is always at-or-after the current time, pushes
//! never target an epoch before `epoch0`, and the cycle-aliasing case in
//! invariant 2 cannot arise. The wheel is thus observationally identical
//! to a single `(time, seq)` heap.
//!
//! The wheel deliberately avoids `std::collections::BinaryHeap`: slot
//! inserts are a single append, the per-epoch sort touches only a
//! handful of events, and `advance` *swaps* the drained slot's buffer
//! with the (empty) front buffer, so buffer capacity circulates between
//! the front and the slots and the steady state allocates nothing.

use std::cmp::Reverse;
use std::collections::binary_heap::PeekMut;
use std::collections::BinaryHeap;

use crate::SimTime;

/// log2 of the epoch width: 8192 ns epochs.
const EPOCH_SHIFT: u32 = 13;
/// Width of one wheel epoch in nanoseconds.
pub const EPOCH_NS: u64 = 1 << EPOCH_SHIFT;
/// Number of wheel slots; the wheel spans `WHEEL_SLOTS * EPOCH_NS` ≈ 1 ms
/// beyond the active epoch. Must stay a power of two (slot index is a
/// mask) and a multiple of 64 (occupancy bitmap words).
pub const WHEEL_SLOTS: usize = 256;
const SLOT_MASK: u64 = WHEEL_SLOTS as u64 - 1;
const OCC_WORDS: usize = WHEEL_SLOTS / 64;

/// A pending event: absolute time plus the tie-breaking sequence number
/// assigned at schedule time.
#[derive(Debug)]
struct Queued<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Queued<E> {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Queued<E> {}
impl<E> PartialOrd for Queued<E> {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Queued<E> {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match self.at.cmp(&other.at) {
            std::cmp::Ordering::Equal => self.seq.cmp(&other.seq),
            ord => ord,
        }
    }
}

/// Interface between the [`crate::Scheduler`] and its backing queue.
///
/// Implementations must deliver events in ascending `(time, seq)` order;
/// the sequence number is assigned by the scheduler and is unique, so
/// the order is total.
pub trait EventQueue<E> {
    /// Enqueues `event` at absolute time `at` with tie-breaker `seq`.
    fn push(&mut self, at: SimTime, seq: u64, event: E);
    /// Removes and returns the `(time, seq)`-minimal event.
    fn pop(&mut self) -> Option<(SimTime, u64, E)>;
    /// Like [`EventQueue::pop`], but only if the minimal event's time is
    /// at or before `deadline` — one call replaces the peek-then-pop
    /// pattern in `run_until`.
    fn pop_due(&mut self, deadline: SimTime) -> Option<(SimTime, u64, E)>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// Whether no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The original queue: one global binary heap ordered by `(time, seq)`.
#[derive(Debug)]
pub struct HeapQueue<E> {
    heap: BinaryHeap<Reverse<Queued<E>>>,
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        HeapQueue::new()
    }
}

impl<E> HeapQueue<E> {
    /// An empty heap queue.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
        }
    }
}

impl<E> EventQueue<E> for HeapQueue<E> {
    #[inline]
    fn push(&mut self, at: SimTime, seq: u64, event: E) {
        self.heap.push(Reverse(Queued { at, seq, event }));
    }

    #[inline]
    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        self.heap.pop().map(|Reverse(q)| (q.at, q.seq, q.event))
    }

    #[inline]
    fn pop_due(&mut self, deadline: SimTime) -> Option<(SimTime, u64, E)> {
        match self.heap.peek_mut() {
            Some(pm) if pm.0.at <= deadline => {
                let Reverse(q) = PeekMut::pop(pm);
                Some((q.at, q.seq, q.event))
            }
            _ => None,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Hierarchical timer wheel (see the module docs for the determinism
/// argument).
#[derive(Debug)]
pub struct TimerWheel<E> {
    /// Events of the active epoch, sorted descending by `(time, seq)`
    /// so the minimum pops off the end.
    front: Vec<Queued<E>>,
    /// Near-future epochs `(epoch0, epoch0 + WHEEL_SLOTS]`, unordered.
    slots: Vec<Vec<Queued<E>>>,
    /// Occupancy bitmap over `slots` (bit i = slot i non-empty).
    occupied: [u64; OCC_WORDS],
    /// Far-future events, sorted descending by `(time, seq)`.
    overflow: Vec<Queued<E>>,
    /// The active epoch (`time >> EPOCH_SHIFT`).
    epoch0: u64,
    /// Events currently resident in `slots`.
    wheel_len: usize,
    /// Total pending events.
    len: usize,
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<E> TimerWheel<E> {
    /// An empty wheel with the active epoch at time zero.
    pub fn new() -> Self {
        TimerWheel {
            front: Vec::new(),
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; OCC_WORDS],
            overflow: Vec::new(),
            epoch0: 0,
            wheel_len: 0,
            len: 0,
        }
    }

    #[inline]
    fn set_occupied(&mut self, slot: usize) {
        self.occupied[slot / 64] |= 1 << (slot % 64);
    }

    #[inline]
    fn clear_occupied(&mut self, slot: usize) {
        self.occupied[slot / 64] &= !(1 << (slot % 64));
    }

    /// First occupied slot at cyclic distance 1..=WHEEL_SLOTS from
    /// `epoch0`, or `None` if the wheel is empty.
    fn first_occupied_slot(&self) -> Option<usize> {
        if self.wheel_len == 0 {
            return None;
        }
        let start = ((self.epoch0 + 1) & SLOT_MASK) as usize;
        // Scan the bitmap from `start`, wrapping once. Word-at-a-time:
        // mask off bits below `start` in the first word.
        let start_word = start / 64;
        for step in 0..=OCC_WORDS {
            let w = (start_word + step) % OCC_WORDS;
            let mut word = self.occupied[w];
            if step == 0 {
                word &= !0u64 << (start % 64);
            } else if step == OCC_WORDS {
                // Wrapped all the way around: only bits below `start`
                // in the start word remain unexamined.
                word = self.occupied[w] & !(!0u64 << (start % 64));
            }
            if word != 0 {
                return Some((w % OCC_WORDS) * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Moves every event of the minimum pending epoch into `front`,
    /// sorts it descending, and makes that epoch active. Caller
    /// guarantees `front` is empty; a fully empty wheel is a no-op.
    fn advance(&mut self) {
        debug_assert!(self.front.is_empty());
        let wheel_epoch = self.first_occupied_slot().map(|slot| {
            let epoch = self.slots[slot][0].at.as_ns() >> EPOCH_SHIFT;
            (epoch, slot)
        });
        // `overflow` is sorted descending, so its minimum is last.
        let overflow_epoch = self.overflow.last().map(|q| q.at.as_ns() >> EPOCH_SHIFT);

        let next = match (wheel_epoch, overflow_epoch) {
            (Some((we, _)), Some(oe)) => we.min(oe),
            (Some((we, _)), None) => we,
            (None, Some(oe)) => oe,
            (None, None) => return,
        };

        if let Some((we, slot)) = wheel_epoch {
            if we == next {
                // Swap buffers instead of draining: the slot inherits the
                // front's old (empty) allocation, so capacity circulates
                // and the steady state never reallocates.
                std::mem::swap(&mut self.front, &mut self.slots[slot]);
                self.wheel_len -= self.front.len();
                self.clear_occupied(slot);
            }
        }
        while self
            .overflow
            .last()
            .is_some_and(|q| q.at.as_ns() >> EPOCH_SHIFT == next)
        {
            if let Some(q) = self.overflow.pop() {
                self.front.push(q);
            }
        }
        self.front.sort_unstable_by(|a, b| b.cmp(a)); // descending: minimum last
        self.epoch0 = next;
        debug_assert!(!self.front.is_empty());
    }
}

impl<E> EventQueue<E> for TimerWheel<E> {
    #[inline]
    fn push(&mut self, at: SimTime, seq: u64, event: E) {
        let epoch = at.as_ns() >> EPOCH_SHIFT;
        self.len += 1;
        let q = Queued { at, seq, event };
        if epoch <= self.epoch0 {
            // Active epoch (scheduling is never in the past, so "before
            // the active epoch" cannot happen; `<=` is defensive).
            // Sorted-descending insert; the front is small (one epoch).
            let pos = self.front.partition_point(|x| x.cmp(&q).is_gt());
            self.front.insert(pos, q);
        } else if epoch - self.epoch0 <= WHEEL_SLOTS as u64 {
            let slot = (epoch & SLOT_MASK) as usize;
            self.slots[slot].push(q);
            self.set_occupied(slot);
            self.wheel_len += 1;
        } else {
            let pos = self.overflow.partition_point(|x| x.cmp(&q).is_gt());
            self.overflow.insert(pos, q);
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        if self.front.is_empty() {
            self.advance();
        }
        let q = self.front.pop()?;
        self.len -= 1;
        Some((q.at, q.seq, q.event))
    }

    #[inline]
    fn pop_due(&mut self, deadline: SimTime) -> Option<(SimTime, u64, E)> {
        if self.front.is_empty() {
            self.advance();
        }
        match self.front.last() {
            Some(q) if q.at <= deadline => {
                let q = self.front.pop()?;
                self.len -= 1;
                Some((q.at, q.seq, q.event))
            }
            _ => None,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }
}

/// Which queue implementation a [`crate::Scheduler`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// The original single binary heap (kept for differential testing
    /// and as a perf baseline).
    BinaryHeap,
    /// The hierarchical timer wheel (default).
    #[default]
    TimerWheel,
}

impl QueueKind {
    /// Stable lower-case name, as used in `BENCH.json` and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            QueueKind::BinaryHeap => "heap",
            QueueKind::TimerWheel => "wheel",
        }
    }
}

/// Enum dispatch over the two queue kinds — avoids both genericizing
/// `Scheduler` (which would ripple a type parameter through `World`
/// implementations) and a `dyn` indirection on the hot path. The
/// `Custom` variant is the escape hatch for externally supplied queues
/// (the `cdna-model` schedule explorer swaps in a permutation queue that
/// deliberately reorders same-time ties); it pays the `dyn` cost, but
/// only runs under the model checker, never on the perf path.
///
/// The custom box is `Send` so that a `Simulation` over a `Send` world
/// is itself `Send` regardless of queue kind — `cdna-rack` migrates
/// whole per-host simulations across the [`crate::par`] worker pool at
/// every epoch barrier.
pub(crate) enum QueueImpl<E> {
    Heap(HeapQueue<E>),
    Wheel(TimerWheel<E>),
    Custom(Box<dyn EventQueue<E> + Send>),
}

impl<E: std::fmt::Debug> std::fmt::Debug for QueueImpl<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueImpl::Heap(q) => f.debug_tuple("Heap").field(q).finish(),
            QueueImpl::Wheel(q) => f.debug_tuple("Wheel").field(q).finish(),
            QueueImpl::Custom(q) => f.debug_struct("Custom").field("len", &q.len()).finish(),
        }
    }
}

impl<E> QueueImpl<E> {
    pub(crate) fn new(kind: QueueKind) -> Self {
        match kind {
            QueueKind::BinaryHeap => QueueImpl::Heap(HeapQueue::new()),
            QueueKind::TimerWheel => QueueImpl::Wheel(TimerWheel::new()),
        }
    }
}

impl<E> EventQueue<E> for QueueImpl<E> {
    #[inline]
    fn push(&mut self, at: SimTime, seq: u64, event: E) {
        match self {
            QueueImpl::Heap(q) => q.push(at, seq, event),
            QueueImpl::Wheel(q) => q.push(at, seq, event),
            QueueImpl::Custom(q) => q.push(at, seq, event),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        match self {
            QueueImpl::Heap(q) => q.pop(),
            QueueImpl::Wheel(q) => q.pop(),
            QueueImpl::Custom(q) => q.pop(),
        }
    }

    #[inline]
    fn pop_due(&mut self, deadline: SimTime) -> Option<(SimTime, u64, E)> {
        match self {
            QueueImpl::Heap(q) => q.pop_due(deadline),
            QueueImpl::Wheel(q) => q.pop_due(deadline),
            QueueImpl::Custom(q) => q.pop_due(deadline),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            QueueImpl::Heap(q) => q.len(),
            QueueImpl::Wheel(q) => q.len(),
            QueueImpl::Custom(q) => q.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<Q: EventQueue<u32>>(q: &mut Q) -> Vec<(SimTime, u64, u32)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e);
        }
        out
    }

    #[test]
    fn wheel_orders_across_structures() {
        let mut w = TimerWheel::new();
        // Far future (overflow), near future (wheel), active epoch (front).
        w.push(SimTime::from_ms(50), 0, 1);
        w.push(SimTime::from_us(100), 1, 2);
        w.push(SimTime::from_ns(5), 2, 3);
        assert_eq!(w.len(), 3);
        let order: Vec<u32> = drain(&mut w).into_iter().map(|(_, _, e)| e).collect();
        assert_eq!(order, vec![3, 2, 1]);
        assert!(w.is_empty());
    }

    #[test]
    fn wheel_equal_times_pop_fifo_even_when_split() {
        let mut w = TimerWheel::new();
        let t = SimTime::from_ms(10); // beyond the wheel span: overflow
        w.push(t, 0, 10);
        // Drain a nearer event so epoch0 advances and the same time now
        // lands in the wheel window.
        w.push(SimTime::from_ms(9), 1, 9);
        assert_eq!(w.pop().map(|(_, _, e)| e), Some(9));
        w.push(t, 2, 11);
        assert_eq!(w.pop(), Some((t, 0, 10)));
        assert_eq!(w.pop(), Some((t, 2, 11)));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn wheel_pop_due_respects_deadline_mid_bucket() {
        let mut w = TimerWheel::new();
        let t1 = SimTime::from_ns(EPOCH_NS * 10 + 100);
        let t2 = SimTime::from_ns(EPOCH_NS * 10 + 200); // same epoch as t1
        w.push(t1, 0, 1);
        w.push(t2, 1, 2);
        let mid = SimTime::from_ns(EPOCH_NS * 10 + 150);
        assert_eq!(w.pop_due(mid), Some((t1, 0, 1)));
        assert_eq!(w.pop_due(mid), None);
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop_due(t2), Some((t2, 1, 2)));
    }

    #[test]
    fn wheel_slot_aliasing_resolves_by_epoch() {
        let mut w = TimerWheel::new();
        // Two times whose epochs map to the same slot (differ by exactly
        // WHEEL_SLOTS epochs) plus one in between.
        let near = SimTime::from_ns(EPOCH_NS * 3);
        let far = SimTime::from_ns(EPOCH_NS * (3 + WHEEL_SLOTS as u64 + 1));
        let mid = SimTime::from_ns(EPOCH_NS * 100);
        w.push(near, 0, 1);
        w.push(far, 1, 3);
        w.push(mid, 2, 2);
        let order: Vec<u32> = drain(&mut w).into_iter().map(|(_, _, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn heap_and_wheel_agree_on_interleaved_pushes_and_pops() {
        let mut h = HeapQueue::new();
        let mut w = TimerWheel::new();
        let times: Vec<u64> = vec![
            0,
            1,
            1,
            EPOCH_NS - 1,
            EPOCH_NS,
            EPOCH_NS + 1,
            EPOCH_NS * WHEEL_SLOTS as u64,
            EPOCH_NS * WHEEL_SLOTS as u64 + 1,
            EPOCH_NS * (WHEEL_SLOTS as u64 + 2),
            1_000_000_000,
        ];
        for (seq, &t) in times.iter().enumerate() {
            h.push(SimTime::from_ns(t), seq as u64, seq as u32);
            w.push(SimTime::from_ns(t), seq as u64, seq as u32);
        }
        for _ in 0..times.len() {
            assert_eq!(h.pop(), w.pop());
        }
        assert_eq!(h.pop(), None);
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn queue_kind_names_are_stable() {
        assert_eq!(QueueKind::BinaryHeap.name(), "heap");
        assert_eq!(QueueKind::TimerWheel.name(), "wheel");
        assert_eq!(QueueKind::default(), QueueKind::TimerWheel);
    }
}
