#![warn(missing_docs)]

//! Discrete-event simulation engine used by the CDNA reproduction.
//!
//! The engine is deliberately small and deterministic: a monotone event
//! queue keyed by [`SimTime`], a [`World`] trait implemented by the
//! full-machine model in `cdna-system`, a seeded random number generator,
//! and a handful of statistics helpers used by the measurement harness.
//!
//! # Example
//!
//! ```
//! use cdna_sim::{Scheduler, SimTime, Simulation, World};
//!
//! struct Counter {
//!     fired: u32,
//! }
//!
//! impl World for Counter {
//!     type Event = u32;
//!     fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
//!         self.fired += ev;
//!         if ev < 4 {
//!             sched.after(now, SimTime::from_us(5), ev + 1);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(Counter { fired: 0 });
//! sim.schedule(SimTime::ZERO, 1);
//! sim.run_until(SimTime::from_ms(1));
//! assert_eq!(sim.world().fired, 1 + 2 + 3 + 4);
//! ```

mod engine;
pub mod par;
pub mod queue;
mod rng;
mod stats;
mod time;

pub use engine::{Scheduler, Simulation, World};
pub use queue::{EventQueue, QueueKind};
pub use rng::SimRng;
pub use stats::{RateMeter, RunningStats};
pub use time::SimTime;
