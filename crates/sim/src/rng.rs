//! Deterministic random number generation.

/// A seeded random number generator for simulation use.
///
/// Every run of an experiment is fully determined by its configuration and
/// seed, so paper tables regenerate bit-identically. The core generator is
/// an in-repo xoshiro256++ (Blackman & Vigna) seeded through splitmix64,
/// exposing only the operations the models need — no external crates, so
/// the tier-1 build stays hermetic.
///
/// # Example
///
/// ```
/// use cdna_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.range_u64(0..100), b.range_u64(0..100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

/// The splitmix64 step, used to expand a 64-bit seed into the four
/// xoshiro state words (the seeding procedure the xoshiro authors
/// recommend).
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        SimRng { state }
    }

    /// The xoshiro256++ step: uniform over all of `u64`.
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `range` (empty ranges panic).
    pub fn range_u64(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "cannot sample empty range");
        let span = range.end - range.start;
        // Debiased modular reduction (rejection sampling): reject the
        // partial final copy of `span` within u64's range.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return range.start + v % span;
            }
        }
    }

    /// Uniform `usize` below `bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0) is an empty range");
        self.range_u64(0..bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 high bits → the standard dyadic-rational construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p.clamp(0.0, 1.0)
    }

    /// A jitter factor uniform in `[1 - spread, 1 + spread]`, used to
    /// de-synchronize periodic model behaviour (e.g. per-guest timers).
    pub fn jitter(&mut self, spread: f64) -> f64 {
        1.0 + (self.unit_f64() * 2.0 - 1.0) * spread
    }

    /// Derives an independent generator for a sub-component, so adding a
    /// consumer in one component does not perturb another's stream.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::seed_from(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.range_u64(0..1_000_000), b.range_u64(0..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let va: Vec<u64> = (0..16).map(|_| a.range_u64(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.range_u64(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn matches_reference_xoshiro256pp_vectors() {
        // First outputs of xoshiro256++ from the state
        // [1, 2, 3, 4], per the reference C implementation at
        // https://prng.di.unimi.it/xoshiro256plusplus.c
        let mut r = SimRng {
            state: [1, 2, 3, 4],
        };
        let expect: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for e in expect {
            assert_eq!(r.next_u64(), e);
        }
    }

    #[test]
    fn range_is_unbiased_at_edges() {
        let mut r = SimRng::seed_from(11);
        for _ in 0..1000 {
            let v = r.range_u64(10..13);
            assert!((10..13).contains(&v));
        }
        // Span of 1 always returns the start.
        assert_eq!(r.range_u64(99..100), 99);
    }

    #[test]
    fn unit_float_in_range() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn jitter_within_spread() {
        let mut r = SimRng::seed_from(5);
        for _ in 0..1000 {
            let j = r.jitter(0.1);
            assert!((0.9..=1.1).contains(&j));
        }
    }

    #[test]
    fn forked_streams_are_independent_of_later_use() {
        let mut a = SimRng::seed_from(9);
        let mut fork1 = a.fork(1);
        let first = fork1.range_u64(0..u64::MAX);

        let mut b = SimRng::seed_from(9);
        let mut fork2 = b.fork(1);
        // Consuming from the parent after forking must not change the fork.
        let _ = b.range_u64(0..10);
        assert_eq!(first, fork2.range_u64(0..u64::MAX));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn below_zero_panics() {
        SimRng::seed_from(0).below(0);
    }
}
