//! Deterministic random number generation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded random number generator for simulation use.
///
/// Every run of an experiment is fully determined by its configuration and
/// seed, so paper tables regenerate bit-identically. The generator is a
/// thin wrapper over [`rand::rngs::SmallRng`] exposing only the operations
/// the models need.
///
/// # Example
///
/// ```
/// use cdna_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.range_u64(0..100), b.range_u64(0..100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Uniform integer in `range` (empty ranges panic, as in `rand`).
    pub fn range_u64(&mut self, range: std::ops::Range<u64>) -> u64 {
        self.inner.gen_range(range)
    }

    /// Uniform `usize` below `bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0) is an empty range");
        self.inner.gen_range(0..bound)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p.clamp(0.0, 1.0)
    }

    /// A jitter factor uniform in `[1 - spread, 1 + spread]`, used to
    /// de-synchronize periodic model behaviour (e.g. per-guest timers).
    pub fn jitter(&mut self, spread: f64) -> f64 {
        1.0 + (self.unit_f64() * 2.0 - 1.0) * spread
    }

    /// Derives an independent generator for a sub-component, so adding a
    /// consumer in one component does not perturb another's stream.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.inner.gen::<u64>();
        SimRng::seed_from(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.range_u64(0..1_000_000), b.range_u64(0..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let va: Vec<u64> = (0..16).map(|_| a.range_u64(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.range_u64(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_float_in_range() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn jitter_within_spread() {
        let mut r = SimRng::seed_from(5);
        for _ in 0..1000 {
            let j = r.jitter(0.1);
            assert!((0.9..=1.1).contains(&j));
        }
    }

    #[test]
    fn forked_streams_are_independent_of_later_use() {
        let mut a = SimRng::seed_from(9);
        let mut fork1 = a.fork(1);
        let first = fork1.range_u64(0..u64::MAX);

        let mut b = SimRng::seed_from(9);
        let mut fork2 = b.fork(1);
        // Consuming from the parent after forking must not change the fork.
        let _ = b.range_u64(0..10);
        assert_eq!(first, fork2.range_u64(0..u64::MAX));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn below_zero_panics() {
        SimRng::seed_from(0).below(0);
    }
}
