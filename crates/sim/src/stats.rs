//! Small statistics helpers for the measurement harness.

use crate::SimTime;

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use cdna_sim::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 6.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Default, Clone, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 when fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// Counts discrete occurrences over a window of simulated time and reports
/// them as a rate, e.g. packets/s or interrupts/s.
///
/// # Example
///
/// ```
/// use cdna_sim::{RateMeter, SimTime};
///
/// let mut m = RateMeter::new();
/// m.start(SimTime::from_secs(1));
/// m.add(500);
/// m.stop(SimTime::from_secs(2));
/// assert_eq!(m.per_second(), 500.0);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct RateMeter {
    events: u64,
    window_start: SimTime,
    window_end: Option<SimTime>,
    running: bool,
}

impl RateMeter {
    /// Creates an idle meter; events are ignored until [`RateMeter::start`].
    pub fn new() -> Self {
        RateMeter::default()
    }

    /// Begins (or restarts) the measurement window, clearing the count.
    pub fn start(&mut self, now: SimTime) {
        self.events = 0;
        self.window_start = now;
        self.window_end = None;
        self.running = true;
    }

    /// Ends the measurement window.
    pub fn stop(&mut self, now: SimTime) {
        if self.running {
            self.window_end = Some(now);
            self.running = false;
        }
    }

    /// Records `n` occurrences (ignored while the meter is not running).
    pub fn add(&mut self, n: u64) {
        if self.running {
            self.events += n;
        }
    }

    /// Raw event count within the window.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Events per second over the closed window; 0 for an empty window.
    ///
    /// # Panics
    ///
    /// Panics if called while the window is still open.
    pub fn per_second(&self) -> f64 {
        assert!(!self.running, "rate queried while window still open");
        let Some(end) = self.window_end else {
            return 0.0;
        };
        let span = (end - self.window_start).as_secs_f64();
        if span == 0.0 {
            0.0
        } else {
            self.events as f64 / span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_mean_and_variance() {
        let mut s = RunningStats::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.record(x);
        }
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn rate_meter_ignores_events_outside_window() {
        let mut m = RateMeter::new();
        m.add(100); // before start: ignored
        m.start(SimTime::from_ms(500));
        m.add(250);
        m.stop(SimTime::from_ms(1000));
        m.add(999); // after stop: ignored
        assert_eq!(m.events(), 250);
        assert!((m.per_second() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn restart_clears_count() {
        let mut m = RateMeter::new();
        m.start(SimTime::ZERO);
        m.add(10);
        m.start(SimTime::from_secs(1));
        m.add(5);
        m.stop(SimTime::from_secs(2));
        assert_eq!(m.events(), 5);
    }

    #[test]
    #[should_panic(expected = "window still open")]
    fn querying_open_window_panics() {
        let mut m = RateMeter::new();
        m.start(SimTime::ZERO);
        let _ = m.per_second();
    }
}
