//! The event queue and run loop.

use cdna_trace::Tracer;

use crate::queue::{EventQueue, QueueImpl, QueueKind};
use crate::SimTime;

/// A model that reacts to events.
///
/// The full-machine model in `cdna-system` implements this; each event is
/// dispatched with the current time and a [`Scheduler`] through which the
/// handler enqueues follow-up events.
pub trait World {
    /// The closed set of events this world reacts to.
    type Event;

    /// Handles one event at simulated time `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// The pending-event queue, exposed to handlers for scheduling follow-ups.
///
/// Events at equal times are delivered in the order they were scheduled
/// (FIFO), which keeps runs deterministic. The backing store is one of
/// the [`crate::queue`] implementations — a timer wheel by default, the
/// original binary heap for differential testing.
#[derive(Debug)]
pub struct Scheduler<E> {
    queue: QueueImpl<E>,
    next_seq: u64,
    scheduled: u64,
    /// Optional event tracer, carried here so event handlers (which
    /// receive the scheduler anyway) can emit spans without threading
    /// another parameter through every call.
    tracer: Option<Tracer>,
}

impl<E> Scheduler<E> {
    fn new(kind: QueueKind) -> Self {
        Scheduler::from_impl(QueueImpl::new(kind))
    }

    fn from_impl(queue: QueueImpl<E>) -> Self {
        Scheduler {
            queue,
            next_seq: 0,
            scheduled: 0,
            tracer: None,
        }
    }

    /// The attached tracer, if tracing is enabled. Handlers emitting
    /// events should use `if let Some(t) = sched.tracer_mut()` so a
    /// disabled tracer costs one branch and nothing else.
    #[inline]
    pub fn tracer_mut(&mut self) -> Option<&mut Tracer> {
        self.tracer.as_mut()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than `now` (time travel would break the
    /// monotonicity invariant the whole simulation relies on).
    #[inline]
    pub fn at(&mut self, now: SimTime, at: SimTime, event: E) {
        assert!(at >= now, "scheduled event in the past: now={now}, at={at}",);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.queue.push(at, seq, event);
    }

    /// Schedules `event` at `now + delay`.
    #[inline]
    pub fn after(&mut self, now: SimTime, delay: SimTime, event: E) {
        self.at(now, now + delay, event);
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total number of events scheduled since construction.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    #[inline]
    fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        self.queue.pop()
    }

    #[inline]
    fn pop_due(&mut self, deadline: SimTime) -> Option<(SimTime, u64, E)> {
        self.queue.pop_due(deadline)
    }
}

/// A world plus its event queue and clock.
///
/// See the crate-level documentation for a runnable example.
#[derive(Debug)]
pub struct Simulation<W: World> {
    world: W,
    sched: Scheduler<W::Event>,
    now: SimTime,
    processed: u64,
}

impl<W: World> Simulation<W> {
    /// Creates a simulation at time zero with the default event queue.
    pub fn new(world: W) -> Self {
        Simulation::with_queue(world, QueueKind::default())
    }

    /// Creates a simulation at time zero with an explicit event-queue
    /// implementation (used by the golden regression tests and the perf
    /// harness to compare queue kinds on otherwise identical runs).
    pub fn with_queue(world: W, kind: QueueKind) -> Self {
        Simulation {
            world,
            sched: Scheduler::new(kind),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Creates a simulation at time zero backed by a caller-supplied
    /// event queue.
    ///
    /// The queue must never deliver an event before one already popped
    /// (time must stay monotone), but it *may* reorder same-time ties —
    /// the `cdna-model` schedule explorer exploits exactly that freedom
    /// to enumerate tie-break interleavings of one logical run.
    pub fn with_event_queue(world: W, queue: Box<dyn EventQueue<W::Event> + Send>) -> Self {
        Simulation {
            world,
            sched: Scheduler::from_impl(QueueImpl::Custom(queue)),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared access to the model.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the model (used by harnesses to inject state
    /// between phases, e.g. to reset measurement counters after warm-up).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the simulation, returning the model.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Attaches an event tracer; subsequent handler invocations can
    /// record into it via [`Scheduler::tracer_mut`].
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.sched.tracer = Some(tracer);
    }

    /// Detaches and returns the tracer, if one was attached.
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        self.sched.tracer.take()
    }

    /// Read access to the attached tracer.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.sched.tracer.as_ref()
    }

    /// Schedules an event at absolute time `at` (≥ the current time).
    pub fn schedule(&mut self, at: SimTime, event: W::Event) {
        self.sched.at(self.now, at, event);
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimTime, event: W::Event) {
        self.sched.after(self.now, delay, event);
    }

    /// Processes a single event, if any is pending. Returns `true` if one
    /// was processed.
    pub fn step(&mut self) -> bool {
        match self.sched.pop() {
            Some((at, _seq, event)) => {
                debug_assert!(at >= self.now, "event queue went backwards");
                self.now = at;
                self.processed += 1;
                self.world.handle(self.now, event, &mut self.sched);
                true
            }
            None => false,
        }
    }

    /// Runs until the queue is empty or the next event lies strictly after
    /// `deadline`; the clock is then advanced to `deadline`.
    ///
    /// Each iteration pops with the deadline check folded in
    /// ([`crate::queue::EventQueue::pop_due`]) instead of the old
    /// peek-then-pop double queue access.
    ///
    /// Returns the number of events processed by this call.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let before = self.processed;
        while let Some((at, _seq, event)) = self.sched.pop_due(deadline) {
            debug_assert!(at >= self.now, "event queue went backwards");
            self.now = at;
            self.processed += 1;
            self.world.handle(self.now, event, &mut self.sched);
        }
        self.now = self.now.max(deadline);
        self.processed - before
    }

    /// Runs until the event queue drains completely.
    ///
    /// Returns the number of events processed. Worlds that self-perpetuate
    /// (e.g. periodic timers) never drain; use [`Simulation::run_until`]
    /// for those.
    pub fn run_to_completion(&mut self) -> u64 {
        let before = self.processed;
        while self.step() {}
        self.processed - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(SimTime, u32)>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, _s: &mut Scheduler<u32>) {
            self.seen.push((now, ev));
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new(Recorder::default());
        sim.schedule(SimTime::from_us(30), 3);
        sim.schedule(SimTime::from_us(10), 1);
        sim.schedule(SimTime::from_us(20), 2);
        sim.run_to_completion();
        let order: Vec<u32> = sim.world().seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut sim = Simulation::new(Recorder::default());
        for i in 0..100 {
            sim.schedule(SimTime::from_us(5), i);
        }
        sim.run_to_completion();
        let order: Vec<u32> = sim.world().seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut sim = Simulation::new(Recorder::default());
        sim.schedule(SimTime::from_us(10), 1);
        sim.schedule(SimTime::from_us(90), 2);
        let n = sim.run_until(SimTime::from_us(50));
        assert_eq!(n, 1);
        assert_eq!(sim.now(), SimTime::from_us(50));
        assert_eq!(sim.world().seen.len(), 1);
        sim.run_until(SimTime::from_us(100));
        assert_eq!(sim.world().seen.len(), 2);
    }

    #[test]
    fn deadline_is_inclusive() {
        let mut sim = Simulation::new(Recorder::default());
        sim.schedule(SimTime::from_us(50), 7);
        sim.run_until(SimTime::from_us(50));
        assert_eq!(sim.world().seen, vec![(SimTime::from_us(50), 7)]);
    }

    #[test]
    fn run_until_on_drained_queue_lands_exactly_on_deadline() {
        let mut sim = Simulation::new(Recorder::default());
        sim.schedule(SimTime::from_us(10), 1);
        sim.schedule(SimTime::from_us(20), 2);
        // All events drain before the deadline; the clock must still end
        // exactly at the deadline, not at the last event.
        let n = sim.run_until(SimTime::from_us(75));
        assert_eq!(n, 2);
        assert_eq!(sim.now(), SimTime::from_us(75));
        // And an already-empty queue advances the clock the same way.
        assert_eq!(sim.run_until(SimTime::from_us(80)), 0);
        assert_eq!(sim.now(), SimTime::from_us(80));
    }

    #[test]
    fn both_queue_kinds_run_the_same_simulation() {
        for kind in [QueueKind::BinaryHeap, QueueKind::TimerWheel] {
            let mut sim = Simulation::with_queue(Recorder::default(), kind);
            sim.schedule(SimTime::from_us(30), 3);
            sim.schedule(SimTime::from_us(10), 1);
            sim.schedule(SimTime::from_us(10), 2);
            sim.run_to_completion();
            let order: Vec<u32> = sim.world().seen.iter().map(|&(_, e)| e).collect();
            assert_eq!(order, vec![1, 2, 3], "{kind:?}");
        }
    }

    #[test]
    #[should_panic(expected = "scheduled event in the past")]
    fn scheduling_in_the_past_panics() {
        struct Bad;
        impl World for Bad {
            type Event = ();
            fn handle(&mut self, now: SimTime, _: (), s: &mut Scheduler<()>) {
                // Try to schedule before `now`.
                s.at(now, now - SimTime::from_ns(1), ());
            }
        }
        let mut sim = Simulation::new(Bad);
        sim.schedule(SimTime::from_us(1), ());
        sim.run_to_completion();
    }

    struct Chain {
        hops: u32,
    }

    impl World for Chain {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, s: &mut Scheduler<u32>) {
            self.hops += 1;
            if ev > 0 {
                s.after(now, SimTime::from_ns(1), ev - 1);
            }
        }
    }

    #[test]
    fn handlers_can_schedule_follow_ups() {
        let mut sim = Simulation::new(Chain { hops: 0 });
        sim.schedule(SimTime::ZERO, 9);
        let n = sim.run_to_completion();
        assert_eq!(n, 10);
        assert_eq!(sim.world().hops, 10);
        assert_eq!(sim.now(), SimTime::from_ns(9));
    }

    #[test]
    fn tracer_rides_the_scheduler() {
        struct Traced;
        impl World for Traced {
            type Event = ();
            fn handle(&mut self, now: SimTime, _: (), s: &mut Scheduler<()>) {
                if let Some(t) = s.tracer_mut() {
                    t.instant("tick", "test", now.as_ns(), 0, 0, None);
                }
            }
        }
        let mut sim = Simulation::new(Traced);
        sim.attach_tracer(cdna_trace::Tracer::new(16));
        sim.schedule(SimTime::from_us(1), ());
        sim.schedule(SimTime::from_us(2), ());
        sim.run_to_completion();
        let tracer = sim.take_tracer().expect("tracer attached");
        assert_eq!(tracer.len(), 2);
        assert!(sim.tracer().is_none());
    }

    #[test]
    fn counters_track_activity() {
        let mut sim = Simulation::new(Recorder::default());
        sim.schedule(SimTime::from_us(1), 1);
        sim.schedule(SimTime::from_us(2), 2);
        assert_eq!(sim.events_processed(), 0);
        sim.run_to_completion();
        assert_eq!(sim.events_processed(), 2);
    }
}
