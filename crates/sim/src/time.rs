//! Simulated time, stored as integer nanoseconds.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time (or a span of it), in nanoseconds.
///
/// `SimTime` doubles as both an instant and a duration, like the paper's
/// measurements which are all expressed in rates and fractions of wall
/// time. Nanosecond resolution comfortably covers the mechanisms being
/// modelled (the shortest costs are tens of nanoseconds; a full experiment
/// lasts a few simulated seconds, well within `u64` range).
///
/// # Example
///
/// ```
/// use cdna_sim::SimTime;
///
/// let t = SimTime::from_us(12) + SimTime::from_ns(300);
/// assert_eq!(t.as_ns(), 12_300);
/// assert!(t < SimTime::from_ms(1));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The latest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates a duration from a (possibly fractional) number of
    /// microseconds, rounding to the nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    pub fn from_us_f64(us: f64) -> Self {
        assert!(us.is_finite() && us >= 0.0, "invalid duration: {us}");
        SimTime((us * 1_000.0).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// This time expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This time expressed in fractional microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction; `a.saturating_sub(b)` is zero when `b > a`.
    pub const fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Checked addition, returning `None` on overflow.
    pub const fn checked_add(self, other: SimTime) -> Option<SimTime> {
        match self.0.checked_add(other.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Events per second corresponding to one event every `self`.
    ///
    /// Returns infinity for a zero interval.
    pub fn rate_hz(self) -> f64 {
        1e9 / self.0 as f64
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_ms(1_000));
    }

    #[test]
    fn fractional_microseconds_round() {
        assert_eq!(SimTime::from_us_f64(1.5).as_ns(), 1_500);
        assert_eq!(SimTime::from_us_f64(0.0004).as_ns(), 0);
        assert_eq!(SimTime::from_us_f64(0.0006).as_ns(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        let _ = SimTime::from_us_f64(-1.0);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_us(10);
        let b = SimTime::from_us(4);
        assert_eq!((a - b).as_ns(), 6_000);
        assert_eq!((a + b).as_ns(), 14_000);
        assert_eq!((a * 3).as_ns(), 30_000);
        assert_eq!((a / 2).as_ns(), 5_000);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn rate_conversion() {
        let t = SimTime::from_us(100);
        assert!((t.rate_hz() - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimTime::from_ns(12).to_string(), "12ns");
        assert_eq!(SimTime::from_us(3).to_string(), "3.000us");
        assert_eq!(SimTime::from_ms(7).to_string(), "7.000ms");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = [1u64, 2, 3].iter().map(|&n| SimTime::from_us(n)).sum();
        assert_eq!(total, SimTime::from_us(6));
    }
}
