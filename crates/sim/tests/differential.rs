//! Differential test: the timer wheel must be observationally identical
//! to the binary heap it replaced.
//!
//! Several hundred `SimRng`-seeded random schedules are driven through
//! both queue implementations — directly at the queue level and through
//! full `Simulation` runs — and the delivery order, timestamps, and
//! final clock must match exactly. The schedules deliberately stress the
//! wheel's structural boundaries: equal-time bursts (FIFO ties),
//! zero-delay self-chains (re-push into the active epoch), far-future
//! times that cross the overflow boundary, and `run_until` deadlines
//! landing in the middle of a wheel bucket.

use cdna_sim::queue::{EventQueue, HeapQueue, TimerWheel, EPOCH_NS, WHEEL_SLOTS};
use cdna_sim::{QueueKind, Scheduler, SimRng, SimTime, Simulation, World};

/// Picks a schedule time at-or-after `now`, biased to cover every wheel
/// structure: the active epoch, near-future buckets, the exact wheel
/// span boundary, and the far-future overflow heap.
fn random_delay(rng: &mut SimRng) -> u64 {
    let span = EPOCH_NS * WHEEL_SLOTS as u64;
    match rng.below(10) {
        // Equal-time burst / same-instant follow-up.
        0 | 1 => 0,
        // Within the active epoch.
        2 | 3 => rng.range_u64(1..EPOCH_NS),
        // Somewhere in the wheel window.
        4..=6 => rng.range_u64(EPOCH_NS..span),
        // Hugging the wheel/overflow boundary from both sides.
        7 => span - 1 + rng.range_u64(0..3),
        // Far future: deep in the overflow heap.
        _ => rng.range_u64(span..span * 40),
    }
}

// ---------------------------------------------------------------------
// Queue-level differential: random push/pop interleavings.
// ---------------------------------------------------------------------

#[test]
fn queues_agree_on_random_interleavings() {
    for seed in 0..200u64 {
        let mut rng = SimRng::seed_from(0x9e37_79b9 ^ seed);
        let mut heap = HeapQueue::new();
        let mut wheel = TimerWheel::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        for _ in 0..200 {
            if rng.chance(0.6) || heap.is_empty() {
                // Push a burst (sometimes several at the same instant).
                let burst = 1 + rng.below(4);
                let at = SimTime::from_ns(now + random_delay(&mut rng));
                for _ in 0..burst {
                    heap.push(at, seq, seq as u32);
                    wheel.push(at, seq, seq as u32);
                    seq += 1;
                }
            } else {
                let a = heap.pop();
                let b = wheel.pop();
                assert_eq!(a, b, "seed {seed}: pop diverged");
                if let Some((at, _, _)) = a {
                    now = at.as_ns();
                }
            }
            assert_eq!(heap.len(), wheel.len(), "seed {seed}: len diverged");
        }
        // Drain both; tails must be identical too.
        loop {
            let a = heap.pop();
            let b = wheel.pop();
            assert_eq!(a, b, "seed {seed}: drain diverged");
            if a.is_none() {
                break;
            }
        }
    }
}

#[test]
fn queues_agree_on_pop_due_deadlines_inside_buckets() {
    for seed in 0..100u64 {
        let mut rng = SimRng::seed_from(0xdead_beef ^ seed);
        let mut heap = HeapQueue::new();
        let mut wheel = TimerWheel::new();
        for seq in 0..64u64 {
            let at = SimTime::from_ns(random_delay(&mut rng));
            heap.push(at, seq, seq as u32);
            wheel.push(at, seq, seq as u32);
        }
        // Sweep deadlines that land mid-bucket (not on epoch edges).
        let mut deadline = 0u64;
        while !heap.is_empty() || !wheel.is_empty() {
            deadline += rng.range_u64(1..EPOCH_NS * 3);
            let d = SimTime::from_ns(deadline);
            loop {
                let a = heap.pop_due(d);
                let b = wheel.pop_due(d);
                assert_eq!(a, b, "seed {seed}: pop_due diverged at {d}");
                if a.is_none() {
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Simulation-level differential: full runs with handler follow-ups.
// ---------------------------------------------------------------------

/// A world that records every delivery and schedules random follow-ups,
/// including zero-delay self-chains, from its own deterministic RNG.
struct Chaos {
    rng: SimRng,
    seen: Vec<(SimTime, u32)>,
    budget: u32,
    next_id: u32,
}

impl World for Chaos {
    type Event = u32;
    fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
        self.seen.push((now, ev));
        if self.budget == 0 {
            return;
        }
        // 0–2 follow-ups; zero-delay chains re-enter the active epoch.
        let n = self.rng.below(3) as u32;
        for _ in 0..n.min(self.budget) {
            self.budget -= 1;
            self.next_id += 1;
            let delay = SimTime::from_ns(random_delay(&mut self.rng));
            sched.after(now, delay, self.next_id);
        }
    }
}

fn run_chaos(seed: u64, kind: QueueKind) -> (Vec<(SimTime, u32)>, SimTime, u64) {
    let world = Chaos {
        rng: SimRng::seed_from(seed),
        seen: Vec::new(),
        budget: 300,
        next_id: 1_000_000,
    };
    let mut sim = Simulation::with_queue(world, kind);
    let mut rng = SimRng::seed_from(!seed);
    // Seed primordial events, with equal-time bursts.
    let mut t = 0u64;
    for i in 0..20u32 {
        t += random_delay(&mut rng) / 4;
        let at = SimTime::from_ns(t);
        sim.schedule(at, i);
        if rng.chance(0.3) {
            sim.schedule(at, i + 100);
        }
    }
    // Run through a staircase of deadlines landing inside buckets, then
    // drain whatever is left.
    let mut deadline = 0u64;
    for _ in 0..40 {
        deadline += rng.range_u64(1..EPOCH_NS * 5);
        sim.run_until(SimTime::from_ns(deadline));
    }
    sim.run_to_completion();
    let processed = sim.events_processed();
    let now = sim.now();
    (sim.into_world().seen, now, processed)
}

#[test]
fn simulations_agree_between_heap_and_wheel() {
    for seed in 0..100u64 {
        let (seen_h, now_h, n_h) = run_chaos(seed, QueueKind::BinaryHeap);
        let (seen_w, now_w, n_w) = run_chaos(seed, QueueKind::TimerWheel);
        assert_eq!(n_h, n_w, "seed {seed}: events processed diverged");
        assert_eq!(now_h, now_w, "seed {seed}: final clock diverged");
        assert_eq!(seen_h, seen_w, "seed {seed}: delivery order diverged");
    }
}
