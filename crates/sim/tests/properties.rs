//! Property-style tests of the event engine's core guarantees, driven
//! over many seeded pseudo-random scheduling patterns (the repo builds
//! with zero external dependencies, so no property-testing framework).

use cdna_sim::{Scheduler, SimRng, SimTime, Simulation, World};

const CASES: u64 = 200;

/// Records the order in which events arrive.
struct Recorder {
    seen: Vec<(SimTime, u64)>,
}

impl World for Recorder {
    type Event = (SimTime, u64);
    fn handle(&mut self, now: SimTime, ev: (SimTime, u64), _s: &mut Scheduler<(SimTime, u64)>) {
        assert_eq!(now, ev.0, "event delivered at its scheduled time");
        self.seen.push(ev);
    }
}

/// Events always fire in nondecreasing time order, and ties fire in
/// scheduling order, for any scheduling pattern.
#[test]
fn delivery_is_time_ordered_and_fifo_within_ties() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(0x0d3 ^ case);
        let n = rng.range_u64(1..200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.range_u64(0..1_000)).collect();

        let mut sim = Simulation::new(Recorder { seen: Vec::new() });
        for (i, &t) in times.iter().enumerate() {
            let at = SimTime::from_us(t);
            sim.schedule(at, (at, i as u64));
        }
        sim.run_to_completion();
        let seen = &sim.world().seen;
        assert_eq!(seen.len(), times.len());
        for w in seen.windows(2) {
            assert!(w[0].0 <= w[1].0, "time went backwards (case {case})");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "FIFO violated within a tie (case {case})");
            }
        }
    }
}

/// run_until(t) delivers exactly the events at or before t, and the
/// clock ends at t.
#[test]
fn run_until_partitions_the_timeline() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(0xCA7 ^ case);
        let n = rng.range_u64(1..100) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.range_u64(0..1_000)).collect();
        let cut = rng.range_u64(0..1_000);

        let mut sim = Simulation::new(Recorder { seen: Vec::new() });
        for (i, &t) in times.iter().enumerate() {
            let at = SimTime::from_us(t);
            sim.schedule(at, (at, i as u64));
        }
        let deadline = SimTime::from_us(cut);
        sim.run_until(deadline);
        let expected_before = times.iter().filter(|&&t| t <= cut).count();
        assert_eq!(sim.world().seen.len(), expected_before);
        assert_eq!(sim.now(), deadline);
        sim.run_to_completion();
        assert_eq!(sim.world().seen.len(), times.len());
    }
}

/// Self-scheduling worlds interleave deterministically.
#[test]
fn chained_scheduling_is_deterministic() {
    struct Chain {
        trace: Vec<u64>,
    }
    impl World for Chain {
        type Event = u64;
        fn handle(&mut self, now: SimTime, ev: u64, s: &mut Scheduler<u64>) {
            self.trace.push(ev);
            if ev < 50 {
                s.after(now, SimTime::from_ns(ev % 7 + 1), ev + 2);
            }
        }
    }
    let run = || {
        let mut sim = Simulation::new(Chain { trace: Vec::new() });
        sim.schedule(SimTime::ZERO, 0);
        sim.schedule(SimTime::ZERO, 1);
        sim.run_to_completion();
        sim.into_world().trace
    };
    assert_eq!(run(), run());
}
