//! Time-sliced execution-profile sampling — the reproduction's Xenoprof.
//!
//! A [`ProfileLedger`] charges spans of CPU time (nanoseconds) to a
//! fixed set of numbered buckets, accumulating them per sampling slice.
//! Aggregate profiles (the paper's Tables 2/3) are the exact sum of the
//! slices; time series (the Figure 3/4 idle annotations) read the
//! slices individually. All arithmetic is integer nanoseconds, so
//! aggregate totals are bit-identical to an unsliced accumulator.

/// One sampling slice's charges.
#[derive(Debug, Clone)]
pub struct ProfileSample {
    /// Slice start, ns.
    pub start_ns: u64,
    /// Slice end, ns (start + slice width, clamped to the window end).
    pub end_ns: u64,
    /// Time charged to each bucket within the slice, ns.
    pub charged_ns: Vec<u64>,
}

impl ProfileSample {
    /// Total busy time in the slice.
    pub fn busy_ns(&self) -> u64 {
        self.charged_ns.iter().sum()
    }

    /// Fraction of the slice not charged anywhere (clamped at 0 when a
    /// work batch straddling the slice boundary overshoots).
    pub fn idle_frac(&self) -> f64 {
        let span = self.end_ns.saturating_sub(self.start_ns);
        if span == 0 {
            return 0.0;
        }
        span.saturating_sub(self.busy_ns()) as f64 / span as f64
    }
}

/// The sampler: a measurement window divided into fixed-width slices,
/// each accumulating per-bucket charges.
///
/// # Example
///
/// ```
/// use cdna_trace::ProfileLedger;
///
/// let mut led = ProfileLedger::new(2, 1_000_000); // 2 buckets, 1 ms slices
/// led.start_window(0);
/// led.advance_to(500_000);
/// led.charge(0, 200_000);
/// led.advance_to(1_500_000);
/// led.charge(1, 400_000);
/// led.close_window(2_000_000);
/// assert_eq!(led.total(0), 200_000);
/// assert_eq!(led.total(1), 400_000);
/// assert_eq!(led.samples().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ProfileLedger {
    buckets: usize,
    slice_ns: u64,
    window_start: u64,
    window_end: Option<u64>,
    recording: bool,
    cursor: u64,
    /// Flattened `slices × buckets` charge matrix.
    slices: Vec<u64>,
    totals: Vec<u64>,
}

impl ProfileLedger {
    /// Creates a sampler with `buckets` categories and `slice_ns`-wide
    /// sampling slices.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is 0 or `slice_ns` is 0.
    pub fn new(buckets: usize, slice_ns: u64) -> Self {
        assert!(buckets > 0, "profile needs at least one bucket");
        assert!(slice_ns > 0, "slice width must be positive");
        ProfileLedger {
            buckets,
            slice_ns,
            window_start: 0,
            window_end: None,
            recording: false,
            cursor: 0,
            slices: Vec::new(),
            totals: vec![0; buckets],
        }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Sampling slice width, ns.
    pub fn slice_ns(&self) -> u64 {
        self.slice_ns
    }

    /// Opens the measurement window at `now_ns`, clearing prior charges.
    pub fn start_window(&mut self, now_ns: u64) {
        self.window_start = now_ns;
        self.window_end = None;
        self.recording = true;
        self.cursor = now_ns;
        self.slices.clear();
        self.totals.iter_mut().for_each(|t| *t = 0);
    }

    /// Closes the measurement window at `now_ns`.
    pub fn close_window(&mut self, now_ns: u64) {
        if self.recording {
            self.window_end = Some(now_ns);
            self.recording = false;
        }
    }

    /// Whether a window is currently open.
    pub fn recording(&self) -> bool {
        self.recording
    }

    /// Moves the charge cursor to `now_ns`. Subsequent charges land in
    /// the slice containing this time. Callers advance the cursor once
    /// per event; time never moves backwards in a discrete-event run.
    #[inline]
    pub fn advance_to(&mut self, now_ns: u64) {
        if now_ns > self.cursor {
            self.cursor = now_ns;
        }
    }

    /// Charges `dt_ns` to `bucket` at the cursor time. Ignored while no
    /// window is open. Constant amortized time; allocates only when the
    /// cursor enters a slice for the first time.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is out of range.
    pub fn charge(&mut self, bucket: usize, dt_ns: u64) {
        assert!(bucket < self.buckets, "bucket {bucket} out of range");
        if !self.recording || dt_ns == 0 {
            return;
        }
        let slice = ((self.cursor.saturating_sub(self.window_start)) / self.slice_ns) as usize;
        let needed = (slice + 1) * self.buckets;
        if self.slices.len() < needed {
            self.slices.resize(needed, 0);
        }
        self.slices[slice * self.buckets + bucket] += dt_ns;
        self.totals[bucket] += dt_ns;
    }

    /// Total charged to `bucket` over the window (exact sum of slices).
    pub fn total(&self, bucket: usize) -> u64 {
        self.totals[bucket]
    }

    /// Total charged to all buckets.
    pub fn total_busy(&self) -> u64 {
        self.totals.iter().sum()
    }

    /// Window span in ns, if the window has been opened and closed.
    pub fn window_ns(&self) -> Option<u64> {
        self.window_end.map(|e| e.saturating_sub(self.window_start))
    }

    /// The per-slice samples of the closed window.
    ///
    /// The last slice is clamped to the window end, so slice fractions
    /// stay meaningful when the window is not a multiple of the slice
    /// width.
    ///
    /// # Panics
    ///
    /// Panics if the window is still open or was never opened.
    pub fn samples(&self) -> Vec<ProfileSample> {
        assert!(!self.recording, "samples requested while window open");
        let end = self.window_end.expect("window was never opened"); // cdna-check: allow(panic): documented precondition, asserted above
        let n_slices = self.slices.len() / self.buckets;
        (0..n_slices)
            .map(|i| {
                let start_ns = self.window_start + i as u64 * self.slice_ns;
                ProfileSample {
                    start_ns,
                    end_ns: (start_ns + self.slice_ns).min(end.max(start_ns)),
                    charged_ns: self.slices[i * self.buckets..(i + 1) * self.buckets].to_vec(),
                }
            })
            .collect()
    }

    /// Per-slice idle fractions — the Figure 3/4 idle curve.
    pub fn idle_series(&self) -> Vec<f64> {
        self.samples()
            .iter()
            .map(ProfileSample::idle_frac)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_outside_window_are_ignored() {
        let mut led = ProfileLedger::new(2, 1000);
        led.charge(0, 500); // before any window
        led.start_window(0);
        led.advance_to(100);
        led.charge(0, 50);
        led.close_window(2000);
        led.charge(1, 999); // after close
        assert_eq!(led.total(0), 50);
        assert_eq!(led.total(1), 0);
    }

    #[test]
    fn totals_equal_sum_of_slices_exactly() {
        let mut led = ProfileLedger::new(3, 100);
        led.start_window(0);
        let mut expect = [0u64; 3];
        // Deterministic pseudo-random charge pattern.
        let mut x = 0x9E3779B97F4A7C15u64;
        for i in 0..1000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            led.advance_to(i * 7);
            let b = (x % 3) as usize;
            let dt = x % 50;
            led.charge(b, dt);
            expect[b] += dt;
        }
        led.close_window(7000);
        for (b, &want) in expect.iter().enumerate() {
            assert_eq!(led.total(b), want);
        }
        let samples = led.samples();
        for (b, &want) in expect.iter().enumerate() {
            let sliced: u64 = samples.iter().map(|s| s.charged_ns[b]).sum();
            assert_eq!(sliced, want, "bucket {b} slices disagree with total");
        }
    }

    #[test]
    fn charges_land_in_the_cursor_slice() {
        let mut led = ProfileLedger::new(1, 1000);
        led.start_window(0);
        led.advance_to(2500);
        led.charge(0, 10);
        led.close_window(4000);
        let samples = led.samples();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].charged_ns[0], 0);
        assert_eq!(samples[1].charged_ns[0], 0);
        assert_eq!(samples[2].charged_ns[0], 10);
    }

    #[test]
    fn idle_series_reflects_load() {
        let mut led = ProfileLedger::new(1, 1000);
        led.start_window(0);
        led.advance_to(100);
        led.charge(0, 1000); // slice 0 fully busy
        led.advance_to(1100); // slice 1 left idle
        led.close_window(2000);
        let idle = led.idle_series();
        assert_eq!(idle.len(), 1); // only slice 0 was ever touched
        assert_eq!(idle[0], 0.0);
    }

    #[test]
    fn restarting_clears_state() {
        let mut led = ProfileLedger::new(1, 1000);
        led.start_window(0);
        led.charge(0, 5);
        led.start_window(10_000);
        led.close_window(11_000);
        assert_eq!(led.total(0), 0);
        assert_eq!(led.window_ns(), Some(1000));
    }

    #[test]
    fn last_slice_clamps_to_window_end() {
        let mut led = ProfileLedger::new(1, 1000);
        led.start_window(0);
        led.advance_to(1500);
        led.charge(0, 10);
        led.close_window(1500);
        let s = led.samples();
        assert_eq!(s.len(), 2);
        assert_eq!(s[1].start_ns, 1000);
        assert_eq!(s[1].end_ns, 1500);
    }
}
