//! Fixed-footprint log-bucketed histogram.

/// A histogram over `u64` observations with power-of-two buckets.
///
/// Bucket `i` covers values whose bit length is `i` (bucket 0 holds the
/// value 0), so the footprint is a constant 65 counters regardless of
/// range. Percentile queries return the *upper bound* of the bucket the
/// requested rank falls in — at most 2× the true value, which is plenty
/// for latency/size distributions in reports — except for the exact
/// tracked minimum and maximum.
///
/// # Example
///
/// ```
/// use cdna_trace::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// assert_eq!(h.min(), Some(1));
/// assert_eq!(h.max(), Some(1000));
/// let p50 = h.percentile(50.0);
/// assert!((256..=1024).contains(&p50));
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation. Constant time, no allocation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Upper bound of the value at percentile `p` (0–100).
    ///
    /// Returns 0 for an empty histogram. `p <= 0` returns the minimum;
    /// `p >= 100` returns the maximum (both exact).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if p <= 0.0 {
            return self.min;
        }
        if p >= 100.0 {
            return self.max;
        }
        // Rank of the requested observation, 1-based, ceiling — the
        // observation such that `p` percent of the data is at or below
        // its bucket.
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Never report beyond the true extremes.
                return bucket_upper(i).min(self.max).max(self.min);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn bucket_math() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn extremes_are_exact() {
        let mut h = Histogram::new();
        for v in [3u64, 17, 200, 9000] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 3);
        assert_eq!(h.percentile(100.0), 9000);
        assert_eq!(h.min(), Some(3));
        assert_eq!(h.max(), Some(9000));
        assert_eq!(h.sum(), 9220);
    }

    #[test]
    fn percentile_within_one_bucket_of_truth() {
        let mut h = Histogram::new();
        for v in 1..=1024u64 {
            h.record(v);
        }
        // True p50 = 512; the bucketed answer must be within [512, 1023].
        let p50 = h.percentile(50.0);
        assert!((512..=1023).contains(&p50), "p50 = {p50}");
        // p99 true = 1014; answer within [1014, 1024] after max clamp.
        let p99 = h.percentile(99.0);
        assert!((1014..=1024).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn single_value_percentiles_collapse() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(42);
        }
        assert_eq!(h.percentile(1.0), 42);
        assert_eq!(h.percentile(50.0), 42);
        assert_eq!(h.percentile(99.9), 42);
    }

    #[test]
    fn zero_values_count() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        h.record(8);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.max(), Some(8));
    }
}
