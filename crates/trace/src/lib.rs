#![warn(missing_docs)]

//! Observability substrate for the CDNA reproduction.
//!
//! The paper's entire evaluation is observability output: Xenoprof
//! execution profiles (Tables 2/3), per-guest interrupt rates, and idle
//! curves (Figures 3/4). This crate is the instrumentation layer those
//! views are derived from:
//!
//! * [`Registry`] — a table of cheap monotonic counters and
//!   [`Histogram`]s keyed by `(domain, component, metric)`. Hot-path
//!   increments go through pre-interned handles and never allocate.
//! * [`ProfileLedger`] — a time-sliced execution-profile sampler in the
//!   style of Xenoprof: CPU time is charged to numbered buckets and
//!   accumulated per sampling window, so both aggregate profiles
//!   (Tables 2/3) and time series (the Figure 3/4 idle curves) fall out
//!   of one sampler.
//! * [`Tracer`] — a bounded ring-buffer event tracer (oldest events are
//!   dropped on overflow) whose contents export to Chrome
//!   `trace_event`-format JSON, so a whole simulated run can be opened
//!   in `about://tracing` or Perfetto.
//! * [`json`] — the hand-rolled JSON writer shared by the trace
//!   exporter and `cdna-system`'s report serialization.
//!
//! The crate is std-only with zero external dependencies: it must build
//! (and its consumers must build) with no network access at all.

pub mod json;

mod histogram;
mod profile;
mod registry;
mod tracer;

pub use histogram::Histogram;
pub use profile::{ProfileLedger, ProfileSample};
pub use registry::{CounterId, Domain, HistogramId, MetricKey, Registry};
pub use tracer::{Phase, TraceEvent, Tracer};
