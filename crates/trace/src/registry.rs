//! The counter/histogram registry.
//!
//! Metrics are keyed by `(domain, component, metric[, instance])`.
//! Consumers intern a key once at setup time and hold the returned
//! [`CounterId`]/[`HistogramId`]; increments through a handle are a
//! bounds-checked array add — no hashing, no allocation — so they are
//! safe on the simulation's hot paths.

use std::collections::BTreeMap;
use std::fmt;

use crate::json::JsonWriter;
use crate::Histogram;

/// Which part of the machine a metric belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Domain {
    /// Machine-wide (not attributable to one domain).
    Global,
    /// The hypervisor.
    Hypervisor,
    /// The driver domain (dom0).
    Driver,
    /// Guest domain `n` (0-based).
    Guest(u16),
    /// Physical NIC `n`.
    Nic(u16),
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Global => write!(f, "global"),
            Domain::Hypervisor => write!(f, "hypervisor"),
            Domain::Driver => write!(f, "driver"),
            Domain::Guest(g) => write!(f, "guest{g}"),
            Domain::Nic(n) => write!(f, "nic{n}"),
        }
    }
}

/// Full metric identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    /// Owning domain.
    pub domain: Domain,
    /// Component within the domain ("evtchn", "ctx", "engine", ...).
    pub component: &'static str,
    /// Metric name ("hypercalls", "tx_descriptors", ...).
    pub metric: &'static str,
    /// Instance number for per-object metrics (e.g. a context id);
    /// 0 for singletons.
    pub instance: u32,
}

impl MetricKey {
    /// A key with instance 0.
    pub const fn new(domain: Domain, component: &'static str, metric: &'static str) -> Self {
        MetricKey {
            domain,
            component,
            metric,
            instance: 0,
        }
    }

    /// A key for instance `n` of a per-object metric.
    pub const fn instance(
        domain: Domain,
        component: &'static str,
        metric: &'static str,
        n: u32,
    ) -> Self {
        MetricKey {
            domain,
            component,
            metric,
            instance: n,
        }
    }
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.instance == 0 {
            write!(f, "{}/{}/{}", self.domain, self.component, self.metric)
        } else {
            write!(
                f,
                "{}/{}[{}]/{}",
                self.domain, self.component, self.instance, self.metric
            )
        }
    }
}

/// Handle to an interned counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to an interned histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// The metric table.
///
/// # Example
///
/// ```
/// use cdna_trace::{Domain, MetricKey, Registry};
///
/// let mut reg = Registry::new();
/// let hc = reg.counter(MetricKey::new(Domain::Hypervisor, "engine", "hypercalls"));
/// reg.inc(hc);
/// reg.add(hc, 4);
/// assert_eq!(reg.value(hc), 5);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Registry {
    counter_index: BTreeMap<MetricKey, usize>,
    counter_keys: Vec<MetricKey>,
    counters: Vec<u64>,
    hist_index: BTreeMap<MetricKey, usize>,
    hist_keys: Vec<MetricKey>,
    hists: Vec<Histogram>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Interns (or finds) the counter for `key`.
    pub fn counter(&mut self, key: MetricKey) -> CounterId {
        if let Some(&i) = self.counter_index.get(&key) {
            return CounterId(i);
        }
        let i = self.counters.len();
        self.counter_index.insert(key, i);
        self.counter_keys.push(key);
        self.counters.push(0);
        CounterId(i)
    }

    /// Interns (or finds) the histogram for `key`.
    pub fn histogram(&mut self, key: MetricKey) -> HistogramId {
        if let Some(&i) = self.hist_index.get(&key) {
            return HistogramId(i);
        }
        let i = self.hists.len();
        self.hist_index.insert(key, i);
        self.hist_keys.push(key);
        self.hists.push(Histogram::new());
        HistogramId(i)
    }

    /// Adds 1 to a counter. No allocation.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0] += 1;
    }

    /// Adds `n` to a counter. No allocation.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0] += n;
    }

    /// Current value of a counter.
    pub fn value(&self, id: CounterId) -> u64 {
        self.counters[id.0]
    }

    /// Records an observation into a histogram. No allocation.
    #[inline]
    pub fn record(&mut self, id: HistogramId, value: u64) {
        self.hists[id.0].record(value);
    }

    /// Read access to a histogram.
    pub fn hist(&self, id: HistogramId) -> &Histogram {
        &self.hists[id.0]
    }

    /// Convenience: interns on the fly and adds `n` (slow path — use
    /// [`Registry::counter`] + [`Registry::add`] in loops).
    pub fn add_by_key(&mut self, key: MetricKey, n: u64) {
        let id = self.counter(key);
        self.add(id, n);
    }

    /// Sets a counter to `value` (for snapshot-style metrics copied from
    /// component stats at collection time).
    pub fn set_by_key(&mut self, key: MetricKey, value: u64) {
        let id = self.counter(key);
        self.counters[id.0] = value;
    }

    /// Counter value by key, if interned.
    pub fn value_by_key(&self, key: &MetricKey) -> Option<u64> {
        self.counter_index.get(key).map(|&i| self.counters[i])
    }

    /// Number of interned counters.
    pub fn counter_count(&self) -> usize {
        self.counters.len()
    }

    /// All counters in key order.
    pub fn counters_sorted(&self) -> Vec<(MetricKey, u64)> {
        let mut out: Vec<(MetricKey, u64)> = self
            .counter_keys
            .iter()
            .zip(&self.counters)
            .map(|(&k, &v)| (k, v))
            .collect();
        out.sort_by_key(|e| e.0);
        out
    }

    /// All histograms in key order.
    pub fn histograms_sorted(&self) -> Vec<(MetricKey, &Histogram)> {
        let mut out: Vec<(MetricKey, &Histogram)> = self
            .hist_keys
            .iter()
            .zip(&self.hists)
            .map(|(&k, h)| (k, h))
            .collect();
        out.sort_by_key(|e| e.0);
        out
    }

    /// Renders the per-domain counter table the bench binaries print
    /// under `--metrics`: one section per domain, one line per counter.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let mut last_domain: Option<Domain> = None;
        for (key, value) in self.counters_sorted() {
            if last_domain != Some(key.domain) {
                if last_domain.is_some() {
                    out.push('\n');
                }
                out.push_str(&format!("[{}]\n", key.domain));
                last_domain = Some(key.domain);
            }
            let name = if key.instance == 0 {
                format!("{}/{}", key.component, key.metric)
            } else {
                format!("{}[{}]/{}", key.component, key.instance, key.metric)
            };
            out.push_str(&format!("  {name:<40} {value:>16}\n"));
        }
        for (key, h) in self.histograms_sorted() {
            out.push_str(&format!(
                "  {key} count={} p50={} p99={} max={}\n",
                h.count(),
                h.percentile(50.0),
                h.percentile(99.0),
                h.max().unwrap_or(0),
            ));
        }
        out
    }

    /// Serializes the counters as a JSON object keyed by
    /// `"domain/component[/instance]/metric"`.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        for (key, value) in self.counters_sorted() {
            w.key(&key.to_string());
            w.number_u64(value);
        }
        w.end_object();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut reg = Registry::new();
        let k = MetricKey::new(Domain::Driver, "netback", "packets");
        let a = reg.counter(k);
        let b = reg.counter(k);
        assert_eq!(a, b);
        reg.inc(a);
        reg.inc(b);
        assert_eq!(reg.value(a), 2);
        assert_eq!(reg.counter_count(), 1);
    }

    #[test]
    fn distinct_instances_are_distinct_counters() {
        let mut reg = Registry::new();
        let a = reg.counter(MetricKey::instance(
            Domain::Nic(0),
            "ctx",
            "tx_descriptors",
            1,
        ));
        let b = reg.counter(MetricKey::instance(
            Domain::Nic(0),
            "ctx",
            "tx_descriptors",
            2,
        ));
        assert_ne!(a, b);
        reg.add(a, 10);
        assert_eq!(reg.value(b), 0);
    }

    #[test]
    fn sorted_iteration_groups_by_domain() {
        let mut reg = Registry::new();
        reg.add_by_key(MetricKey::new(Domain::Guest(1), "drv", "m"), 1);
        reg.add_by_key(MetricKey::new(Domain::Hypervisor, "engine", "m"), 2);
        reg.add_by_key(MetricKey::new(Domain::Guest(0), "drv", "m"), 3);
        let keys: Vec<Domain> = reg
            .counters_sorted()
            .iter()
            .map(|(k, _)| k.domain)
            .collect();
        assert_eq!(
            keys,
            vec![Domain::Hypervisor, Domain::Guest(0), Domain::Guest(1)]
        );
    }

    #[test]
    fn table_renders_sections_and_values() {
        let mut reg = Registry::new();
        reg.add_by_key(
            MetricKey::new(Domain::Hypervisor, "engine", "hypercalls"),
            42,
        );
        reg.add_by_key(MetricKey::new(Domain::Nic(0), "dev", "tx_frames"), 7);
        let t = reg.table();
        assert!(t.contains("[hypervisor]"));
        assert!(t.contains("[nic0]"));
        assert!(t.contains("engine/hypercalls"));
        assert!(t.contains("42"));
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let mut reg = Registry::new();
        reg.add_by_key(MetricKey::new(Domain::Global, "sim", "events"), 99);
        let mut w = JsonWriter::new();
        reg.write_json(&mut w);
        assert_eq!(w.finish(), r#"{"global/sim/events":99}"#);
    }

    #[test]
    fn histograms_register_and_record() {
        let mut reg = Registry::new();
        let h = reg.histogram(MetricKey::new(Domain::Global, "dma", "bytes"));
        for v in [1u64, 10, 100] {
            reg.record(h, v);
        }
        assert_eq!(reg.hist(h).count(), 3);
        assert!(reg.table().contains("dma/bytes"));
    }
}
