//! Bounded ring-buffer event tracing with Chrome `trace_event` export.
//!
//! The [`Tracer`] records [`TraceEvent`]s into a fixed-capacity ring —
//! when full, the *oldest* events are dropped so a long run always
//! keeps its most recent history. [`Tracer::to_chrome_json`] serializes
//! the ring in the Chrome `trace_event` JSON format, which loads
//! directly into Perfetto (<https://ui.perfetto.dev>) or
//! `about://tracing`. Timestamps are simulated nanoseconds; the
//! exporter emits microseconds with three decimals, the format's native
//! resolution trick for sub-microsecond data.

use std::collections::VecDeque;

use crate::json::JsonWriter;

/// Chrome `trace_event` phase of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A span with a start and a duration (`ph: "X"`).
    Complete,
    /// A point-in-time marker (`ph: "i"`).
    Instant,
    /// A sampled counter value (`ph: "C"`).
    Counter,
}

impl Phase {
    fn code(self) -> &'static str {
        match self {
            Phase::Complete => "X",
            Phase::Instant => "i",
            Phase::Counter => "C",
        }
    }
}

/// One recorded event. All strings are `&'static str` so recording
/// never allocates; per-event numeric payload rides in `arg`.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Event name (the label shown on the track).
    pub name: &'static str,
    /// Category (comma-separated tags in the Chrome format).
    pub cat: &'static str,
    /// Phase kind.
    pub ph: Phase,
    /// Start time in simulated nanoseconds.
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 unless `ph` is [`Phase::Complete`]).
    pub dur_ns: u64,
    /// Process track (one per simulated machine/NIC).
    pub pid: u32,
    /// Thread track within the process (one per domain/context).
    pub tid: u32,
    /// Optional single numeric argument (`args: {key: value}`); the
    /// value of a [`Phase::Counter`] sample goes here.
    pub arg: Option<(&'static str, u64)>,
}

/// Fixed-capacity event recorder.
///
/// # Example
///
/// ```
/// use cdna_trace::{Phase, Tracer};
///
/// let mut t = Tracer::new(1024);
/// t.span("world_switch", "sched", 1_000, 250, 0, 1, None);
/// t.instant("virq", "irq", 1_500, 0, 2, Some(("vector", 3)));
/// let json = t.to_chrome_json();
/// assert!(json.starts_with("{\"traceEvents\":["));
/// ```
#[derive(Debug)]
pub struct Tracer {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    /// `(pid, tid, name)` thread-track labels; `tid == u32::MAX` labels
    /// the process itself.
    labels: Vec<(u32, u32, String)>,
}

impl Tracer {
    /// Creates a tracer that retains at most `capacity` events,
    /// dropping the oldest on overflow.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "tracer capacity must be positive");
        Tracer {
            ring: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
            labels: Vec::new(),
        }
    }

    /// Records an event, evicting the oldest if the ring is full.
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
    }

    /// Records a completed span (`ph: "X"`).
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn span(
        &mut self,
        name: &'static str,
        cat: &'static str,
        ts_ns: u64,
        dur_ns: u64,
        pid: u32,
        tid: u32,
        arg: Option<(&'static str, u64)>,
    ) {
        self.record(TraceEvent {
            name,
            cat,
            ph: Phase::Complete,
            ts_ns,
            dur_ns,
            pid,
            tid,
            arg,
        });
    }

    /// Records an instant marker (`ph: "i"`).
    #[inline]
    pub fn instant(
        &mut self,
        name: &'static str,
        cat: &'static str,
        ts_ns: u64,
        pid: u32,
        tid: u32,
        arg: Option<(&'static str, u64)>,
    ) {
        self.record(TraceEvent {
            name,
            cat,
            ph: Phase::Instant,
            ts_ns,
            dur_ns: 0,
            pid,
            tid,
            arg,
        });
    }

    /// Records a counter sample (`ph: "C"`). Shows as a stacked-area
    /// track in the viewer.
    #[inline]
    pub fn counter(
        &mut self,
        name: &'static str,
        ts_ns: u64,
        pid: u32,
        series: &'static str,
        value: u64,
    ) {
        self.record(TraceEvent {
            name,
            cat: "counter",
            ph: Phase::Counter,
            ts_ns,
            dur_ns: 0,
            pid,
            tid: 0,
            arg: Some((series, value)),
        });
    }

    /// Labels the process track `pid` in the viewer.
    pub fn name_process(&mut self, pid: u32, name: &str) {
        self.labels.push((pid, u32::MAX, name.to_string()));
    }

    /// Labels thread track `tid` within process `pid` in the viewer.
    pub fn name_thread(&mut self, pid: u32, tid: u32, name: &str) {
        self.labels.push((pid, tid, name.to_string()));
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Number of events evicted due to overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Serializes the retained events as Chrome `trace_event` JSON
    /// (object form, `traceEvents` array) loadable in Perfetto.
    pub fn to_chrome_json(&self) -> String {
        // ~120 bytes per event is a comfortable overestimate.
        let mut w = JsonWriter::with_capacity(self.ring.len() * 120 + 256);
        w.begin_object();
        w.key("traceEvents");
        w.begin_array();
        for (pid, tid, name) in &self.labels {
            w.begin_object();
            w.key("name");
            if *tid == u32::MAX {
                w.string("process_name");
            } else {
                w.string("thread_name");
            }
            w.key("ph");
            w.string("M");
            w.key("pid");
            w.number_u64(u64::from(*pid));
            if *tid != u32::MAX {
                w.key("tid");
                w.number_u64(u64::from(*tid));
            }
            w.key("args");
            w.begin_object();
            w.key("name");
            w.string(name);
            w.end_object();
            w.end_object();
        }
        for ev in &self.ring {
            w.begin_object();
            w.key("name");
            w.string(ev.name);
            w.key("cat");
            w.string(ev.cat);
            w.key("ph");
            w.string(ev.ph.code());
            w.key("ts");
            w.raw(&us_with_ns_fraction(ev.ts_ns));
            if ev.ph == Phase::Complete {
                w.key("dur");
                w.raw(&us_with_ns_fraction(ev.dur_ns));
            }
            if ev.ph == Phase::Instant {
                // Scope: thread-local tick mark.
                w.key("s");
                w.string("t");
            }
            w.key("pid");
            w.number_u64(u64::from(ev.pid));
            w.key("tid");
            w.number_u64(u64::from(ev.tid));
            if let Some((k, v)) = ev.arg {
                w.key("args");
                w.begin_object();
                w.key(k);
                w.number_u64(v);
                w.end_object();
            }
            w.end_object();
        }
        w.end_array();
        w.key("displayTimeUnit");
        w.string("ns");
        w.key("otherData");
        w.begin_object();
        w.key("droppedEvents");
        w.number_u64(self.dropped);
        w.end_object();
        w.end_object();
        w.finish()
    }
}

/// Formats nanoseconds as decimal microseconds with three fractional
/// digits — the trace_event format's `ts`/`dur` unit.
fn us_with_ns_fraction(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_balanced_json(s: &str) {
        // Structural well-formedness: every brace/bracket balances and
        // quotes pair up outside of escapes.
        let mut depth_obj = 0i64;
        let mut depth_arr = 0i64;
        let mut in_str = false;
        let mut escaped = false;
        for c in s.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' => depth_obj += 1,
                '}' => depth_obj -= 1,
                '[' => depth_arr += 1,
                ']' => depth_arr -= 1,
                _ => {}
            }
            assert!(depth_obj >= 0 && depth_arr >= 0, "close before open");
        }
        assert!(!in_str, "unterminated string");
        assert_eq!(depth_obj, 0, "unbalanced braces");
        assert_eq!(depth_arr, 0, "unbalanced brackets");
    }

    #[test]
    fn overflow_drops_oldest_first() {
        let mut t = Tracer::new(3);
        for i in 0..5u64 {
            t.instant("e", "test", i * 100, 0, 0, Some(("seq", i)));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let kept: Vec<u64> = t.events().map(|e| e.arg.unwrap().1).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn exporter_emits_well_formed_chrome_json() {
        let mut t = Tracer::new(64);
        t.name_process(0, "machine");
        t.name_thread(0, 1, "guest0 \"vcpu\"");
        t.span("world_switch", "sched", 1_234, 567, 0, 1, None);
        t.instant("virq", "irq", 2_000, 0, 2, Some(("vector", 9)));
        t.counter("txq", 2_500, 0, "depth", 17);
        let json = t.to_chrome_json();
        assert_balanced_json(&json);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ts\":1.234"));
        assert!(json.contains("\"dur\":0.567"));
        assert!(json.contains("\"displayTimeUnit\":\"ns\""));
        assert!(json.contains("\"droppedEvents\":0"));
        // Metadata label with an embedded quote survives escaping.
        assert!(json.contains("guest0 \\\"vcpu\\\""));
    }

    #[test]
    fn timestamps_are_microseconds_with_ns_precision() {
        assert_eq!(us_with_ns_fraction(0), "0.000");
        assert_eq!(us_with_ns_fraction(999), "0.999");
        assert_eq!(us_with_ns_fraction(1_000), "1.000");
        assert_eq!(us_with_ns_fraction(1_234_567), "1234.567");
    }

    #[test]
    fn empty_tracer_exports_empty_array() {
        let t = Tracer::new(8);
        let json = t.to_chrome_json();
        assert_balanced_json(&json);
        assert!(json.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn dropped_count_reaches_export() {
        let mut t = Tracer::new(1);
        t.instant("a", "c", 0, 0, 0, None);
        t.instant("b", "c", 1, 0, 0, None);
        assert!(t.to_chrome_json().contains("\"droppedEvents\":1"));
    }
}
