//! A minimal hand-rolled JSON writer.
//!
//! Shared by the [`crate::Tracer`] Chrome-format exporter and
//! `cdna-system`'s report serialization so the tier-1 build needs no
//! external serialization crates. The writer tracks nesting and comma
//! placement; callers are responsible for pairing `begin_*`/`end_*`
//! calls.
//!
//! # Example
//!
//! ```
//! use cdna_trace::json::JsonWriter;
//!
//! let mut w = JsonWriter::new();
//! w.begin_object();
//! w.key("label");
//! w.string("CDNA/RiceNIC");
//! w.key("guests");
//! w.number_u64(8);
//! w.end_object();
//! assert_eq!(w.finish(), r#"{"label":"CDNA/RiceNIC","guests":8}"#);
//! ```

/// Streaming JSON writer accumulating into a `String`.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// Whether a value has already been written at each nesting level
    /// (controls comma insertion).
    need_comma: Vec<bool>,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    /// Creates a writer with pre-reserved output capacity.
    pub fn with_capacity(bytes: usize) -> Self {
        JsonWriter {
            out: String::with_capacity(bytes),
            need_comma: Vec::new(),
        }
    }

    fn before_value(&mut self) {
        if let Some(need) = self.need_comma.last_mut() {
            if *need {
                self.out.push(',');
            }
            *need = true;
        }
    }

    /// Opens a JSON object (`{`).
    pub fn begin_object(&mut self) {
        self.before_value();
        self.out.push('{');
        self.need_comma.push(false);
    }

    /// Closes the innermost object (`}`).
    pub fn end_object(&mut self) {
        self.need_comma.pop();
        self.out.push('}');
    }

    /// Opens a JSON array (`[`).
    pub fn begin_array(&mut self) {
        self.before_value();
        self.out.push('[');
        self.need_comma.push(false);
    }

    /// Closes the innermost array (`]`).
    pub fn end_array(&mut self) {
        self.need_comma.pop();
        self.out.push(']');
    }

    /// Writes an object key. The next write is its value.
    pub fn key(&mut self, name: &str) {
        self.before_value();
        escape_into(&mut self.out, name);
        self.out.push(':');
        // The value that follows must not get a comma.
        if let Some(need) = self.need_comma.last_mut() {
            *need = false;
        }
    }

    /// Writes a string value (escaped).
    pub fn string(&mut self, s: &str) {
        self.before_value();
        escape_into(&mut self.out, s);
    }

    /// Writes an unsigned integer value.
    pub fn number_u64(&mut self, v: u64) {
        self.before_value();
        self.out.push_str(&v.to_string());
    }

    /// Writes a signed integer value.
    pub fn number_i64(&mut self, v: i64) {
        self.before_value();
        self.out.push_str(&v.to_string());
    }

    /// Writes a finite float value. Non-finite values (which JSON cannot
    /// represent) are written as `null`.
    pub fn number_f64(&mut self, v: f64) {
        self.before_value();
        if v.is_finite() {
            // Shortest round-trip formatting, like serde_json's.
            let mut s = format!("{v}");
            // `{}` prints integral floats without a point; keep them
            // recognizable as numbers (both forms are valid JSON, but
            // "1.0" round-trips the type intent).
            if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("NaN") {
                s.push_str(".0");
            }
            self.out.push_str(&s);
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes a boolean value.
    pub fn boolean(&mut self, v: bool) {
        self.before_value();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Writes a `null` value.
    pub fn null(&mut self) {
        self.before_value();
        self.out.push_str("null");
    }

    /// Writes pre-serialized JSON verbatim (caller guarantees validity).
    pub fn raw(&mut self, json: &str) {
        self.before_value();
        self.out.push_str(json);
    }

    /// Returns the accumulated JSON text.
    pub fn finish(self) -> String {
        self.out
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }
}

/// Appends `s` as a quoted, escaped JSON string.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Escapes `s` as a standalone quoted JSON string.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structures_with_commas() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.begin_array();
        w.number_u64(1);
        w.number_u64(2);
        w.begin_object();
        w.key("b");
        w.boolean(true);
        w.end_object();
        w.end_array();
        w.key("c");
        w.null();
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":[1,2,{"b":true}],"c":null}"#);
    }

    #[test]
    fn string_escaping() {
        assert_eq!(escape("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
        assert_eq!(escape("ünïcode"), "\"ünïcode\"");
    }

    #[test]
    fn float_formatting() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.number_f64(1.5);
        w.number_f64(2.0);
        w.number_f64(f64::NAN);
        w.number_f64(-0.25);
        w.end_array();
        assert_eq!(w.finish(), "[1.5,2.0,null,-0.25]");
    }

    #[test]
    fn empty_containers() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("xs");
        w.begin_array();
        w.end_array();
        w.key("o");
        w.begin_object();
        w.end_object();
        w.end_object();
        assert_eq!(w.finish(), r#"{"xs":[],"o":{}}"#);
    }
}
