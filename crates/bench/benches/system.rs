//! Whole-system simulation benchmarks: how fast the testbed simulates
//! each of the paper's configurations (events/sec of simulation speed,
//! useful when extending the models).

use criterion::{criterion_group, criterion_main, Criterion};

use cdna_core::DmaPolicy;
use cdna_system::{run_experiment, Direction, IoModel, NicKind, TestbedConfig};

fn bench_configs(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_150ms");
    group.sample_size(10);
    let cases = [
        (
            "cdna_tx_1guest",
            IoModel::Cdna {
                policy: DmaPolicy::Validated,
            },
            1,
            Direction::Transmit,
        ),
        (
            "xen_tx_1guest",
            IoModel::XenBridged {
                nic: NicKind::Intel,
            },
            1,
            Direction::Transmit,
        ),
        (
            "cdna_rx_8guests",
            IoModel::Cdna {
                policy: DmaPolicy::Validated,
            },
            8,
            Direction::Receive,
        ),
        (
            "xen_rx_24guests",
            IoModel::XenBridged {
                nic: NicKind::Intel,
            },
            24,
            Direction::Receive,
        ),
    ];
    for (name, io, guests, dir) in cases {
        group.bench_function(name, |b| {
            b.iter(|| run_experiment(TestbedConfig::new(io, guests, dir).quick()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_configs);
criterion_main!(benches);
