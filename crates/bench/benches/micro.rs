//! Micro-benchmarks of the CDNA mechanisms themselves: descriptor
//! validation/enqueue, sequence checking, the interrupt bit-vector
//! hierarchy, mailbox event decoding, and the memory substrate.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use cdna_core::{
    BitVectorRing, ContextId, DmaPolicy, InterruptBitVector, ProtectionEngine, SeqChecker,
    SeqStamper, TxRequest, VectorPort,
};
use cdna_mem::{BufferSlice, DomainId, PhysMem};
use cdna_net::{FlowId, MacAddr};
use cdna_nic::{Coalescer, DescFlags, DescRing, DmaDescriptor, FrameMeta, RingTable};
use cdna_ricenic::MailboxEventUnit;
use cdna_sim::SimTime;
use cdna_xen::EthernetBridge;

fn meta() -> FrameMeta {
    FrameMeta {
        dst: MacAddr::for_peer(0),
        src: MacAddr::for_context(0, 1),
        tcp_payload: 1460,
        flow: FlowId::new(0, 0),
        seq: 0,
    }
}

fn bench_protection_enqueue(c: &mut Criterion) {
    let mut group = c.benchmark_group("protection");
    for batch in [1usize, 10, 32] {
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_function(format!("enqueue_tx_batch_{batch}"), |b| {
            let mut mem = PhysMem::new(8192);
            let mut rings = RingTable::new();
            let mut engine = ProtectionEngine::new();
            let guest = DomainId::guest(0);
            let ctx = engine
                .assign_context(guest, DmaPolicy::Validated, 256, &mut rings, &mut mem)
                .unwrap();
            let pages: Vec<_> = (0..batch).map(|_| mem.alloc(guest).unwrap()).collect();
            let reqs: Vec<TxRequest> = pages
                .iter()
                .map(|p| TxRequest {
                    buf: BufferSlice::new(p.base_addr(), 1514),
                    flags: DescFlags::END_OF_PACKET,
                    meta: meta(),
                })
                .collect();
            let mut consumer = 0u64;
            b.iter(|| {
                let out = engine
                    .enqueue_tx(ctx, guest, &reqs, consumer, &mut rings, &mut mem)
                    .unwrap();
                consumer = out.producer; // everything "completes" instantly
                black_box(out)
            });
        });
    }
    group.finish();
}

fn bench_seqnum(c: &mut Criterion) {
    c.bench_function("seqnum/stamp_and_check", |b| {
        let mut stamper = SeqStamper::new(512);
        let mut checker = SeqChecker::new(512);
        b.iter(|| checker.check(black_box(stamper.next())));
    });
}

fn bench_bitvectors(c: &mut Criterion) {
    c.bench_function("bitvec/note_flush_drain_8ctx", |b| {
        let mut port = VectorPort::new();
        let mut ring = BitVectorRing::new(64);
        b.iter(|| {
            for i in 0..8u8 {
                port.note_update(ContextId(i * 4));
            }
            port.flush(&mut ring);
            black_box(ring.drain())
        });
    });
    c.bench_function("bitvec/iter_dense_vector", |b| {
        let mut v = InterruptBitVector::EMPTY;
        for i in 0..32u8 {
            v.set(ContextId(i));
        }
        b.iter(|| black_box(v.iter().count()));
    });
}

fn bench_mailbox_events(c: &mut Criterion) {
    c.bench_function("mailbox_event_unit/note_and_decode_32", |b| {
        let mut unit = MailboxEventUnit::new();
        b.iter(|| {
            for i in 0..32u8 {
                unit.note_write(ContextId(i), (i % 24) as usize);
            }
            while let Some(ev) = unit.pop_event() {
                black_box(ev);
            }
        });
    });
}

fn bench_ring_ops(c: &mut Criterion) {
    c.bench_function("desc_ring/write_read", |b| {
        let mut ring = DescRing::new(cdna_mem::PhysAddr(0), 256);
        let desc = DmaDescriptor::rx(BufferSlice::new(cdna_mem::PhysAddr(4096), 1514));
        let mut idx = 0u64;
        b.iter(|| {
            ring.write_at(idx, desc);
            let d = ring.read_at(idx);
            idx += 1;
            black_box(d)
        });
    });
}

fn bench_bridge(c: &mut Criterion) {
    c.bench_function("bridge/lookup_24_guests", |b| {
        let mut bridge = EthernetBridge::new();
        for g in 0..24 {
            bridge.learn(
                MacAddr::for_vif(g),
                cdna_xen::BridgePort::Frontend(DomainId::guest(g)),
            );
        }
        let mut g = 0u16;
        b.iter(|| {
            g = (g + 1) % 24;
            black_box(bridge.lookup(MacAddr::for_vif(g)))
        });
    });
}

fn bench_coalescer(c: &mut Criterion) {
    c.bench_function("coalescer/request_fire_cycle", |b| {
        let mut co = Coalescer::new(SimTime::from_us(100));
        let mut now = SimTime::ZERO;
        b.iter(|| {
            now += SimTime::from_us(10);
            if let Some(t) = co.request(now) {
                co.fired(t.max(now));
            }
        });
    });
}

fn bench_mem(c: &mut Criterion) {
    c.bench_function("physmem/pin_unpin_slice", |b| {
        let mut mem = PhysMem::new(64);
        let guest = DomainId::guest(0);
        let page = mem.alloc(guest).unwrap();
        let slice = BufferSlice::new(page.base_addr(), 1514);
        b.iter(|| {
            mem.pin_slice(guest, &slice).unwrap();
            mem.unpin_slice(&slice).unwrap();
        });
    });
}

criterion_group!(
    benches,
    bench_protection_enqueue,
    bench_seqnum,
    bench_bitvectors,
    bench_mailbox_events,
    bench_ring_ops,
    bench_bridge,
    bench_coalescer,
    bench_mem
);
criterion_main!(benches);
