//! Differential proof that the parallel fan-out changes wall-clock
//! time and nothing else: the full 12-entry perf matrix run at `jobs=1`
//! (inline, on the calling thread) and at `jobs=4` (worker pool) must
//! produce byte-identical serialized reports, entry for entry.

use cdna_bench::{perf_suite, run_parallel_jobs};
use cdna_sim::QueueKind;

#[test]
fn parallel_vs_sequential_bench_identical() {
    let configs = |queue| {
        perf_suite(true, queue)
            .into_iter()
            .map(|e| e.cfg)
            .collect::<Vec<_>>()
    };
    let sequential = run_parallel_jobs(configs(QueueKind::default()), 1);
    let parallel = run_parallel_jobs(configs(QueueKind::default()), 4);
    assert_eq!(sequential.len(), 12);
    assert_eq!(parallel.len(), 12);
    for (i, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
        assert_eq!(
            s.to_json(),
            p.to_json(),
            "entry {i}: jobs=4 diverged from jobs=1"
        );
    }
}

#[test]
fn parallel_preserves_input_order_across_queue_kinds() {
    // The wheel queue must see the same determinism guarantee; also
    // exercises a jobs value that does not divide the entry count.
    let configs: Vec<_> = perf_suite(true, QueueKind::TimerWheel)
        .into_iter()
        .map(|e| e.cfg)
        .collect();
    let a = run_parallel_jobs(configs.clone(), 1);
    let b = run_parallel_jobs(configs, 5);
    for (s, p) in a.iter().zip(&b) {
        assert_eq!(s.to_json(), p.to_json());
    }
}
