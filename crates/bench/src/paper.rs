//! The paper's reported numbers, transcribed from Tables 1–4 and
//! Figures 3–4 of *Concurrent Direct Network Access for Virtual Machine
//! Monitors* (HPCA 2007).

/// One row of Tables 2/3: throughput, execution profile (fractions),
/// and interrupt rates.
#[derive(Debug, Clone, Copy)]
pub struct ProfileRow {
    /// Configuration label.
    pub label: &'static str,
    /// Throughput, Mb/s.
    pub mbps: f64,
    /// Hypervisor fraction.
    pub hyp: f64,
    /// Driver-domain user fraction.
    pub driver_user: f64,
    /// Driver-domain kernel fraction.
    pub driver_os: f64,
    /// Guest user fraction.
    pub guest_user: f64,
    /// Guest kernel fraction.
    pub guest_os: f64,
    /// Idle fraction.
    pub idle: f64,
    /// Driver-domain interrupts per second.
    pub driver_int: f64,
    /// Guest interrupts per second.
    pub guest_int: f64,
}

/// Table 1: native Linux vs Xen guest (six NICs).
pub const TABLE1_NATIVE_TX: f64 = 5126.0;
/// Table 1, native receive.
pub const TABLE1_NATIVE_RX: f64 = 3629.0;
/// Table 1, Xen guest transmit.
pub const TABLE1_XEN_TX: f64 = 1602.0;
/// Table 1, Xen guest receive.
pub const TABLE1_XEN_RX: f64 = 1112.0;

/// Table 2: transmit performance for a single guest with two NICs.
pub const TABLE2_TX: [ProfileRow; 3] = [
    ProfileRow {
        label: "Xen/Intel",
        mbps: 1602.0,
        hyp: 0.198,
        driver_user: 0.008,
        driver_os: 0.357,
        guest_user: 0.010,
        guest_os: 0.397,
        idle: 0.030,
        driver_int: 7438.0,
        guest_int: 7853.0,
    },
    ProfileRow {
        label: "Xen/RiceNIC",
        mbps: 1674.0,
        hyp: 0.137,
        driver_user: 0.005,
        driver_os: 0.415,
        guest_user: 0.010,
        guest_os: 0.395,
        idle: 0.038,
        driver_int: 8839.0,
        guest_int: 5661.0,
    },
    ProfileRow {
        label: "CDNA/RiceNIC",
        mbps: 1867.0,
        hyp: 0.102,
        driver_user: 0.002,
        driver_os: 0.003,
        guest_user: 0.007,
        guest_os: 0.378,
        idle: 0.508,
        driver_int: 0.0,
        guest_int: 13659.0,
    },
];

/// Table 3: receive performance for a single guest with two NICs.
pub const TABLE3_RX: [ProfileRow; 3] = [
    ProfileRow {
        label: "Xen/Intel",
        mbps: 1112.0,
        hyp: 0.257,
        driver_user: 0.005,
        driver_os: 0.368,
        guest_user: 0.010,
        guest_os: 0.310,
        idle: 0.050,
        driver_int: 11138.0,
        guest_int: 5193.0,
    },
    ProfileRow {
        label: "Xen/RiceNIC",
        mbps: 1075.0,
        hyp: 0.306,
        driver_user: 0.006,
        driver_os: 0.394,
        guest_user: 0.006,
        guest_os: 0.288,
        idle: 0.0,
        driver_int: 10946.0,
        guest_int: 5163.0,
    },
    ProfileRow {
        label: "CDNA/RiceNIC",
        mbps: 1874.0,
        hyp: 0.099,
        driver_user: 0.002,
        driver_os: 0.003,
        guest_user: 0.007,
        guest_os: 0.480,
        idle: 0.409,
        driver_int: 0.0,
        guest_int: 7402.0,
    },
];

/// Table 4: CDNA with and without DMA memory protection.
pub const TABLE4: [ProfileRow; 4] = [
    ProfileRow {
        label: "CDNA TX protected",
        mbps: 1867.0,
        hyp: 0.102,
        driver_user: 0.002,
        driver_os: 0.003,
        guest_user: 0.007,
        guest_os: 0.378,
        idle: 0.508,
        driver_int: 0.0,
        guest_int: 13659.0,
    },
    ProfileRow {
        label: "CDNA TX unprotected",
        mbps: 1867.0,
        hyp: 0.019,
        driver_user: 0.002,
        driver_os: 0.002,
        guest_user: 0.003,
        guest_os: 0.370,
        idle: 0.604,
        driver_int: 0.0,
        guest_int: 13680.0,
    },
    ProfileRow {
        label: "CDNA RX protected",
        mbps: 1874.0,
        hyp: 0.099,
        driver_user: 0.002,
        driver_os: 0.003,
        guest_user: 0.007,
        guest_os: 0.480,
        idle: 0.409,
        driver_int: 0.0,
        guest_int: 7402.0,
    },
    ProfileRow {
        label: "CDNA RX unprotected",
        mbps: 1874.0,
        hyp: 0.019,
        driver_user: 0.002,
        driver_os: 0.002,
        guest_user: 0.003,
        guest_os: 0.472,
        idle: 0.502,
        driver_int: 0.0,
        guest_int: 7243.0,
    },
];

/// Guest counts swept by Figures 3 and 4.
pub const FIG_GUESTS: [u16; 8] = [1, 2, 4, 8, 12, 16, 20, 24];

/// Figure 3: CDNA idle percentages annotated above the transmit curve.
pub const FIG3_CDNA_IDLE_PCT: [f64; 8] = [50.8, 25.4, 5.9, 0.0, 0.0, 0.0, 0.0, 0.0];
/// Figure 3: Xen/Intel idle percentages.
pub const FIG3_XEN_IDLE_PCT: [f64; 8] = [3.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
/// Figure 3 endpoints the text quotes: Xen transmit at 1 and 24 guests.
pub const FIG3_XEN_TX_1: f64 = 1602.0;
/// Xen transmit at 24 guests.
pub const FIG3_XEN_TX_24: f64 = 891.0;
/// CDNA transmit holds roughly this across the sweep.
pub const FIG3_CDNA_TX: f64 = 1867.0;

/// Figure 4: CDNA idle percentages annotated above the receive curve.
pub const FIG4_CDNA_IDLE_PCT: [f64; 8] = [40.9, 29.1, 12.6, 0.0, 0.0, 0.0, 0.0, 0.0];
/// Figure 4: Xen/Intel idle percentages.
pub const FIG4_XEN_IDLE_PCT: [f64; 8] = [5.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
/// Xen receive at 1 guest.
pub const FIG4_XEN_RX_1: f64 = 1112.0;
/// Xen receive at 24 guests.
pub const FIG4_XEN_RX_24: f64 = 558.0;
/// CDNA receive holds roughly this across the sweep.
pub const FIG4_CDNA_RX: f64 = 1874.0;

/// §5.4: CDNA's aggregate transmit advantage at 24 guests.
pub const FACTOR_TX_24: f64 = 2.1;
/// §5.4: CDNA's aggregate receive advantage at 24 guests.
pub const FACTOR_RX_24: f64 = 3.3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_rows_sum_to_one() {
        for row in TABLE2_TX
            .iter()
            .chain(TABLE3_RX.iter())
            .chain(TABLE4.iter())
        {
            let s = row.hyp
                + row.driver_user
                + row.driver_os
                + row.guest_user
                + row.guest_os
                + row.idle;
            assert!((s - 1.0).abs() < 0.02, "{}: profile sums to {s}", row.label);
        }
    }

    #[test]
    fn quoted_factors_match_figure_endpoints() {
        assert!((FIG3_CDNA_TX / FIG3_XEN_TX_24 - FACTOR_TX_24).abs() < 0.1);
        assert!((FIG4_CDNA_RX / FIG4_XEN_RX_24 - FACTOR_RX_24).abs() < 0.1);
    }
}
