#![warn(missing_docs)]

//! Benchmark harness regenerating every table and figure of the CDNA
//! paper, plus the paper's reported values for comparison.
//!
//! Each binary (`table1` … `table4`, `fig3`, `fig4`, `ablation_*`)
//! runs the corresponding experiment and prints the paper's value next
//! to the simulated one. `EXPERIMENTS.md` in the repository root records
//! the outcomes.

pub mod paper;

use cdna_system::{run_experiment, RunReport, TestbedConfig};

/// Runs several configurations on worker threads (each simulation is
/// single-threaded and deterministic; the sweep parallelism only affects
/// wall-clock time, never results). Reports come back in input order.
pub fn run_parallel(configs: Vec<TestbedConfig>) -> Vec<RunReport> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = configs
            .into_iter()
            .map(|cfg| scope.spawn(move || run_experiment(cfg)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment thread panicked")) // cdna-check: allow(panic): worker panic is propagated as fatal
            .collect()
    })
}

/// Runs one configuration and prints its table row.
pub fn run_and_print(cfg: TestbedConfig) -> RunReport {
    let r = run_experiment(cfg);
    println!("{}", r.table_row());
    r
}

/// Formats a paper-vs-simulated line.
pub fn compare_line(what: &str, paper: f64, simulated: f64) -> String {
    let ratio = if paper == 0.0 { 1.0 } else { simulated / paper };
    format!("{what:<44} paper {paper:>8.1}   sim {simulated:>8.1}   ratio {ratio:>5.2}")
}

/// Prints a standard experiment header.
pub fn header(title: &str) {
    println!("{}", "=".repeat(100));
    println!("{title}");
    println!("{}", "=".repeat(100));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_line_formats() {
        let s = compare_line("throughput", 1602.0, 1576.0);
        assert!(s.contains("1602.0"));
        assert!(s.contains("1576.0"));
        assert!(s.contains("0.98"));
    }
}
