#![warn(missing_docs)]

//! Benchmark harness regenerating every table and figure of the CDNA
//! paper, plus the paper's reported values for comparison.
//!
//! Each binary (`table1` … `table4`, `fig3`, `fig4`, `ablation_*`)
//! runs the corresponding experiment and prints the paper's value next
//! to the simulated one. `EXPERIMENTS.md` in the repository root records
//! the outcomes.
//!
//! # Parallel fan-out
//!
//! Every bench binary fans its configuration matrix out over the
//! [`cdna_sim::par`] worker pool. Each simulation is single-threaded,
//! seeded, and self-contained, so parallelism changes wall-clock time
//! and nothing else — `tests/parallel.rs` proves `jobs=1` and `jobs=N`
//! produce byte-identical reports. The worker count comes from a
//! `--jobs N` argv flag (every fan-out binary accepts it), then the
//! `CDNA_JOBS` environment variable, then `min(cores, entries)`.

pub mod paper;

use cdna_core::DmaPolicy;
use cdna_sim::par;
use cdna_sim::QueueKind;
use cdna_system::{run_experiment, Direction, IoModel, NicKind, RunReport, TestbedConfig};

/// Extracts the last `--jobs N` / `--jobs=N` occurrence from `args`,
/// ignoring every other argument. This is the one place the flag's
/// syntax lives; every fan-out binary resolves it here.
pub fn jobs_flag_in(args: &[String]) -> Option<usize> {
    let mut requested = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            requested = it.next().and_then(|v| v.parse().ok());
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            requested = v.parse().ok();
        }
    }
    requested
}

/// Like [`jobs_flag_in`], but removes every `--jobs` occurrence (and
/// its value) from `args`, so binaries with their own argument parsers
/// (`perf`, `rack`) can strip the flag before handling the rest.
pub fn take_jobs_flag(args: &mut Vec<String>) -> Option<usize> {
    let requested = jobs_flag_in(args);
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--jobs" {
            args.drain(i..(i + 2).min(args.len()));
        } else if args[i].starts_with("--jobs=") {
            args.remove(i);
        } else {
            i += 1;
        }
    }
    requested
}

/// [`jobs_flag_in`] applied to this process's argv (the table/figure
/// binaries otherwise take no flags).
pub fn jobs_flag_from_argv() -> Option<usize> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    jobs_flag_in(&args)
}

/// Worker count for a fan-out of `tasks` items: `--jobs` argv flag,
/// else `CDNA_JOBS`, else `min(cores, tasks)` (see
/// [`cdna_sim::par::resolve_jobs`]).
pub fn jobs_for(tasks: usize) -> usize {
    par::resolve_jobs(jobs_flag_from_argv(), tasks)
}

/// Runs several configurations across the worker pool (each simulation
/// is single-threaded and deterministic; the sweep parallelism only
/// affects wall-clock time, never results). Reports come back in input
/// order. The worker count follows [`jobs_for`].
pub fn run_parallel(configs: Vec<TestbedConfig>) -> Vec<RunReport> {
    let jobs = jobs_for(configs.len());
    run_parallel_jobs(configs, jobs)
}

/// [`run_parallel`] with an explicit worker count (clamped to
/// `1..=configs.len()`; `jobs=1` runs inline on the caller's thread).
pub fn run_parallel_jobs(configs: Vec<TestbedConfig>, jobs: usize) -> Vec<RunReport> {
    par::run_indexed(jobs, configs, |_, cfg| run_experiment(cfg))
}

/// One entry of the `cdna-perf` wall-clock suite.
#[derive(Debug, Clone)]
pub struct PerfEntry {
    /// Stable identifier, e.g. `cdna-tx-24g`.
    pub id: String,
    /// IO model short name (`cdna` / `softvirt`).
    pub io_name: &'static str,
    /// Traffic direction.
    pub direction: Direction,
    /// Guest domain count.
    pub guests: u16,
    /// The fully-formed testbed configuration for this entry.
    pub cfg: TestbedConfig,
}

/// The `cdna-perf` suite: {CDNA, Xen-softvirt} × {TX, RX} × {1, 8, 24}
/// guests at the default seed, all on `queue`. `quick` shrinks the
/// simulated window for CI smoke runs. Shared between the `perf` binary
/// and the `tests/parallel.rs` differential test so both always measure
/// the same matrix.
pub fn perf_suite(quick: bool, queue: QueueKind) -> Vec<PerfEntry> {
    let cdna = IoModel::Cdna {
        policy: DmaPolicy::Validated,
    };
    let soft = IoModel::XenBridged {
        nic: NicKind::Intel,
    };
    let mut entries = Vec::new();
    for (io_name, io, direction, dir_name) in [
        ("cdna", cdna, Direction::Transmit, "tx"),
        ("cdna", cdna, Direction::Receive, "rx"),
        ("softvirt", soft, Direction::Transmit, "tx"),
        ("softvirt", soft, Direction::Receive, "rx"),
    ] {
        for guests in [1u16, 8, 24] {
            let mut cfg = TestbedConfig::new(io, guests, direction);
            if quick {
                cfg = cfg.quick();
            }
            cfg.queue = queue;
            entries.push(PerfEntry {
                id: format!("{io_name}-{dir_name}-{guests}g"),
                io_name,
                direction,
                guests,
                cfg,
            });
        }
    }
    entries
}

/// Runs one configuration and prints its table row.
pub fn run_and_print(cfg: TestbedConfig) -> RunReport {
    let r = run_experiment(cfg);
    println!("{}", r.table_row());
    r
}

/// Formats a paper-vs-simulated line.
pub fn compare_line(what: &str, paper: f64, simulated: f64) -> String {
    let ratio = if paper == 0.0 { 1.0 } else { simulated / paper };
    format!("{what:<44} paper {paper:>8.1}   sim {simulated:>8.1}   ratio {ratio:>5.2}")
}

/// Prints a standard experiment header.
pub fn header(title: &str) {
    println!("{}", "=".repeat(100));
    println!("{title}");
    println!("{}", "=".repeat(100));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_flag_variants_parse() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(jobs_flag_in(&args(&["--jobs", "4"])), Some(4));
        assert_eq!(jobs_flag_in(&args(&["--jobs=7"])), Some(7));
        assert_eq!(
            jobs_flag_in(&args(&["--quick", "--jobs", "2", "x"])),
            Some(2)
        );
        assert_eq!(jobs_flag_in(&args(&["--jobs", "2", "--jobs=3"])), Some(3));
        assert_eq!(jobs_flag_in(&args(&["--quick"])), None);
        assert_eq!(jobs_flag_in(&args(&["--jobs", "zero"])), None);
    }

    #[test]
    fn take_jobs_flag_strips_all_occurrences() {
        let mut args: Vec<String> = ["--quick", "--jobs", "2", "--out", "x", "--jobs=3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(take_jobs_flag(&mut args), Some(3));
        assert_eq!(args, ["--quick", "--out", "x"]);
        assert_eq!(take_jobs_flag(&mut args), None);
    }

    #[test]
    fn compare_line_formats() {
        let s = compare_line("throughput", 1602.0, 1576.0);
        assert!(s.contains("1602.0"));
        assert!(s.contains("1576.0"));
        assert!(s.contains("0.98"));
    }

    #[test]
    fn perf_suite_is_the_twelve_entry_matrix() {
        let suite = perf_suite(true, QueueKind::default());
        assert_eq!(suite.len(), 12);
        let ids: Vec<&str> = suite.iter().map(|e| e.id.as_str()).collect();
        assert!(ids.contains(&"cdna-tx-1g"));
        assert!(ids.contains(&"softvirt-rx-24g"));
        // Stable order: the differential tests index into this.
        assert_eq!(ids[0], "cdna-tx-1g");
        assert_eq!(ids[11], "softvirt-rx-24g");
    }
}
