//! Ablation: scheduler batch limit (activation length) vs guest count
//! (DESIGN.md §7). Long activations amortize switch costs; short ones
//! reduce latency but thrash the cache. The sweep points run
//! concurrently on the worker pool (`--jobs N`).

use cdna_bench::header;
use cdna_core::DmaPolicy;
use cdna_system::{Direction, IoModel, TestbedConfig};

fn main() {
    header("Ablation — activation batch limit (8 guests, transmit, CDNA)");
    println!(
        "{:>6} | {:>12} {:>12} {:>14}",
        "batch", "Mb/s", "idle %", "switches/s"
    );
    let limits = [8u32, 16, 32, 64, 128, 256];
    let configs: Vec<_> = limits
        .iter()
        .map(|&limit| {
            let mut cfg = TestbedConfig::new(
                IoModel::Cdna {
                    policy: DmaPolicy::Validated,
                },
                8,
                Direction::Transmit,
            );
            cfg.batch_limit = limit;
            cfg
        })
        .collect();
    let reports = cdna_bench::run_parallel(configs);
    for (limit, r) in limits.iter().zip(&reports) {
        println!(
            "{:>6} | {:>12.0} {:>12.1} {:>14.0}",
            limit,
            r.throughput_mbps,
            r.idle_pct(),
            r.domain_switches_per_s
        );
    }
}
