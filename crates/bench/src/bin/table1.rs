//! Regenerates Table 1: transmit and receive performance for native
//! Linux and for a paravirtualized guest within Xen, on six gigabit
//! NICs. Rows run concurrently on the worker pool (`--jobs N`).

use cdna_bench::{compare_line, header, paper};
use cdna_system::{Direction, IoModel, NicKind, TestbedConfig};

fn main() {
    header("Table 1 — native Linux vs Xen guest (6 NICs)");
    let cases = [
        (
            "Native Linux  TX",
            IoModel::Native {
                nic: NicKind::Intel,
            },
            Direction::Transmit,
            paper::TABLE1_NATIVE_TX,
        ),
        (
            "Native Linux  RX",
            IoModel::Native {
                nic: NicKind::Intel,
            },
            Direction::Receive,
            paper::TABLE1_NATIVE_RX,
        ),
        (
            "Xen guest     TX",
            IoModel::XenBridged {
                nic: NicKind::Intel,
            },
            Direction::Transmit,
            paper::TABLE1_XEN_TX,
        ),
        (
            "Xen guest     RX",
            IoModel::XenBridged {
                nic: NicKind::Intel,
            },
            Direction::Receive,
            paper::TABLE1_XEN_RX,
        ),
    ];
    // The paper measured Table 1 on six NICs (the Xen rows are CPU-bound
    // well below even two NICs' line rate, so the NIC count is moot for
    // them; we still configure six for fidelity).
    let configs: Vec<_> = cases
        .iter()
        .map(|&(_, io, dir, _)| {
            let mut cfg = TestbedConfig::new(io, 1, dir).with_nics(6);
            cfg.conns_per_guest = 12;
            cfg
        })
        .collect();
    let reports = cdna_bench::run_parallel(configs);
    for ((label, _, _, target), r) in cases.iter().zip(&reports) {
        println!("{}", compare_line(label, *target, r.throughput_mbps));
        assert_eq!(r.protection_faults, 0);
    }
    println!();
    println!("Shape check: a Xen guest achieves ~30% of native throughput (paper §2.3).");
}
