//! Regenerates Table 4: CDNA transmit and receive with and without DMA
//! memory protection (the IOMMU upper-bound ablation). Rows run
//! concurrently on the worker pool (`--jobs N`).

use cdna_bench::{compare_line, header, paper};
use cdna_core::DmaPolicy;
use cdna_system::{Direction, IoModel, TestbedConfig};

fn main() {
    header("Table 4 — CDNA with vs without DMA memory protection");
    let cases = [
        (Direction::Transmit, DmaPolicy::Validated, &paper::TABLE4[0]),
        (
            Direction::Transmit,
            DmaPolicy::Unprotected,
            &paper::TABLE4[1],
        ),
        (Direction::Receive, DmaPolicy::Validated, &paper::TABLE4[2]),
        (
            Direction::Receive,
            DmaPolicy::Unprotected,
            &paper::TABLE4[3],
        ),
    ];
    let configs: Vec<_> = cases
        .iter()
        .map(|&(dir, policy, _)| TestbedConfig::new(IoModel::Cdna { policy }, 1, dir))
        .collect();
    let reports = cdna_bench::run_parallel(configs);
    let mut idle = Vec::new();
    for (r, (_, _, row)) in reports.iter().zip(cases) {
        println!("--- {} ---", row.label);
        println!(
            "{}",
            compare_line("throughput (Mb/s)", row.mbps, r.throughput_mbps)
        );
        println!(
            "{}",
            compare_line(
                "hypervisor (%)",
                row.hyp * 100.0,
                r.profile.hypervisor_frac * 100.0
            )
        );
        println!(
            "{}",
            compare_line(
                "guest OS (%)",
                row.guest_os * 100.0,
                r.profile.guest_kernel_frac * 100.0
            )
        );
        println!(
            "{}",
            compare_line("idle (%)", row.idle * 100.0, r.profile.idle_frac * 100.0)
        );
        println!(
            "{}",
            compare_line("guest interrupts/s", row.guest_int, r.guest_virq_per_s)
        );
        idle.push(r.profile.idle_frac);
    }
    println!();
    println!(
        "Disabling protection frees ~{:.1}% (TX) / {:.1}% (RX) of the CPU (paper: ~9.6% / ~9.3%).",
        (idle[1] - idle[0]) * 100.0,
        (idle[3] - idle[2]) * 100.0
    );
}
