//! Parameterized experiment runner — explore any configuration from the
//! command line.
//!
//! ```sh
//! cargo run --release -p cdna-bench --bin run -- cdna 8 tx
//! cargo run --release -p cdna-bench --bin run -- xen-intel 24 rx --nics 2 --json
//! cargo run --release -p cdna-bench --bin run -- cdna-noprot 1 tx --seed 7
//! ```
//!
//! IO models: `native`, `xen-intel`, `xen-ricenic`, `cdna`, `cdna-iommu`,
//! `cdna-noprot`.

use cdna_core::DmaPolicy;
use cdna_system::{run_experiment, Direction, IoModel, NicKind, TestbedConfig};

fn usage() -> ! {
    eprintln!(
        "usage: run <native|xen-intel|xen-ricenic|cdna|cdna-iommu|cdna-noprot> \
         <guests> <tx|rx> [--nics N] [--seed S] [--conns C] [--json]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 3 {
        usage();
    }
    let io = match args[0].as_str() {
        "native" => IoModel::Native {
            nic: NicKind::Intel,
        },
        "xen-intel" => IoModel::XenBridged {
            nic: NicKind::Intel,
        },
        "xen-ricenic" => IoModel::XenBridged {
            nic: NicKind::RiceNic,
        },
        "cdna" => IoModel::Cdna {
            policy: DmaPolicy::Validated,
        },
        "cdna-iommu" => IoModel::Cdna {
            policy: DmaPolicy::Iommu,
        },
        "cdna-noprot" => IoModel::Cdna {
            policy: DmaPolicy::Unprotected,
        },
        other => {
            eprintln!("unknown io model `{other}`");
            usage();
        }
    };
    let guests: u16 = args[1].parse().unwrap_or_else(|_| usage());
    let direction = match args[2].as_str() {
        "tx" => Direction::Transmit,
        "rx" => Direction::Receive,
        other => {
            eprintln!("unknown direction `{other}`");
            usage();
        }
    };

    let mut cfg = TestbedConfig::new(io, guests, direction);
    let mut json = false;
    let mut i = 3;
    while i < args.len() {
        match args[i].as_str() {
            "--nics" => {
                cfg.nics = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--seed" => {
                cfg.seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--conns" => {
                cfg.conns_per_guest = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }

    let report = run_experiment(cfg);
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serializes")
        );
    } else {
        println!("{report}");
    }
}
