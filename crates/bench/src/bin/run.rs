//! Parameterized experiment runner — explore any configuration from the
//! command line.
//!
//! ```sh
//! cargo run --release -p cdna-bench --bin run -- cdna 8 tx
//! cargo run --release -p cdna-bench --bin run -- xen-intel 24 rx --nics 2 --json
//! cargo run --release -p cdna-bench --bin run -- cdna-noprot 1 tx --seed 7
//! cargo run --release -p cdna-bench --bin run -- --trace /tmp/t.json --metrics
//! ```
//!
//! The three positionals default to `cdna 1 tx` when omitted.
//!
//! IO models: `native`, `xen-intel`, `xen-ricenic`, `cdna`, `cdna-iommu`,
//! `cdna-noprot`.
//!
//! `--trace <path>` writes the run as Chrome `trace_event` JSON — open
//! it at <https://ui.perfetto.dev> or `chrome://tracing`. `--metrics`
//! appends the full per-domain counter table to the report. `--shadow`
//! attaches the `cdna-check` DMA shadow checker (audit results appear
//! in the `global/check/*` counters and as a `shadow_audit` trace
//! instant).

use cdna_core::DmaPolicy;
use cdna_system::{run_instrumented, Direction, Instrumentation, IoModel, NicKind, TestbedConfig};

/// Ring capacity for `--trace`: large enough to hold the whole
/// measurement window of a quick run; older events fall off first.
const TRACE_CAPACITY: usize = 1 << 20;

fn usage() -> ! {
    eprintln!(
        "usage: run [native|xen-intel|xen-ricenic|cdna|cdna-iommu|cdna-noprot] \
         [guests] [tx|rx] [--nics N] [--seed S] [--conns C] [--json] \
         [--trace PATH] [--metrics] [--shadow]"
    );
    std::process::exit(2);
}

fn parse_io(name: &str) -> Option<IoModel> {
    Some(match name {
        "native" => IoModel::Native {
            nic: NicKind::Intel,
        },
        "xen-intel" => IoModel::XenBridged {
            nic: NicKind::Intel,
        },
        "xen-ricenic" => IoModel::XenBridged {
            nic: NicKind::RiceNic,
        },
        "cdna" => IoModel::Cdna {
            policy: DmaPolicy::Validated,
        },
        "cdna-iommu" => IoModel::Cdna {
            policy: DmaPolicy::Iommu,
        },
        "cdna-noprot" => IoModel::Cdna {
            policy: DmaPolicy::Unprotected,
        },
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Positionals (all optional, defaulting to `cdna 1 tx`) come before
    // the first `--flag`.
    let n_pos = args
        .iter()
        .position(|a| a.starts_with("--"))
        .unwrap_or(args.len());
    if n_pos > 3 {
        eprintln!("too many positional arguments");
        usage();
    }
    let positional = &args[..n_pos];

    let io = match positional.first() {
        Some(name) => parse_io(name).unwrap_or_else(|| {
            eprintln!("unknown io model `{name}`");
            usage();
        }),
        None => IoModel::Cdna {
            policy: DmaPolicy::Validated,
        },
    };
    let guests: u16 = match positional.get(1) {
        Some(v) => v.parse().unwrap_or_else(|_| usage()),
        None => 1,
    };
    let direction = match positional.get(2).map(String::as_str) {
        Some("tx") | None => Direction::Transmit,
        Some("rx") => Direction::Receive,
        Some(other) => {
            eprintln!("unknown direction `{other}`");
            usage();
        }
    };

    let mut cfg = TestbedConfig::new(io, guests, direction);
    let mut json = false;
    let mut trace_path: Option<String> = None;
    let mut metrics = false;
    let mut i = n_pos;
    while i < args.len() {
        match args[i].as_str() {
            "--nics" => {
                cfg.nics = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--seed" => {
                cfg.seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--conns" => {
                cfg.conns_per_guest = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            "--trace" => {
                trace_path = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            "--metrics" => {
                metrics = true;
                i += 1;
            }
            "--shadow" => {
                cfg.shadow_check = true;
                i += 1;
            }
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }

    let instr = Instrumentation {
        trace_capacity: trace_path.as_ref().map(|_| TRACE_CAPACITY),
        collect_metrics: metrics,
    };
    let artifacts = run_instrumented(cfg, instr);
    if json {
        println!("{}", artifacts.report.to_json());
    } else {
        println!("{}", artifacts.report);
    }
    if let (Some(path), Some(trace)) = (&trace_path, &artifacts.chrome_trace) {
        std::fs::write(path, trace).unwrap_or_else(|e| {
            eprintln!("cannot write trace to `{path}`: {e}");
            std::process::exit(1);
        });
        eprintln!("trace written to {path} (open at https://ui.perfetto.dev)");
    }
}
