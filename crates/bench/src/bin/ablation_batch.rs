//! Ablation: how the CDNA enqueue-hypercall batch size affects
//! hypervisor overhead and idle time (DESIGN.md §7).
//!
//! Larger batches amortize hypercall entry/exit over more descriptors
//! but delay the doorbell; the paper's driver batches naturally at the
//! interrupt cadence (~10-12 descriptors). The sweep points run
//! concurrently on the worker pool (`--jobs N`).

use cdna_bench::header;
use cdna_core::DmaPolicy;
use cdna_system::{Direction, IoModel, TestbedConfig};

fn main() {
    header("Ablation — CDNA hypercall batch size (1 guest, transmit)");
    println!(
        "{:>6} | {:>12} {:>12} {:>14} {:>12}",
        "batch", "Mb/s", "idle %", "hypercalls/s", "hyp %"
    );
    let batches = [1u32, 2, 4, 8, 10, 16, 32, 64];
    let configs: Vec<_> = batches
        .iter()
        .map(|&batch| {
            let mut cfg = TestbedConfig::new(
                IoModel::Cdna {
                    policy: DmaPolicy::Validated,
                },
                1,
                Direction::Transmit,
            );
            cfg.hypercall_batch = batch;
            cfg
        })
        .collect();
    let reports = cdna_bench::run_parallel(configs);
    for (batch, r) in batches.iter().zip(&reports) {
        println!(
            "{:>6} | {:>12.0} {:>12.1} {:>14.0} {:>12.1}",
            batch,
            r.throughput_mbps,
            r.idle_pct(),
            r.hypercalls_per_s,
            r.profile.hypervisor_frac * 100.0
        );
    }
}
