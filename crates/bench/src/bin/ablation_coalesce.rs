//! Ablation: the CDNA interrupt bit-vector coalescing interval
//! (DESIGN.md §7). Shorter intervals cut latency but raise the
//! interrupt-dispatch load in the hypervisor and guests. The sweep
//! points run concurrently on the worker pool (`--jobs N`).

use cdna_bench::header;
use cdna_core::DmaPolicy;
use cdna_sim::SimTime;
use cdna_system::{Direction, IoModel, TestbedConfig};

fn main() {
    header("Ablation — CDNA interrupt coalescing interval (4 guests, transmit)");
    println!(
        "{:>10} | {:>12} {:>12} {:>14} {:>12}",
        "gap (us)", "Mb/s", "idle %", "guest int/s", "hyp %"
    );
    let gaps = [20u64, 50, 100, 146, 250, 500, 1000];
    let configs: Vec<_> = gaps
        .iter()
        .map(|&gap_us| {
            let mut cfg = TestbedConfig::new(
                IoModel::Cdna {
                    policy: DmaPolicy::Validated,
                },
                4,
                Direction::Transmit,
            );
            cfg.ricenic.coalesce_tx = SimTime::from_us(gap_us);
            cfg
        })
        .collect();
    let reports = cdna_bench::run_parallel(configs);
    for (gap_us, r) in gaps.iter().zip(&reports) {
        println!(
            "{:>10} | {:>12.0} {:>12.1} {:>14.0} {:>12.1}",
            gap_us,
            r.throughput_mbps,
            r.idle_pct(),
            r.guest_virq_per_s,
            r.profile.hypervisor_frac * 100.0
        );
    }
}
