//! Regenerates Table 2: transmit performance for a single guest with
//! two NICs — Xen/Intel, Xen/RiceNIC, and CDNA/RiceNIC — including the
//! six-way execution profile and interrupt rates. Rows run concurrently
//! on the worker pool (`--jobs N`).

use cdna_bench::{compare_line, header, paper};
use cdna_core::DmaPolicy;
use cdna_system::{Direction, IoModel, NicKind, TestbedConfig};

fn main() {
    header("Table 2 — single-guest transmit, 2 NICs");
    let ios = [
        IoModel::XenBridged {
            nic: NicKind::Intel,
        },
        IoModel::XenBridged {
            nic: NicKind::RiceNic,
        },
        IoModel::Cdna {
            policy: DmaPolicy::Validated,
        },
    ];
    let configs: Vec<_> = ios
        .iter()
        .map(|io| TestbedConfig::new(*io, 1, Direction::Transmit))
        .collect();
    let reports = cdna_bench::run_parallel(configs);
    for (r, row) in reports.iter().zip(paper::TABLE2_TX.iter()) {
        println!("--- {} ---", row.label);
        println!(
            "{}",
            compare_line("throughput (Mb/s)", row.mbps, r.throughput_mbps)
        );
        println!(
            "{}",
            compare_line(
                "hypervisor (%)",
                row.hyp * 100.0,
                r.profile.hypervisor_frac * 100.0
            )
        );
        println!(
            "{}",
            compare_line(
                "driver domain OS (%)",
                row.driver_os * 100.0,
                r.profile.driver_kernel_frac * 100.0
            )
        );
        println!(
            "{}",
            compare_line(
                "guest OS (%)",
                row.guest_os * 100.0,
                r.profile.guest_kernel_frac * 100.0
            )
        );
        println!(
            "{}",
            compare_line("idle (%)", row.idle * 100.0, r.profile.idle_frac * 100.0)
        );
        println!(
            "{}",
            compare_line("driver interrupts/s", row.driver_int, r.driver_virq_per_s)
        );
        println!(
            "{}",
            compare_line("guest interrupts/s", row.guest_int, r.guest_virq_per_s)
        );
        assert_eq!(r.protection_faults, 0);
    }
}
