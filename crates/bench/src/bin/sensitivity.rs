//! Sensitivity analysis: how robust are the reproduced conclusions to
//! the calibrated cost constants? Perturbs the two most influential
//! constants by ±25% and reports the headline results. The whole
//! 7-scenario × 3-config grid fans out over the worker pool as one
//! flat batch (`--jobs N`), not scenario by scenario.

use cdna_bench::header;
use cdna_core::DmaPolicy;
use cdna_sim::SimTime;
use cdna_system::{Direction, IoModel, NicKind, TestbedConfig};

/// The (switch-penalty scale, validate-cost scale) perturbation grid.
const SCALES: [(f64, f64); 7] = [
    (1.0, 1.0),
    (0.75, 1.0),
    (1.25, 1.0),
    (1.0, 0.75),
    (1.0, 1.25),
    (0.75, 0.75),
    (1.25, 1.25),
];

fn scenario_configs(scale_switch: f64, scale_validate: f64) -> [TestbedConfig; 3] {
    let mk = |io, guests, dir| {
        let mut cfg = TestbedConfig::new(io, guests, dir);
        cfg.costs.switch_cache_penalty =
            SimTime::from_us_f64(cfg.costs.switch_cache_penalty.as_us_f64() * scale_switch);
        cfg.costs.hyp_validate_desc =
            SimTime::from_us_f64(cfg.costs.hyp_validate_desc.as_us_f64() * scale_validate);
        cfg
    };
    [
        mk(
            IoModel::Cdna {
                policy: DmaPolicy::Validated,
            },
            24,
            Direction::Transmit,
        ),
        mk(
            IoModel::XenBridged {
                nic: NicKind::Intel,
            },
            24,
            Direction::Transmit,
        ),
        mk(
            IoModel::Cdna {
                policy: DmaPolicy::Validated,
            },
            1,
            Direction::Transmit,
        ),
    ]
}

fn main() {
    header("Sensitivity — headline results vs cost-constant perturbation");
    println!(
        "{:>14} {:>14} | {:>16} {:>16} {:>14}",
        "switch-penalty", "validate-cost", "TX factor @24", "CDNA idle @1", "CDNA hyp% @1"
    );
    let configs: Vec<TestbedConfig> = SCALES
        .iter()
        .flat_map(|&(ss, sv)| scenario_configs(ss, sv))
        .collect();
    let reports = cdna_bench::run_parallel(configs);
    for (&(ss, sv), r) in SCALES.iter().zip(reports.chunks(3)) {
        let factor = r[0].throughput_mbps / r[1].throughput_mbps; // @24 guests
        let idle = r[2].idle_pct(); // CDNA 1-guest idle
        let hyp = r[2].profile.hypervisor_frac * 100.0; // CDNA 1-guest hyp%
        println!(
            "{:>13.2}x {:>13.2}x | {:>15.2}x {:>15.1}% {:>13.1}%",
            ss, sv, factor, idle, hyp
        );
    }
    println!();
    println!("The qualitative conclusions (CDNA wins by >1.7x at 24 guests; CDNA");
    println!("leaves ~half the CPU idle at 1 guest) hold across the range.");
}
