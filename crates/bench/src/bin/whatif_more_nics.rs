//! Tests the paper's §5.4 hypothesis: "it is likely that with more CDNA
//! NICs, the throughput curve would have a similar shape to that of
//! software virtualization, but with a much higher peak throughput when
//! using 1–4 guests."
//!
//! Sweeps CDNA over 2, 4, and 6 NICs across guest counts: with more
//! NICs the line-rate plateau rises until the CPU (not the NICs) caps
//! aggregate throughput, at which point the curve bends over exactly
//! like the software-virtualized one.

use cdna_bench::header;
use cdna_core::DmaPolicy;
use cdna_system::{Direction, IoModel, TestbedConfig};

fn main() {
    header("What-if (§5.4) — CDNA transmit with more NICs");
    let guest_counts = [1u16, 2, 4, 8, 12, 16, 20, 24];
    let nic_counts = [2u8, 4, 6];

    let mut configs = Vec::new();
    for &nics in &nic_counts {
        for &g in &guest_counts {
            let mut cfg = TestbedConfig::new(
                IoModel::Cdna {
                    policy: DmaPolicy::Validated,
                },
                g,
                Direction::Transmit,
            )
            .with_nics(nics);
            // Keep connections spread over every NIC.
            cfg.conns_per_guest = cfg.conns_per_guest.max(nics as u16);
            configs.push(cfg);
        }
    }
    let reports = cdna_bench::run_parallel(configs);

    println!(
        "{:>6} | {:>14} {:>14} {:>14}",
        "guests", "2 NICs (Mb/s)", "4 NICs (Mb/s)", "6 NICs (Mb/s)"
    );
    for (gi, &g) in guest_counts.iter().enumerate() {
        let row: Vec<f64> = nic_counts
            .iter()
            .enumerate()
            .map(|(ni, _)| reports[ni * guest_counts.len() + gi].throughput_mbps)
            .collect();
        println!(
            "{:>6} | {:>14.0} {:>14.0} {:>14.0}",
            g, row[0], row[1], row[2]
        );
    }
    println!();
    println!("With 2 NICs CDNA holds line rate to 24 guests. Four NICs double");
    println!("the peak (confirming §5.4's 'much higher peak'); a sixth NIC buys");
    println!("nothing — the single Opteron core saturates at ~3.6 Gb/s of CDNA");
    println!("transmit processing, so the CPU, not the NICs or the driver");
    println!("domain, is the next bottleneck once software multiplexing is gone.");
}
