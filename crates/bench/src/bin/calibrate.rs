//! Calibration harness: runs every single-guest configuration and
//! prints simulated vs paper targets.

use cdna_core::DmaPolicy;
use cdna_system::{run_experiment, Direction, IoModel, NicKind, TestbedConfig};

fn main() {
    let cases = [
        (
            IoModel::Native {
                nic: NicKind::Intel,
            },
            Direction::Transmit,
            6,
            5126.0,
        ),
        (
            IoModel::Native {
                nic: NicKind::Intel,
            },
            Direction::Receive,
            6,
            3629.0,
        ),
        (
            IoModel::XenBridged {
                nic: NicKind::Intel,
            },
            Direction::Transmit,
            2,
            1602.0,
        ),
        (
            IoModel::XenBridged {
                nic: NicKind::Intel,
            },
            Direction::Receive,
            2,
            1112.0,
        ),
        (
            IoModel::XenBridged {
                nic: NicKind::RiceNic,
            },
            Direction::Transmit,
            2,
            1674.0,
        ),
        (
            IoModel::XenBridged {
                nic: NicKind::RiceNic,
            },
            Direction::Receive,
            2,
            1075.0,
        ),
        (
            IoModel::Cdna {
                policy: DmaPolicy::Validated,
            },
            Direction::Transmit,
            2,
            1867.0,
        ),
        (
            IoModel::Cdna {
                policy: DmaPolicy::Validated,
            },
            Direction::Receive,
            2,
            1874.0,
        ),
        (
            IoModel::Cdna {
                policy: DmaPolicy::Unprotected,
            },
            Direction::Transmit,
            2,
            1867.0,
        ),
        (
            IoModel::Cdna {
                policy: DmaPolicy::Unprotected,
            },
            Direction::Receive,
            2,
            1874.0,
        ),
    ];
    for (io, dir, nics, target) in cases {
        let mut cfg = TestbedConfig::new(io, 1, dir).with_nics(nics);
        cfg.conns_per_guest = 2 * nics as u16;
        let r = run_experiment(cfg);
        println!(
            "{:<10?} {}  target {:>6.0}  {}",
            dir,
            r.table_row(),
            target,
            if (r.throughput_mbps / target - 1.0).abs() < 0.08 {
                "OK"
            } else {
                "MISS"
            }
        );
    }
}
