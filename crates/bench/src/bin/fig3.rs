//! Regenerates Figure 3: aggregate transmit throughput for Xen/Intel
//! and CDNA/RiceNIC as the number of guests grows from 1 to 24, with
//! CDNA idle time annotations.

use cdna_bench::{header, paper};
use cdna_core::DmaPolicy;
use cdna_system::{Direction, IoModel, NicKind, TestbedConfig};

fn main() {
    header("Figure 3 — transmit throughput vs guest count (2 NICs)");
    println!(
        "{:>6} | {:>13} {:>13} | {:>13} {:>12} {:>12}",
        "guests",
        "Xen TX (Mb/s)",
        "CDNA TX (Mb/s)",
        "CDNA idle sim",
        "CDNA idle paper",
        "Xen idle sim"
    );
    let configs: Vec<_> = paper::FIG_GUESTS
        .iter()
        .flat_map(|&g| {
            [
                TestbedConfig::new(
                    IoModel::XenBridged {
                        nic: NicKind::Intel,
                    },
                    g,
                    Direction::Transmit,
                ),
                TestbedConfig::new(
                    IoModel::Cdna {
                        policy: DmaPolicy::Validated,
                    },
                    g,
                    Direction::Transmit,
                ),
            ]
        })
        .collect();
    let reports = cdna_bench::run_parallel(configs);
    let mut xen24 = 0.0;
    let mut cdna24 = 0.0;
    for (i, &g) in paper::FIG_GUESTS.iter().enumerate() {
        let xen = &reports[i * 2];
        let cdna = &reports[i * 2 + 1];
        println!(
            "{:>6} | {:>13.0} {:>13.0} | {:>12.1}% {:>11.1}% {:>11.1}%",
            g,
            xen.throughput_mbps,
            cdna.throughput_mbps,
            cdna.idle_pct(),
            paper::FIG3_CDNA_IDLE_PCT[i],
            xen.idle_pct(),
        );
        if g == 24 {
            xen24 = xen.throughput_mbps;
            cdna24 = cdna.throughput_mbps;
        }
    }
    println!();
    println!(
        "At 24 guests CDNA transmits {:.2}x Xen's aggregate bandwidth (paper: {:.1}x).",
        cdna24 / xen24,
        paper::FACTOR_TX_24
    );
}
