//! `cdna-perf` — wall-clock performance harness for the simulator itself.
//!
//! Where every other bench binary measures the *simulated* system (Mb/s,
//! interrupt rates), this one measures the *simulator*: how many
//! scheduler events per wall-clock second the engine sustains across a
//! fixed, seeded suite of testbed configs. Wall-clock time is legal
//! here — `crates/bench` is not a sim crate (see `cdna-check`) — and
//! never feeds back into simulated results. Under CDNA015
//! (`clock-purity`) wall-clock may only reach `wall_ms*` fields; the
//! derived-rate fields (`events_per_sec`, `ns_per_event`) carry
//! documented allows below, and everything else in `BENCH.json` is
//! provably clock-free.
//!
//! ```sh
//! cargo run --release -p cdna-bench --bin perf            # full suite
//! cargo run --release -p cdna-bench --bin perf -- --quick # CI smoke
//! cargo run --release -p cdna-bench --bin perf -- --jobs 8 # fan out
//! ```
//!
//! The suite is {CDNA, Xen-softvirt} × {TX, RX} × {1, 8, 24} guests,
//! all at the default seed (see [`cdna_bench::perf_suite`]). Results
//! land in `BENCH.json` at the repo root (override with `--out`). Every
//! field except the wall-clock derived ones (`wall_ms*`,
//! `events_per_sec`, `ns_per_event`) is deterministic run-to-run; the
//! harness re-runs each config `--reps` times, asserts the simulated
//! outcome is identical across reps, and reports the best wall time
//! plus the min/median/max spread so the perf trajectory is
//! noise-aware.
//!
//! Suite entries run concurrently on the `cdna-sim` worker pool
//! (`--jobs N`, `CDNA_JOBS`, default `min(cores, entries)`).
//! Per-entry wall times are measured inside the entry's worker —
//! meaningful for relative comparisons but contended at `jobs > 1` —
//! while `aggregate.wall_ms_parallel` is the whole suite's elapsed
//! wall-clock, the number the fan-out actually improves.

use std::time::Instant;

use cdna_bench::{perf_suite, take_jobs_flag, PerfEntry};
use cdna_sim::{par, QueueKind};
use cdna_system::{run_experiment, Direction};
use cdna_trace::json::JsonWriter;

/// Bump when the `BENCH.json` layout changes shape (adding fields is
/// allowed; removing or renaming is not, without a bump).
const SCHEMA: &str = "cdna-bench/1";

/// Default repetitions per config; wall time is the best of these.
const DEFAULT_REPS: u32 = 3;

fn usage() -> ! {
    eprintln!(
        "usage: perf [--quick] [--reps N] [--jobs N] [--queue heap|wheel] [--out PATH] [--stdout]"
    );
    std::process::exit(2);
}

struct Measured {
    entry: PerfEntry,
    seed: u64,
    events_processed: u64,
    throughput_mbps: f64,
    protection_faults: u64,
    sim_ms: f64,
    /// Best (minimum) wall time across reps — the historical headline.
    wall_ms: f64,
    /// Median wall time across reps.
    wall_ms_median: f64,
    /// Worst (maximum) wall time across reps.
    wall_ms_max: f64,
}

fn measure(entry: PerfEntry, reps: u32) -> Measured {
    let cfg = &entry.cfg;
    let sim_ms = (cfg.warmup + cfg.measure).as_ns() as f64 / 1e6;
    let seed = cfg.seed;

    let mut walls: Vec<f64> = Vec::with_capacity(reps.max(1) as usize);
    let mut outcome: Option<(u64, f64, u64)> = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let report = run_experiment(cfg.clone());
        walls.push(start.elapsed().as_secs_f64() * 1e3);
        let this = (
            report.events_processed,
            report.throughput_mbps,
            report.protection_faults,
        );
        match &outcome {
            None => outcome = Some(this),
            Some(prev) => assert_eq!(
                *prev, this,
                "{}: simulated outcome varied across reps — determinism bug",
                entry.id
            ),
        }
    }
    let (events_processed, throughput_mbps, protection_faults) = outcome.expect("reps >= 1"); // loop runs at least once
    walls.sort_by(|a, b| a.total_cmp(b));
    let median = if walls.len() % 2 == 1 {
        walls[walls.len() / 2]
    } else {
        (walls[walls.len() / 2 - 1] + walls[walls.len() / 2]) / 2.0
    };
    Measured {
        seed,
        events_processed,
        throughput_mbps,
        protection_faults,
        sim_ms,
        wall_ms: walls[0],
        wall_ms_median: median,
        wall_ms_max: walls[walls.len() - 1],
        entry,
    }
}

fn write_json(
    results: &[Measured],
    quick: bool,
    reps: u32,
    queue: QueueKind,
    jobs: usize,
    wall_ms_parallel: f64,
) -> String {
    let mut w = JsonWriter::with_capacity(4096);
    w.begin_object();
    w.key("schema");
    w.string(SCHEMA);
    w.key("suite");
    w.string(if quick { "quick" } else { "full" });
    w.key("queue");
    w.string(queue.name());
    w.key("reps");
    w.number_u64(reps as u64);
    w.key("jobs");
    w.number_u64(jobs as u64);
    w.key("entries");
    w.begin_array();
    for m in results {
        w.begin_object();
        w.key("id");
        w.string(&m.entry.id);
        w.key("io");
        w.string(m.entry.io_name);
        w.key("direction");
        w.string(match m.entry.direction {
            Direction::Transmit => "tx",
            Direction::Receive => "rx",
        });
        w.key("guests");
        w.number_u64(m.entry.guests as u64);
        w.key("seed");
        w.number_u64(m.seed);
        w.key("events_processed");
        w.number_u64(m.events_processed);
        w.key("throughput_mbps");
        w.number_f64(m.throughput_mbps);
        w.key("protection_faults");
        w.number_u64(m.protection_faults);
        w.key("sim_ms");
        w.number_f64(m.sim_ms);
        w.key("wall_ms");
        w.number_f64(m.wall_ms);
        w.key("wall_ms_min");
        w.number_f64(m.wall_ms);
        w.key("wall_ms_median");
        w.number_f64(m.wall_ms_median);
        w.key("wall_ms_max");
        w.number_f64(m.wall_ms_max);
        w.key("events_per_sec");
        // cdna-check: allow(clock-purity): per-entry simulator speed is wall-derived by definition, reported not compared
        w.number_f64(m.events_processed as f64 / (m.wall_ms / 1e3));
        w.key("ns_per_event");
        // cdna-check: allow(clock-purity): wall-derived per-event cost, reported not compared
        w.number_f64(m.wall_ms * 1e6 / m.events_processed as f64);
        w.end_object();
    }
    w.end_array();

    // Aggregates: whole suite, plus the 24-guest subset the paper's
    // scalability story (and the perf acceptance bar) cares about.
    // Separate sums rather than one tuple-returning closure, so
    // cdna-check's clock-purity taint sees exactly which aggregates
    // are wall-derived (tuple destructuring would hide the flow).
    let all_events: u64 = results.iter().map(|m| m.events_processed).sum();
    let all_wall_ms: f64 = results.iter().map(|m| m.wall_ms).sum();
    let g24_events: u64 = results
        .iter()
        .filter(|m| m.entry.guests == 24)
        .map(|m| m.events_processed)
        .sum();
    let g24_wall_ms: f64 = results
        .iter()
        .filter(|m| m.entry.guests == 24)
        .map(|m| m.wall_ms)
        .sum();
    w.key("aggregate");
    w.begin_object();
    w.key("events_processed");
    w.number_u64(all_events);
    w.key("wall_ms");
    w.number_f64(all_wall_ms);
    w.key("wall_ms_parallel");
    w.number_f64(wall_ms_parallel);
    w.key("events_per_sec");
    // cdna-check: allow(clock-purity): wall-derived by definition — a measured rate, never a compared field (BENCH.json diffs exclude it)
    w.number_f64(all_events as f64 / (all_wall_ms / 1e3));
    w.key("events_per_sec_24g");
    // cdna-check: allow(clock-purity): wall-derived throughput for the 24-guest scalability bar, reported not compared
    w.number_f64(g24_events as f64 / (g24_wall_ms / 1e3));
    w.end_object();
    w.end_object();
    w.finish()
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // One shared scanner owns the `--jobs` syntax across all binaries.
    let jobs_flag = take_jobs_flag(&mut args);
    let mut quick = false;
    let mut reps = DEFAULT_REPS;
    let mut queue = QueueKind::default();
    let mut out: Option<String> = None;
    let mut stdout = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--reps" => {
                reps = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--queue" => {
                queue = match args.get(i + 1).map(String::as_str) {
                    Some("heap") => QueueKind::BinaryHeap,
                    Some("wheel") => QueueKind::TimerWheel,
                    _ => usage(),
                };
                i += 2;
            }
            "--out" => {
                out = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            "--stdout" => {
                stdout = true;
                i += 1;
            }
            _ => usage(),
        }
    }

    // Default output lands at the repo root regardless of the cwd
    // `cargo run` was invoked from.
    let out = out.unwrap_or_else(|| {
        format!("{}/../../BENCH.json", env!("CARGO_MANIFEST_DIR")) // bench artifact location
    });

    let entries = perf_suite(quick, queue);
    let jobs = par::resolve_jobs(jobs_flag, entries.len());
    eprintln!("running {} entries on {} worker(s)", entries.len(), jobs);
    let suite_start = Instant::now();
    let results = par::run_indexed(jobs, entries, |_, entry| measure(entry, reps));
    let wall_ms_parallel = suite_start.elapsed().as_secs_f64() * 1e3;
    for m in &results {
        eprintln!(
            "{:16} {:>9} events  {:>9.0} ev/s  {:>7.1} ns/ev  {:>8.2} ms wall (med {:.2}, max {:.2})",
            m.entry.id,
            m.events_processed,
            m.events_processed as f64 / (m.wall_ms / 1e3),
            m.wall_ms * 1e6 / m.events_processed as f64,
            m.wall_ms,
            m.wall_ms_median,
            m.wall_ms_max,
        );
    }
    eprintln!(
        "suite wall-clock {:.2} ms at jobs={} (sum of per-entry best walls {:.2} ms)",
        wall_ms_parallel,
        jobs,
        results.iter().map(|m| m.wall_ms).sum::<f64>(),
    );
    let json = write_json(&results, quick, reps, queue, jobs, wall_ms_parallel);
    if stdout {
        println!("{json}");
    } else {
        std::fs::write(&out, format!("{json}\n")).unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {out}");
    }
}
