//! Depth-first schedule exploration over rebuilt worlds, plus the
//! invariant suite every explored schedule must satisfy.
//!
//! Exploration comes in two shapes: [`explore`] is the sequential
//! reference, and [`explore_parallel`] fans the same decision tree out
//! over the [`cdna_sim::par`] worker pool by partitioning it into
//! disjoint subtree *shards* (see [`explore_parallel`] for the
//! decomposition argument). On an exhausted tree the two produce
//! identical [`Exploration`]s — proven by `tests/parallel.rs`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cdna_core::{DmaPolicy, FaultKind};
use cdna_sim::{par, SimTime, Simulation};
use cdna_system::{Direction, Event, IoModel, NicKind, SystemWorld, TestbedConfig};

use crate::queue::{lock, Controller, Decision, PermutationQueue};

/// One exploration job: a testbed configuration plus bounds.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Human-readable identifier, stable across runs (used in reports).
    pub label: String,
    /// The configuration every schedule rebuilds from.
    pub cfg: TestbedConfig,
    /// Stop after this many schedules even if branches remain.
    pub max_schedules: u64,
    /// Record (and therefore fork) at most this many decisions per
    /// schedule.
    pub max_depth: usize,
    /// Events within this window of the earliest pending event count as
    /// tied (bounded timing jitter); `SimTime::ZERO` forks exact ties
    /// only.
    pub tie_window: SimTime,
}

/// The outcome of exploring one [`ExploreConfig`].
///
/// `PartialEq` compares every field; the differential tests use it to
/// pin [`explore_parallel`] against [`explore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exploration {
    /// The job's label.
    pub label: String,
    /// Schedules executed.
    pub schedules: u64,
    /// Events processed across all schedules.
    pub events: u64,
    /// Deepest decision count observed in any single schedule.
    pub max_decisions: usize,
    /// Total invariant violations across all schedules.
    pub violations: u64,
    /// First few violation descriptions (capped; see `violations` for
    /// the true count).
    pub sample: Vec<String>,
    /// Whether the decision tree was exhausted within `max_schedules`
    /// (true = every explorable interleaving up to `max_depth` ran).
    pub exhausted: bool,
    /// Whether any schedule hit the depth bound.
    pub depth_truncated: bool,
}

/// How many violation descriptions an [`Exploration`] retains verbatim.
const SAMPLE_CAP: usize = 8;

/// Checks the full invariant suite against a finished world (after
/// [`SystemWorld::shadow_sync`]), returning one description per
/// violation.
///
/// The suite:
/// 1. every `DmaShadow` violation (pin lifecycle, ownership, sequence
///    continuity, mirror audits);
/// 2. every non-shadow protection fault (e.g. stale sequence numbers
///    rejected by the NIC);
/// 3. event-channel conservation: `sent == collected + pending`;
/// 4. CDNA pin balance: outstanding pool pins equal the protection
///    engines' pinned pages (Xen's grant path pins outside the engines,
///    so this is only sound for CDNA runs).
pub fn check_invariants(world: &SystemWorld) -> Vec<String> {
    let mut out = Vec::new();
    if let Some(shadow) = world.shadow() {
        for v in shadow.violations() {
            out.push(format!("shadow: {}", v.kind));
        }
    }
    for f in &world.faults {
        if !matches!(f.kind, FaultKind::ShadowViolation { .. }) {
            // Render via the stable code/name accessors, not `{:?}`:
            // violation samples land in reports and CI logs, and the
            // Debug form changes whenever a payload field does.
            out.push(format!(
                "fault on {}: {} (code {}): {}",
                f.ctx,
                f.kind.name(),
                f.kind.code(),
                f.kind
            ));
        }
    }
    let (sent, collected, pending) = (
        world.evt.sent(),
        world.evt.collected(),
        world.evt.pending_total(),
    );
    if sent != collected + pending {
        out.push(format!(
            "evtchn conservation broken: sent={sent} != collected={collected} + pending={pending}"
        ));
    }
    if matches!(world.cfg.io_model, IoModel::Cdna { .. }) {
        let engine_pins: u64 = world
            .engines
            .iter()
            .map(|e| {
                (0..=u8::MAX)
                    .filter(|&c| e.contexts().state(cdna_core::ContextId(c)).is_ok())
                    .map(|c| e.pinned_pages(cdna_core::ContextId(c)).len() as u64)
                    .sum::<u64>()
            })
            .sum();
        let pool_pins = world.mem.outstanding_pins();
        if pool_pins != engine_pins {
            out.push(format!(
                "pin balance broken: pool={pool_pins} engines={engine_pins}"
            ));
        }
    }
    out
}

/// Runs one schedule: rebuild the world, replay `prefix`, run to the
/// end of the measurement window, audit. Returns the controller (for
/// backtracking), the violations, and the events processed. A panic
/// inside the schedule counts as a violation of its own.
fn run_schedule(
    job: &ExploreConfig,
    prefix: Vec<usize>,
) -> (Arc<Mutex<Controller>>, Vec<String>, u64) {
    let ctrl = Arc::new(Mutex::new(Controller::new(prefix, job.max_depth)));
    let queue = PermutationQueue::with_window(Arc::clone(&ctrl), job.tie_window);
    let end = job.cfg.warmup + job.cfg.measure;
    let cfg = job.cfg.clone();
    let outcome = catch_unwind(AssertUnwindSafe(move || {
        let mut sim = Simulation::with_event_queue(SystemWorld::build(cfg), Box::new(queue));
        let primed: Vec<(SimTime, Event)> = sim.world_mut().prime();
        for (t, e) in primed {
            sim.schedule(t, e);
        }
        sim.run_until(end);
        let events = sim.events_processed();
        let mut world = sim.into_world();
        world.shadow_sync();
        (check_invariants(&world), events)
    }));
    match outcome {
        Ok((violations, events)) => (ctrl, violations, events),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            (ctrl, vec![format!("panic during schedule: {msg}")], 0)
        }
    }
}

/// Explores `job` depth-first until the decision tree is exhausted or
/// `max_schedules` is reached.
pub fn explore(job: &ExploreConfig) -> Exploration {
    let mut result = Exploration {
        label: job.label.clone(),
        schedules: 0,
        events: 0,
        max_decisions: 0,
        violations: 0,
        sample: Vec::new(),
        exhausted: false,
        depth_truncated: false,
    };
    let mut prefix = Vec::new();
    loop {
        let (ctrl, violations, events) = run_schedule(job, prefix);
        result.schedules += 1;
        result.events += events;
        result.violations += violations.len() as u64;
        for v in violations {
            if result.sample.len() < SAMPLE_CAP {
                result.sample.push(format!("{}: {v}", result.label));
            }
        }
        let ctrl = lock(&ctrl);
        result.max_decisions = result.max_decisions.max(ctrl.record.len());
        result.depth_truncated |= ctrl.depth_truncated;
        if result.schedules >= job.max_schedules {
            break;
        }
        match ctrl.next_prefix() {
            Some(p) => prefix = p,
            None => {
                result.exhausted = true;
                break;
            }
        }
    }
    result
}

/// Frontier-splitting rounds [`explore_parallel`] performs before
/// handing whole subtrees to the workers. Each round runs the first
/// schedule of every pending shard and replaces the shard with its
/// sub-shards, multiplying the pieces available for work stealing;
/// after the last round each remaining shard is explored to completion
/// by one worker. Three rounds comfortably out-produces any realistic
/// worker count on the matrices this repo explores while keeping the
/// (sequentially merged) bookkeeping cheap.
const FRONTIER_ROUNDS: usize = 3;

/// One disjoint subtree of the decision tree: replay `prefix`, then
/// search depth-first without ever backtracking above `fixed_len`
/// decisions (see [`Controller::next_prefix_from`]).
#[derive(Debug, Clone)]
struct Shard {
    prefix: Vec<usize>,
    fixed_len: usize,
}

/// What one executed schedule contributes to an [`Exploration`].
#[derive(Debug)]
struct RunStats {
    violations: Vec<String>,
    events: u64,
    decisions: usize,
    depth_truncated: bool,
}

/// An ordered fragment of the exploration: schedules already executed
/// (in sequential-DFS order) or a subtree still to be explored.
#[derive(Debug)]
enum Piece {
    Done(Vec<RunStats>),
    Todo(Shard),
}

/// Takes one schedule from the shared budget; `false` once
/// `max_schedules` runs have been claimed fleet-wide.
fn take_token(budget: &AtomicU64) -> bool {
    budget
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1))
        .is_ok()
}

/// The sub-shards of a finished schedule, in the exact order the
/// sequential DFS would visit them: deepest decision first, and within
/// a decision the untried candidates ascending. Decisions above
/// `fixed_len` belong to an enclosing shard and are not forked here.
fn subshards(record: &[Decision], fixed_len: usize) -> Vec<Shard> {
    let mut out = Vec::new();
    for d in (fixed_len..record.len()).rev() {
        let dec = &record[d];
        if let Some(pos) = dec.candidates.iter().position(|&c| c == dec.chosen) {
            for &c in &dec.candidates[pos + 1..] {
                let mut p: Vec<usize> = record[..d].iter().map(|x| x.chosen).collect();
                p.push(c);
                out.push(Shard {
                    prefix: p,
                    fixed_len: d + 1,
                });
            }
        }
    }
    out
}

/// Runs one schedule and packages its contribution.
fn run_stats(job: &ExploreConfig, prefix: Vec<usize>) -> (RunStats, Arc<Mutex<Controller>>) {
    let (ctrl, violations, events) = run_schedule(job, prefix);
    let stats = {
        let c = lock(&ctrl);
        RunStats {
            violations,
            events,
            decisions: c.record.len(),
            depth_truncated: c.depth_truncated,
        }
    };
    (stats, ctrl)
}

/// Explores one shard's whole subtree depth-first, claiming one budget
/// token per schedule. Returns the executed schedules in sequential-DFS
/// order (possibly empty if the budget ran dry before the first run).
fn run_shard_dfs(job: &ExploreConfig, shard: Shard, budget: &AtomicU64) -> Vec<RunStats> {
    let mut out = Vec::new();
    let mut prefix = shard.prefix;
    loop {
        if !take_token(budget) {
            break;
        }
        let (stats, ctrl) = run_stats(job, prefix);
        out.push(stats);
        let next = lock(&ctrl).next_prefix_from(shard.fixed_len);
        match next {
            Some(p) => prefix = p,
            None => break,
        }
    }
    out
}

/// [`explore`], fanned out over `jobs` workers of the [`par`] pool.
///
/// The decision tree is partitioned into disjoint subtree shards: after
/// running one schedule, every decision depth `d` with untried
/// candidates spawns a shard that replays the first `d` choices plus
/// one untried candidate and then searches with a backtracking floor of
/// `d + 1` ([`Controller::next_prefix_from`]). Enumerating those shards
/// deepest-first (candidates ascending) is exactly the order the
/// sequential search visits the same subtrees, so concatenating the
/// shard results reproduces the sequential schedule order — the merge
/// is deterministic no matter which worker ran what when.
/// [`FRONTIER_ROUNDS`] rounds of recursive splitting keep the shard
/// queue well ahead of the worker count.
///
/// A shared token budget caps total schedules at `max_schedules`, so
/// the *count* always matches [`explore`]; on a tree the budget
/// exhausts, which schedules run (and thus `events`, `sample`, …) can
/// differ from sequential. On an exhausted tree — the interesting case
/// for verification, and what `tests/parallel.rs` pins — every field of
/// the returned [`Exploration`] is identical to the sequential one.
///
/// The active [`cdna_mem::mutation`] switch (a thread-local) is
/// mirrored from the calling thread onto every worker, so seeded-bug
/// calibration runs shard identically to clean ones. `jobs <= 1` simply
/// runs [`explore`].
pub fn explore_parallel(job: &ExploreConfig, jobs: usize) -> Exploration {
    if jobs <= 1 {
        return explore(job);
    }
    // `max_schedules == 0` still runs one schedule sequentially (the
    // loop tests the bound only after the first run); mirror that.
    let budget = AtomicU64::new(job.max_schedules.max(1));
    let mutation = cdna_mem::mutation::active();
    let init = move || cdna_mem::mutation::set_active(mutation);

    let mut pieces: Vec<Piece> = vec![Piece::Todo(Shard {
        prefix: Vec::new(),
        fixed_len: 0,
    })];
    for round in 0..=FRONTIER_ROUNDS {
        let split = round < FRONTIER_ROUNDS;
        let todo: Vec<(usize, Shard)> = pieces
            .iter()
            .enumerate()
            .filter_map(|(i, p)| match p {
                Piece::Todo(s) => Some((i, s.clone())),
                Piece::Done(_) => None,
            })
            .collect();
        if todo.is_empty() {
            break;
        }
        let results = par::run_indexed_init(jobs, todo, init, |_, (pos, shard)| {
            if split {
                if !take_token(&budget) {
                    return (pos, Vec::new(), Vec::new());
                }
                let (stats, ctrl) = run_stats(job, shard.prefix.clone());
                let subs = subshards(&lock(&ctrl).record, shard.fixed_len);
                (pos, vec![stats], subs)
            } else {
                (pos, run_shard_dfs(job, shard, &budget), Vec::new())
            }
        });
        // Splice each shard's first run and sub-shards back in place;
        // `results` is index-ordered, so walking both lists in step
        // keeps the piece order canonical.
        let mut results = results.into_iter();
        let mut next_pieces = Vec::new();
        for (i, piece) in pieces.into_iter().enumerate() {
            match piece {
                Piece::Done(runs) => next_pieces.push(Piece::Done(runs)),
                Piece::Todo(_) => {
                    let (pos, runs, subs) = results
                        .next()
                        .unwrap_or_else(|| (i, Vec::new(), Vec::new()));
                    debug_assert_eq!(pos, i, "shard results out of order");
                    if !runs.is_empty() {
                        next_pieces.push(Piece::Done(runs));
                    }
                    next_pieces.extend(subs.into_iter().map(Piece::Todo));
                }
            }
        }
        pieces = next_pieces;
    }

    let mut result = Exploration {
        label: job.label.clone(),
        schedules: 0,
        events: 0,
        max_decisions: 0,
        violations: 0,
        sample: Vec::new(),
        exhausted: false,
        depth_truncated: false,
    };
    for piece in pieces {
        if let Piece::Done(runs) = piece {
            for r in runs {
                result.schedules += 1;
                result.events += r.events;
                result.violations += r.violations.len() as u64;
                for v in r.violations {
                    if result.sample.len() < SAMPLE_CAP {
                        result.sample.push(format!("{}: {v}", result.label));
                    }
                }
                result.max_decisions = result.max_decisions.max(r.decisions);
                result.depth_truncated |= r.depth_truncated;
            }
        }
    }
    // Sequential semantics: `exhausted` means the tree ran dry *before*
    // the schedule bound was reached. A denied token implies exactly
    // `max_schedules` runs happened, so the comparison covers all cases.
    result.exhausted = result.schedules < job.max_schedules;
    result
}

/// Aggregated results of exploring a whole configuration matrix.
#[derive(Debug, Clone, Default)]
pub struct MatrixReport {
    /// Per-configuration outcomes, in matrix order.
    pub runs: Vec<Exploration>,
}

impl MatrixReport {
    /// Schedules executed across the matrix.
    pub fn total_schedules(&self) -> u64 {
        self.runs.iter().map(|r| r.schedules).sum()
    }

    /// Invariant violations across the matrix.
    pub fn total_violations(&self) -> u64 {
        self.runs.iter().map(|r| r.violations).sum()
    }

    /// Events processed across the matrix.
    pub fn total_events(&self) -> u64 {
        self.runs.iter().map(|r| r.events).sum()
    }

    /// Whether every explored schedule satisfied every invariant.
    pub fn clean(&self) -> bool {
        self.total_violations() == 0
    }
}

/// The standard exploration matrix: {CDNA validated, Xen bridged} ×
/// {2, 3 guests} × {transmit, receive}, with the shadow checker on and
/// short warm-up/measure windows (`window_us` simulated microseconds)
/// so thousands of schedules stay affordable. `per_config_schedules`
/// bounds each cell's DFS and `tie_window_ns` sets the jitter tie
/// window (see [`ExploreConfig::tie_window`]).
pub fn default_matrix(
    window_us: u64,
    per_config_schedules: u64,
    max_depth: usize,
    tie_window_ns: u64,
) -> Vec<ExploreConfig> {
    let mut jobs = Vec::new();
    let models = [
        IoModel::Cdna {
            policy: DmaPolicy::Validated,
        },
        IoModel::XenBridged {
            nic: NicKind::Intel,
        },
    ];
    for io in models {
        for guests in [2u16, 3] {
            for dir in [Direction::Transmit, Direction::Receive] {
                let mut cfg = TestbedConfig::new(io, guests, dir);
                cfg.warmup = SimTime::from_us(window_us / 3);
                cfg.measure = SimTime::from_us(window_us - window_us / 3);
                cfg.shadow_check = true;
                let dir_name = match dir {
                    Direction::Transmit => "tx",
                    Direction::Receive => "rx",
                };
                jobs.push(ExploreConfig {
                    label: format!("{}/{}g/{}", io.label(), guests, dir_name),
                    cfg,
                    max_schedules: per_config_schedules,
                    max_depth,
                    tie_window: SimTime::from_ns(tie_window_ns),
                });
            }
        }
    }
    jobs
}
