//! Depth-first schedule exploration over rebuilt worlds, plus the
//! invariant suite every explored schedule must satisfy.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

use cdna_core::{DmaPolicy, FaultKind};
use cdna_sim::{SimTime, Simulation};
use cdna_system::{Direction, Event, IoModel, NicKind, SystemWorld, TestbedConfig};

use crate::queue::{Controller, PermutationQueue};

/// One exploration job: a testbed configuration plus bounds.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Human-readable identifier, stable across runs (used in reports).
    pub label: String,
    /// The configuration every schedule rebuilds from.
    pub cfg: TestbedConfig,
    /// Stop after this many schedules even if branches remain.
    pub max_schedules: u64,
    /// Record (and therefore fork) at most this many decisions per
    /// schedule.
    pub max_depth: usize,
    /// Events within this window of the earliest pending event count as
    /// tied (bounded timing jitter); `SimTime::ZERO` forks exact ties
    /// only.
    pub tie_window: SimTime,
}

/// The outcome of exploring one [`ExploreConfig`].
#[derive(Debug, Clone)]
pub struct Exploration {
    /// The job's label.
    pub label: String,
    /// Schedules executed.
    pub schedules: u64,
    /// Events processed across all schedules.
    pub events: u64,
    /// Deepest decision count observed in any single schedule.
    pub max_decisions: usize,
    /// Total invariant violations across all schedules.
    pub violations: u64,
    /// First few violation descriptions (capped; see `violations` for
    /// the true count).
    pub sample: Vec<String>,
    /// Whether the decision tree was exhausted within `max_schedules`
    /// (true = every explorable interleaving up to `max_depth` ran).
    pub exhausted: bool,
    /// Whether any schedule hit the depth bound.
    pub depth_truncated: bool,
}

/// How many violation descriptions an [`Exploration`] retains verbatim.
const SAMPLE_CAP: usize = 8;

/// Checks the full invariant suite against a finished world (after
/// [`SystemWorld::shadow_sync`]), returning one description per
/// violation.
///
/// The suite:
/// 1. every `DmaShadow` violation (pin lifecycle, ownership, sequence
///    continuity, mirror audits);
/// 2. every non-shadow protection fault (e.g. stale sequence numbers
///    rejected by the NIC);
/// 3. event-channel conservation: `sent == collected + pending`;
/// 4. CDNA pin balance: outstanding pool pins equal the protection
///    engines' pinned pages (Xen's grant path pins outside the engines,
///    so this is only sound for CDNA runs).
pub fn check_invariants(world: &SystemWorld) -> Vec<String> {
    let mut out = Vec::new();
    if let Some(shadow) = world.shadow() {
        for v in shadow.violations() {
            out.push(format!("shadow: {}", v.kind));
        }
    }
    for f in &world.faults {
        if !matches!(f.kind, FaultKind::ShadowViolation { .. }) {
            out.push(format!("fault on {}: {:?}", f.ctx, f.kind));
        }
    }
    let (sent, collected, pending) = (
        world.evt.sent(),
        world.evt.collected(),
        world.evt.pending_total(),
    );
    if sent != collected + pending {
        out.push(format!(
            "evtchn conservation broken: sent={sent} != collected={collected} + pending={pending}"
        ));
    }
    if matches!(world.cfg.io_model, IoModel::Cdna { .. }) {
        let engine_pins: u64 = world
            .engines
            .iter()
            .map(|e| {
                (0..=u8::MAX)
                    .filter(|&c| e.contexts().state(cdna_core::ContextId(c)).is_ok())
                    .map(|c| e.pinned_pages(cdna_core::ContextId(c)).len() as u64)
                    .sum::<u64>()
            })
            .sum();
        let pool_pins = world.mem.outstanding_pins();
        if pool_pins != engine_pins {
            out.push(format!(
                "pin balance broken: pool={pool_pins} engines={engine_pins}"
            ));
        }
    }
    out
}

/// Runs one schedule: rebuild the world, replay `prefix`, run to the
/// end of the measurement window, audit. Returns the controller (for
/// backtracking), the violations, and the events processed. A panic
/// inside the schedule counts as a violation of its own.
fn run_schedule(
    job: &ExploreConfig,
    prefix: Vec<usize>,
) -> (Rc<RefCell<Controller>>, Vec<String>, u64) {
    let ctrl = Rc::new(RefCell::new(Controller::new(prefix, job.max_depth)));
    let queue = PermutationQueue::with_window(Rc::clone(&ctrl), job.tie_window);
    let end = job.cfg.warmup + job.cfg.measure;
    let cfg = job.cfg.clone();
    let outcome = catch_unwind(AssertUnwindSafe(move || {
        let mut sim = Simulation::with_event_queue(SystemWorld::build(cfg), Box::new(queue));
        let primed: Vec<(SimTime, Event)> = sim.world_mut().prime();
        for (t, e) in primed {
            sim.schedule(t, e);
        }
        sim.run_until(end);
        let events = sim.events_processed();
        let mut world = sim.into_world();
        world.shadow_sync();
        (check_invariants(&world), events)
    }));
    match outcome {
        Ok((violations, events)) => (ctrl, violations, events),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            (ctrl, vec![format!("panic during schedule: {msg}")], 0)
        }
    }
}

/// Explores `job` depth-first until the decision tree is exhausted or
/// `max_schedules` is reached.
pub fn explore(job: &ExploreConfig) -> Exploration {
    let mut result = Exploration {
        label: job.label.clone(),
        schedules: 0,
        events: 0,
        max_decisions: 0,
        violations: 0,
        sample: Vec::new(),
        exhausted: false,
        depth_truncated: false,
    };
    let mut prefix = Vec::new();
    loop {
        let (ctrl, violations, events) = run_schedule(job, prefix);
        result.schedules += 1;
        result.events += events;
        result.violations += violations.len() as u64;
        for v in violations {
            if result.sample.len() < SAMPLE_CAP {
                result.sample.push(format!("{}: {v}", result.label));
            }
        }
        let ctrl = ctrl.borrow();
        result.max_decisions = result.max_decisions.max(ctrl.record.len());
        result.depth_truncated |= ctrl.depth_truncated;
        if result.schedules >= job.max_schedules {
            break;
        }
        match ctrl.next_prefix() {
            Some(p) => prefix = p,
            None => {
                result.exhausted = true;
                break;
            }
        }
    }
    result
}

/// Aggregated results of exploring a whole configuration matrix.
#[derive(Debug, Clone, Default)]
pub struct MatrixReport {
    /// Per-configuration outcomes, in matrix order.
    pub runs: Vec<Exploration>,
}

impl MatrixReport {
    /// Schedules executed across the matrix.
    pub fn total_schedules(&self) -> u64 {
        self.runs.iter().map(|r| r.schedules).sum()
    }

    /// Invariant violations across the matrix.
    pub fn total_violations(&self) -> u64 {
        self.runs.iter().map(|r| r.violations).sum()
    }

    /// Events processed across the matrix.
    pub fn total_events(&self) -> u64 {
        self.runs.iter().map(|r| r.events).sum()
    }

    /// Whether every explored schedule satisfied every invariant.
    pub fn clean(&self) -> bool {
        self.total_violations() == 0
    }
}

/// The standard exploration matrix: {CDNA validated, Xen bridged} ×
/// {2, 3 guests} × {transmit, receive}, with the shadow checker on and
/// short warm-up/measure windows (`window_us` simulated microseconds)
/// so thousands of schedules stay affordable. `per_config_schedules`
/// bounds each cell's DFS and `tie_window_ns` sets the jitter tie
/// window (see [`ExploreConfig::tie_window`]).
pub fn default_matrix(
    window_us: u64,
    per_config_schedules: u64,
    max_depth: usize,
    tie_window_ns: u64,
) -> Vec<ExploreConfig> {
    let mut jobs = Vec::new();
    let models = [
        IoModel::Cdna {
            policy: DmaPolicy::Validated,
        },
        IoModel::XenBridged {
            nic: NicKind::Intel,
        },
    ];
    for io in models {
        for guests in [2u16, 3] {
            for dir in [Direction::Transmit, Direction::Receive] {
                let mut cfg = TestbedConfig::new(io, guests, dir);
                cfg.warmup = SimTime::from_us(window_us / 3);
                cfg.measure = SimTime::from_us(window_us - window_us / 3);
                cfg.shadow_check = true;
                let dir_name = match dir {
                    Direction::Transmit => "tx",
                    Direction::Receive => "rx",
                };
                jobs.push(ExploreConfig {
                    label: format!("{}/{}g/{}", io.label(), guests, dir_name),
                    cfg,
                    max_schedules: per_config_schedules,
                    max_depth,
                    tie_window: SimTime::from_ns(tie_window_ns),
                });
            }
        }
    }
    jobs
}
