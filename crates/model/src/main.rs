//! `cdna-model`: bounded exhaustive schedule exploration CLI.
//!
//! Explores the standard configuration matrix ({CDNA, Xen-bridged} ×
//! {2, 3 guests} × {tx, rx}) depth-first over same-timestamp event
//! permutations and checks the invariant suite after every schedule.
//!
//! ```text
//! cdna-model [--out report.json] [--window-us N] [--per-config N]
//!            [--max-depth N] [--jobs N]
//!            [--mutation NAME [--expect-caught]]
//! ```
//!
//! `--jobs N` (or the `CDNA_JOBS` environment variable; default
//! `min(cores, 8)`) fans each configuration's decision tree out over
//! the `cdna-sim` worker pool; on exhausted trees the report is
//! byte-identical to a sequential run.
//!
//! Exit status: 0 on a clean exploration (or, with `--expect-caught`,
//! when the seeded mutation WAS caught); 1 when an invariant is
//! violated without a mutation, when an expected mutation escapes, or
//! on bad usage.

use std::process::ExitCode;

use cdna_mem::mutation::{self, MutationKind};
use cdna_model::{default_matrix, explore_parallel, MatrixReport};
use cdna_sim::par;
use cdna_trace::json::JsonWriter;

/// Parsed command-line options.
struct Options {
    out: Option<String>,
    window_us: u64,
    per_config: u64,
    max_depth: usize,
    tie_window_ns: u64,
    jobs: Option<usize>,
    mutation: Option<MutationKind>,
    expect_caught: bool,
}

impl Options {
    fn default() -> Options {
        Options {
            out: None,
            window_us: 1000,
            per_config: 1600,
            max_depth: 64,
            tie_window_ns: 2000,
            jobs: None,
            mutation: None,
            expect_caught: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: cdna-model [--out PATH] [--window-us N] [--per-config N] \
         [--max-depth N] [--tie-window-ns N] [--jobs N] [--mutation NAME] [--expect-caught]"
    );
    eprintln!("mutations: {}", names().join(", "));
    std::process::exit(2);
}

fn names() -> Vec<&'static str> {
    mutation::ALL.iter().map(|m| m.name()).collect()
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                usage()
            })
        };
        match arg.as_str() {
            "--out" => opts.out = Some(value("--out")),
            "--window-us" => {
                opts.window_us = value("--window-us").parse().unwrap_or_else(|_| usage())
            }
            "--per-config" => {
                opts.per_config = value("--per-config").parse().unwrap_or_else(|_| usage())
            }
            "--max-depth" => {
                opts.max_depth = value("--max-depth").parse().unwrap_or_else(|_| usage())
            }
            "--tie-window-ns" => {
                opts.tie_window_ns = value("--tie-window-ns").parse().unwrap_or_else(|_| usage())
            }
            "--jobs" => opts.jobs = Some(value("--jobs").parse().unwrap_or_else(|_| usage())),
            "--mutation" => {
                let name = value("--mutation");
                match MutationKind::parse(&name) {
                    Some(m) => opts.mutation = Some(m),
                    None => {
                        eprintln!("unknown mutation {name:?}");
                        usage();
                    }
                }
            }
            "--expect-caught" => opts.expect_caught = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    if opts.expect_caught && opts.mutation.is_none() {
        eprintln!("--expect-caught requires --mutation");
        usage();
    }
    opts
}

/// Serializes the matrix report. Schema is versioned so CI consumers
/// can assert compatibility.
fn render(report: &MatrixReport, opts: &Options, jobs: usize) -> String {
    let mut w = JsonWriter::with_capacity(4096);
    w.begin_object();
    w.key("schema_version");
    w.number_u64(1);
    w.key("tool");
    w.string("cdna-model");
    w.key("mutation");
    match opts.mutation {
        Some(m) => w.string(m.name()),
        None => w.null(),
    }
    w.key("bounds");
    w.begin_object();
    w.key("window_us");
    w.number_u64(opts.window_us);
    w.key("per_config_schedules");
    w.number_u64(opts.per_config);
    w.key("max_depth");
    w.number_u64(opts.max_depth as u64);
    w.key("tie_window_ns");
    w.number_u64(opts.tie_window_ns);
    w.key("jobs");
    w.number_u64(jobs as u64);
    w.end_object();
    w.key("matrix");
    w.begin_array();
    for run in &report.runs {
        w.begin_object();
        w.key("label");
        w.string(&run.label);
        w.key("schedules");
        w.number_u64(run.schedules);
        w.key("events");
        w.number_u64(run.events);
        w.key("max_decisions");
        w.number_u64(run.max_decisions as u64);
        w.key("violations");
        w.number_u64(run.violations);
        w.key("exhausted");
        w.boolean(run.exhausted);
        w.key("depth_truncated");
        w.boolean(run.depth_truncated);
        w.key("sample");
        w.begin_array();
        for s in &run.sample {
            w.string(s);
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.key("totals");
    w.begin_object();
    w.key("schedules");
    w.number_u64(report.total_schedules());
    w.key("events");
    w.number_u64(report.total_events());
    w.key("violations");
    w.number_u64(report.total_violations());
    w.key("clean");
    w.boolean(report.clean());
    w.end_object();
    w.end_object();
    w.finish()
}

fn main() -> ExitCode {
    let opts = parse_args();
    mutation::set_active(opts.mutation);
    // Shards are split dynamically per decision tree, so the worker
    // count is not bounded by an item count; cap the default at 8.
    let jobs = par::resolve_jobs(opts.jobs, 8);
    eprintln!("exploring with {jobs} worker(s) per configuration");

    let matrix = default_matrix(
        opts.window_us,
        opts.per_config,
        opts.max_depth,
        opts.tie_window_ns,
    );
    let mut report = MatrixReport::default();
    for job in &matrix {
        let run = explore_parallel(job, jobs);
        eprintln!(
            "{:24} {:>7} schedules  {:>9} events  depth<={:<3} {} violations{}{}",
            run.label,
            run.schedules,
            run.events,
            run.max_decisions,
            run.violations,
            if run.exhausted { "  (exhausted)" } else { "" },
            if run.depth_truncated {
                "  (depth-truncated)"
            } else {
                ""
            },
        );
        let caught = run.violations > 0;
        report.runs.push(run);
        // Calibration runs only need one catching config; stop early.
        if opts.expect_caught && caught {
            break;
        }
    }
    mutation::set_active(None);

    let json = render(&report, &opts, jobs);
    if let Some(path) = &opts.out {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("report written to {path}");
    } else {
        println!("{json}");
    }

    let ok = if opts.mutation.is_some() && opts.expect_caught {
        let caught = !report.clean();
        if caught {
            eprintln!("mutation caught, as expected");
        } else {
            eprintln!("ERROR: seeded mutation escaped the explored schedules");
        }
        caught
    } else {
        if !report.clean() {
            for run in &report.runs {
                for s in &run.sample {
                    eprintln!("violation: {s}");
                }
            }
        }
        report.clean()
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
