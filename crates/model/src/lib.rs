#![warn(missing_docs)]

//! cdna-model: bounded exhaustive schedule exploration for the CDNA
//! DMA protection protocol.
//!
//! The simulation engine is deterministic: equal-time events fire in
//! schedule (FIFO) order. That determinism is what makes runs
//! reproducible — but it also means every regular run examines exactly
//! **one** interleaving of each set of same-timestamp events, and a
//! protocol bug that only surfaces under a different interleaving stays
//! invisible. This crate turns the tie-break rule into a *decision
//! point* and explores the alternatives exhaustively, up to bounds:
//!
//! * [`queue::PermutationQueue`] plugs into the engine through
//!   [`cdna_sim::Simulation::with_event_queue`] and, at every
//!   same-timestamp tie, asks a [`queue::Controller`] which event to
//!   deliver first;
//! * the controller replays a recorded *prefix* of choices and then
//!   takes the first untried branch — stateless depth-first search in
//!   the style of stateless model checkers (VeriSoft, dporDPOR): each
//!   schedule re-runs the whole simulation from
//!   [`cdna_system::SystemWorld::build`], so no state snapshotting is
//!   needed and the engine under test is the *real* engine;
//! * commutative tie pairs are pruned sleep-set style: two events
//!   scoped to different NICs are treated as independent, so only
//!   orderings that permute *dependent* events (same NIC, or global
//!   CPU/measurement events) fork new schedules;
//! * after every schedule, [`explore`] checks the full invariant suite:
//!   zero `DmaShadow` violations (pin lifecycle, sequence continuity),
//!   zero protection faults, event-channel conservation
//!   (`sent == collected + pending`), and CDNA pin balance (pool pins
//!   == protection-engine pinned pages).
//!
//! # What the bounds do and don't prove
//!
//! Exploration is exhaustive only up to its bounds (`max_schedules`,
//! `max_depth`) and up to the independence relation: a clean report
//! means *no explored interleaving* violates an invariant, not that
//! none exists. The `mutations` feature calibrates the checker itself:
//! four seeded protocol bugs ([`cdna_mem::mutation::MutationKind`])
//! must each be caught by some explored schedule, which the `cdna-model`
//! tests and CI assert.

pub mod explore;
pub mod queue;

pub use explore::{
    check_invariants, default_matrix, explore, explore_parallel, Exploration, ExploreConfig,
    MatrixReport,
};
pub use queue::{dependent, Controller, Decision, PermutationQueue};
