//! The permutation event queue and its schedule controller.
//!
//! [`PermutationQueue`] is an [`EventQueue`] that delivers events in
//! ascending time order but lets a [`Controller`] pick *which* of the
//! events tied at the minimum timestamp goes first. Replaying a recorded
//! prefix of picks reproduces a schedule exactly (the simulation is
//! otherwise deterministic); diverging at the deepest unexplored branch
//! enumerates all schedules depth-first.

use std::sync::{Arc, Mutex, MutexGuard};

use cdna_sim::{EventQueue, SimTime};
use cdna_system::Event;

/// Locks the shared controller, treating poisoning as benign: a
/// poisoned mutex means a schedule panicked, and `run_schedule` already
/// converts that panic into a violation — the controller's record is
/// still the best available account of the aborted run.
pub(crate) fn lock(m: &Mutex<Controller>) -> MutexGuard<'_, Controller> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The NIC an event is scoped to, or `None` for global events
/// (CPU dispatch and the measurement-window markers).
fn nic_scope(e: &Event) -> Option<usize> {
    match e {
        Event::PhysIrq { nic, .. }
        | Event::EmissionDue { nic, .. }
        | Event::WireTxDone { nic, .. }
        | Event::WireRxArrive { nic, .. }
        | Event::PeerPump { nic } => Some(*nic),
        Event::CpuDispatch | Event::StartMeasure | Event::StopMeasure => None,
    }
}

/// Whether delivering `a` and `b` in either order can produce different
/// outcomes.
///
/// Events scoped to *different* NICs only touch per-NIC device, wire,
/// and ring state plus commutative global counters, so they are treated
/// as independent and their tie orders are not both explored. Global
/// events (CPU dispatch, measurement markers) conflict with everything.
/// This is a partial-order reduction in the sleep-set style; see the
/// crate docs for what that does and does not prove.
pub fn dependent(a: &Event, b: &Event) -> bool {
    match (nic_scope(a), nic_scope(b)) {
        (Some(x), Some(y)) => x == y,
        _ => true,
    }
}

/// One recorded scheduling decision: which tie-set member was delivered
/// and which members were worth exploring at all.
#[derive(Debug, Clone)]
pub struct Decision {
    /// Index (into the tie set) of the event that was delivered.
    pub chosen: usize,
    /// Explorable tie-set indices, ascending; `chosen` is one of them
    /// except beyond the depth bound.
    pub candidates: Vec<usize>,
}

/// Replays a prefix of scheduling choices, then defaults to the first
/// candidate, recording every decision for backtracking.
#[derive(Debug, Default)]
pub struct Controller {
    prefix: Vec<usize>,
    cursor: usize,
    /// Decisions taken this run, in order.
    pub record: Vec<Decision>,
    max_depth: usize,
    /// Whether the depth bound suppressed at least one decision.
    pub depth_truncated: bool,
}

impl Controller {
    /// A controller that replays `prefix` and records at most
    /// `max_depth` decisions.
    pub fn new(prefix: Vec<usize>, max_depth: usize) -> Self {
        Controller {
            prefix,
            cursor: 0,
            record: Vec::new(),
            max_depth,
            depth_truncated: false,
        }
    }

    /// Picks a tie-set member from `candidates` (ascending, non-empty,
    /// first element 0): the replayed prefix choice while one remains,
    /// the first candidate otherwise.
    pub fn choose(&mut self, candidates: Vec<usize>) -> usize {
        if self.record.len() >= self.max_depth {
            self.depth_truncated = true;
            return candidates[0];
        }
        let chosen = if self.cursor < self.prefix.len() {
            self.prefix[self.cursor]
        } else {
            candidates[0]
        };
        self.cursor += 1;
        self.record.push(Decision { chosen, candidates });
        chosen
    }

    /// The prefix for the next unexplored schedule: backtracks to the
    /// deepest decision with an untried candidate after `chosen`.
    /// `None` when the bounded tree is exhausted.
    pub fn next_prefix(&self) -> Option<Vec<usize>> {
        self.next_prefix_from(0)
    }

    /// Like [`Controller::next_prefix`], but never backtracks above
    /// decision depth `min_len`: the first `min_len` choices are treated
    /// as a fixed shard prefix. This is what lets `explore_parallel`
    /// hand disjoint subtrees to independent workers — each worker's
    /// depth-first search stays inside its shard, and the shards
    /// together cover exactly the subtrees the sequential search would
    /// have visited (in the same order).
    pub fn next_prefix_from(&self, min_len: usize) -> Option<Vec<usize>> {
        for d in (min_len..self.record.len()).rev() {
            let dec = &self.record[d];
            let pos = dec.candidates.iter().position(|&c| c == dec.chosen);
            if let Some(pos) = pos {
                if pos + 1 < dec.candidates.len() {
                    let mut p: Vec<usize> = self.record[..d].iter().map(|x| x.chosen).collect();
                    p.push(dec.candidates[pos + 1]);
                    return Some(p);
                }
            }
        }
        None
    }
}

/// An [`EventQueue`] whose same-timestamp tie-breaks are controlled by a
/// shared [`Controller`].
///
/// The queue keeps events sorted ascending by `(time, seq)` so the tie
/// set at the minimum time is a contiguous run at the front; a pop
/// delivers the controller's pick from that run.
///
/// With a nonzero `tie_window` the tie set widens to every pending
/// event within the window of the earliest one, modeling bounded timing
/// jitter in the cost model's point estimates (an interrupt can fire a
/// hair before a scheduler tick that nominally precedes it). Events
/// delivered out of raw-time order are lifted to the latest time
/// already delivered, so the engine's clock-monotonicity invariant
/// holds for every schedule.
#[derive(Debug)]
pub struct PermutationQueue {
    pending: Vec<(SimTime, u64, Event)>,
    ctrl: Arc<Mutex<Controller>>,
    tie_window: SimTime,
    last_delivered: SimTime,
}

impl PermutationQueue {
    /// An empty queue driven by `ctrl`, forking only exact ties.
    pub fn new(ctrl: Arc<Mutex<Controller>>) -> Self {
        PermutationQueue::with_window(ctrl, SimTime::ZERO)
    }

    /// An empty queue driven by `ctrl` that treats events within
    /// `tie_window` of the earliest pending event as tied.
    pub fn with_window(ctrl: Arc<Mutex<Controller>>, tie_window: SimTime) -> Self {
        PermutationQueue {
            pending: Vec::new(),
            ctrl,
            tie_window,
            last_delivered: SimTime::ZERO,
        }
    }

    /// Index of the event to deliver next, consulting the controller
    /// when the minimum-time tie set has more than one explorable
    /// member.
    fn pick(&self) -> Option<usize> {
        let &(t0, _, _) = self.pending.first()?;
        let horizon = t0.checked_add(self.tie_window).unwrap_or(t0);
        let tie = self.pending.iter().take_while(|q| q.0 <= horizon).count();
        if tie <= 1 {
            return Some(0);
        }
        // Sleep-set pruning: candidate j is explorable iff it is the
        // default (j == 0) or it conflicts with some event before it in
        // the tie set — swapping independent events cannot change the
        // outcome, so those orders are never forked.
        let mut candidates = vec![0];
        for j in 1..tie {
            if (0..j).any(|i| dependent(&self.pending[i].2, &self.pending[j].2)) {
                candidates.push(j);
            }
        }
        if candidates.len() == 1 {
            return Some(0);
        }
        Some(lock(&self.ctrl).choose(candidates))
    }
}

impl EventQueue<Event> for PermutationQueue {
    fn push(&mut self, at: SimTime, seq: u64, event: Event) {
        let pos = self.pending.partition_point(|q| (q.0, q.1) <= (at, seq));
        self.pending.insert(pos, (at, seq, event));
    }

    fn pop(&mut self) -> Option<(SimTime, u64, Event)> {
        let idx = self.pick()?;
        let (at, seq, event) = self.pending.remove(idx);
        // Jitter lift: an event overtaken inside the tie window is
        // delivered at the overtaker's time so the clock never regresses.
        let at = at.max(self.last_delivered);
        self.last_delivered = at;
        Some((at, seq, event))
    }

    fn pop_due(&mut self, deadline: SimTime) -> Option<(SimTime, u64, Event)> {
        if self.pending.first()?.0 > deadline {
            return None;
        }
        self.pop()
    }

    fn len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl(prefix: Vec<usize>) -> Arc<Mutex<Controller>> {
        Arc::new(Mutex::new(Controller::new(prefix, 64)))
    }

    fn nic_event(nic: usize) -> Event {
        Event::PeerPump { nic }
    }

    #[test]
    fn singleton_pops_need_no_decision() {
        let c = ctrl(vec![]);
        let mut q = PermutationQueue::new(Arc::clone(&c));
        q.push(SimTime::from_ns(10), 0, nic_event(0));
        q.push(SimTime::from_ns(20), 1, nic_event(0));
        assert!(q.pop().is_some());
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
        assert!(lock(&c).record.is_empty());
    }

    #[test]
    fn dependent_tie_forks_and_prefix_replays_the_branch() {
        // Two same-NIC events tied at t=5: dependent, so both orders
        // are schedules.
        let c = ctrl(vec![]);
        let mut q = PermutationQueue::new(Arc::clone(&c));
        q.push(SimTime::from_ns(5), 0, nic_event(0));
        q.push(SimTime::from_ns(5), 1, nic_event(0));
        let first = q.pop().map(|(_, seq, _)| seq);
        assert_eq!(first, Some(0), "default order is FIFO");
        let next = lock(&c).next_prefix();
        assert_eq!(next, Some(vec![1]), "the swap is the next schedule");

        let c2 = ctrl(vec![1]);
        let mut q2 = PermutationQueue::new(Arc::clone(&c2));
        q2.push(SimTime::from_ns(5), 0, nic_event(0));
        q2.push(SimTime::from_ns(5), 1, nic_event(0));
        assert_eq!(q2.pop().map(|(_, s, _)| s), Some(1), "replayed swap");
        assert_eq!(q2.pop().map(|(_, s, _)| s), Some(0));
        assert_eq!(lock(&c2).next_prefix(), None, "tree exhausted");
    }

    #[test]
    fn independent_ties_are_pruned() {
        // Different NICs: commutative, no fork.
        let c = ctrl(vec![]);
        let mut q = PermutationQueue::new(Arc::clone(&c));
        q.push(SimTime::from_ns(5), 0, nic_event(0));
        q.push(SimTime::from_ns(5), 1, nic_event(1));
        assert_eq!(q.pop().map(|(_, s, _)| s), Some(0));
        assert!(lock(&c).record.is_empty(), "no decision recorded");
        assert_eq!(lock(&c).next_prefix(), None);
    }

    #[test]
    fn global_events_conflict_with_everything() {
        assert!(dependent(&Event::CpuDispatch, &nic_event(3)));
        assert!(dependent(&nic_event(3), &Event::StopMeasure));
        assert!(dependent(&nic_event(2), &nic_event(2)));
        assert!(!dependent(&nic_event(2), &nic_event(3)));
    }

    #[test]
    fn depth_bound_truncates_recording() {
        let c = Arc::new(Mutex::new(Controller::new(vec![], 1)));
        let mut q = PermutationQueue::new(Arc::clone(&c));
        for seq in 0..4 {
            q.push(SimTime::from_ns(5), seq, nic_event(0));
        }
        while q.pop().is_some() {}
        let ctrl = lock(&c);
        assert_eq!(ctrl.record.len(), 1, "only the first decision recorded");
        assert!(ctrl.depth_truncated);
    }

    #[test]
    fn next_prefix_from_respects_the_shard_floor() {
        // Two dependent ties in sequence: decisions at depths 0 and 1.
        let c = ctrl(vec![]);
        let mut q = PermutationQueue::new(Arc::clone(&c));
        q.push(SimTime::from_ns(5), 0, nic_event(0));
        q.push(SimTime::from_ns(5), 1, nic_event(0));
        q.push(SimTime::from_ns(9), 2, nic_event(0));
        q.push(SimTime::from_ns(9), 3, nic_event(0));
        while q.pop().is_some() {}
        let ctrl = lock(&c);
        assert_eq!(ctrl.record.len(), 2);
        // Unrestricted backtracking finds the deeper branch first…
        assert_eq!(ctrl.next_prefix(), Some(vec![0, 1]));
        assert_eq!(ctrl.next_prefix_from(1), Some(vec![0, 1]));
        // …but a floor of 2 pins both decisions: subtree exhausted.
        assert_eq!(ctrl.next_prefix_from(2), None);
    }

    #[test]
    fn three_way_dfs_enumerates_all_dependent_orders() {
        // Three same-NIC events tied at one time: 3! = 6 schedules.
        let mut seen = Vec::new();
        let mut prefix = Vec::new();
        loop {
            let c = Arc::new(Mutex::new(Controller::new(prefix.clone(), 64)));
            let mut q = PermutationQueue::new(Arc::clone(&c));
            for seq in 0..3 {
                q.push(SimTime::from_ns(7), seq, nic_event(0));
            }
            let mut order = Vec::new();
            while let Some((_, seq, _)) = q.pop() {
                order.push(seq);
            }
            seen.push(order);
            let next = lock(&c).next_prefix();
            match next {
                Some(p) => prefix = p,
                None => break,
            }
        }
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 6, "all permutations explored exactly once");
    }
}
