//! Differential proof that frontier-partitioned parallel exploration
//! visits exactly the schedules the sequential DFS visits.
//!
//! On an exhausted decision tree every field of the [`Exploration`] —
//! schedule count, event total, deepest decision, violation count, the
//! violation sample *in order* — must be identical between `jobs=1`
//! and `jobs=4`. The configs below exhaust within their budgets (the
//! sequential runs assert it), so the comparisons are exact, including
//! the seeded-mutation case where the violation stream is long.

use cdna_mem::mutation::{self, MutationKind};
use cdna_model::{default_matrix, explore, explore_parallel, ExploreConfig};

/// The standard matrix at a 30 µs window: small enough that the rx
/// cells exhaust in a couple hundred schedules, big enough that the
/// trees branch at many depths (so sharding actually happens).
fn cell(index: usize) -> ExploreConfig {
    let matrix = default_matrix(30, 20_000, 64, 2_000);
    matrix
        .into_iter()
        .nth(index)
        .unwrap_or_else(|| unreachable!("matrix has 8 cells"))
}

/// CDNA, 2 guests, receive — 192 schedules, branching to depth 8.
const CDNA_RX: usize = 1;
/// Xen bridged, 2 guests, receive — 128 schedules, depth 7.
const XEN_RX: usize = 5;

#[test]
fn parallel_vs_sequential_model_identical() {
    for index in [CDNA_RX, XEN_RX] {
        let job = cell(index);
        let seq = explore(&job);
        assert!(
            seq.exhausted,
            "{}: test premise broken — tree must exhaust",
            seq.label
        );
        assert!(
            seq.schedules > 100,
            "{}: tree unexpectedly small",
            seq.label
        );
        let par = explore_parallel(&job, 4);
        assert_eq!(seq, par, "{}: parallel diverged from sequential", job.label);
    }
}

#[test]
fn parallel_matches_sequential_under_mutation() {
    // Seeded protocol bug: the violation stream (count and sampled
    // descriptions, in schedule order) must shard identically. Also
    // proves the mutation thread-local reaches the worker threads —
    // if it did not, the parallel run would explore a *clean* build
    // and find zero violations.
    let job = cell(CDNA_RX);
    mutation::set_active(Some(MutationKind::SeqSkip));
    let seq = explore(&job);
    let par = explore_parallel(&job, 4);
    mutation::set_active(None);
    assert!(seq.exhausted, "mutated tree must still exhaust");
    assert!(seq.violations > 1_000, "mutation must be caught broadly");
    assert_eq!(seq.sample.len(), 8, "sample cap reached");
    assert_eq!(seq, par, "mutated exploration diverged under sharding");
}

#[test]
fn truncated_trees_agree_on_schedule_counts() {
    // With a budget smaller than the tree, sequential and parallel may
    // run *different* schedules, but the count contract still holds:
    // exactly `max_schedules` run, and neither claims exhaustion.
    let mut job = cell(CDNA_RX);
    job.max_schedules = 50;
    let seq = explore(&job);
    let par = explore_parallel(&job, 4);
    assert_eq!(seq.schedules, 50);
    assert_eq!(par.schedules, 50);
    assert!(!seq.exhausted);
    assert!(!par.exhausted);
    assert_eq!(seq.violations, 0);
    assert_eq!(par.violations, 0);
}
