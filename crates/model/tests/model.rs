//! Integration tests for the schedule explorer: clean exploration on
//! the unmutated protocol, and calibration — every seeded protocol
//! mutation must be caught by some explored schedule.

use cdna_mem::mutation::{self, MutationKind};
use cdna_model::{default_matrix, explore, ExploreConfig};

/// A small matrix cell by label substring.
fn job(label_part: &str) -> ExploreConfig {
    let jobs = default_matrix(600, 25, 64, 2000);
    jobs.into_iter()
        .find(|j| j.label.contains(label_part))
        .expect("matrix contains the requested cell")
}

#[test]
fn clean_cdna_tx_exploration_forks_and_holds_invariants() {
    mutation::set_active(None);
    let run = explore(&job("CDNA/RiceNIC/2g/tx"));
    assert!(run.schedules > 1, "tie window must fork tx schedules");
    assert_eq!(
        run.violations, 0,
        "unmutated protocol must be clean: {:?}",
        run.sample
    );
}

#[test]
fn clean_cdna_rx_exploration_forks_and_holds_invariants() {
    mutation::set_active(None);
    let run = explore(&job("CDNA/RiceNIC/2g/rx"));
    assert!(run.schedules > 1);
    assert_eq!(run.violations, 0, "{:?}", run.sample);
}

#[test]
fn clean_xen_exploration_forks_and_holds_invariants() {
    mutation::set_active(None);
    let run = explore(&job("Xen/Intel/2g/rx"));
    assert!(run.schedules > 1);
    assert_eq!(run.violations, 0, "{:?}", run.sample);
}

/// Runs one CDNA tx exploration under `m` and returns the violation
/// count. The mutation switch is thread-local, so parallel tests do
/// not interfere; reset before returning regardless.
fn violations_under(m: MutationKind) -> u64 {
    mutation::set_active(Some(m));
    let run = explore(&job("CDNA/RiceNIC/2g/tx"));
    mutation::set_active(None);
    run.violations
}

#[test]
fn mutation_seq_skip_is_caught() {
    assert!(violations_under(MutationKind::SeqSkip) > 0);
}

#[test]
fn mutation_unpin_wrong_page_is_caught() {
    assert!(violations_under(MutationKind::UnpinWrongPage) > 0);
}

#[test]
fn mutation_skip_ownership_check_is_caught() {
    assert!(violations_under(MutationKind::SkipOwnershipCheck) > 0);
}

#[test]
fn mutation_irq_double_post_is_caught() {
    assert!(violations_under(MutationKind::IrqDoublePost) > 0);
}
