#![warn(missing_docs)]

//! Physical memory model for the CDNA reproduction.
//!
//! CDNA's DMA memory protection (paper §3.3) is built on three host-memory
//! facts the hypervisor must be able to establish:
//!
//! 1. **ownership** — which domain owns each physical page, so descriptor
//!    buffer addresses can be validated against the requesting guest;
//! 2. **pinning** — per-page reference counts that delay reallocation of
//!    a page while a DMA that targets it is outstanding;
//! 3. **transfer** — pages change owner at runtime, both for Xen's
//!    page-flipping I/O path and when a guest frees memory back to the
//!    hypervisor.
//!
//! This crate implements those mechanisms functionally: every DMA
//! descriptor in the simulation names real pages from a [`PhysMem`] pool,
//! and the protection tests exercise this logic rather than flags.

mod addr;
mod buffer;
#[cfg(feature = "mutations")]
pub mod mutation;
mod pool;

pub use addr::{DomainId, PageId, PhysAddr, PAGE_SIZE};
pub use buffer::BufferSlice;
pub use pool::{MemError, PageInfo, PhysMem};
