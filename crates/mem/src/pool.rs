//! The machine's physical page pool.

use std::collections::VecDeque;
use std::fmt;

use crate::{BufferSlice, DomainId, PageId};

/// Errors from page-pool operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// No free pages remain.
    OutOfMemory,
    /// The page id does not exist in this pool.
    NoSuchPage(PageId),
    /// The page is not owned by the domain the operation named.
    NotOwner {
        /// The page in question.
        page: PageId,
        /// Who the caller claimed owns it.
        claimed: DomainId,
        /// Who actually owns it (`None` if free).
        actual: Option<DomainId>,
    },
    /// The page still has outstanding DMA pins.
    Pinned(PageId),
    /// Pin count underflow — an unpin without a matching pin.
    NotPinned(PageId),
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfMemory => write!(f, "out of physical memory"),
            MemError::NoSuchPage(p) => write!(f, "no such page {p:?}"),
            MemError::NotOwner {
                page,
                claimed,
                actual,
            } => write!(
                f,
                "page {page:?} not owned by {claimed}: actual owner {actual:?}"
            ),
            MemError::Pinned(p) => write!(f, "page {p:?} has outstanding DMA pins"),
            MemError::NotPinned(p) => write!(f, "page {p:?} is not pinned"),
        }
    }
}

impl std::error::Error for MemError {}

/// Per-page state visible to callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageInfo {
    /// Current owner, or `None` if the page is free.
    pub owner: Option<DomainId>,
    /// Outstanding DMA pin count (paper §3.3's reference counts).
    pub pins: u32,
}

/// The pool of physical pages with ownership, pinning, and transfer.
///
/// This is the mechanism underneath both Xen's page-flipping I/O path and
/// CDNA's DMA protection: the hypervisor validates descriptor buffers
/// against it and pins pages for the lifetime of a DMA, which blocks
/// reallocation (`free` of a pinned page is deferred until the last unpin).
///
/// # Example
///
/// ```
/// use cdna_mem::{DomainId, PhysMem};
///
/// let mut mem = PhysMem::new(1024);
/// let page = mem.alloc(DomainId::guest(0))?;
/// mem.pin(page)?; // DMA in flight
/// assert!(mem.free(DomainId::guest(0), page).is_err()); // deferred
/// mem.unpin(page)?; // last pin drops: the deferred free completes
/// assert_eq!(mem.free_pages(), 1024);
/// # Ok::<(), cdna_mem::MemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PhysMem {
    pages: Vec<PageInfo>,
    free_list: VecDeque<PageId>,
    /// Pages whose owner freed them while pinned; they complete the free
    /// when the last pin drops (CDNA's deferred reallocation).
    pending_free: Vec<PageId>,
    total_pins: u64,
    total_transfers: u64,
}

impl PhysMem {
    /// Creates a pool of `pages` free pages.
    pub fn new(pages: u32) -> Self {
        PhysMem {
            pages: vec![
                PageInfo {
                    owner: None,
                    pins: 0
                };
                pages as usize
            ],
            free_list: (0..pages).map(PageId).collect(),
            pending_free: Vec::new(),
            total_pins: 0,
            total_transfers: 0,
        }
    }

    /// Total pages in the pool.
    pub fn total_pages(&self) -> u32 {
        self.pages.len() as u32
    }

    /// Pages currently free (excludes pinned pending-free pages).
    pub fn free_pages(&self) -> u32 {
        self.free_list.len() as u32
    }

    /// Looks up a page's state.
    pub fn info(&self, page: PageId) -> Result<PageInfo, MemError> {
        self.pages
            .get(page.0 as usize)
            .copied()
            .ok_or(MemError::NoSuchPage(page))
    }

    /// Allocates one free page to `owner`.
    pub fn alloc(&mut self, owner: DomainId) -> Result<PageId, MemError> {
        let page = self.free_list.pop_front().ok_or(MemError::OutOfMemory)?;
        self.pages[page.0 as usize] = PageInfo {
            owner: Some(owner),
            pins: 0,
        };
        Ok(page)
    }

    /// Allocates `n` pages to `owner`, all-or-nothing.
    pub fn alloc_many(&mut self, owner: DomainId, n: u32) -> Result<Vec<PageId>, MemError> {
        if (self.free_list.len() as u32) < n {
            return Err(MemError::OutOfMemory);
        }
        (0..n).map(|_| self.alloc(owner)).collect()
    }

    /// Allocates `n` physically contiguous pages to `owner` (for
    /// multi-page DMA buffers such as TSO super-segments), returning the
    /// first page of the run.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfMemory`] when no free run of `n` consecutive
    /// pages exists.
    pub fn alloc_contiguous(&mut self, owner: DomainId, n: u32) -> Result<PageId, MemError> {
        assert!(n > 0, "empty contiguous allocation");
        let total = self.pages.len() as u32;
        let mut run_start = 0u32;
        let mut run_len = 0u32;
        for id in 0..total {
            let free = self.pages[id as usize].owner.is_none()
                && self.pages[id as usize].pins == 0
                && self.free_list.contains(&PageId(id));
            if free {
                if run_len == 0 {
                    run_start = id;
                }
                run_len += 1;
                if run_len == n {
                    let run = PageId(run_start)..=PageId(id);
                    self.free_list.retain(|q| !run.contains(q));
                    for p in run_start..=id {
                        self.pages[p as usize] = PageInfo {
                            owner: Some(owner),
                            pins: 0,
                        };
                    }
                    return Ok(PageId(run_start));
                }
            } else {
                run_len = 0;
            }
        }
        Err(MemError::OutOfMemory)
    }

    /// Frees a page owned by `owner`.
    ///
    /// # Errors
    ///
    /// * [`MemError::NotOwner`] if `owner` does not own the page.
    /// * [`MemError::Pinned`] if DMA pins are outstanding; the free is
    ///   **deferred** — the page keeps its owner until the last unpin, at
    ///   which point it returns to the free list. This is exactly the
    ///   paper's defence against reallocation during DMA.
    pub fn free(&mut self, owner: DomainId, page: PageId) -> Result<(), MemError> {
        self.check_owner(page, owner)?;
        let info = self.pages[page.0 as usize];
        if info.pins > 0 {
            if !self.pending_free.contains(&page) {
                self.pending_free.push(page);
            }
            return Err(MemError::Pinned(page));
        }
        self.release(page);
        Ok(())
    }

    /// Transfers ownership of `page` from `from` to `to` (Xen grant
    /// transfer / page flip).
    ///
    /// # Errors
    ///
    /// Fails if `from` is not the owner or the page is pinned (a page
    /// with in-flight DMA cannot change hands).
    pub fn transfer(&mut self, page: PageId, from: DomainId, to: DomainId) -> Result<(), MemError> {
        self.check_owner(page, from)?;
        if self.pages[page.0 as usize].pins > 0 {
            return Err(MemError::Pinned(page));
        }
        self.pages[page.0 as usize].owner = Some(to);
        self.total_transfers += 1;
        Ok(())
    }

    /// Verifies that `owner` owns every page under `slice`.
    pub fn validate_slice(&self, owner: DomainId, slice: &BufferSlice) -> Result<(), MemError> {
        let (start, len) = slice.page_run();
        self.validate_run(owner, start, len)
    }

    /// Verifies that `owner` owns every page in the run
    /// `[start, start + len)` — one bounds check and one contiguous pass
    /// for the whole run, instead of a lookup per page.
    ///
    /// # Errors
    ///
    /// [`MemError::NoSuchPage`] (naming the first page beyond the pool)
    /// if the run exceeds the pool; [`MemError::NotOwner`] naming the
    /// first page not owned by `owner`.
    pub fn validate_run(&self, owner: DomainId, start: PageId, len: u32) -> Result<(), MemError> {
        let slab = self
            .pages
            .get(start.0 as usize..start.0 as usize + len as usize)
            .ok_or_else(|| MemError::NoSuchPage(PageId((self.pages.len() as u32).max(start.0))))?;
        for (i, info) in slab.iter().enumerate() {
            if info.owner != Some(owner) {
                return Err(MemError::NotOwner {
                    page: PageId(start.0 + i as u32),
                    claimed: owner,
                    actual: info.owner,
                });
            }
        }
        Ok(())
    }

    /// Increments the DMA pin count of `page`.
    pub fn pin(&mut self, page: PageId) -> Result<(), MemError> {
        let info = self
            .pages
            .get_mut(page.0 as usize)
            .ok_or(MemError::NoSuchPage(page))?;
        info.pins += 1;
        self.total_pins += 1;
        Ok(())
    }

    /// Pins every page under `slice` after validating ownership;
    /// all-or-nothing.
    pub fn pin_slice(&mut self, owner: DomainId, slice: &BufferSlice) -> Result<(), MemError> {
        self.validate_slice(owner, slice)?;
        let (start, len) = slice.page_run();
        self.pin_run(start, len)
    }

    /// Pins every page in the run `[start, start + len)` without an
    /// ownership check (callers validate first — this is the second
    /// phase of a validate-then-pin batch); one bounds check and one
    /// pass for the whole run.
    pub fn pin_run(&mut self, start: PageId, len: u32) -> Result<(), MemError> {
        let total = self.pages.len() as u32;
        let slab = self
            .pages
            .get_mut(start.0 as usize..start.0 as usize + len as usize)
            .ok_or(MemError::NoSuchPage(PageId(total.max(start.0))))?;
        for info in slab {
            info.pins += 1;
        }
        self.total_pins += len as u64;
        Ok(())
    }

    /// Decrements the DMA pin count of `page`; completes a deferred free
    /// if one is pending and this was the last pin.
    pub fn unpin(&mut self, page: PageId) -> Result<(), MemError> {
        let info = self
            .pages
            .get_mut(page.0 as usize)
            .ok_or(MemError::NoSuchPage(page))?;
        if info.pins == 0 {
            return Err(MemError::NotPinned(page));
        }
        info.pins -= 1;
        if info.pins == 0 {
            if let Some(idx) = self.pending_free.iter().position(|&p| p == page) {
                self.pending_free.swap_remove(idx);
                self.release(page);
            }
        }
        Ok(())
    }

    /// Unpins every page under `slice`.
    pub fn unpin_slice(&mut self, slice: &BufferSlice) -> Result<(), MemError> {
        let (start, len) = slice.page_run();
        self.unpin_run(start, len)
    }

    /// Unpins every page in the run `[start, start + len)`, completing
    /// deferred frees as pin counts reach zero. Like a sequence of
    /// [`PhysMem::unpin`] calls, an underflow mid-run stops there:
    /// earlier pages stay unpinned and the error names the underflowing
    /// page.
    pub fn unpin_run(&mut self, start: PageId, len: u32) -> Result<(), MemError> {
        #[cfg(feature = "mutations")]
        let (start, len) =
            if crate::mutation::is_active(crate::mutation::MutationKind::UnpinWrongPage) && len > 0
            {
                // Seeded bug: the first page of every run keeps its pin.
                (PageId(start.0 + 1), len - 1)
            } else {
                (start, len)
            };
        let total = self.pages.len() as u32;
        if start.0 as u64 + len as u64 > total as u64 {
            return Err(MemError::NoSuchPage(PageId(total.max(start.0))));
        }
        for i in 0..len {
            let page = PageId(start.0 + i);
            let info = &mut self.pages[page.0 as usize];
            if info.pins == 0 {
                return Err(MemError::NotPinned(page));
            }
            info.pins -= 1;
            if info.pins == 0 {
                if let Some(idx) = self.pending_free.iter().position(|&p| p == page) {
                    self.pending_free.swap_remove(idx);
                    self.release(page);
                }
            }
        }
        Ok(())
    }

    /// Number of pages owned by `owner`.
    pub fn owned_by(&self, owner: DomainId) -> u32 {
        self.pages.iter().filter(|p| p.owner == Some(owner)).count() as u32
    }

    /// Sum of all outstanding pin counts.
    pub fn outstanding_pins(&self) -> u64 {
        self.pages.iter().map(|p| p.pins as u64).sum()
    }

    /// Lifetime count of pin operations (for reports).
    pub fn total_pins(&self) -> u64 {
        self.total_pins
    }

    /// Lifetime count of ownership transfers (page flips, for reports).
    pub fn total_transfers(&self) -> u64 {
        self.total_transfers
    }

    fn check_owner(&self, page: PageId, owner: DomainId) -> Result<(), MemError> {
        let info = self.info(page)?;
        if info.owner != Some(owner) {
            return Err(MemError::NotOwner {
                page,
                claimed: owner,
                actual: info.owner,
            });
        }
        Ok(())
    }

    fn release(&mut self, page: PageId) {
        self.pages[page.0 as usize] = PageInfo {
            owner: None,
            pins: 0,
        };
        self.free_list.push_back(page);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guest(i: u16) -> DomainId {
        DomainId::guest(i)
    }

    #[test]
    fn alloc_assigns_ownership() {
        let mut mem = PhysMem::new(4);
        let p = mem.alloc(guest(0)).unwrap();
        assert_eq!(mem.info(p).unwrap().owner, Some(guest(0)));
        assert_eq!(mem.free_pages(), 3);
        assert_eq!(mem.owned_by(guest(0)), 1);
    }

    #[test]
    fn exhaustion_reported() {
        let mut mem = PhysMem::new(1);
        mem.alloc(guest(0)).unwrap();
        assert_eq!(mem.alloc(guest(1)), Err(MemError::OutOfMemory));
    }

    #[test]
    fn alloc_many_is_all_or_nothing() {
        let mut mem = PhysMem::new(3);
        assert_eq!(mem.alloc_many(guest(0), 4), Err(MemError::OutOfMemory));
        assert_eq!(mem.free_pages(), 3, "failed alloc must not leak pages");
        let pages = mem.alloc_many(guest(0), 3).unwrap();
        assert_eq!(pages.len(), 3);
    }

    #[test]
    fn free_requires_ownership() {
        let mut mem = PhysMem::new(2);
        let p = mem.alloc(guest(0)).unwrap();
        let err = mem.free(guest(1), p).unwrap_err();
        assert!(matches!(err, MemError::NotOwner { .. }));
        mem.free(guest(0), p).unwrap();
        assert_eq!(mem.free_pages(), 2);
    }

    #[test]
    fn double_free_rejected() {
        let mut mem = PhysMem::new(2);
        let p = mem.alloc(guest(0)).unwrap();
        mem.free(guest(0), p).unwrap();
        assert!(matches!(
            mem.free(guest(0), p),
            Err(MemError::NotOwner { .. })
        ));
    }

    #[test]
    fn pinned_page_defers_free_until_last_unpin() {
        let mut mem = PhysMem::new(2);
        let p = mem.alloc(guest(0)).unwrap();
        mem.pin(p).unwrap();
        mem.pin(p).unwrap();
        assert_eq!(mem.free(guest(0), p), Err(MemError::Pinned(p)));
        // Page keeps its owner while the DMA is outstanding.
        assert_eq!(mem.info(p).unwrap().owner, Some(guest(0)));
        mem.unpin(p).unwrap();
        assert_eq!(mem.free_pages(), 1, "still pinned once");
        mem.unpin(p).unwrap();
        assert_eq!(mem.free_pages(), 2, "deferred free completed");
        assert_eq!(mem.info(p).unwrap().owner, None);
    }

    #[test]
    fn pinned_page_cannot_change_owner() {
        let mut mem = PhysMem::new(2);
        let p = mem.alloc(guest(0)).unwrap();
        mem.pin(p).unwrap();
        assert_eq!(
            mem.transfer(p, guest(0), guest(1)),
            Err(MemError::Pinned(p))
        );
        mem.unpin(p).unwrap();
        mem.transfer(p, guest(0), guest(1)).unwrap();
        assert_eq!(mem.info(p).unwrap().owner, Some(guest(1)));
        assert_eq!(mem.total_transfers(), 1);
    }

    #[test]
    fn unpin_underflow_detected() {
        let mut mem = PhysMem::new(1);
        let p = mem.alloc(guest(0)).unwrap();
        assert_eq!(mem.unpin(p), Err(MemError::NotPinned(p)));
    }

    #[test]
    fn validate_slice_checks_every_page() {
        let mut mem = PhysMem::new(4);
        let a = mem.alloc(guest(0)).unwrap();
        let _b = mem.alloc(guest(1)).unwrap();
        // Slice spanning page a and the next page (owned by guest 1).
        let slice = BufferSlice::new(a.base_addr(), (crate::PAGE_SIZE + 10) as u32);
        let err = mem.validate_slice(guest(0), &slice).unwrap_err();
        assert!(matches!(err, MemError::NotOwner { .. }));
    }

    #[test]
    fn pin_slice_rolls_nothing_back_on_validation() {
        // pin_slice validates first, so a failed call pins nothing.
        let mut mem = PhysMem::new(4);
        let a = mem.alloc(guest(0)).unwrap();
        let slice = BufferSlice::new(a.base_addr(), (crate::PAGE_SIZE * 2) as u32);
        assert!(mem.pin_slice(guest(0), &slice).is_err());
        assert_eq!(mem.outstanding_pins(), 0);
    }

    #[test]
    fn pin_unpin_slice_round_trip() {
        let mut mem = PhysMem::new(4);
        let pages = mem.alloc_many(guest(0), 2).unwrap();
        let slice = BufferSlice::new(pages[0].base_addr(), (crate::PAGE_SIZE * 2) as u32);
        mem.pin_slice(guest(0), &slice).unwrap();
        assert_eq!(mem.outstanding_pins(), 2);
        mem.unpin_slice(&slice).unwrap();
        assert_eq!(mem.outstanding_pins(), 0);
    }

    #[test]
    fn no_such_page() {
        let mem = PhysMem::new(1);
        assert_eq!(mem.info(PageId(9)), Err(MemError::NoSuchPage(PageId(9))));
    }

    #[test]
    fn no_such_page_on_pin_and_unpin() {
        let mut mem = PhysMem::new(1);
        let ghost = PageId(5);
        assert_eq!(mem.pin(ghost), Err(MemError::NoSuchPage(ghost)));
        assert_eq!(mem.unpin(ghost), Err(MemError::NoSuchPage(ghost)));
        assert_eq!(mem.total_pins(), 0, "failed pin must not count");
    }

    #[test]
    fn not_owner_reports_claimed_and_actual() {
        let mut mem = PhysMem::new(2);
        let p = mem.alloc(guest(3)).unwrap();
        // Wrong claimant against a live owner.
        assert_eq!(
            mem.free(guest(7), p),
            Err(MemError::NotOwner {
                page: p,
                claimed: guest(7),
                actual: Some(guest(3)),
            })
        );
        // Against a free page the actual owner is reported as None.
        mem.free(guest(3), p).unwrap();
        assert_eq!(
            mem.transfer(p, guest(3), guest(4)),
            Err(MemError::NotOwner {
                page: p,
                claimed: guest(3),
                actual: None,
            })
        );
    }

    #[test]
    fn every_mem_error_variant_displays_distinctly() {
        let p = PageId(1);
        let errors = [
            MemError::OutOfMemory,
            MemError::NoSuchPage(p),
            MemError::NotOwner {
                page: p,
                claimed: guest(0),
                actual: Some(guest(1)),
            },
            MemError::Pinned(p),
            MemError::NotPinned(p),
        ];
        let rendered: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
        for (i, a) in rendered.iter().enumerate() {
            assert!(!a.is_empty());
            for b in rendered.iter().skip(i + 1) {
                assert_ne!(a, b, "error messages must be distinguishable");
            }
        }
    }

    #[test]
    fn unpin_slice_stops_at_first_underflow() {
        let mut mem = PhysMem::new(4);
        let pages = mem.alloc_many(guest(0), 2).unwrap();
        let slice = BufferSlice::new(pages[0].base_addr(), (crate::PAGE_SIZE * 2) as u32);
        // Only the first page is pinned; the slice unpin trips on the
        // second and reports exactly which page underflowed.
        mem.pin(pages[0]).unwrap();
        assert_eq!(mem.unpin_slice(&slice), Err(MemError::NotPinned(pages[1])));
        assert_eq!(mem.outstanding_pins(), 0, "first page was unpinned");
    }

    #[test]
    fn contiguous_allocation_finds_runs() {
        let mut mem = PhysMem::new(8);
        // Fragment the pool: take pages 0, 2, 4.
        let holes: Vec<PageId> = (0..5).map(|_| mem.alloc(guest(9)).unwrap()).collect();
        mem.free(guest(9), holes[1]).unwrap();
        mem.free(guest(9), holes[3]).unwrap();
        // Only pages 1, 3, 5, 6, 7 are free; the only 3-run is 5..=7.
        let run = mem.alloc_contiguous(guest(0), 3).unwrap();
        assert_eq!(run, PageId(5));
        for p in 5..8 {
            assert_eq!(mem.info(PageId(p)).unwrap().owner, Some(guest(0)));
        }
        assert!(mem.alloc_contiguous(guest(0), 2).is_err());
        assert!(mem.alloc_contiguous(guest(0), 1).is_ok());
    }

    #[test]
    fn run_ops_match_per_page_ops() {
        let mut mem = PhysMem::new(8);
        let pages = mem.alloc_many(guest(0), 4).unwrap();
        mem.validate_run(guest(0), pages[0], 4).unwrap();
        assert!(matches!(
            mem.validate_run(guest(1), pages[0], 4),
            Err(MemError::NotOwner { page, .. }) if page == pages[0]
        ));
        mem.pin_run(pages[0], 4).unwrap();
        assert_eq!(mem.outstanding_pins(), 4);
        assert_eq!(mem.total_pins(), 4);
        mem.unpin_run(pages[0], 4).unwrap();
        assert_eq!(mem.outstanding_pins(), 0);
    }

    #[test]
    fn run_ops_bounds_error_names_first_missing_page() {
        let mut mem = PhysMem::new(4);
        assert_eq!(
            mem.validate_run(guest(0), PageId(2), 4),
            Err(MemError::NoSuchPage(PageId(4)))
        );
        assert_eq!(
            mem.pin_run(PageId(9), 1),
            Err(MemError::NoSuchPage(PageId(9)))
        );
        assert_eq!(
            mem.unpin_run(PageId(2), 4),
            Err(MemError::NoSuchPage(PageId(4)))
        );
    }

    #[test]
    fn unpin_run_completes_deferred_frees() {
        let mut mem = PhysMem::new(4);
        let pages = mem.alloc_many(guest(0), 2).unwrap();
        mem.pin_run(pages[0], 2).unwrap();
        assert_eq!(
            mem.free(guest(0), pages[1]),
            Err(MemError::Pinned(pages[1]))
        );
        mem.unpin_run(pages[0], 2).unwrap();
        assert_eq!(mem.info(pages[1]).unwrap().owner, None, "deferred free ran");
        assert_eq!(mem.info(pages[0]).unwrap().owner, Some(guest(0)));
    }

    #[test]
    fn unpin_run_stops_at_first_underflow() {
        let mut mem = PhysMem::new(4);
        let pages = mem.alloc_many(guest(0), 3).unwrap();
        mem.pin(pages[0]).unwrap();
        assert_eq!(
            mem.unpin_run(pages[0], 3),
            Err(MemError::NotPinned(pages[1]))
        );
        assert_eq!(mem.outstanding_pins(), 0, "first page was unpinned");
    }

    #[test]
    fn freed_pages_are_reused() {
        let mut mem = PhysMem::new(1);
        let p = mem.alloc(guest(0)).unwrap();
        mem.free(guest(0), p).unwrap();
        let q = mem.alloc(guest(1)).unwrap();
        assert_eq!(p, q);
        assert_eq!(mem.info(q).unwrap().owner, Some(guest(1)));
    }
}
