//! Addresses, pages, and domain identifiers.

use std::fmt;

/// Size of a physical page in bytes (x86: 4 KB).
pub const PAGE_SIZE: u64 = 4096;

/// Identifies a domain (virtual machine) as a memory owner.
///
/// By convention in this reproduction: id 0 is the driver domain (dom0),
/// ids 1.. are guests. The hypervisor itself is represented by
/// [`DomainId::HYPERVISOR`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DomainId(pub u16);

impl DomainId {
    /// The driver domain (dom0 in Xen terms).
    pub const DRIVER: DomainId = DomainId(0);
    /// Sentinel owner for hypervisor-private memory (e.g. the interrupt
    /// bit-vector ring and CDNA descriptor rings, which guests must not
    /// write).
    pub const HYPERVISOR: DomainId = DomainId(u16::MAX);

    /// The `i`-th guest domain (0-based), i.e. domain id `i + 1`.
    pub const fn guest(i: u16) -> DomainId {
        DomainId(i + 1)
    }

    /// Whether this is a guest domain (not dom0, not the hypervisor).
    pub fn is_guest(self) -> bool {
        self != DomainId::DRIVER && self != DomainId::HYPERVISOR
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == DomainId::HYPERVISOR {
            write!(f, "hypervisor")
        } else if *self == DomainId::DRIVER {
            write!(f, "dom0")
        } else {
            write!(f, "dom{}", self.0)
        }
    }
}

/// Index of a physical page within the machine's page pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(pub u32);

impl PageId {
    /// The base physical address of this page.
    pub const fn base_addr(self) -> PhysAddr {
        PhysAddr(self.0 as u64 * PAGE_SIZE)
    }
}

/// A physical byte address.
///
/// # Example
///
/// ```
/// use cdna_mem::{PageId, PhysAddr, PAGE_SIZE};
///
/// let a = PhysAddr(PAGE_SIZE * 3 + 100);
/// assert_eq!(a.page(), PageId(3));
/// assert_eq!(a.page_offset(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// The page containing this address.
    pub const fn page(self) -> PageId {
        PageId((self.0 / PAGE_SIZE) as u32)
    }

    /// Byte offset within the containing page.
    pub const fn page_offset(self) -> u64 {
        self.0 % PAGE_SIZE
    }

    /// This address advanced by `bytes`.
    pub const fn offset(self, bytes: u64) -> PhysAddr {
        PhysAddr(self.0 + bytes)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#012x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_and_offset_round_trip() {
        for raw in [0u64, 1, PAGE_SIZE - 1, PAGE_SIZE, PAGE_SIZE * 7 + 123] {
            let a = PhysAddr(raw);
            assert_eq!(
                a.page().base_addr().0 + a.page_offset(),
                raw,
                "round trip failed for {raw}"
            );
        }
    }

    #[test]
    fn domain_conventions() {
        assert_eq!(DomainId::guest(0), DomainId(1));
        assert!(DomainId::guest(5).is_guest());
        assert!(!DomainId::DRIVER.is_guest());
        assert!(!DomainId::HYPERVISOR.is_guest());
    }

    #[test]
    fn domain_display() {
        assert_eq!(DomainId::DRIVER.to_string(), "dom0");
        assert_eq!(DomainId::guest(2).to_string(), "dom3");
        assert_eq!(DomainId::HYPERVISOR.to_string(), "hypervisor");
    }

    #[test]
    fn addr_display_is_hex() {
        assert_eq!(PhysAddr(0x1000).to_string(), "0x0000001000");
    }

    #[test]
    fn offset_moves_forward() {
        let a = PhysAddr(100).offset(28);
        assert_eq!(a, PhysAddr(128));
    }
}
