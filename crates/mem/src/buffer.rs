//! Contiguous physical buffer slices.

use crate::{PageId, PhysAddr};

/// A physically contiguous byte range, the unit a DMA descriptor points
/// at.
///
/// Network buffers in the paper's drivers fit in a single page (MTU 1500
/// < 4096), but TSO buffers span several, so the slice exposes an
/// iterator over the pages it touches — the hypervisor must validate
/// ownership of *every* page under the slice.
///
/// # Example
///
/// ```
/// use cdna_mem::{BufferSlice, PageId, PhysAddr, PAGE_SIZE};
///
/// let s = BufferSlice::new(PhysAddr(PAGE_SIZE - 10), 20);
/// let pages: Vec<PageId> = s.pages().collect();
/// assert_eq!(pages, vec![PageId(0), PageId(1)]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferSlice {
    /// First byte of the buffer.
    pub addr: PhysAddr,
    /// Length in bytes.
    pub len: u32,
}

impl BufferSlice {
    /// Creates a slice.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero — zero-length DMA buffers are always a
    /// driver bug and the real NIC would reject them.
    pub fn new(addr: PhysAddr, len: u32) -> Self {
        assert!(len > 0, "zero-length buffer slice");
        BufferSlice { addr, len }
    }

    /// One past the last byte.
    pub fn end(&self) -> PhysAddr {
        self.addr.offset(self.len as u64)
    }

    /// Iterator over the distinct pages this slice touches, in order.
    pub fn pages(&self) -> impl Iterator<Item = PageId> {
        let first = self.addr.page().0;
        let last = self.addr.offset(self.len as u64 - 1).page().0;
        (first..=last).map(PageId)
    }

    /// Number of distinct pages the slice touches.
    pub fn page_count(&self) -> u32 {
        let first = self.addr.page().0;
        let last = self.addr.offset(self.len as u64 - 1).page().0;
        last - first + 1
    }

    /// The slice's pages as a contiguous run: first page plus count.
    /// The batched validation/pinning paths work in runs so a
    /// multi-descriptor hypercall touches pool state once per run
    /// instead of once per page.
    pub fn page_run(&self) -> (PageId, u32) {
        (self.addr.page(), self.page_count())
    }

    /// Whether the slice lies entirely within one page.
    pub fn within_one_page(&self) -> bool {
        self.page_count() == 1
    }

    /// Whether `other` overlaps this slice.
    pub fn overlaps(&self, other: &BufferSlice) -> bool {
        self.addr < other.end() && other.addr < self.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGE_SIZE;

    #[test]
    fn single_page_slice() {
        let s = BufferSlice::new(PhysAddr(100), 1514);
        assert!(s.within_one_page());
        assert_eq!(s.pages().collect::<Vec<_>>(), vec![PageId(0)]);
    }

    #[test]
    fn page_straddling_slice() {
        let s = BufferSlice::new(PhysAddr(PAGE_SIZE - 1), 2);
        assert_eq!(s.page_count(), 2);
        assert!(!s.within_one_page());
    }

    #[test]
    fn exact_page_boundary_does_not_spill() {
        let s = BufferSlice::new(PhysAddr(0), PAGE_SIZE as u32);
        assert_eq!(s.page_count(), 1);
        assert_eq!(s.end(), PhysAddr(PAGE_SIZE));
    }

    #[test]
    fn tso_buffer_spans_many_pages() {
        let s = BufferSlice::new(PhysAddr(PAGE_SIZE * 10), 65536);
        assert_eq!(s.page_count(), 16);
        let pages: Vec<u32> = s.pages().map(|p| p.0).collect();
        assert_eq!(pages, (10..26).collect::<Vec<_>>());
    }

    #[test]
    fn overlap_detection() {
        let a = BufferSlice::new(PhysAddr(100), 100); // [100, 200)
        let b = BufferSlice::new(PhysAddr(199), 10); // [199, 209)
        let c = BufferSlice::new(PhysAddr(200), 10); // [200, 210)
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(!c.overlaps(&a));
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_length_rejected() {
        let _ = BufferSlice::new(PhysAddr(0), 0);
    }
}
