//! Seeded protocol bugs for the `cdna-model` schedule explorer.
//!
//! Mutation testing for the *checker*: each [`MutationKind`] re-creates a
//! realistic implementation bug in the DMA protection protocol, behind a
//! runtime switch that is `None` unless a test or the `cdna-model` CLI
//! flips it. The explorer must catch every mutation (some schedule
//! violates an invariant) and must explore the unmutated build clean —
//! otherwise the invariants are weaker than they claim.
//!
//! The whole module only exists under the `mutations` cargo feature, and
//! with the feature on but no mutation active every hook is a single
//! `thread_local` read that leaves behavior bit-identical, so the perf
//! path and the golden regression runs are unaffected.

use std::cell::Cell;

/// One seeded bug in the protection protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// The hypervisor occasionally burns a sequence number while
    /// stamping descriptors, leaving a gap in the per-context stream
    /// (violates strict seqnum continuity; caught as `sequence-gap`).
    SeqSkip,
    /// `PhysMem::unpin_run` skips the first page of every run, leaking
    /// one pin per reap (violates pin balance between the pool and the
    /// protection engines; caught by the pin-balance invariant and the
    /// mirror audit).
    UnpinWrongPage,
    /// The enqueue hypercall skips buffer-ownership validation, letting
    /// an unvalidated guest address reach the pin path (caught as
    /// `pin-without-owner`).
    SkipOwnershipCheck,
    /// A coalesced virtual-interrupt send is double-counted as a fresh
    /// delivery (violates event-channel conservation:
    /// `sent == collected + pending`).
    IrqDoublePost,
}

/// Every mutation, in the order the `cdna-model` CLI reports them.
pub const ALL: [MutationKind; 4] = [
    MutationKind::SeqSkip,
    MutationKind::UnpinWrongPage,
    MutationKind::SkipOwnershipCheck,
    MutationKind::IrqDoublePost,
];

impl MutationKind {
    /// Stable kebab-case name, as used by `cdna-model --mutation`.
    pub fn name(self) -> &'static str {
        match self {
            MutationKind::SeqSkip => "seq-skip",
            MutationKind::UnpinWrongPage => "unpin-wrong-page",
            MutationKind::SkipOwnershipCheck => "skip-ownership-check",
            MutationKind::IrqDoublePost => "irq-double-post",
        }
    }

    /// Parses a [`MutationKind::name`] back to the kind.
    pub fn parse(s: &str) -> Option<MutationKind> {
        ALL.into_iter().find(|m| m.name() == s)
    }
}

thread_local! {
    static ACTIVE: Cell<Option<MutationKind>> = const { Cell::new(None) };
}

/// Activates `m` (or deactivates all mutations with `None`) for the
/// current thread.
pub fn set_active(m: Option<MutationKind>) {
    ACTIVE.with(|a| a.set(m));
}

/// The currently active mutation, if any.
pub fn active() -> Option<MutationKind> {
    ACTIVE.with(|a| a.get())
}

/// Whether `m` specifically is active.
pub fn is_active(m: MutationKind) -> bool {
    active() == Some(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for m in ALL {
            assert_eq!(MutationKind::parse(m.name()), Some(m));
        }
        assert_eq!(MutationKind::parse("nope"), None);
    }

    #[test]
    fn switch_is_thread_local_and_defaults_off() {
        assert_eq!(active(), None);
        set_active(Some(MutationKind::SeqSkip));
        assert!(is_active(MutationKind::SeqSkip));
        assert!(!is_active(MutationKind::IrqDoublePost));
        set_active(None);
        assert_eq!(active(), None);
    }
}
