//! Property-style tests of the wire, bus, and framing models.
//!
//! The repo builds with zero external dependencies, so instead of a
//! property-testing framework these drive each invariant over many
//! seeded pseudo-random cases plus the interesting edges.

use cdna_net::{framing, GigabitWire, PciBus, WireDirection};
use cdna_sim::{SimRng, SimTime};

const CASES: u64 = 200;

/// The wire never reorders and never exceeds 1 Gb/s in either
/// direction, for any arrival pattern.
#[test]
fn wire_is_fifo_and_rate_limited() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(0x57a7_0001 ^ case);
        let n = rng.range_u64(1..100) as usize;
        let mut arrivals: Vec<(u64, u32)> = (0..n)
            .map(|_| (rng.range_u64(0..10_000), rng.range_u64(64..1600) as u32))
            .collect();
        arrivals.sort_by_key(|&(t, _)| t);

        let mut wire = GigabitWire::new();
        let mut last_done = SimTime::ZERO;
        let mut total_bytes = 0u64;
        for &(t, bytes) in &arrivals {
            let done = wire.transfer(SimTime::from_ns(t), WireDirection::Transmit, bytes);
            assert!(done >= last_done, "wire reordered frames (case {case})");
            // A frame takes at least its serialization time.
            assert!(done.as_ns() >= t + bytes as u64 * 8);
            last_done = done;
            total_bytes += bytes as u64;
        }
        // Aggregate rate bound: total time >= total serialization time.
        let first = arrivals[0].0;
        assert!(last_done.as_ns() - first >= total_bytes * 8);
    }
}

/// Bus transfers serialize: completion times are strictly increasing
/// and bandwidth is respected.
#[test]
fn bus_serializes_transfers() {
    for case in 0..CASES {
        let mut rng = SimRng::seed_from(0xB05 ^ case);
        let n = rng.range_u64(1..50) as usize;
        let sizes: Vec<u32> = (0..n).map(|_| rng.range_u64(1..100_000) as u32).collect();

        let mut bus = PciBus::with_rate(422_000_000, SimTime::from_ns(120));
        let mut last = SimTime::ZERO;
        for &s in &sizes {
            let t = bus.dma(SimTime::ZERO, s);
            assert!(t.start >= last, "bus overlapped transfers (case {case})");
            assert!(t.done > t.start);
            last = t.done;
        }
        assert_eq!(bus.transfers(), sizes.len() as u64);
    }
}

/// Segmentation covers every byte with only the tail short.
#[test]
fn segmentation_total_is_exact() {
    let mut rng = SimRng::seed_from(0x5E6);
    let mut totals: Vec<u64> = (0..CASES).map(|_| rng.range_u64(0..1_000_000)).collect();
    totals.extend([
        0,
        1,
        framing::MSS as u64 - 1,
        framing::MSS as u64,
        framing::MSS as u64 + 1,
    ]);
    for total in totals {
        let segs = framing::segment_tcp_payload(total);
        assert_eq!(segs.iter().map(|&s| s as u64).sum::<u64>(), total);
        for &s in segs.iter().rev().skip(1) {
            assert_eq!(s, framing::MSS, "only the last segment may be short");
        }
        if let Some(&last) = segs.last() {
            assert!((1..=framing::MSS).contains(&last));
        }
    }
}

/// Wire-byte accounting is monotone in payload and respects the
/// Ethernet minimum.
#[test]
fn wire_bytes_monotone() {
    let mut rng = SimRng::seed_from(0xE74);
    for _ in 0..CASES {
        let a = rng.range_u64(0..3000) as u32;
        let b = rng.range_u64(0..3000) as u32;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(framing::wire_bytes(lo) <= framing::wire_bytes(hi));
        assert!(
            framing::wire_bytes(lo) >= framing::MIN_ETH_PAYLOAD + framing::PER_FRAME_WIRE_OVERHEAD
        );
    }
}
