//! Property-based tests of the wire, bus, and framing models.

use cdna_net::{framing, GigabitWire, PciBus, WireDirection};
use cdna_sim::SimTime;
use proptest::prelude::*;

proptest! {
    /// The wire never reorders and never exceeds 1 Gb/s in either
    /// direction, for any arrival pattern.
    #[test]
    fn wire_is_fifo_and_rate_limited(
        arrivals in prop::collection::vec((0u64..10_000, 64u32..1600), 1..100),
    ) {
        let mut wire = GigabitWire::new();
        let mut arrivals = arrivals;
        arrivals.sort_by_key(|&(t, _)| t);
        let mut last_done = SimTime::ZERO;
        let mut total_bytes = 0u64;
        for &(t, bytes) in &arrivals {
            let done = wire.transfer(SimTime::from_ns(t), WireDirection::Transmit, bytes);
            prop_assert!(done >= last_done, "wire reordered frames");
            // A frame takes at least its serialization time.
            prop_assert!(done.as_ns() >= t + bytes as u64 * 8);
            last_done = done;
            total_bytes += bytes as u64;
        }
        // Aggregate rate bound: total time >= total serialization time.
        let first = arrivals[0].0;
        prop_assert!(last_done.as_ns() - first >= total_bytes * 8);
    }

    /// Bus transfers serialize: completion times are strictly increasing
    /// and bandwidth is respected.
    #[test]
    fn bus_serializes_transfers(
        sizes in prop::collection::vec(1u32..100_000, 1..50),
    ) {
        let mut bus = PciBus::with_rate(422_000_000, SimTime::from_ns(120));
        let mut last = SimTime::ZERO;
        for &s in &sizes {
            let t = bus.dma(SimTime::ZERO, s);
            prop_assert!(t.start >= last);
            prop_assert!(t.done > t.start);
            last = t.done;
        }
        prop_assert_eq!(bus.transfers(), sizes.len() as u64);
    }

    /// Segmentation covers every byte with only the tail short.
    #[test]
    fn segmentation_total_is_exact(total in 0u64..1_000_000) {
        let segs = framing::segment_tcp_payload(total);
        prop_assert_eq!(segs.iter().map(|&s| s as u64).sum::<u64>(), total);
        for &s in segs.iter().rev().skip(1) {
            prop_assert_eq!(s, framing::MSS);
        }
        if let Some(&last) = segs.last() {
            prop_assert!((1..=framing::MSS).contains(&last));
        }
    }

    /// Wire-byte accounting is monotone in payload and respects the
    /// Ethernet minimum.
    #[test]
    fn wire_bytes_monotone(a in 0u32..3000, b in 0u32..3000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(framing::wire_bytes(lo) <= framing::wire_bytes(hi));
        prop_assert!(framing::wire_bytes(lo) >= framing::MIN_ETH_PAYLOAD + framing::PER_FRAME_WIRE_OVERHEAD);
    }
}
