#![warn(missing_docs)]

//! Network primitives for the CDNA reproduction.
//!
//! This crate provides the pieces of the networking substrate that are
//! independent of any particular NIC:
//!
//! * [`MacAddr`] — Ethernet addresses, including the locally-administered
//!   per-context addresses CDNA assigns to guests;
//! * [`Frame`] — the unit of traffic crossing the simulated wire;
//! * [`framing`] — IEEE 802.3 / IP / TCP overhead arithmetic used both by
//!   the wire model and by the throughput reports (the paper reports TCP
//!   payload goodput);
//! * [`GigabitWire`] — a full-duplex gigabit link with serialization
//!   delay and store-and-forward latency;
//! * [`PciBus`] — a shared 64-bit/66 MHz PCI segment that DMA transfers
//!   contend on, matching the RiceNIC's host interface.

mod frame;
pub mod framing;
mod mac;
mod pci;
mod wire;

pub use frame::{FlowId, Frame};
pub use mac::{MacAddr, MacAllocator};
pub use pci::{PciBus, PciTransfer};
pub use wire::{GigabitWire, WireDirection};
