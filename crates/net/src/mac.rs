//! Ethernet MAC addresses.

use std::fmt;

/// A 48-bit Ethernet MAC address.
///
/// CDNA associates one unique MAC with each hardware context so the NIC
/// can demultiplex received traffic (paper §3.1). The
/// [`MacAddr::for_context`] constructor produces the locally-administered
/// addresses the simulation assigns to contexts.
///
/// # Example
///
/// ```
/// use cdna_net::MacAddr;
///
/// let mac = MacAddr::for_context(0, 3);
/// assert!(mac.is_locally_administered());
/// assert_eq!(mac.to_string(), "02:cd:aa:00:00:03");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// A locally-administered unicast address for hardware context `ctx`
    /// of NIC `nic`.
    pub const fn for_context(nic: u8, ctx: u8) -> MacAddr {
        // 0x02 sets the locally-administered bit and clears multicast.
        MacAddr([0x02, 0xcd, 0xaa, nic, 0x00, ctx])
    }

    /// A locally-administered unicast address for the peer host's NIC
    /// `nic` (the traffic source/sink machine in the paper's testbed).
    pub const fn for_peer(nic: u8) -> MacAddr {
        MacAddr([0x02, 0xee, 0x00, nic, 0x00, 0x01])
    }

    /// A locally-administered unicast address for guest `guest`'s
    /// paravirtualized interface (its netfront vif in the Xen baseline).
    pub const fn for_vif(guest: u16) -> MacAddr {
        let hi = (guest >> 8) as u8;
        let lo = (guest & 0xff) as u8;
        MacAddr([0x02, 0x1f, 0x00, 0x00, hi, lo])
    }

    /// True if the multicast/broadcast bit is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True if this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == MacAddr::BROADCAST
    }

    /// True if the locally-administered bit is set.
    pub fn is_locally_administered(&self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// The raw octets.
    pub fn octets(&self) -> [u8; 6] {
        self.0
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_addresses_are_unique_per_nic_and_ctx() {
        let mut seen = std::collections::HashSet::new();
        for nic in 0..2 {
            for ctx in 0..32 {
                assert!(seen.insert(MacAddr::for_context(nic, ctx)));
            }
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn context_addresses_are_unicast_and_local() {
        let m = MacAddr::for_context(1, 31);
        assert!(!m.is_multicast());
        assert!(m.is_locally_administered());
        assert!(!m.is_broadcast());
    }

    #[test]
    fn broadcast_properties() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
    }

    #[test]
    fn display_format() {
        let m = MacAddr([0x02, 0x00, 0xff, 0x10, 0x00, 0x01]);
        assert_eq!(m.to_string(), "02:00:ff:10:00:01");
    }

    #[test]
    fn peer_and_context_spaces_disjoint() {
        for nic in 0..4 {
            for ctx in 0..32 {
                assert_ne!(MacAddr::for_context(nic, ctx), MacAddr::for_peer(nic));
            }
        }
    }
}
