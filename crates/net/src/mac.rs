//! Ethernet MAC addresses.

use std::fmt;

/// A 48-bit Ethernet MAC address.
///
/// CDNA associates one unique MAC with each hardware context so the NIC
/// can demultiplex received traffic (paper §3.1). The
/// [`MacAddr::for_context`] constructor produces the locally-administered
/// addresses the simulation assigns to contexts.
///
/// # Example
///
/// ```
/// use cdna_net::MacAddr;
///
/// let mac = MacAddr::for_context(0, 3);
/// assert!(mac.is_locally_administered());
/// assert_eq!(mac.to_string(), "02:cd:aa:00:00:03");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// A locally-administered unicast address for hardware context `ctx`
    /// of NIC `nic`.
    pub const fn for_context(nic: u8, ctx: u8) -> MacAddr {
        // 0x02 sets the locally-administered bit and clears multicast.
        MacAddr([0x02, 0xcd, 0xaa, nic, 0x00, ctx])
    }

    /// A locally-administered unicast address for hardware context `ctx`
    /// of NIC `nic` on rack host `host`.
    ///
    /// Host 0 is bit-identical to [`MacAddr::for_context`] (the host
    /// octet was always zero before multi-host racks existed), so a
    /// single-host world keeps its historical addresses.
    pub const fn for_host_context(host: u8, nic: u8, ctx: u8) -> MacAddr {
        MacAddr([0x02, 0xcd, 0xaa, nic, host, ctx])
    }

    /// A locally-administered unicast address for the peer host's NIC
    /// `nic` (the traffic source/sink machine in the paper's testbed).
    pub const fn for_peer(nic: u8) -> MacAddr {
        MacAddr([0x02, 0xee, 0x00, nic, 0x00, 0x01])
    }

    /// A locally-administered unicast address for guest `guest`'s
    /// paravirtualized interface (its netfront vif in the Xen baseline).
    pub const fn for_vif(guest: u16) -> MacAddr {
        let hi = (guest >> 8) as u8;
        let lo = (guest & 0xff) as u8;
        MacAddr([0x02, 0x1f, 0x00, 0x00, hi, lo])
    }

    /// True if the multicast/broadcast bit is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True if this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == MacAddr::BROADCAST
    }

    /// True if the locally-administered bit is set.
    pub fn is_locally_administered(&self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// The raw octets.
    pub fn octets(&self) -> [u8; 6] {
        self.0
    }
}

/// Derives and claims unique MAC addresses across a whole rack.
///
/// Every constructor on [`MacAddr`] is deterministic, so two different
/// `(host, nic, ctx)` tuples can only collide through a bug in the
/// derivation scheme — which is exactly what this allocator exists to
/// catch. A rack builder claims every address it hands out; a `None`
/// return means the derived address was already taken and the topology
/// is misconfigured (e.g. two hosts sharing a host id).
///
/// # Example
///
/// ```
/// use cdna_net::MacAllocator;
///
/// let mut alloc = MacAllocator::new();
/// let a = alloc.host_context(0, 0, 1);
/// assert!(a.is_some());
/// // Claiming the same tuple again collides.
/// assert!(alloc.host_context(0, 0, 1).is_none());
/// ```
#[derive(Debug, Default)]
pub struct MacAllocator {
    assigned: std::collections::BTreeSet<MacAddr>,
}

impl MacAllocator {
    /// An allocator with no addresses claimed.
    pub fn new() -> Self {
        MacAllocator::default()
    }

    /// Claims `mac`, returning it if it was not already claimed.
    pub fn claim(&mut self, mac: MacAddr) -> Option<MacAddr> {
        if self.assigned.insert(mac) {
            Some(mac)
        } else {
            None
        }
    }

    /// Derives and claims the context address for `(host, nic, ctx)`.
    pub fn host_context(&mut self, host: u8, nic: u8, ctx: u8) -> Option<MacAddr> {
        self.claim(MacAddr::for_host_context(host, nic, ctx))
    }

    /// Derives and claims the peer-source address for NIC `nic`.
    pub fn peer(&mut self, nic: u8) -> Option<MacAddr> {
        self.claim(MacAddr::for_peer(nic))
    }

    /// Derives and claims guest `guest`'s vif address.
    pub fn vif(&mut self, guest: u16) -> Option<MacAddr> {
        self.claim(MacAddr::for_vif(guest))
    }

    /// How many addresses have been claimed so far.
    pub fn claimed(&self) -> usize {
        self.assigned.len()
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_addresses_are_unique_per_nic_and_ctx() {
        let mut seen = std::collections::HashSet::new();
        for nic in 0..2 {
            for ctx in 0..32 {
                assert!(seen.insert(MacAddr::for_context(nic, ctx)));
            }
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn context_addresses_are_unicast_and_local() {
        let m = MacAddr::for_context(1, 31);
        assert!(!m.is_multicast());
        assert!(m.is_locally_administered());
        assert!(!m.is_broadcast());
    }

    #[test]
    fn broadcast_properties() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
    }

    #[test]
    fn display_format() {
        let m = MacAddr([0x02, 0x00, 0xff, 0x10, 0x00, 0x01]);
        assert_eq!(m.to_string(), "02:00:ff:10:00:01");
    }

    #[test]
    fn peer_and_context_spaces_disjoint() {
        for nic in 0..4 {
            for ctx in 0..32 {
                assert_ne!(MacAddr::for_context(nic, ctx), MacAddr::for_peer(nic));
            }
        }
    }

    #[test]
    fn host_zero_matches_single_host_context_addresses() {
        for nic in 0..4 {
            for ctx in 0..32 {
                assert_eq!(
                    MacAddr::for_host_context(0, nic, ctx),
                    MacAddr::for_context(nic, ctx)
                );
            }
        }
    }

    #[test]
    fn allocator_rack_addresses_never_collide() {
        // A full rack: 16 hosts x 2 NICs x 32 contexts, plus the peer
        // and vif namespaces — every claim must be fresh.
        let mut alloc = MacAllocator::new();
        for host in 0..16 {
            for nic in 0..2 {
                for ctx in 0..32 {
                    assert!(
                        alloc.host_context(host, nic, ctx).is_some(),
                        "collision at host {host} nic {nic} ctx {ctx}"
                    );
                }
            }
        }
        for nic in 0..2 {
            assert!(alloc.peer(nic).is_some());
        }
        for guest in 0..24 {
            assert!(alloc.vif(guest).is_some());
        }
        assert_eq!(alloc.claimed(), 16 * 2 * 32 + 2 + 24);
    }

    #[test]
    fn allocator_detects_collisions() {
        let mut alloc = MacAllocator::new();
        assert!(alloc.host_context(3, 1, 7).is_some());
        assert!(alloc.host_context(3, 1, 7).is_none());
        assert!(alloc.claim(MacAddr::for_peer(0)).is_some());
        assert!(alloc.peer(0).is_none());
        assert_eq!(alloc.claimed(), 2);
    }
}
