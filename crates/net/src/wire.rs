//! Full-duplex gigabit link model.

use cdna_sim::SimTime;

/// Direction of travel on a [`GigabitWire`], from the host NIC's point of
/// view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireDirection {
    /// Host NIC → peer.
    Transmit,
    /// Peer → host NIC.
    Receive,
}

/// A full-duplex point-to-point gigabit Ethernet link.
///
/// Each direction is an independent serializer: a frame occupies the link
/// for `wire_bytes * 8ns` (1 Gb/s = 1 bit/ns) and frames queue behind one
/// another. The model answers "when does this frame finish arriving?",
/// which is when the receiving side may begin processing it
/// (store-and-forward).
///
/// # Example
///
/// ```
/// use cdna_net::{GigabitWire, WireDirection};
/// use cdna_sim::SimTime;
///
/// let mut wire = GigabitWire::new();
/// let t0 = SimTime::ZERO;
/// let first = wire.transfer(t0, WireDirection::Transmit, 1538);
/// let second = wire.transfer(t0, WireDirection::Transmit, 1538);
/// // Frames serialize back to back: 12.304us then 24.608us.
/// assert_eq!(first.as_ns(), 12_304);
/// assert_eq!(second.as_ns(), 24_608);
/// // The reverse direction is independent (full duplex).
/// let rx = wire.transfer(t0, WireDirection::Receive, 1538);
/// assert_eq!(rx.as_ns(), 12_304);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GigabitWire {
    tx_busy_until: SimTime,
    rx_busy_until: SimTime,
    tx_frames: u64,
    rx_frames: u64,
    tx_wire_bytes: u64,
    rx_wire_bytes: u64,
}

/// Serialization time of one byte at 1 Gb/s.
const NS_PER_BYTE: u64 = 8;

impl GigabitWire {
    /// Creates an idle link.
    pub fn new() -> Self {
        GigabitWire::default()
    }

    /// Enqueues a frame of `wire_bytes` byte times in `dir` at time `now`
    /// and returns the time its last bit arrives at the far end.
    pub fn transfer(&mut self, now: SimTime, dir: WireDirection, wire_bytes: u32) -> SimTime {
        let ser = SimTime::from_ns(wire_bytes as u64 * NS_PER_BYTE);
        let busy = match dir {
            WireDirection::Transmit => &mut self.tx_busy_until,
            WireDirection::Receive => &mut self.rx_busy_until,
        };
        let start = (*busy).max(now);
        let done = start + ser;
        *busy = done;
        match dir {
            WireDirection::Transmit => {
                self.tx_frames += 1;
                self.tx_wire_bytes += wire_bytes as u64;
            }
            WireDirection::Receive => {
                self.rx_frames += 1;
                self.rx_wire_bytes += wire_bytes as u64;
            }
        }
        done
    }

    /// When the given direction next becomes idle.
    pub fn busy_until(&self, dir: WireDirection) -> SimTime {
        match dir {
            WireDirection::Transmit => self.tx_busy_until,
            WireDirection::Receive => self.rx_busy_until,
        }
    }

    /// Whether the given direction is idle at `now`.
    pub fn is_idle(&self, now: SimTime, dir: WireDirection) -> bool {
        self.busy_until(dir) <= now
    }

    /// Frames ever sent in `dir`.
    pub fn frames(&self, dir: WireDirection) -> u64 {
        match dir {
            WireDirection::Transmit => self.tx_frames,
            WireDirection::Receive => self.rx_frames,
        }
    }

    /// Total wire byte-times consumed in `dir`.
    pub fn wire_bytes(&self, dir: WireDirection) -> u64 {
        match dir {
            WireDirection::Transmit => self.tx_wire_bytes,
            WireDirection::Receive => self.rx_wire_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time_is_8ns_per_byte() {
        let mut w = GigabitWire::new();
        let done = w.transfer(SimTime::ZERO, WireDirection::Transmit, 100);
        assert_eq!(done.as_ns(), 800);
    }

    #[test]
    fn frames_queue_behind_each_other() {
        let mut w = GigabitWire::new();
        let a = w.transfer(SimTime::ZERO, WireDirection::Receive, 1000);
        let b = w.transfer(SimTime::from_ns(100), WireDirection::Receive, 1000);
        assert_eq!(a.as_ns(), 8_000);
        assert_eq!(b.as_ns(), 16_000); // started when `a` finished
    }

    #[test]
    fn idle_gap_is_not_reclaimed() {
        let mut w = GigabitWire::new();
        let a = w.transfer(SimTime::ZERO, WireDirection::Transmit, 125);
        assert_eq!(a.as_ns(), 1_000);
        // Link idle from 1000ns to 5000ns, then a new frame starts fresh.
        let b = w.transfer(SimTime::from_ns(5_000), WireDirection::Transmit, 125);
        assert_eq!(b.as_ns(), 6_000);
    }

    #[test]
    fn directions_are_independent() {
        let mut w = GigabitWire::new();
        w.transfer(SimTime::ZERO, WireDirection::Transmit, 10_000);
        assert!(w.is_idle(SimTime::ZERO, WireDirection::Receive));
        assert!(!w.is_idle(SimTime::ZERO, WireDirection::Transmit));
    }

    #[test]
    fn counters_accumulate() {
        let mut w = GigabitWire::new();
        w.transfer(SimTime::ZERO, WireDirection::Transmit, 1538);
        w.transfer(SimTime::ZERO, WireDirection::Transmit, 84);
        assert_eq!(w.frames(WireDirection::Transmit), 2);
        assert_eq!(w.wire_bytes(WireDirection::Transmit), 1622);
        assert_eq!(w.frames(WireDirection::Receive), 0);
    }

    #[test]
    fn sustained_line_rate_matches_goodput_helper() {
        // Pump full-MTU frames back to back for 1ms of simulated time and
        // check the achieved payload rate equals the analytic line rate.
        let mut w = GigabitWire::new();
        let mut now = SimTime::ZERO;
        let mut payload_bits: u64 = 0;
        while now < SimTime::from_ms(1) {
            now = w.transfer(now, WireDirection::Transmit, 1538);
            payload_bits += 1460 * 8;
        }
        let mbps = payload_bits as f64 / now.as_secs_f64() / 1e6;
        let expect = crate::framing::line_rate_goodput_mbps(1);
        assert!((mbps - expect).abs() < 1.0, "got {mbps}, want {expect}");
    }
}
