//! The unit of traffic crossing the simulated wire.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::framing;
use crate::MacAddr;

/// Interned fill-pattern bodies, one allocation per distinct length.
///
/// Integrity tests attach literal payloads to every frame; building a
/// fresh `Vec` per frame turns the frame factory into an allocator
/// benchmark (hundreds of thousands of frames per simulated second,
/// all with identical contents). Interning hands every request for a
/// given length the *same* `Arc<[u8]>`, so after the first frame the
/// per-frame cost is one atomic refcount bump.
static BODY_INTERN: OnceLock<Mutex<BTreeMap<usize, Arc<[u8]>>>> = OnceLock::new();

/// The deterministic fill pattern: byte `i` of a body is
/// `(i & 0xFF) ^ 0xA5`, so truncation and offset bugs change observed
/// bytes.
fn fill_byte(i: usize) -> u8 {
    (i as u8) ^ 0xA5
}

/// Identifies a logical connection (guest, connection index) so the
/// workload generator can attribute delivered bytes to streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FlowId {
    /// The guest domain index the flow belongs to (0-based).
    pub guest: u16,
    /// Connection index within the guest's benchmark process.
    pub conn: u16,
}

impl FlowId {
    /// Creates a flow id.
    pub const fn new(guest: u16, conn: u16) -> Self {
        FlowId { guest, conn }
    }
}

/// An Ethernet frame in flight.
///
/// Frames carry sizes and flow metadata rather than full byte images —
/// the simulation moves hundreds of thousands of frames per simulated
/// second, and the experiments only need counts — but an optional
/// shared `Arc<[u8]>` payload is supported for the data-integrity
/// tests.
///
/// # Example
///
/// ```
/// use cdna_net::{FlowId, Frame, MacAddr};
///
/// let f = Frame::tcp_data(
///     MacAddr::for_peer(0),
///     MacAddr::for_context(0, 1),
///     1460,
///     FlowId::new(0, 0),
///     7,
/// );
/// assert_eq!(f.l2_payload, 1500);
/// assert_eq!(f.wire_bytes(), 1538);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Ethernet payload length in bytes (IP + TCP headers + data).
    pub l2_payload: u32,
    /// TCP payload bytes carried (0 for pure ACKs / control traffic).
    pub tcp_payload: u32,
    /// The flow this frame belongs to.
    pub flow: FlowId,
    /// Per-flow sequence counter, for ordering/integrity checks.
    pub seq: u64,
    /// Optional literal payload used by integrity tests. `Arc` keeps
    /// clones cheap as the frame is copied across rings and queues.
    pub body: Option<Arc<[u8]>>,
}

impl Frame {
    /// A data segment carrying `tcp_payload` bytes from `src` to `dst`.
    pub fn tcp_data(src: MacAddr, dst: MacAddr, tcp_payload: u32, flow: FlowId, seq: u64) -> Self {
        Frame {
            dst,
            src,
            l2_payload: framing::l2_payload_for_tcp(tcp_payload),
            tcp_payload,
            flow,
            seq,
            body: None,
        }
    }

    /// Attaches a literal payload (integrity tests).
    ///
    /// # Panics
    ///
    /// Panics if `body.len()` disagrees with the frame's `tcp_payload`.
    pub fn with_body(mut self, body: impl Into<Arc<[u8]>>) -> Self {
        let body = body.into();
        assert_eq!(
            body.len() as u32,
            self.tcp_payload,
            "body length must match tcp_payload"
        );
        self.body = Some(body);
        self
    }

    /// A shared fill-pattern body of `len` bytes for integrity tests.
    ///
    /// Bodies are interned per length: every call with the same `len`
    /// returns a clone of the same `Arc<[u8]>` (checkable with
    /// [`Arc::ptr_eq`]), so attaching bodies to every frame of a run
    /// costs one allocation per distinct length, not per frame. The
    /// pattern is deterministic (see the intern table docs), making
    /// corrupted, truncated, or mis-offset payloads visible.
    pub fn test_body(len: usize) -> Arc<[u8]> {
        let table = BODY_INTERN.get_or_init(|| Mutex::new(BTreeMap::new()));
        let mut map = table.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(len)
                .or_insert_with(|| (0..len).map(fill_byte).collect()),
        )
    }

    /// Byte times this frame occupies on a link (incl. preamble/IFG).
    pub fn wire_bytes(&self) -> u32 {
        framing::wire_bytes(self.l2_payload)
    }

    /// Bytes of host memory the frame occupies in a NIC buffer or DMA
    /// transfer (Ethernet header + payload; no preamble/FCS/IFG).
    pub fn buffer_bytes(&self) -> u32 {
        framing::ETH_HEADER_BYTES + self.l2_payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(payload: u32) -> Frame {
        Frame::tcp_data(
            MacAddr::for_context(0, 0),
            MacAddr::for_peer(0),
            payload,
            FlowId::new(1, 2),
            42,
        )
    }

    #[test]
    fn data_frame_sizes() {
        let f = frame(1460);
        assert_eq!(f.l2_payload, 1500);
        assert_eq!(f.wire_bytes(), 1538);
        assert_eq!(f.buffer_bytes(), 1514);
        assert_eq!(f.tcp_payload, 1460);
    }

    #[test]
    fn ack_frame_is_padded_on_wire() {
        let f = frame(0);
        assert_eq!(f.l2_payload, 40);
        // 40 < 46 minimum payload, so padded: 46 + 38 overhead.
        assert_eq!(f.wire_bytes(), 84);
    }

    #[test]
    fn body_round_trip() {
        let body = Frame::test_body(100);
        let f = frame(100).with_body(body.clone());
        assert_eq!(f.body.as_ref().unwrap(), &body);
    }

    #[test]
    fn test_bodies_are_interned_per_length() {
        // Same length → the same allocation, every time: attaching
        // bodies to N frames costs one allocation, not N.
        let a = Frame::test_body(1460);
        let b = Frame::test_body(1460);
        assert!(Arc::ptr_eq(&a, &b), "same-length bodies must share");
        let c = Frame::test_body(64);
        assert!(!Arc::ptr_eq(&a, &c), "different lengths are distinct");
        // Cloning through frames keeps sharing: refcount, no copies.
        let before = Arc::strong_count(&a);
        let f1 = frame(1460).with_body(Frame::test_body(1460));
        let f2 = f1.clone();
        assert_eq!(Arc::strong_count(&a), before + 2);
        drop((f1, f2));
        assert_eq!(Arc::strong_count(&a), before);
    }

    #[test]
    fn test_body_pattern_is_deterministic() {
        let b = Frame::test_body(300);
        assert_eq!(b.len(), 300);
        assert_eq!(b[0], 0xA5);
        assert_eq!(b[1], 0xA4);
        assert_eq!(b[0x5A], 0xFF);
        // Pattern repeats every 256 bytes.
        assert_eq!(b[256], b[0]);
    }

    #[test]
    #[should_panic(expected = "body length must match")]
    fn mismatched_body_panics() {
        let _ = frame(100).with_body(&b"short"[..]);
    }
}
