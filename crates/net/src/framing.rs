//! Protocol framing arithmetic.
//!
//! The paper reports TCP payload throughput ("Mb/s") while the wire
//! carries Ethernet frames with preamble, headers, FCS, and inter-frame
//! gap. These helpers convert between payload bytes, frame bytes, and
//! on-the-wire time so the simulation and the reports agree on what a
//! "Mb/s" is.
//!
//! All configurations in the paper used standard 1500-byte MTU Ethernet
//! with TCP timestamps disabled in our model (MSS 1460).

/// Bytes of Ethernet preamble + start-of-frame delimiter.
pub const PREAMBLE_BYTES: u32 = 8;
/// Bytes of Ethernet header (dst + src + ethertype).
pub const ETH_HEADER_BYTES: u32 = 14;
/// Bytes of frame check sequence.
pub const FCS_BYTES: u32 = 4;
/// Minimum inter-frame gap, expressed in byte times.
pub const IFG_BYTES: u32 = 12;
/// IPv4 header bytes (no options).
pub const IP_HEADER_BYTES: u32 = 20;
/// TCP header bytes (no options on data segments).
pub const TCP_HEADER_BYTES: u32 = 20;
/// Standard Ethernet MTU.
pub const MTU: u32 = 1500;
/// Maximum TCP segment size with the headers above.
pub const MSS: u32 = MTU - IP_HEADER_BYTES - TCP_HEADER_BYTES;
/// Minimum Ethernet payload (frames are padded up to this).
pub const MIN_ETH_PAYLOAD: u32 = 46;

/// Per-frame wire overhead that is not L2 payload: preamble, Ethernet
/// header, FCS and inter-frame gap.
pub const PER_FRAME_WIRE_OVERHEAD: u32 = PREAMBLE_BYTES + ETH_HEADER_BYTES + FCS_BYTES + IFG_BYTES;

/// Total byte times a frame with `l2_payload` bytes of Ethernet payload
/// occupies on the wire (including padding to the Ethernet minimum).
///
/// # Example
///
/// ```
/// use cdna_net::framing::{wire_bytes, PER_FRAME_WIRE_OVERHEAD};
///
/// // A full-MTU frame occupies 1538 byte times on a gigabit link.
/// assert_eq!(wire_bytes(1500), 1500 + PER_FRAME_WIRE_OVERHEAD);
/// // Tiny frames are padded to the 46-byte Ethernet minimum.
/// assert_eq!(wire_bytes(1), 46 + PER_FRAME_WIRE_OVERHEAD);
/// ```
pub fn wire_bytes(l2_payload: u32) -> u32 {
    l2_payload.max(MIN_ETH_PAYLOAD) + PER_FRAME_WIRE_OVERHEAD
}

/// Ethernet (L2) payload bytes for a TCP segment carrying `tcp_payload`
/// bytes of application data.
pub fn l2_payload_for_tcp(tcp_payload: u32) -> u32 {
    tcp_payload + IP_HEADER_BYTES + TCP_HEADER_BYTES
}

/// TCP payload bytes carried by a frame whose Ethernet payload is
/// `l2_payload` bytes, or 0 if the frame is too small to hold the headers.
pub fn tcp_payload_of_l2(l2_payload: u32) -> u32 {
    l2_payload.saturating_sub(IP_HEADER_BYTES + TCP_HEADER_BYTES)
}

/// Splits `bytes` of application data into MSS-sized TCP payload chunks,
/// as TCP segmentation offload (TSO) hardware does.
///
/// # Example
///
/// ```
/// use cdna_net::framing::{segment_tcp_payload, MSS};
///
/// assert_eq!(segment_tcp_payload(0), Vec::<u32>::new());
/// assert_eq!(segment_tcp_payload(u64::from(MSS) * 2 + 100), vec![MSS, MSS, 100]);
/// ```
pub fn segment_tcp_payload(bytes: u64) -> Vec<u32> {
    let mut out = Vec::with_capacity((bytes / MSS as u64 + 1) as usize);
    let mut remaining = bytes;
    while remaining > 0 {
        let chunk = remaining.min(MSS as u64) as u32;
        out.push(chunk);
        remaining -= chunk as u64;
    }
    out
}

/// Peak TCP goodput, in Mb/s, of `links` gigabit links carrying
/// back-to-back full-MSS segments.
///
/// This is the "line rate" ceiling the paper's CDNA numbers approach:
/// ~949.3 Mb/s per gigabit link, ~1898.6 Mb/s for the two-NIC testbed.
pub fn line_rate_goodput_mbps(links: u32) -> f64 {
    let payload_bits = (MSS * 8) as f64;
    let wire_bits = (wire_bytes(MTU) * 8) as f64;
    links as f64 * 1000.0 * payload_bits / wire_bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mtu_frame_is_1538_byte_times() {
        assert_eq!(wire_bytes(MTU), 1538);
    }

    #[test]
    fn mss_value() {
        assert_eq!(MSS, 1460);
    }

    #[test]
    fn tcp_l2_round_trip() {
        for payload in [1u32, 100, MSS] {
            assert_eq!(tcp_payload_of_l2(l2_payload_for_tcp(payload)), payload);
        }
    }

    #[test]
    fn l2_too_small_for_headers_yields_zero_payload() {
        assert_eq!(tcp_payload_of_l2(10), 0);
        assert_eq!(tcp_payload_of_l2(40), 0);
        assert_eq!(tcp_payload_of_l2(41), 1);
    }

    #[test]
    fn segmentation_covers_all_bytes() {
        for total in [0u64, 1, 1460, 1461, 65536, 1_000_000] {
            let segs = segment_tcp_payload(total);
            assert_eq!(segs.iter().map(|&s| s as u64).sum::<u64>(), total);
            // All but the last segment are full MSS.
            for &s in segs.iter().rev().skip(1) {
                assert_eq!(s, MSS);
            }
        }
    }

    #[test]
    fn gigabit_line_rate_matches_hand_math() {
        // 1460 * 8 / (1538 * 8) * 1000 = 949.28...
        let one = line_rate_goodput_mbps(1);
        assert!((one - 949.28).abs() < 0.01, "got {one}");
        let two = line_rate_goodput_mbps(2);
        assert!((two - 1898.57).abs() < 0.02, "got {two}");
    }

    #[test]
    fn runt_frames_padded() {
        assert_eq!(wire_bytes(0), MIN_ETH_PAYLOAD + PER_FRAME_WIRE_OVERHEAD);
    }
}
