//! Shared PCI bus model for DMA transfers.

use cdna_sim::SimTime;

/// A completed PCI transfer: when it started moving data and when it
/// finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PciTransfer {
    /// When the transfer gained the bus.
    pub start: SimTime,
    /// When the last byte landed.
    pub done: SimTime,
}

/// A 64-bit / 66 MHz PCI segment shared by every device on it.
///
/// The RiceNIC sits on such a bus (paper §4); its theoretical peak is
/// 528 MB/s, and both NICs' DMA engines contend for it. The model is a
/// single serializing resource with a fixed per-transaction setup cost —
/// enough to capture that descriptor fetches and payload DMAs are not
/// free and that heavy bidirectional traffic shares one bus.
///
/// # Example
///
/// ```
/// use cdna_net::PciBus;
/// use cdna_sim::SimTime;
///
/// let mut bus = PciBus::new_64bit_66mhz();
/// let t = bus.dma(SimTime::ZERO, 1514);
/// assert!(t.done > t.start);
/// ```
#[derive(Debug, Clone)]
pub struct PciBus {
    /// Sustained bandwidth in bytes per second.
    bytes_per_sec: u64,
    /// Fixed arbitration + addressing cost per transaction.
    setup: SimTime,
    busy_until: SimTime,
    transfers: u64,
    bytes_moved: u64,
}

impl PciBus {
    /// A 64-bit/66 MHz PCI bus: 528 MB/s peak, derated to ~80 % sustained
    /// (typical for burst DMA with arbitration), 120 ns setup per
    /// transaction.
    pub fn new_64bit_66mhz() -> Self {
        PciBus::with_rate(422_000_000, SimTime::from_ns(120))
    }

    /// A bus with explicit sustained bandwidth and per-transfer setup.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    pub fn with_rate(bytes_per_sec: u64, setup: SimTime) -> Self {
        assert!(bytes_per_sec > 0, "bus bandwidth must be positive");
        PciBus {
            bytes_per_sec,
            setup,
            busy_until: SimTime::ZERO,
            transfers: 0,
            bytes_moved: 0,
        }
    }

    /// Performs a DMA of `bytes` starting no earlier than `now`, queueing
    /// behind any transfer already on the bus.
    pub fn dma(&mut self, now: SimTime, bytes: u32) -> PciTransfer {
        let start = self.busy_until.max(now);
        let move_ns = (bytes as u64 * 1_000_000_000).div_ceil(self.bytes_per_sec);
        let done = start + self.setup + SimTime::from_ns(move_ns);
        self.busy_until = done;
        self.transfers += 1;
        self.bytes_moved += bytes as u64;
        PciTransfer { start, done }
    }

    /// When the bus next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Number of transactions performed.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total bytes moved.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Fraction of the interval `[from, to)` the bus spent busy, assuming
    /// `to` is not before the last recorded activity... computed from
    /// total bytes moved and the configured rate.
    pub fn utilization(&self, from: SimTime, to: SimTime) -> f64 {
        let span = (to - from).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        let busy = self.bytes_moved as f64 / self.bytes_per_sec as f64
            + self.transfers as f64 * self.setup.as_secs_f64();
        (busy / span).min(1.0)
    }
}

impl Default for PciBus {
    fn default() -> Self {
        PciBus::new_64bit_66mhz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_size() {
        let mut bus = PciBus::with_rate(1_000_000_000, SimTime::ZERO); // 1 GB/s
        let small = bus.dma(SimTime::ZERO, 100);
        assert_eq!((small.done - small.start).as_ns(), 100);
        let big = bus.dma(small.done, 10_000);
        assert_eq!((big.done - big.start).as_ns(), 10_000);
    }

    #[test]
    fn transfers_serialize_on_the_bus() {
        let mut bus = PciBus::with_rate(1_000_000_000, SimTime::from_ns(50));
        let a = bus.dma(SimTime::ZERO, 1000);
        let b = bus.dma(SimTime::ZERO, 1000);
        assert_eq!(a.done.as_ns(), 1050);
        assert_eq!(b.start, a.done);
        assert_eq!(b.done.as_ns(), 2100);
    }

    #[test]
    fn default_bus_moves_a_frame_in_a_few_microseconds() {
        let mut bus = PciBus::new_64bit_66mhz();
        let t = bus.dma(SimTime::ZERO, 1514);
        let dur = (t.done - t.start).as_us_f64();
        assert!(dur > 3.0 && dur < 4.5, "1514B took {dur}us");
    }

    #[test]
    fn bus_is_fast_enough_for_two_gigabit_nics() {
        // Two saturated gigabit links need ~2 * 125 MB/s = 250 MB/s of
        // payload DMA; the 422 MB/s sustained bus must keep up.
        let mut bus = PciBus::new_64bit_66mhz();
        let mut now = SimTime::ZERO;
        // 1 ms of traffic: 2 links * 81.3 kframes/s ≈ 163 frames.
        for _ in 0..163 {
            now = bus.dma(now, 1514).done;
        }
        assert!(
            now < SimTime::from_ms(1),
            "bus saturated moving 2-NIC load: {now}"
        );
    }

    #[test]
    fn counters_and_utilization() {
        let mut bus = PciBus::with_rate(1_000_000_000, SimTime::ZERO);
        bus.dma(SimTime::ZERO, 500_000);
        assert_eq!(bus.transfers(), 1);
        assert_eq!(bus.bytes_moved(), 500_000);
        let u = bus.utilization(SimTime::ZERO, SimTime::from_ms(1));
        assert!((u - 0.5).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = PciBus::with_rate(0, SimTime::ZERO);
    }
}
