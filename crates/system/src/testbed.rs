//! Running experiments end to end.

use cdna_sim::Simulation;
use cdna_trace::Tracer;

use crate::world::trace;
use crate::{RunReport, SystemWorld, TestbedConfig};

/// What to capture beyond the report itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct Instrumentation {
    /// When `Some(n)`, attach an `n`-event ring tracer and export the
    /// run as Chrome trace JSON. `None` leaves tracing off — the hot
    /// path then costs one branch per decision point and allocates
    /// nothing.
    pub trace_capacity: Option<usize>,
    /// When true, copy the substrate components' counters into the
    /// report's [`cdna_trace::Registry`] at the end of the run.
    pub collect_metrics: bool,
}

/// A report plus any instrumentation artifacts captured alongside it.
#[derive(Debug, Clone)]
pub struct RunArtifacts {
    /// The run's report (with `metrics` populated if requested).
    pub report: RunReport,
    /// Chrome `trace_event` JSON for the run, when tracing was on.
    /// Load it at `ui.perfetto.dev` or `chrome://tracing`.
    pub chrome_trace: Option<String>,
}

/// Builds the machine for `cfg`, runs warm-up plus the measurement
/// window, and returns the report.
///
/// Runs are deterministic: the same configuration (including seed)
/// produces bit-identical reports.
///
/// # Example
///
/// ```
/// use cdna_core::DmaPolicy;
/// use cdna_system::{run_experiment, Direction, IoModel, TestbedConfig};
///
/// let cfg = TestbedConfig::new(
///     IoModel::Cdna { policy: DmaPolicy::Validated },
///     1,
///     Direction::Transmit,
/// )
/// .quick();
/// let report = run_experiment(cfg);
/// assert!(report.throughput_mbps > 0.0);
/// assert_eq!(report.protection_faults, 0);
/// ```
pub fn run_experiment(cfg: TestbedConfig) -> RunReport {
    run_instrumented(cfg, Instrumentation::default()).report
}

/// Like [`run_experiment`], but optionally records an event trace
/// and/or the full counter registry alongside the report.
pub fn run_instrumented(cfg: TestbedConfig, instr: Instrumentation) -> RunArtifacts {
    let guests = cfg.guests;
    let end = cfg.warmup + cfg.measure;
    let queue = cfg.queue;
    let mut sim = Simulation::with_queue(SystemWorld::build(cfg), queue);
    if let Some(capacity) = instr.trace_capacity {
        sim.attach_tracer(Tracer::new(capacity));
    }
    let primed = sim.world_mut().prime();
    for (t, e) in primed {
        sim.schedule(t, e);
    }
    sim.run_until(end);

    let events = sim.events_processed();
    let tracer = sim.take_tracer();
    let mut world = sim.into_world();

    let chrome_trace = tracer.map(|mut t| {
        t.name_process(trace::PID_CPU, "cpu");
        t.name_thread(trace::PID_CPU, 0, "hypervisor");
        for i in 0..world.domains.len() {
            let name = if i == 0 && guests > 0 {
                "driver".to_string()
            } else if guests > 0 {
                format!("guest{}", i - 1)
            } else {
                "native os".to_string()
            };
            t.name_thread(trace::PID_CPU, i as u32 + 1, &name);
        }
        for n in 0..world.nics.len() {
            t.name_process(trace::pid_nic(n), &format!("nic{n}"));
        }
        t.to_chrome_json()
    });
    let report = report_from_world(&mut world, events, instr.collect_metrics);
    RunArtifacts {
        report,
        chrome_trace,
    }
}

/// Assembles a [`RunReport`] from a finished world — the measurement
/// window must already have closed ([`crate::Event::StopMeasure`]
/// processed). Shared by [`run_instrumented`] and the `cdna-rack`
/// per-host reports, so a rack host's report is field-for-field the
/// same computation as a standalone run's.
pub fn report_from_world(world: &mut SystemWorld, events: u64, collect_metrics: bool) -> RunReport {
    let direction = world.cfg.direction;
    let window_s = world.cfg.measure.as_secs_f64();

    // Inter-VM runs measure delivery at the receiving guests' stacks;
    // otherwise transmit measures at the peer and receive at the guest.
    let payload_bytes_per_s = if world.cfg.inter_guest {
        world.meters.rx_payload.per_second()
    } else {
        match direction {
            crate::Direction::Transmit => world.meters.tx_payload.per_second(),
            crate::Direction::Receive => world.meters.rx_payload.per_second(),
        }
    };
    let (switches, flips, hypercalls, rx_dropped) = world.window_deltas();

    // Per-guest rates over the whole run (workload counters are not
    // windowed; the run is in steady state through warm-up anyway).
    let run_s = world.cfg.warmup.as_secs_f64() + world.cfg.measure.as_secs_f64();
    let receive_side = world.cfg.inter_guest || direction == crate::Direction::Receive;
    let per_guest_mbps: Vec<f64> = world
        .domains
        .iter()
        .filter_map(|d| d.workload.as_ref())
        .map(|w| {
            let bytes = if receive_side {
                w.total_rx_bytes()
            } else {
                w.total_tx_bytes()
            };
            bytes as f64 * 8.0 / run_s / 1e6
        })
        .collect();

    let metrics = if collect_metrics {
        world.collect_metrics();
        Some(world.registry.clone())
    } else {
        None
    };

    RunReport {
        label: world.cfg.io_model.label().to_string(),
        guests: world.cfg.guests,
        throughput_mbps: payload_bytes_per_s * 8.0 / 1e6,
        profile: world.ledger.profile(),
        nic_interrupts_per_s: world.meters.nic_irq.per_second(),
        guest_virq_per_s: world.meters.guest_virq.per_second(),
        driver_virq_per_s: world.meters.driver_virq.per_second(),
        packets: world.meters.packets,
        rx_dropped,
        page_flips_per_s: flips as f64 / window_s,
        hypercalls_per_s: hypercalls as f64 / window_s,
        domain_switches_per_s: switches as f64 / window_s,
        protection_faults: world.faults.len() as u64,
        per_guest_mbps,
        events_processed: events,
        metrics,
    }
}
