//! The benchmark workload (paper §5.1).
//!
//! "A multithreaded, event-driven, lightweight network benchmark program
//! was developed to distribute traffic across a configurable number of
//! connections. The benchmark program balances the bandwidth across all
//! connections to ensure fairness..." — each guest runs greedy streams
//! spread round-robin over its connections, which are in turn balanced
//! across the physical NICs.

use cdna_net::FlowId;

/// One guest's set of greedy connections.
///
/// # Example
///
/// ```
/// use cdna_system::GuestWorkload;
///
/// let mut w = GuestWorkload::new(0, 4, 2);
/// // Connections rotate, alternating NICs.
/// let a = w.next_tx();
/// let b = w.next_tx();
/// assert_ne!(a.nic, b.nic);
/// assert_ne!(a.flow.conn, b.flow.conn);
/// ```
#[derive(Debug, Clone)]
pub struct GuestWorkload {
    guest: u16,
    conns: u16,
    nics: u8,
    next_conn: u16,
    /// Per-connection transmitted byte counts (sequence offsets).
    tx_seq: Vec<u64>,
    /// Per-connection received byte counts (integrity checking).
    rx_seen: Vec<u64>,
}

/// One transmit unit: which flow, which NIC, and the flow's byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxUnit {
    /// The flow identifier.
    pub flow: FlowId,
    /// Which physical NIC carries this connection.
    pub nic: usize,
    /// Byte offset within the flow (the frame's sequence field).
    pub seq: u64,
}

impl GuestWorkload {
    /// Workload for `guest` with `conns` connections over `nics` NICs.
    ///
    /// # Panics
    ///
    /// Panics if `conns` or `nics` is zero.
    pub fn new(guest: u16, conns: u16, nics: u8) -> Self {
        assert!(conns > 0, "need at least one connection");
        assert!(nics > 0, "need at least one NIC");
        GuestWorkload {
            guest,
            conns,
            nics,
            next_conn: 0,
            tx_seq: vec![0; conns as usize],
            rx_seen: vec![0; conns as usize],
        }
    }

    /// The guest index.
    pub fn guest(&self) -> u16 {
        self.guest
    }

    /// Produces the next transmit unit of `payload` bytes, rotating
    /// fairly across connections.
    pub fn next_tx(&mut self) -> TxUnit {
        let conn = self.next_conn;
        self.next_conn = (self.next_conn + 1) % self.conns;
        let seq = self.tx_seq[conn as usize];
        TxUnit {
            flow: FlowId::new(self.guest, conn),
            nic: (conn % self.nics as u16) as usize,
            seq,
        }
    }

    /// Commits `bytes` transmitted on the unit's connection (advances
    /// the sequence).
    pub fn commit_tx(&mut self, unit: TxUnit, bytes: u32) {
        self.tx_seq[unit.flow.conn as usize] += bytes as u64;
    }

    /// Records `bytes` received on `conn`.
    pub fn record_rx(&mut self, conn: u16, bytes: u32) {
        if let Some(s) = self.rx_seen.get_mut(conn as usize) {
            *s += bytes as u64;
        }
    }

    /// Total bytes transmitted across connections.
    pub fn total_tx_bytes(&self) -> u64 {
        self.tx_seq.iter().sum()
    }

    /// Total bytes received across connections.
    pub fn total_rx_bytes(&self) -> u64 {
        self.rx_seen.iter().sum()
    }

    /// Max spread between the most- and least-served connections, in
    /// bytes — the fairness the paper's benchmark enforces.
    pub fn tx_imbalance(&self) -> u64 {
        let max = self.tx_seq.iter().copied().max().unwrap_or(0);
        let min = self.tx_seq.iter().copied().min().unwrap_or(0);
        max - min
    }
}

/// The peer machine's receive-side generator state for one NIC: rotates
/// destination flows fairly across every (guest, connection) pair
/// assigned to that NIC.
#[derive(Debug, Clone)]
pub struct PeerSource {
    targets: Vec<FlowId>,
    next: usize,
    seqs: Vec<u64>,
}

impl PeerSource {
    /// A source cycling over `targets`.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    pub fn new(targets: Vec<FlowId>) -> Self {
        assert!(!targets.is_empty(), "peer source needs targets");
        let n = targets.len();
        PeerSource {
            targets,
            next: 0,
            seqs: vec![0; n],
        }
    }

    /// The next (flow, sequence) to send; advances the rotation.
    pub fn next_frame(&mut self, bytes: u32) -> (FlowId, u64) {
        let i = self.next;
        self.next = (self.next + 1) % self.targets.len();
        let seq = self.seqs[i];
        self.seqs[i] += bytes as u64;
        (self.targets[i], seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connections_rotate_fairly() {
        let mut w = GuestWorkload::new(3, 4, 2);
        let mut conns = Vec::new();
        for _ in 0..8 {
            let u = w.next_tx();
            assert_eq!(u.flow.guest, 3);
            conns.push(u.flow.conn);
            w.commit_tx(u, 1460);
        }
        assert_eq!(conns, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(w.tx_imbalance(), 0);
        assert_eq!(w.total_tx_bytes(), 8 * 1460);
    }

    #[test]
    fn sequences_advance_per_connection() {
        let mut w = GuestWorkload::new(0, 2, 2);
        let a = w.next_tx();
        w.commit_tx(a, 1000);
        let _b = w.next_tx(); // conn 1, untouched
        let c = w.next_tx(); // conn 0 again
        assert_eq!(c.seq, 1000);
    }

    #[test]
    fn nic_assignment_balances() {
        let mut w = GuestWorkload::new(0, 4, 2);
        let nics: Vec<usize> = (0..4).map(|_| w.next_tx().nic).collect();
        assert_eq!(nics.iter().filter(|&&n| n == 0).count(), 2);
        assert_eq!(nics.iter().filter(|&&n| n == 1).count(), 2);
    }

    #[test]
    fn peer_source_rotates_and_sequences() {
        let mut p = PeerSource::new(vec![FlowId::new(0, 0), FlowId::new(1, 0)]);
        let (f1, s1) = p.next_frame(1460);
        let (f2, _) = p.next_frame(1460);
        let (f3, s3) = p.next_frame(1460);
        assert_eq!(f1, FlowId::new(0, 0));
        assert_eq!(f2, FlowId::new(1, 0));
        assert_eq!(f3, f1);
        assert_eq!(s1, 0);
        assert_eq!(s3, 1460);
    }

    #[test]
    fn rx_accounting() {
        let mut w = GuestWorkload::new(0, 2, 1);
        w.record_rx(0, 100);
        w.record_rx(1, 200);
        w.record_rx(9, 999); // out of range: ignored
        assert_eq!(w.total_rx_bytes(), 300);
    }
}
