//! Control-run differencing: canonical digests of victim-visible state.
//!
//! The paper's isolation claim (§3.3) is that a malicious or buggy
//! guest's damage is confined to its own context: every other guest's
//! traffic and protection state proceed exactly as if the attacker were
//! absent. `cdna-fuzz` tests that claim by running each adversarial
//! episode twice — once with the attacking persona active, once as a
//! no-attacker control — and requiring the *victim digest* of the two
//! finished worlds to be byte-identical.
//!
//! [`victim_digest`] serializes everything a victim guest can observe
//! or be billed for: its workload byte counters, its per-NIC protection
//! engine producers and pinned-page counts, its device-side consumer
//! indices and context counters, plus the global wire/interrupt meters
//! (the attacker's episodes are constructed so that only rejected or
//! faulting operations ever leave its own context — any global drift is
//! a protection-path bug by definition). The digest deliberately
//! excludes the fault log and the attacker's own contexts: those are
//! *supposed* to differ between an attack run and its control.

use cdna_core::ContextId;
use cdna_trace::json::JsonWriter;

use crate::world::NicSlot;
use crate::SystemWorld;

/// Serializes the victim-visible state of a finished world as canonical
/// JSON. `victims` is the number of leading guests to include —
/// normally `cfg.guests - cfg.idle_guests`, leaving the trailing
/// attacker slots out of the digest.
///
/// Two runs of the same configuration must produce byte-identical
/// digests unless something crossed a protection boundary; the digest is
/// ordered and hand-rolled precisely so "byte-identical" is meaningful.
pub fn victim_digest(world: &SystemWorld, victims: u16) -> String {
    let mut w = JsonWriter::with_capacity(4096);
    w.begin_object();
    w.key("schema");
    w.string("cdna-victim-digest/1");
    w.key("victims");
    w.number_u64(victims as u64);

    // Global data-path meters. Attacker activity that is rejected or
    // faults never reaches the wire, so these must match the control.
    w.key("meters");
    w.begin_object();
    w.key("packets");
    w.number_u64(world.meters.packets);
    w.key("tx_payload_events");
    w.number_u64(world.meters.tx_payload.events());
    w.key("rx_payload_events");
    w.number_u64(world.meters.rx_payload.events());
    w.key("nic_irq_events");
    w.number_u64(world.meters.nic_irq.events());
    w.key("guest_virq_events");
    w.number_u64(world.meters.guest_virq.events());
    w.end_object();

    // Event-channel conservation inputs (global, attacker included —
    // the attacker's channels only move during its benign bootstrap,
    // which the control run repeats).
    w.key("evtchn");
    w.begin_object();
    w.key("sent");
    w.number_u64(world.evt.sent());
    w.key("collected");
    w.number_u64(world.evt.collected());
    w.key("pending");
    w.number_u64(world.evt.pending_total());
    w.end_object();

    w.key("guests");
    w.begin_array();
    for g in 0..victims {
        w.begin_object();
        w.key("guest");
        w.number_u64(g as u64);
        let dom_index = world
            .domains
            .iter()
            .position(|d| d.id == cdna_mem::DomainId::guest(g));
        if let Some(idx) = dom_index {
            if let Some(wl) = &world.domains[idx].workload {
                w.key("tx_bytes");
                w.number_u64(wl.total_tx_bytes());
                w.key("rx_bytes");
                w.number_u64(wl.total_rx_bytes());
            }
            w.key("rx_host_queued");
            w.number_u64(world.domains[idx].rx_host.len() as u64);
        }
        w.key("contexts");
        w.begin_array();
        if let Some(ctxs) = world.ctx_of.get(g as usize) {
            for (nic, &ctx) in ctxs.iter().enumerate() {
                w.begin_object();
                w.key("nic");
                w.number_u64(nic as u64);
                w.key("ctx");
                w.number_u64(ctx.0 as u64);
                write_engine_state(&mut w, world, nic, ctx);
                write_device_state(&mut w, world, nic, ctx);
                w.end_object();
            }
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Protection-engine state for one victim context (CDNA runs only; Xen
/// runs have no engines and skip these keys).
fn write_engine_state(w: &mut JsonWriter, world: &SystemWorld, nic: usize, ctx: ContextId) {
    let Some(engine) = world.engines.get(nic) else {
        return;
    };
    if let Some((tx_p, rx_p)) = engine.producers(ctx) {
        w.key("engine_tx_producer");
        w.number_u64(tx_p);
        w.key("engine_rx_producer");
        w.number_u64(rx_p);
    }
    w.key("engine_pinned");
    w.number_u64(engine.pinned_pages(ctx).len() as u64);
}

/// Device-side state for one victim context.
fn write_device_state(w: &mut JsonWriter, world: &SystemWorld, nic: usize, ctx: ContextId) {
    let Some(NicSlot::Rice(dev)) = world.nics.get(nic) else {
        return;
    };
    w.key("dev_faulted");
    w.boolean(dev.is_faulted(ctx));
    w.key("dev_tx_consumer");
    w.number_u64(dev.tx_consumer(ctx));
    w.key("dev_rx_consumer");
    w.number_u64(dev.rx_consumer(ctx));
    w.key("dev_rx_available");
    w.number_u64(dev.rx_available(ctx));
    if let Some(c) = dev.context_counters(ctx) {
        w.key("dev_tx_descriptors");
        w.number_u64(c.tx_descriptors);
        w.key("dev_rx_descriptors");
        w.number_u64(c.rx_descriptors);
        w.key("dev_seq_checks");
        w.number_u64(c.seq_checks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_experiment, Direction, IoModel, SystemWorld, TestbedConfig};
    use cdna_core::DmaPolicy;
    use cdna_sim::Simulation;

    fn cdna_cfg() -> TestbedConfig {
        TestbedConfig::new(
            IoModel::Cdna {
                policy: DmaPolicy::Validated,
            },
            2,
            Direction::Transmit,
        )
        .quick()
    }

    fn finished_world(cfg: TestbedConfig) -> SystemWorld {
        let end = cfg.warmup + cfg.measure;
        let queue = cfg.queue;
        let mut sim = Simulation::with_queue(SystemWorld::build(cfg), queue);
        let primed = sim.world_mut().prime();
        for (t, e) in primed {
            sim.schedule(t, e);
        }
        sim.run_until(end);
        sim.into_world()
    }

    #[test]
    fn digest_is_deterministic() {
        let a = victim_digest(&finished_world(cdna_cfg()), 2);
        let b = victim_digest(&finished_world(cdna_cfg()), 2);
        assert_eq!(a, b);
        assert!(a.contains("cdna-victim-digest/1"));
        assert!(a.contains("engine_tx_producer"));
    }

    #[test]
    fn digest_sees_workload_differences() {
        // The CDNA transmit path is seed-independent, so perturb the
        // window instead: more simulated time means more victim bytes,
        // and the digest must see it.
        let a = victim_digest(&finished_world(cdna_cfg()), 2);
        let mut longer = cdna_cfg();
        longer.measure += cdna_sim::SimTime::from_ms(10);
        let b = victim_digest(&finished_world(longer), 2);
        assert_ne!(a, b, "longer window must produce a different digest");
    }

    #[test]
    fn idle_guest_is_excluded_and_inert() {
        // 2 victims + 1 idle attacker slot. The idle guest keeps its
        // contexts and rings but generates no traffic, and the digest
        // over the two victims leaves it out entirely.
        let cfg = || {
            TestbedConfig::new(
                IoModel::Cdna {
                    policy: DmaPolicy::Validated,
                },
                3,
                Direction::Transmit,
            )
            .quick()
            .with_idle_guests(1)
        };
        let with_idle = finished_world(cfg());
        let idle = with_idle
            .domains
            .iter()
            .find(|dm| dm.id == cdna_mem::DomainId::guest(2))
            .expect("idle guest built");
        assert!(idle.workload.is_none(), "idle guest must have no workload");
        assert_eq!(with_idle.ctx_of[2].len(), 2, "idle guest keeps contexts");
        let d = victim_digest(&with_idle, 2);
        assert!(d.contains("tx_bytes"));
        assert!(
            !d.contains("\"guest\":2"),
            "attacker slot must not appear in the victim digest"
        );
        // Idle-guest runs are themselves deterministic.
        let d2 = victim_digest(&finished_world(cfg()), 2);
        assert_eq!(d, d2);
    }

    #[test]
    fn xen_runs_digest_without_engines() {
        let cfg = TestbedConfig::new(
            IoModel::XenBridged {
                nic: crate::NicKind::Intel,
            },
            2,
            Direction::Transmit,
        )
        .quick();
        let d = victim_digest(&finished_world(cfg), 2);
        assert!(d.contains("tx_bytes"));
        assert!(!d.contains("engine_tx_producer"));
    }

    #[test]
    fn report_excludes_idle_guests() {
        let mut cfg = cdna_cfg().with_idle_guests(1);
        cfg.guests = 3; // 2 victims + 1 idle attacker slot
        let r = run_experiment(cfg);
        assert_eq!(r.per_guest_mbps.len(), 2, "idle guest not in per-guest");
        assert!(r.per_guest_mbps.iter().all(|&m| m > 0.0));
        assert_eq!(r.protection_faults, 0);
    }
}
