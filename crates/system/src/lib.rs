#![warn(missing_docs)]

//! Full-testbed assembly for the CDNA reproduction.
//!
//! This crate wires the substrates — discrete-event engine, memory,
//! NICs, hypervisor — into the paper's experimental machine: a
//! single-core Opteron host with two (or six) gigabit NICs connected to
//! an infinitely fast peer, running one of four I/O architectures:
//!
//! * native (unvirtualized) Linux — Table 1's baseline;
//! * Xen software I/O virtualization on an Intel NIC;
//! * Xen software I/O virtualization on the RiceNIC (base firmware);
//! * CDNA, with DMA protection enabled, disabled, or delegated to an
//!   IOMMU.
//!
//! [`run_experiment`] executes one configuration and returns a
//! [`RunReport`] with the throughput, six-way execution profile, and
//! interrupt rates the paper's tables print.
//!
//! ```
//! use cdna_system::{run_experiment, Direction, IoModel, NicKind, TestbedConfig};
//!
//! let report = run_experiment(
//!     TestbedConfig::new(IoModel::XenBridged { nic: NicKind::Intel }, 1, Direction::Transmit)
//!         .quick(),
//! );
//! assert!(report.throughput_mbps > 500.0);
//! ```

mod config;
mod costs;
mod diff;
mod report;
mod testbed;
mod workload;
mod world;

pub use cdna_sim::QueueKind;
pub use config::{Direction, IoModel, NicKind, TestbedConfig};
pub use costs::CostModel;
pub use diff::victim_digest;
pub use report::{Comparison, RunReport};
pub use testbed::{
    report_from_world, run_experiment, run_instrumented, Instrumentation, RunArtifacts,
};
pub use workload::{GuestWorkload, PeerSource, TxUnit};
pub use world::{
    DomainState, EgressFrame, Event, HostRx, Meters, NicSlot, PhysDriver, Role, SystemWorld,
};
