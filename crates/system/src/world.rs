//! The full-machine model: one Opteron CPU, physical memory, a PCI bus,
//! two (or more) gigabit NICs wired to an infinitely fast peer, a
//! hypervisor, and a set of domains running the benchmark workload.
//!
//! This is where the event-driven dynamics live; all component logic is
//! in the substrate crates. The world interprets NIC activity into
//! scheduled events, runs domains on the single CPU in scheduler order,
//! and charges every code path's cost to the execution-profile ledger.
//!
//! # Panics
//!
//! Unlike the substrate crates, the world is the top of the simulation:
//! there is no caller to propagate errors to, and a broken invariant
//! here (a lost mailbox, an unassigned context in the run queue) means
//! the simulated machine itself is inconsistent. Those states abort the
//! run immediately rather than produce a silently wrong benchmark.
// cdna-check: allow-file(panic): simulation top level — invariant
// breaks abort the run; there is no caller to return an error to.

use std::collections::VecDeque;

use cdna_check::shadow::{DmaShadow, ShadowDir, ShadowState};
use cdna_core::{
    layout::Mailbox, BitVectorRing, ContextId, DmaPolicy, FaultKind, ProtectionEngine,
    ProtectionFault,
};
use cdna_mem::{BufferSlice, DomainId, PageId, PhysMem};
use cdna_net::{framing, FlowId, Frame, GigabitWire, MacAddr, PciBus, WireDirection};
use cdna_nic::{
    ConventionalNic, FrameMeta, IrqReason, NicConfig, RingTable, RxDisposition, TxActivity,
    TxEmission,
};
use cdna_ricenic::{Activity, RiceNic};
use cdna_sim::{RateMeter, Scheduler, SimRng, SimTime, World};
use cdna_trace::{CounterId, Domain, MetricKey, Registry};
use cdna_xen::{
    BridgePort, CdnaGuestDriver, CpuLedger, EthernetBridge, EventChannels, ExecCategory,
    FrontBackChannel, NativeDriver, PvPacket, RunQueue, VirtualIrq,
};

use crate::{Direction, IoModel, NicKind, TestbedConfig};

/// Events driving the machine.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // Frame-carrying events dominate traffic anyway
pub enum Event {
    /// The CPU is free to run the next pending work item.
    CpuDispatch,
    /// A NIC raised a physical interrupt line.
    PhysIrq {
        /// NIC index.
        nic: usize,
        /// Direction that requested it.
        reason: IrqReason,
    },
    /// A previously emitted frame may start serializing onto the wire.
    EmissionDue {
        /// NIC index.
        nic: usize,
        /// The frame.
        frame: Frame,
    },
    /// A transmitted frame's last bit left the NIC (arrived at peer).
    WireTxDone {
        /// NIC index.
        nic: usize,
        /// The frame.
        frame: Frame,
    },
    /// A peer frame's last bit arrived at the NIC.
    WireRxArrive {
        /// NIC index.
        nic: usize,
        /// The frame.
        frame: Frame,
    },
    /// The peer generates its next receive-direction frame.
    PeerPump {
        /// NIC index.
        nic: usize,
    },
    /// Open the measurement window.
    StartMeasure,
    /// Close the measurement window.
    StopMeasure,
}

/// A physical NIC plus its link.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // a handful of slots exist per machine
pub enum NicSlot {
    /// Conventional single-context device.
    Conventional(ConventionalNic),
    /// RiceNIC running CDNA firmware.
    Rice(RiceNic),
}

/// A frame delivered by a NIC into some domain's host buffer, awaiting
/// stack processing.
#[derive(Debug, Clone)]
pub struct HostRx {
    /// NIC it arrived on.
    pub nic: usize,
    /// The frame.
    pub frame: Frame,
    /// The buffer it landed in.
    pub buf: BufferSlice,
}

/// A physical driver instance inside a domain, per NIC.
#[derive(Debug)]
pub enum PhysDriver {
    /// Native driver for a conventional NIC.
    Native(NativeDriver),
    /// CDNA driver for a RiceNIC context.
    Cdna(CdnaGuestDriver),
}

/// What a domain does.
#[derive(Debug)]
pub enum Role {
    /// The driver domain on the Xen software-virtualized path.
    DriverXen {
        /// One physical driver per NIC.
        drivers: Vec<PhysDriver>,
    },
    /// The driver domain in CDNA mode: off the data path entirely.
    DriverIdle,
    /// A guest on the Xen path (netfront).
    GuestXen {
        /// Transmit buffer pages.
        tx_pool: Vec<cdna_mem::PageId>,
    },
    /// A guest with direct CDNA access.
    GuestCdna {
        /// One CDNA driver per NIC (one context each).
        drivers: Vec<CdnaGuestDriver>,
    },
    /// The unvirtualized OS (native baseline).
    NativeOs {
        /// One native driver per NIC.
        drivers: Vec<NativeDriver>,
    },
}

/// One domain's scheduling and I/O state.
#[derive(Debug)]
pub struct DomainState {
    /// The domain's id.
    pub id: DomainId,
    /// What it runs.
    pub role: Role,
    /// NIC deliveries awaiting stack processing.
    pub rx_host: VecDeque<HostRx>,
    /// The benchmark workload (guests and the native OS).
    pub workload: Option<crate::GuestWorkload>,
}

impl DomainState {
    fn placeholder() -> Self {
        DomainState {
            id: DomainId::HYPERVISOR,
            role: Role::DriverIdle,
            rx_host: VecDeque::new(),
            workload: None,
        }
    }
}

/// Track-id conventions for exported Chrome traces: one process track
/// for the CPU, one per physical NIC.
pub mod trace {
    /// Process track for the (single) CPU.
    pub const PID_CPU: u32 = 0;

    /// Process track for physical NIC `n`.
    pub fn pid_nic(n: usize) -> u32 {
        1 + n as u32
    }
}

/// Pre-interned registry handles for hot-path counters, so increments
/// on the event path are a plain array add (no hashing, no allocation).
#[derive(Debug, Clone, Copy)]
struct HotIds {
    phys_irq: CounterId,
    guest_virq: CounterId,
    driver_virq: CounterId,
    world_switches: CounterId,
    shadow_violations: CounterId,
}

impl HotIds {
    fn new(reg: &mut Registry) -> Self {
        HotIds {
            phys_irq: reg.counter(MetricKey::new(Domain::Hypervisor, "irq", "physical")),
            guest_virq: reg.counter(MetricKey::new(Domain::Hypervisor, "irq", "guest_virtual")),
            driver_virq: reg.counter(MetricKey::new(Domain::Hypervisor, "irq", "driver_virtual")),
            world_switches: reg.counter(MetricKey::new(
                Domain::Hypervisor,
                "sched",
                "world_switches",
            )),
            shadow_violations: reg.counter(MetricKey::new(
                Domain::Global,
                "check",
                "shadow_violations",
            )),
        }
    }
}

/// Live state of the `cdna-check` DMA shadow checker
/// ([`TestbedConfig::shadow_check`]).
///
/// The world feeds the shadow by *reconciliation* rather than by inline
/// events: the hot path stays untouched, and at each sync point the
/// harness replays the descriptor sequence streams the hypervisor
/// produced since the last pass, diffs the engines' pinned-buffer lists
/// into the page mirror, and then runs the mirror-vs-reality audits.
#[derive(Debug, Default)]
struct ShadowHarness {
    shadow: DmaShadow,
    /// Next unread descriptor-ring index per (nic, ctx, dir).
    cursors: std::collections::BTreeMap<(usize, u8, ShadowDir), u64>,
    /// The engines' pinned-page multiset as of the last sync.
    pinned_view: std::collections::BTreeMap<PageId, u32>,
    /// Violations already surfaced as protection faults.
    reported: usize,
}

#[derive(Debug, Default, Clone, Copy)]
struct CounterSnap {
    switches: u64,
    flips: u64,
    hypercalls: u64,
    rx_dropped: u64,
}

/// Measurement state.
#[derive(Debug, Default)]
pub struct Meters {
    /// TCP payload bytes arriving at the peer (transmit throughput).
    pub tx_payload: RateMeter,
    /// TCP payload bytes delivered to guest applications (receive).
    pub rx_payload: RateMeter,
    /// Physical NIC interrupts.
    pub nic_irq: RateMeter,
    /// Virtual interrupts newly posted to guests.
    pub guest_virq: RateMeter,
    /// Virtual interrupts newly posted to the driver domain.
    pub driver_virq: RateMeter,
    /// Packets counted toward throughput in-window.
    pub packets: u64,
    start_snap: CounterSnap,
    end_snap: CounterSnap,
    in_window: bool,
}

/// A frame that left a rack host through its uplink: captured at wire
/// transmit completion, forwarded by the top-of-rack switch.
#[derive(Debug, Clone)]
pub struct EgressFrame {
    /// When the frame finished serializing onto the host's wire.
    pub at: SimTime,
    /// The NIC (and thus switch port) it departed through.
    pub nic: usize,
    /// The frame itself; `dst` selects the switch's output port.
    pub frame: Frame,
}

/// The complete simulated machine.
#[derive(Debug)]
pub struct SystemWorld {
    /// Run configuration.
    pub cfg: TestbedConfig,
    /// Physical memory.
    pub mem: PhysMem,
    /// All descriptor rings.
    pub rings: RingTable,
    /// Per-NIC PCI bus segments (the Tyan S2882 testbed hosts its NICs
    /// on independent PCI-X segments; each RiceNIC gets a 64-bit/66 MHz
    /// bus of its own).
    pub buses: Vec<PciBus>,
    /// NIC devices.
    pub nics: Vec<NicSlot>,
    /// Per-NIC full-duplex links to the peer.
    pub wires: Vec<GigabitWire>,
    /// Per-NIC protection engines (CDNA NICs only; empty otherwise).
    pub engines: Vec<ProtectionEngine>,
    /// Per-NIC interrupt bit-vector rings in hypervisor memory.
    pub vec_rings: Vec<BitVectorRing>,
    /// The driver domain's software bridge (Xen mode).
    pub bridge: EthernetBridge,
    /// Per-guest paravirtualized channels (Xen mode).
    pub channels: Vec<FrontBackChannel>,
    /// Event channels (virtual interrupts).
    pub evt: EventChannels,
    /// The vcpu run queue.
    pub runq: RunQueue,
    /// CPU time ledger.
    pub ledger: CpuLedger,
    /// All domains: `[0]` is the driver domain (or the native OS).
    pub domains: Vec<DomainState>,
    /// Measurement state.
    pub meters: Meters,
    /// Per-NIC peer traffic sources (receive direction).
    pub peers: Vec<Option<crate::PeerSource>>,
    /// flow → destination MAC for peer-generated traffic.
    flow_dst: std::collections::BTreeMap<FlowId, MacAddr>,
    /// MACs that terminate on this host; `Some` marks the world as one
    /// host of a rack whose non-local frames leave through the uplink
    /// (see [`SystemWorld::enable_uplink`]).
    local_macs: Option<std::collections::BTreeSet<MacAddr>>,
    /// Per-guest, per-NIC destination override for cross-host flows
    /// (set by the rack; empty for standalone runs).
    remote_dst: Vec<Vec<MacAddr>>,
    /// Frames captured at the uplink this epoch, awaiting the rack's
    /// top-of-rack switch.
    egress: Vec<EgressFrame>,
    /// Per-NIC MACs whose frames the external switch hairpins back to
    /// this host (CDNA inter-VM traffic; empty otherwise).
    hairpin_macs: Vec<std::collections::BTreeSet<MacAddr>>,
    /// Per-guest, per-NIC CDNA context ids.
    pub ctx_of: Vec<Vec<ContextId>>,
    /// Protection faults observed.
    pub faults: Vec<ProtectionFault>,
    /// Receive packets dropped by netback because the destination guest
    /// had no credit pages posted (guest overloaded).
    pub rx_credit_drops: u64,
    /// Deterministic RNG (reserved for jittered extensions).
    pub rng: SimRng,
    /// Metric counters/histograms (`cdna-trace`). Hot paths increment
    /// through pre-interned handles; component stats are copied in by
    /// [`SystemWorld::collect_metrics`] at report time.
    pub registry: Registry,
    hot: HotIds,
    /// DMA shadow checker, present when [`TestbedConfig::shadow_check`]
    /// is set.
    shadow: Option<ShadowHarness>,

    cpu_busy_until: SimTime,
    dispatch_pending: bool,
    pending_irqs: VecDeque<(usize, IrqReason)>,
    dispatch_cost: SimTime,
    nic_irq_count: u64,
}

impl World for SystemWorld {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, sched: &mut Scheduler<Event>) {
        // Keep the profile sampler's cursor at the event clock so every
        // charge lands in the sampling slice containing `now`.
        self.ledger.advance_to(now);
        match event {
            Event::CpuDispatch => self.on_cpu_dispatch(now, sched),
            Event::PhysIrq { nic, reason } => self.on_phys_irq(now, sched, nic, reason),
            Event::EmissionDue { nic, frame } => self.on_emission_due(now, sched, nic, frame),
            Event::WireTxDone { nic, frame } => self.on_wire_tx_done(now, sched, nic, frame),
            Event::WireRxArrive { nic, frame } => self.on_wire_rx_arrive(now, sched, nic, frame),
            Event::PeerPump { nic } => self.on_peer_pump(now, sched, nic),
            Event::StartMeasure => {
                if let Some(t) = sched.tracer_mut() {
                    t.instant(
                        "start_measure",
                        "measure",
                        now.as_ns(),
                        trace::PID_CPU,
                        0,
                        None,
                    );
                }
                self.on_start_measure(now);
            }
            Event::StopMeasure => {
                if let Some(t) = sched.tracer_mut() {
                    t.instant(
                        "stop_measure",
                        "measure",
                        now.as_ns(),
                        trace::PID_CPU,
                        0,
                        None,
                    );
                }
                self.on_stop_measure(now);
                if self.shadow.is_some() {
                    let new = self.shadow_sync();
                    if let Some(t) = sched.tracer_mut() {
                        t.instant(
                            "shadow_audit",
                            "check",
                            now.as_ns(),
                            trace::PID_CPU,
                            0,
                            Some(("violations", new as u64)),
                        );
                    }
                }
            }
        }
    }
}

impl SystemWorld {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Builds the machine described by `cfg` with all domains, NICs,
    /// rings, pools, and initial receive posting in place.
    pub fn build(cfg: TestbedConfig) -> Self {
        let guests = if cfg.is_virtualized() { cfg.guests } else { 1 };
        // Trailing idle guests keep their full device plumbing but get
        // no workload: prime() never wakes them and per-guest reporting
        // skips them (see TestbedConfig::idle_guests).
        let active_guests = guests - cfg.idle_guests.min(guests);
        let nic_count = cfg.nics as usize;
        let pages = 60_000 + guests as u32 * nic_count as u32 * 1600;
        let mut mem = PhysMem::new(pages);
        let mut rings = RingTable::new();
        let mut engines = Vec::new();
        let mut vec_rings = Vec::new();
        let mut nics = Vec::new();
        let mut wires = Vec::new();
        let mut bridge = EthernetBridge::new();
        let mut channels = Vec::new();
        let mut ctx_of: Vec<Vec<ContextId>> = vec![Vec::new(); guests as usize];
        let mut domains = Vec::new();

        let rng = SimRng::seed_from(cfg.seed);

        match cfg.io_model {
            IoModel::Native { nic } => {
                let os = DomainId::guest(0);
                let mut drivers = Vec::new();
                for i in 0..nic_count {
                    let (dev, drv) =
                        build_conventional(i, nic, os, false, &cfg, &mut mem, &mut rings);
                    nics.push(NicSlot::Conventional(dev));
                    wires.push(GigabitWire::new());
                    drivers.push(drv);
                }
                domains.push(DomainState {
                    id: os,
                    role: Role::NativeOs { drivers },
                    rx_host: VecDeque::new(),
                    workload: Some(crate::GuestWorkload::new(0, cfg.conns_per_guest, cfg.nics)),
                });
            }
            IoModel::XenBridged { nic } => {
                // Driver domain terminates the physical NICs.
                let mut drivers = Vec::new();
                for i in 0..nic_count {
                    match nic {
                        NicKind::Intel => {
                            let (dev, drv) = build_conventional(
                                i,
                                nic,
                                DomainId::DRIVER,
                                true,
                                &cfg,
                                &mut mem,
                                &mut rings,
                            );
                            nics.push(NicSlot::Conventional(dev));
                            drivers.push(PhysDriver::Native(drv));
                        }
                        NicKind::RiceNic => {
                            // The RiceNIC under software virtualization:
                            // dom0 owns one CDNA context; guests have none.
                            let mut dev = RiceNic::new(i as u8, cfg.ricenic.clone());
                            let mut engine = ProtectionEngine::new();
                            let ctx = engine
                                .assign_context(
                                    DomainId::DRIVER,
                                    DmaPolicy::Validated,
                                    cfg.ring_size,
                                    &mut rings,
                                    &mut mem,
                                )
                                .expect("context assignment");
                            let st = engine.contexts().state(ctx).expect("assigned");
                            dev.attach_context(ctx, st.tx_ring, st.rx_ring, true, &rings)
                                .expect("attach");
                            dev.set_promiscuous_ctx(Some(ctx));
                            let drv = CdnaGuestDriver::new(
                                DomainId::DRIVER,
                                ctx,
                                DmaPolicy::Validated,
                                st.tx_ring,
                                st.rx_ring,
                                cfg.ring_size,
                                cfg.ring_size + cfg.batch_limit + 16,
                                cfg.ring_size + cfg.batch_limit + 16,
                                &mut mem,
                            )
                            .expect("driver alloc");
                            // dom0's context MAC stands in for the port;
                            // the device must also accept guests' vif MACs,
                            // which the CDNA firmware demuxes per context —
                            // in softvirt mode all traffic flows through
                            // dom0's single context, so peers address it.
                            nics.push(NicSlot::Rice(dev));
                            engines.push(engine);
                            vec_rings.push(BitVectorRing::new(64));
                            drivers.push(PhysDriver::Cdna(drv));
                        }
                    }
                    wires.push(GigabitWire::new());
                }
                domains.push(DomainState {
                    id: DomainId::DRIVER,
                    role: Role::DriverXen { drivers },
                    rx_host: VecDeque::new(),
                    workload: None,
                });
                for g in 0..guests {
                    let dom = DomainId::guest(g);
                    let mut chan = FrontBackChannel::new(dom, cfg.ring_size as usize);
                    let pool_size = cfg.ring_size + cfg.batch_limit + 16;
                    let tx_pool = mem.alloc_many(dom, pool_size).expect("guest tx pool");
                    for _ in 0..cfg.ring_size {
                        let credit = mem.alloc(dom).expect("guest rx credit");
                        chan.front_post_rx_credit(credit);
                    }
                    channels.push(chan);
                    bridge.learn(MacAddr::for_vif(g), BridgePort::Frontend(dom));
                    domains.push(DomainState {
                        id: dom,
                        role: Role::GuestXen { tx_pool },
                        rx_host: VecDeque::new(),
                        workload: (g < active_guests)
                            .then(|| crate::GuestWorkload::new(g, cfg.conns_per_guest, cfg.nics)),
                    });
                }
                for i in 0..nic_count {
                    bridge.learn(MacAddr::for_peer(i as u8), BridgePort::Physical(i));
                }
            }
            IoModel::Cdna { policy } => {
                for i in 0..nic_count {
                    nics.push(NicSlot::Rice(RiceNic::new(i as u8, cfg.ricenic.clone())));
                    wires.push(GigabitWire::new());
                    engines.push(ProtectionEngine::new());
                    vec_rings.push(BitVectorRing::new(64));
                }
                // Driver domain exists for control but is off the path.
                domains.push(DomainState {
                    id: DomainId::DRIVER,
                    role: Role::DriverIdle,
                    rx_host: VecDeque::new(),
                    workload: None,
                });
                for g in 0..guests {
                    let dom = DomainId::guest(g);
                    let mut drivers = Vec::new();
                    for i in 0..nic_count {
                        let ctx = engines[i]
                            .assign_context(dom, policy, cfg.ring_size, &mut rings, &mut mem)
                            .expect("context assignment");
                        let st = engines[i].contexts().state(ctx).expect("assigned");
                        let NicSlot::Rice(dev) = &mut nics[i] else {
                            unreachable!("CDNA mode uses RiceNICs");
                        };
                        dev.attach_context(
                            ctx,
                            st.tx_ring,
                            st.rx_ring,
                            policy == DmaPolicy::Validated,
                            &rings,
                        )
                        .expect("attach");
                        if policy == DmaPolicy::Iommu {
                            if dev.iommu().is_none() {
                                dev.install_iommu();
                            }
                            dev.iommu_mut().expect("installed").enable(ctx);
                        }
                        ctx_of[g as usize].push(ctx);
                        let pool = cfg.ring_size + cfg.batch_limit + 16;
                        drivers.push(
                            CdnaGuestDriver::new(
                                dom,
                                ctx,
                                policy,
                                st.tx_ring,
                                st.rx_ring,
                                cfg.ring_size,
                                pool,
                                pool,
                                &mut mem,
                            )
                            .expect("driver alloc"),
                        );
                    }
                    domains.push(DomainState {
                        id: dom,
                        role: Role::GuestCdna { drivers },
                        rx_host: VecDeque::new(),
                        workload: (g < active_guests)
                            .then(|| crate::GuestWorkload::new(g, cfg.conns_per_guest, cfg.nics)),
                    });
                }
            }
        }

        let nic_total = cfg.nics;
        let mut registry = Registry::new();
        let hot = HotIds::new(&mut registry);
        let shadow = cfg.shadow_check.then(ShadowHarness::default);
        let mut world = SystemWorld {
            cfg,
            mem,
            rings,
            buses: (0..nic_total).map(|_| PciBus::new_64bit_66mhz()).collect(),
            nics,
            wires,
            engines,
            vec_rings,
            bridge,
            channels,
            evt: EventChannels::new(),
            runq: RunQueue::new(),
            ledger: CpuLedger::new(),
            domains,
            meters: Meters::default(),
            peers: Vec::new(),
            flow_dst: std::collections::BTreeMap::new(),
            local_macs: None,
            remote_dst: Vec::new(),
            egress: Vec::new(),
            hairpin_macs: (0..nic_total).map(|_| Default::default()).collect(),
            ctx_of,
            faults: Vec::new(),
            rx_credit_drops: 0,
            rng,
            registry,
            hot,
            shadow,
            cpu_busy_until: SimTime::ZERO,
            dispatch_pending: false,
            pending_irqs: VecDeque::new(),
            dispatch_cost: SimTime::ZERO,
            nic_irq_count: 0,
        };
        if world.cfg.inter_guest {
            assert!(
                world.cfg.is_virtualized() && guests >= 2,
                "inter-VM traffic needs two virtualized guests"
            );
            // CDNA inter-VM frames leave the host and come back through
            // the external switch: record which destination MACs hairpin.
            if matches!(world.cfg.io_model, IoModel::Cdna { .. }) {
                for nic in 0..nic_total as usize {
                    let NicSlot::Rice(dev) = &world.nics[nic] else {
                        unreachable!()
                    };
                    for g in 0..guests as usize {
                        let mac = dev.mac_for(world.ctx_of[g][nic]);
                        world.hairpin_macs[nic].insert(mac);
                    }
                }
            }
        }
        world.initial_rx_posting();
        world.build_peer_sources();
        world
    }

    /// Primes every receive path: rx descriptors posted, credits ready.
    fn initial_rx_posting(&mut self) {
        let now = SimTime::ZERO;
        for d in 0..self.domains.len() {
            let mut dom = std::mem::replace(&mut self.domains[d], DomainState::placeholder());
            match &mut dom.role {
                Role::NativeOs { drivers } => {
                    for (i, drv) in drivers.iter_mut().enumerate() {
                        let posted = drv.post_rx(self.cfg.ring_size, &mut self.rings).unwrap();
                        if posted > 0 {
                            if let NicSlot::Conventional(dev) = &mut self.nics[i] {
                                dev.rx_doorbell(drv.rx_producer());
                            }
                        }
                    }
                }
                Role::DriverXen { drivers } => {
                    for (i, drv) in drivers.iter_mut().enumerate() {
                        match drv {
                            PhysDriver::Native(n) => {
                                let posted =
                                    n.post_rx(self.cfg.ring_size, &mut self.rings).unwrap();
                                if posted > 0 {
                                    if let NicSlot::Conventional(dev) = &mut self.nics[i] {
                                        dev.rx_doorbell(n.rx_producer());
                                    }
                                }
                            }
                            PhysDriver::Cdna(c) => {
                                let outcome = c
                                    .post_rx_validated(
                                        self.cfg.ring_size,
                                        &mut self.engines[i],
                                        0,
                                        &mut self.rings,
                                        &mut self.mem,
                                    )
                                    .expect("initial rx post");
                                if let Some(out) = outcome {
                                    if let NicSlot::Rice(dev) = &mut self.nics[i] {
                                        let _ = dev.mailbox_write(
                                            now,
                                            c.ctx(),
                                            Mailbox::RxProducer.index(),
                                            out.producer,
                                            &self.rings,
                                            &mut self.buses[i],
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
                Role::GuestCdna { drivers } => {
                    for (i, drv) in drivers.iter_mut().enumerate() {
                        let producer = match drv.policy() {
                            DmaPolicy::Validated => drv
                                .post_rx_validated(
                                    self.cfg.ring_size,
                                    &mut self.engines[i],
                                    0,
                                    &mut self.rings,
                                    &mut self.mem,
                                )
                                .expect("initial rx post")
                                .map(|o| o.producer),
                            DmaPolicy::Iommu => {
                                let NicSlot::Rice(dev) = &mut self.nics[i] else {
                                    unreachable!()
                                };
                                let iommu = dev.iommu_mut().expect("installed");
                                drv.post_rx_iommu(self.cfg.ring_size, iommu, &mut self.rings)
                                    .map(|(p, _)| p)
                            }
                            DmaPolicy::Unprotected => {
                                drv.post_rx_direct(self.cfg.ring_size, &mut self.rings)
                            }
                        };
                        if let Some(p) = producer {
                            if let NicSlot::Rice(dev) = &mut self.nics[i] {
                                let _ = dev.mailbox_write(
                                    now,
                                    drv.ctx(),
                                    Mailbox::RxProducer.index(),
                                    p,
                                    &self.rings,
                                    &mut self.buses[i],
                                );
                            }
                        }
                    }
                }
                Role::GuestXen { .. } | Role::DriverIdle => {}
            }
            self.domains[d] = dom;
        }
    }

    /// Builds the peer's per-NIC traffic sources and destination map
    /// for receive-direction runs.
    fn build_peer_sources(&mut self) {
        self.peers = (0..self.cfg.nics as usize).map(|_| None).collect();
        if self.cfg.direction != Direction::Receive {
            return;
        }
        let guests = if self.cfg.is_virtualized() {
            self.cfg.guests
        } else {
            1
        };
        let mut per_nic: Vec<Vec<FlowId>> = vec![Vec::new(); self.cfg.nics as usize];
        for g in 0..guests {
            for c in 0..self.cfg.conns_per_guest {
                let nic = (c % self.cfg.nics as u16) as usize;
                let flow = FlowId::new(g, c);
                per_nic[nic].push(flow);
                let dst = self.rx_dst_mac(g, nic);
                self.flow_dst.insert(flow, dst);
            }
        }
        for (nic, flows) in per_nic.into_iter().enumerate() {
            if !flows.is_empty() {
                self.peers[nic] = Some(crate::PeerSource::new(flows));
            }
        }
    }

    /// Marks this world as one host of a multi-host rack: transmitted
    /// frames whose destination MAC does not terminate on this host are
    /// captured into the egress buffer (see
    /// [`SystemWorld::drain_egress`]) for the rack's top-of-rack switch
    /// instead of sinking at the local peer.
    pub fn enable_uplink(&mut self) {
        let mut local = std::collections::BTreeSet::new();
        for nic in 0..self.cfg.nics as usize {
            local.insert(MacAddr::for_peer(nic as u8));
            if let NicSlot::Rice(dev) = &self.nics[nic] {
                for per_guest in &self.ctx_of {
                    local.insert(dev.mac_for(per_guest[nic]));
                }
            }
        }
        for g in 0..self.cfg.guests {
            local.insert(MacAddr::for_vif(g));
        }
        self.local_macs = Some(local);
    }

    /// Overrides the destination MAC of every guest transmission:
    /// `dst[g][nic]` addresses guest `g`'s flows on `nic`, typically at
    /// a context on another rack host. Standalone runs never call this.
    pub fn set_remote_dst(&mut self, dst: Vec<Vec<MacAddr>>) {
        self.remote_dst = dst;
    }

    /// Takes the frames captured at the uplink since the last drain,
    /// in wire-completion order.
    pub fn drain_egress(&mut self) -> Vec<EgressFrame> {
        std::mem::take(&mut self.egress)
    }

    /// The destination MAC a frame must carry to reach `guest` on
    /// `nic`: its CDNA context address, or its vif address under Xen.
    /// The rack reads this from the destination host to build the
    /// cross-host [`SystemWorld::set_remote_dst`] table.
    pub fn guest_rx_mac(&self, guest: u16, nic: usize) -> MacAddr {
        self.rx_dst_mac(guest, nic)
    }

    /// Folds a RiceNIC [`Activity`] produced *outside* the event loop
    /// back into the world: faults are recorded, the activity's buffers
    /// are recycled, and the emissions/interrupt it wants scheduled are
    /// returned as `(time, event)` pairs for the caller to hand to
    /// [`cdna_sim::Simulation::schedule`].
    ///
    /// This is the injection seam for adversarial harnesses
    /// (`cdna-fuzz`): a persona drives a device mailbox directly between
    /// `run_until` steps and this method routes the consequences through
    /// exactly the same scheduling rules the event loop uses
    /// (`schedule_emissions` / `schedule_irq`), so an injected run and
    /// an event-loop run handle device activity identically.
    pub fn absorb_nic_activity(
        &mut self,
        now: SimTime,
        nic: usize,
        mut act: Activity,
    ) -> Vec<(SimTime, Event)> {
        let mut events = Vec::new();
        self.faults.extend(act.faults.iter().copied());
        for e in act.emissions.drain(..) {
            events.push((
                e.ready_at.max(now),
                Event::EmissionDue {
                    nic,
                    frame: e.frame,
                },
            ));
        }
        if let Some((at, reason)) = act.irq_at {
            events.push((at.max(now), Event::PhysIrq { nic, reason }));
        }
        self.recycle_rice(nic, act);
        events
    }

    /// Destination MAC for guest `g`'s transmissions on `nic`: the
    /// external peer, or — in inter-VM mode — the next sibling guest.
    fn tx_dst_mac(&self, g: u16, nic: usize) -> MacAddr {
        if let Some(mac) = self.remote_dst.get(g as usize).and_then(|v| v.get(nic)) {
            return *mac;
        }
        if !self.cfg.inter_guest {
            return MacAddr::for_peer(nic as u8);
        }
        let guests = self.cfg.guests;
        let partner = (g + 1) % guests;
        match self.cfg.io_model {
            IoModel::XenBridged { .. } => MacAddr::for_vif(partner),
            IoModel::Cdna { .. } => {
                let ctx = self.ctx_of[partner as usize][nic];
                let NicSlot::Rice(dev) = &self.nics[nic] else {
                    unreachable!()
                };
                dev.mac_for(ctx)
            }
            IoModel::Native { .. } => unreachable!("inter-VM needs a VMM"),
        }
    }

    fn rx_dst_mac(&self, guest: u16, nic: usize) -> MacAddr {
        match self.cfg.io_model {
            IoModel::Native { .. } => match &self.nics[nic] {
                NicSlot::Conventional(dev) => dev.mac(),
                NicSlot::Rice(dev) => dev.mac_for(ContextId(1)),
            },
            IoModel::XenBridged { nic: kind } => match kind {
                NicKind::Intel => MacAddr::for_vif(guest),
                // Softvirt RiceNIC: everything lands in dom0's context;
                // the bridge then demuxes on the inner (vif) MAC, which
                // we model by addressing the vif through dom0's context.
                NicKind::RiceNic => MacAddr::for_vif(guest),
            },
            IoModel::Cdna { .. } => {
                let ctx = self.ctx_of[guest as usize][nic];
                match &self.nics[nic] {
                    NicSlot::Rice(dev) => dev.mac_for(ctx),
                    NicSlot::Conventional(_) => unreachable!("CDNA uses RiceNICs"),
                }
            }
        }
    }

    /// The domain index that terminates physical NIC deliveries.
    fn host_domain_index(&self) -> usize {
        // domains[0] is the driver domain (Xen) or the native OS.
        0
    }

    // ------------------------------------------------------------------
    // Measurement
    // ------------------------------------------------------------------

    fn snapshot(&self) -> CounterSnap {
        CounterSnap {
            switches: self.runq.switches(),
            flips: self.channels.iter().map(|c| c.stats().page_flips).sum(),
            hypercalls: self.engines.iter().map(|e| e.stats().hypercalls).sum(),
            rx_dropped: self
                .nics
                .iter()
                .map(|n| match n {
                    NicSlot::Conventional(d) => d.stats().rx_dropped,
                    NicSlot::Rice(d) => d.stats().rx_dropped,
                })
                .sum(),
        }
    }

    fn on_start_measure(&mut self, now: SimTime) {
        self.ledger.start_window(now);
        self.meters.tx_payload.start(now);
        self.meters.rx_payload.start(now);
        self.meters.nic_irq.start(now);
        self.meters.guest_virq.start(now);
        self.meters.driver_virq.start(now);
        self.meters.packets = 0;
        self.meters.start_snap = self.snapshot();
        self.meters.in_window = true;
    }

    fn on_stop_measure(&mut self, now: SimTime) {
        // The CPU may be mid-batch; the ledger only accepts charges
        // inside the window, so close it exactly here.
        self.ledger.close_window(now);
        self.meters.tx_payload.stop(now);
        self.meters.rx_payload.stop(now);
        self.meters.nic_irq.stop(now);
        self.meters.guest_virq.stop(now);
        self.meters.driver_virq.stop(now);
        self.meters.end_snap = self.snapshot();
        self.meters.in_window = false;
    }

    /// Read-only view of the live DMA shadow checker, when
    /// [`TestbedConfig::shadow_check`] is set.
    pub fn shadow(&self) -> Option<&DmaShadow> {
        self.shadow.as_ref().map(|h| &h.shadow)
    }

    /// Runs one shadow-checker synchronisation pass (no-op unless
    /// [`TestbedConfig::shadow_check`] is set):
    ///
    /// 1. replays every descriptor the hypervisor stamped since the
    ///    last pass into the shadow's per-(context, direction)
    ///    sequence streams (detects replay and gaps);
    /// 2. reconciles the protection engines' pinned-buffer lists into
    ///    the page mirror (detects pin-lifecycle violations);
    /// 3. cross-checks the mirror against the engines and — in CDNA
    ///    mode, where every pin traces back to a validated
    ///    descriptor — against the whole [`PhysMem`] pool. (Xen's
    ///    grant-mapping path pins pages outside the engines, so the
    ///    whole-pool audit is only sound without a driver domain.)
    ///
    /// New violations become [`FaultKind::ShadowViolation`] protection
    /// faults attributed to the offending context; the count of new
    /// violations is returned. Called automatically at
    /// [`Event::StopMeasure`]; callers may also invoke it directly at
    /// any quiescent point.
    pub fn shadow_sync(&mut self) -> usize {
        let Some(h) = self.shadow.as_mut() else {
            return 0;
        };
        let modulus = (self.cfg.ring_size * 2).max(4);
        // One pass over every assigned context: gather the engine-side
        // pinned lists and replay newly produced descriptors.
        let mut pinned_lists: Vec<(ContextId, Vec<PageId>)> = Vec::new();
        for (nic, engine) in self.engines.iter().enumerate() {
            for c in 0..=u8::MAX {
                let ctx = ContextId(c);
                let Ok(st) = engine.contexts().state(ctx) else {
                    continue;
                };
                pinned_lists.push((ctx, engine.pinned_pages(ctx)));
                // Only the hypervisor stamps sequence numbers
                // (Validated policy); direct and IOMMU descriptors
                // carry seq 0 and are not stream-checked.
                if st.policy != DmaPolicy::Validated {
                    continue;
                }
                let Some((txp, rxp)) = engine.producers(ctx) else {
                    continue;
                };
                for (dir, ring, prod) in [
                    (ShadowDir::Tx, st.tx_ring, txp),
                    (ShadowDir::Rx, st.rx_ring, rxp),
                ] {
                    let cur = h.cursors.entry((nic, c, dir)).or_insert(0);
                    // Only the last ring-size descriptors still exist;
                    // older slots have been overwritten by later laps.
                    // If the ring wrapped past the cursor since the
                    // last pass, skip ahead and reseed the stream — the
                    // hole's continuity cannot be judged from memory.
                    let oldest = prod.saturating_sub(u64::from(self.cfg.ring_size));
                    if *cur < oldest {
                        h.shadow.reset_seq_on(nic as u16, ctx, dir);
                        *cur = oldest;
                    }
                    while *cur < prod {
                        if let Ok(desc) = self.rings.read(ring, *cur) {
                            h.shadow
                                .observe_seq_on(nic as u16, ctx, dir, desc.seq, modulus);
                        }
                        *cur += 1;
                    }
                }
            }
        }
        // Reconcile the engines' pinned multiset into the page mirror.
        let mut desired: std::collections::BTreeMap<PageId, u32> = Default::default();
        for (_, pages) in &pinned_lists {
            for &page in pages {
                *desired.entry(page).or_insert(0) += 1;
            }
        }
        let keys: std::collections::BTreeSet<PageId> = h
            .pinned_view
            .keys()
            .chain(desired.keys())
            .copied()
            .collect();
        for page in keys {
            let have = h.pinned_view.get(&page).copied().unwrap_or(0);
            let want = desired.get(&page).copied().unwrap_or(0);
            if want > have && h.shadow.state(page) == ShadowState::Free {
                // First sighting: seed ownership from the live pool. An
                // unowned page stays untracked and the pin below is
                // flagged as pin-without-owner — a real violation.
                if let Ok(info) = self.mem.info(page) {
                    if let Some(owner) = info.owner {
                        h.shadow.on_alloc(owner, page);
                    }
                }
            }
            for _ in have..want {
                h.shadow.on_pin(page);
            }
            for _ in want..have {
                h.shadow.on_unpin(page);
            }
            if want == 0 {
                // Fully reaped: retire the mirror entry so the mirror
                // tracks exactly the engine-pinned set.
                if let Some(owner) = h.shadow.owner(page) {
                    h.shadow.on_free(owner, page);
                }
            }
        }
        h.pinned_view = desired;
        // Mirror-vs-reality audits.
        for (ctx, pages) in &pinned_lists {
            h.shadow.audit_pinned(*ctx, pages);
        }
        if matches!(self.cfg.io_model, IoModel::Cdna { .. }) {
            h.shadow.audit_mem(&self.mem);
        }
        // Surface new violations as per-guest protection faults.
        let new = &h.shadow.violations()[h.reported..];
        let count = new.len();
        let faults: Vec<ProtectionFault> = new
            .iter()
            .map(|v| ProtectionFault {
                ctx: v.ctx.unwrap_or(ContextId(0)),
                kind: FaultKind::ShadowViolation {
                    code: v.kind.code(),
                },
            })
            .collect();
        h.reported += count;
        self.faults.extend(faults);
        for _ in 0..count {
            self.registry.inc(self.hot.shadow_violations);
        }
        count
    }

    /// Counter deltas over the measurement window.
    pub fn window_deltas(&self) -> (u64, u64, u64, u64) {
        let s = self.meters.start_snap;
        let e = self.meters.end_snap;
        (
            e.switches - s.switches,
            e.flips - s.flips,
            e.hypercalls - s.hypercalls,
            e.rx_dropped - s.rx_dropped,
        )
    }

    /// Copies the substrate components' lifetime counters into the
    /// metric registry (the hot-path counters are already there). Call
    /// once, when the run ends; the registry then holds the full
    /// per-domain counter table.
    pub fn collect_metrics(&mut self) {
        let reg = &mut self.registry;
        reg.set_by_key(
            MetricKey::new(Domain::Hypervisor, "sched", "switches_total"),
            self.runq.switches(),
        );
        reg.set_by_key(
            MetricKey::new(Domain::Global, "mem", "outstanding_pins"),
            self.mem.outstanding_pins(),
        );
        reg.set_by_key(
            MetricKey::new(Domain::Global, "world", "rx_credit_drops"),
            self.rx_credit_drops,
        );
        reg.set_by_key(
            MetricKey::new(Domain::Global, "world", "protection_faults"),
            self.faults.len() as u64,
        );
        if let Some(h) = &self.shadow {
            let key = |metric| MetricKey::new(Domain::Global, "check", metric);
            reg.set_by_key(key("shadow_events"), h.shadow.events());
            reg.set_by_key(key("shadow_pages_tracked"), h.shadow.pages_tracked() as u64);
            reg.set_by_key(key("shadow_seq_streams"), h.cursors.len() as u64);
        }
        // DMA protection engines live in the hypervisor, one per NIC.
        for (i, engine) in self.engines.iter().enumerate() {
            let s = engine.stats();
            let n = i as u32 + 1;
            let key = |metric| MetricKey::instance(Domain::Hypervisor, "protection", metric, n);
            reg.set_by_key(key("hypercalls"), s.hypercalls);
            reg.set_by_key(key("descriptors_enqueued"), s.descriptors_enqueued);
            reg.set_by_key(key("pages_pinned"), s.pages_pinned);
            reg.set_by_key(key("rejections"), s.rejections);
        }
        for (i, nic) in self.nics.iter().enumerate() {
            let d = Domain::Nic(i as u16);
            match nic {
                NicSlot::Conventional(dev) => {
                    let s = dev.stats();
                    let key = |metric| MetricKey::new(d, "dev", metric);
                    reg.set_by_key(key("tx_frames"), s.tx_frames);
                    reg.set_by_key(key("tx_payload_bytes"), s.tx_payload_bytes);
                    reg.set_by_key(key("rx_frames"), s.rx_frames);
                    reg.set_by_key(key("rx_payload_bytes"), s.rx_payload_bytes);
                    reg.set_by_key(key("rx_dropped"), s.rx_dropped);
                    reg.set_by_key(key("interrupts"), s.interrupts);
                }
                NicSlot::Rice(dev) => {
                    let s = dev.stats();
                    let key = |metric| MetricKey::new(d, "dev", metric);
                    reg.set_by_key(key("tx_frames"), s.tx_frames);
                    reg.set_by_key(key("tx_payload_bytes"), s.tx_payload_bytes);
                    reg.set_by_key(key("rx_frames"), s.rx_frames);
                    reg.set_by_key(key("rx_payload_bytes"), s.rx_payload_bytes);
                    reg.set_by_key(key("rx_dropped"), s.rx_dropped);
                    reg.set_by_key(key("interrupts"), s.interrupts);
                    reg.set_by_key(key("vector_ring_dmas"), s.vectors_flushed);
                    reg.set_by_key(key("faults"), s.faults);
                }
            }
        }
        // Per-guest paravirtualized channel counters (Xen mode).
        for (g, ch) in self.channels.iter().enumerate() {
            let s = ch.stats();
            let key = |metric| MetricKey::new(Domain::Guest(g as u16), "chan", metric);
            reg.set_by_key(key("tx_packets"), s.tx_packets);
            reg.set_by_key(key("rx_packets"), s.rx_packets);
            reg.set_by_key(key("page_flips"), s.page_flips);
            reg.set_by_key(key("grant_maps"), s.grant_maps);
        }
        // Per-guest CDNA context counters, one instance per NIC.
        for (g, ctxs) in self.ctx_of.iter().enumerate() {
            for (nic, &ctx) in ctxs.iter().enumerate() {
                let NicSlot::Rice(dev) = &self.nics[nic] else {
                    continue;
                };
                let Some(c) = dev.context_counters(ctx) else {
                    continue;
                };
                let key = |metric| {
                    MetricKey::instance(Domain::Guest(g as u16), "ctx", metric, nic as u32 + 1)
                };
                reg.set_by_key(key("tx_descriptors"), c.tx_descriptors);
                reg.set_by_key(key("rx_descriptors"), c.rx_descriptors);
                reg.set_by_key(key("seqnum_checks"), c.seq_checks);
            }
        }
    }

    // ------------------------------------------------------------------
    // CPU machinery
    // ------------------------------------------------------------------

    fn charge(&mut self, cat: ExecCategory, dt: SimTime) {
        self.ledger.charge(cat, dt);
        self.dispatch_cost += dt;
    }

    fn kick_cpu(&mut self, now: SimTime, sched: &mut Scheduler<Event>) {
        if self.dispatch_pending {
            return;
        }
        if self.pending_irqs.is_empty() && !self.runq.has_runnable() {
            return;
        }
        let at = now.max(self.cpu_busy_until);
        sched.at(now, at, Event::CpuDispatch);
        self.dispatch_pending = true;
    }

    fn on_cpu_dispatch(&mut self, now: SimTime, sched: &mut Scheduler<Event>) {
        self.dispatch_pending = false;
        debug_assert!(now >= self.cpu_busy_until, "CPU dispatched while busy");
        self.dispatch_cost = SimTime::ZERO;

        let (span_name, span_tid);
        if let Some((nic, reason)) = self.pending_irqs.pop_front() {
            self.service_irq(now, sched, nic, reason);
            (span_name, span_tid) = ("service_irq", 0u32);
        } else if self.runq.has_runnable() {
            let prev = self.runq.last_run();
            let dom = self.runq.pick().expect("runnable");
            let pick = self.cfg.costs.hyp_sched_pick;
            if self.cfg.is_virtualized() {
                self.charge(ExecCategory::Hypervisor, pick);
                if prev != Some(dom) {
                    self.registry.inc(self.hot.world_switches);
                    let sw = self.cfg.costs.hyp_domain_switch;
                    let cp = self.cfg.costs.switch_cache_penalty;
                    self.charge(ExecCategory::Hypervisor, sw);
                    self.charge(ExecCategory::Kernel(dom), cp);
                }
            }
            self.run_domain(now, sched, dom);
            (span_name, span_tid) = ("run_domain", self.domain_index(dom) as u32 + 1);
        } else {
            return; // idle; events will re-kick
        }

        self.cpu_busy_until = now + self.dispatch_cost;
        if self.dispatch_cost > SimTime::ZERO {
            if let Some(t) = sched.tracer_mut() {
                t.span(
                    span_name,
                    "cpu",
                    now.as_ns(),
                    self.dispatch_cost.as_ns(),
                    trace::PID_CPU,
                    span_tid,
                    None,
                );
            }
        }
        self.kick_cpu(now, sched);
    }

    /// The hypervisor-level (or native ISR) part of interrupt handling.
    fn service_irq(
        &mut self,
        _now: SimTime,
        sched: &mut Scheduler<Event>,
        nic: usize,
        _reason: IrqReason,
    ) {
        let costs = self.cfg.costs.clone();
        match self.cfg.io_model {
            IoModel::Native { .. } => {
                let os = self.domains[self.host_domain_index()].id;
                self.charge(ExecCategory::Kernel(os), costs.native_isr);
                self.runq.wake(os);
            }
            IoModel::XenBridged { .. } => {
                self.charge(ExecCategory::Hypervisor, costs.hyp_isr_conventional);
                // CDNA-firmware NICs in softvirt mode deliver through the
                // bit-vector ring even though only dom0 has a context.
                if matches!(self.nics[nic], NicSlot::Rice(_)) {
                    let vector = self.vec_rings[nic].drain();
                    let _ = vector; // dom0 owns every flagged context
                }
                self.meters.driver_virq.add(1);
                self.registry.inc(self.hot.driver_virq);
                if self.evt.send(DomainId::DRIVER, VirtualIrq::NicPhys) {
                    self.charge(ExecCategory::Hypervisor, costs.hyp_evtchn_send);
                }
                self.runq.wake(DomainId::DRIVER);
            }
            IoModel::Cdna { .. } => {
                self.charge(ExecCategory::Hypervisor, costs.hyp_isr_cdna);
                let vector = self.vec_rings[nic].drain();
                for ctx in vector.iter() {
                    let Some(owner) = self.engines[nic].contexts().owner_of(ctx) else {
                        continue;
                    };
                    self.charge(ExecCategory::Hypervisor, costs.hyp_cdna_vint);
                    self.meters.guest_virq.add(1);
                    self.registry.inc(self.hot.guest_virq);
                    if self.evt.send(owner, VirtualIrq::Cdna) {
                        self.charge(ExecCategory::Hypervisor, costs.hyp_evtchn_send);
                    }
                    self.runq.wake(owner);
                }
            }
        }
        let _ = sched;
    }

    // ------------------------------------------------------------------
    // Domain execution
    // ------------------------------------------------------------------

    fn domain_index(&self, dom: DomainId) -> usize {
        if dom == DomainId::DRIVER {
            0
        } else if self.cfg.is_virtualized() {
            dom.0 as usize // guest(g) = DomainId(g+1) → index g+1
        } else {
            0
        }
    }

    fn run_domain(&mut self, now: SimTime, sched: &mut Scheduler<Event>, dom: DomainId) {
        let idx = self.domain_index(dom);
        let mut state = std::mem::replace(&mut self.domains[idx], DomainState::placeholder());
        let costs = self.cfg.costs.clone();

        self.charge(ExecCategory::Kernel(dom), costs.activation_fixed);
        let virqs = self.evt.collect(dom);
        for v in virqs.iter() {
            let c = match (&state.role, v) {
                (Role::DriverXen { .. }, VirtualIrq::NicPhys) => costs.drv_isr,
                _ => costs.virq_upcall,
            };
            self.charge(ExecCategory::Kernel(dom), c);
        }

        let still_runnable = match &mut state.role {
            Role::GuestCdna { .. } => self.run_guest_cdna(now, sched, &mut state),
            Role::GuestXen { .. } => self.run_guest_xen(now, sched, &mut state),
            Role::DriverXen { .. } => self.run_driver_xen(now, sched, &mut state),
            Role::NativeOs { .. } => self.run_native_os(now, sched, &mut state),
            Role::DriverIdle => false,
        };

        if still_runnable {
            self.runq.requeue(dom);
        }
        self.domains[idx] = state;
    }

    /// Schedules NIC activity produced by a device call. Drains the
    /// vector in place so the caller can hand the emptied activity back
    /// to the device for reuse.
    fn schedule_emissions(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Event>,
        nic: usize,
        emissions: &mut Vec<TxEmission>,
    ) {
        for e in emissions.drain(..) {
            sched.at(
                now,
                e.ready_at.max(now),
                Event::EmissionDue {
                    nic,
                    frame: e.frame,
                },
            );
        }
    }

    /// Hands a drained RiceNIC activity back to the device so its
    /// buffers back the next operation (allocation-free steady state).
    fn recycle_rice(&mut self, nic: usize, act: Activity) {
        if let NicSlot::Rice(dev) = &mut self.nics[nic] {
            dev.recycle(act);
        }
    }

    /// As [`SystemWorld::recycle_rice`], for the conventional NIC.
    fn recycle_conventional(&mut self, nic: usize, act: TxActivity) {
        if let NicSlot::Conventional(dev) = &mut self.nics[nic] {
            dev.recycle(act);
        }
    }

    fn schedule_irq(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Event>,
        nic: usize,
        irq_at: Option<(SimTime, IrqReason)>,
    ) {
        if let Some((at, reason)) = irq_at {
            sched.at(now, at.max(now), Event::PhysIrq { nic, reason });
        }
    }

    fn run_guest_cdna(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Event>,
        state: &mut DomainState,
    ) -> bool {
        let dom = state.id;
        let costs = self.cfg.costs.clone();
        let Role::GuestCdna { drivers } = &mut state.role else {
            unreachable!()
        };
        let mut budget = self.cfg.batch_limit;

        // Reclaim transmit completions (consumer writebacks are in host
        // memory; reading them is part of driver cost already). Under the
        // IOMMU policy reclaiming also unmaps the completed buffers.
        for (i, drv) in drivers.iter_mut().enumerate() {
            let NicSlot::Rice(dev) = &mut self.nics[i] else {
                unreachable!()
            };
            let consumer = dev.tx_consumer(drv.ctx());
            if drv.policy() == DmaPolicy::Iommu {
                let iommu = dev.iommu_mut().expect("installed");
                let (_freed, unmapped) = drv.reclaim_tx_iommu(consumer, iommu);
                self.ledger.charge(
                    ExecCategory::Hypervisor,
                    costs.hyp_iommu_unmap * unmapped as u64,
                );
                self.dispatch_cost += costs.hyp_iommu_unmap * unmapped as u64;
            } else {
                let (_freed, _ext) = drv.reclaim_tx(consumer);
            }
        }

        // Receive processing.
        let mut rx_done = 0u32;
        while budget > 0 {
            let Some(rx) = state.rx_host.pop_front() else {
                break;
            };
            let drv = &mut drivers[rx.nic];
            let page = drv.rx_delivered(rx.buf);
            drv.release_rx_page(page);
            if drv.policy() == DmaPolicy::Iommu {
                let NicSlot::Rice(dev) = &mut self.nics[rx.nic] else {
                    unreachable!()
                };
                if dev.iommu_mut().expect("installed").unmap(drv.ctx(), page) {
                    self.charge(ExecCategory::Hypervisor, costs.hyp_iommu_unmap);
                }
            }
            self.charge(
                ExecCategory::Kernel(dom),
                costs.stack_rx_kernel + costs.cdna_drv_rx,
            );
            self.charge(ExecCategory::User(dom), costs.stack_rx_user);
            if self.meters.in_window {
                self.meters.rx_payload.add(rx.frame.tcp_payload as u64);
                self.meters.packets += 1;
            }
            if let Some(w) = &mut state.workload {
                w.record_rx(rx.frame.flow.conn, rx.frame.tcp_payload);
            }
            rx_done += 1;
            budget -= 1;
        }

        // Replenish receive buffers when some were consumed. Posts go
        // through the enqueue hypercall in driver-batch-sized chunks.
        if rx_done > 0 {
            #[allow(clippy::needless_range_loop)] // `i` also indexes self.nics/engines
            for i in 0..drivers.len() {
                let drv = &mut drivers[i];
                let NicSlot::Rice(dev) = &self.nics[i] else {
                    unreachable!()
                };
                let rx_consumer = dev.rx_consumer(drv.ctx());
                let producer = match drv.policy() {
                    DmaPolicy::Validated => {
                        let mut last = None;
                        loop {
                            match drv.post_rx_validated(
                                self.cfg.hypercall_batch,
                                &mut self.engines[i],
                                rx_consumer,
                                &mut self.rings,
                                &mut self.mem,
                            ) {
                                Ok(Some(out)) => {
                                    self.ledger.charge(
                                        ExecCategory::Hypervisor,
                                        costs.hyp_hypercall_fixed
                                            + costs.hyp_validate_desc * out.enqueued as u64
                                            + costs.hyp_reap_desc * out.reaped as u64,
                                    );
                                    self.dispatch_cost += costs.hyp_hypercall_fixed
                                        + costs.hyp_validate_desc * out.enqueued as u64
                                        + costs.hyp_reap_desc * out.reaped as u64;
                                    last = Some(out.producer);
                                    if out.enqueued < self.cfg.hypercall_batch {
                                        break;
                                    }
                                }
                                Ok(None) => break,
                                Err(e) => panic!("benign rx post rejected: {e}"),
                            }
                        }
                        last
                    }
                    DmaPolicy::Iommu => {
                        let NicSlot::Rice(dev) = &mut self.nics[i] else {
                            unreachable!()
                        };
                        let iommu = dev.iommu_mut().expect("installed");
                        match drv.post_rx_iommu(self.cfg.batch_limit, iommu, &mut self.rings) {
                            Some((p, mapped)) => {
                                self.ledger.charge(
                                    ExecCategory::Hypervisor,
                                    costs.hyp_hypercall_fixed + costs.hyp_iommu_map * mapped as u64,
                                );
                                self.dispatch_cost +=
                                    costs.hyp_hypercall_fixed + costs.hyp_iommu_map * mapped as u64;
                                Some(p)
                            }
                            None => None,
                        }
                    }
                    DmaPolicy::Unprotected => {
                        drv.post_rx_direct(self.cfg.batch_limit, &mut self.rings)
                    }
                };
                if let Some(p) = producer {
                    self.charge(ExecCategory::Kernel(dom), costs.pio_write);
                    drv.note_pio();
                    let NicSlot::Rice(dev) = &mut self.nics[i] else {
                        unreachable!()
                    };
                    let mut act = dev
                        .mailbox_write(
                            now,
                            drv.ctx(),
                            Mailbox::RxProducer.index(),
                            p,
                            &self.rings,
                            &mut self.buses[i],
                        )
                        .expect("mailbox write");
                    self.faults.extend(act.faults.iter().copied());
                    let irq = act.irq_at;
                    self.schedule_emissions(now, sched, i, &mut act.emissions);
                    self.schedule_irq(now, sched, i, irq);
                    self.recycle_rice(i, act);
                }
            }
        }

        // Transmit generation.
        let mut queued_any = false;
        if self.cfg.direction == Direction::Transmit {
            let mut failures = 0u32;
            while budget > 0 && failures < self.cfg.conns_per_guest as u32 {
                let Some(w) = &mut state.workload else { break };
                // Peek the next unit; only commit if it queues (a full
                // ring on one NIC must not starve the others).
                let unit = w.next_tx();
                let nic = unit.nic;
                let drv = &mut drivers[nic];
                let src = match &self.nics[nic] {
                    NicSlot::Rice(dev) => dev.mac_for(drv.ctx()),
                    NicSlot::Conventional(_) => unreachable!(),
                };
                let meta = FrameMeta {
                    dst: self.tx_dst_mac(unit.flow.guest, nic),
                    src,
                    tcp_payload: framing::MSS,
                    flow: unit.flow,
                    seq: unit.seq,
                };
                if !drv.queue_tx(meta) {
                    failures += 1;
                    continue;
                }
                failures = 0;
                w.commit_tx(unit, framing::MSS);
                self.charge(
                    ExecCategory::Kernel(dom),
                    costs.stack_tx_kernel + costs.cdna_drv_tx,
                );
                self.charge(ExecCategory::User(dom), costs.stack_tx_user);
                queued_any = true;
                budget -= 1;
                if drv.pending_tx() as u32 >= self.cfg.hypercall_batch {
                    self.flush_cdna_tx(now, sched, dom, drivers, nic);
                }
            }
            // Flush stragglers on every NIC.
            for nic in 0..drivers.len() {
                if drivers[nic].pending_tx() > 0 {
                    self.flush_cdna_tx(now, sched, dom, drivers, nic);
                }
            }
        }
        let _ = queued_any;

        // Still runnable? Pending receive work or transmit headroom.
        let more_rx = !state.rx_host.is_empty();
        // A workload-less (idle) guest has nothing to transmit: without
        // the workload check it would requeue forever once an interrupt
        // wakes it, spinning the CPU for the rest of the run.
        let more_tx = self.cfg.direction == Direction::Transmit
            && state.workload.is_some()
            && drivers.iter().any(|d| d.can_queue_tx());
        more_rx || more_tx
    }

    fn flush_cdna_tx(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Event>,
        dom: DomainId,
        drivers: &mut [CdnaGuestDriver],
        nic: usize,
    ) {
        let costs = self.cfg.costs.clone();
        let drv = &mut drivers[nic];
        let NicSlot::Rice(dev) = &mut self.nics[nic] else {
            unreachable!()
        };
        let producer = match drv.policy() {
            DmaPolicy::Validated => {
                let engine = if self.engines.len() > nic {
                    &mut self.engines[nic]
                } else {
                    unreachable!("validated context without engine")
                };
                match drv.flush_tx_validated(
                    engine,
                    dev.tx_consumer(drv.ctx()),
                    &mut self.rings,
                    &mut self.mem,
                ) {
                    Ok(Some(out)) => {
                        self.ledger.charge(
                            ExecCategory::Hypervisor,
                            costs.hyp_hypercall_fixed
                                + costs.hyp_validate_desc * out.enqueued as u64
                                + costs.hyp_reap_desc * out.reaped as u64,
                        );
                        self.dispatch_cost += costs.hyp_hypercall_fixed
                            + costs.hyp_validate_desc * out.enqueued as u64
                            + costs.hyp_reap_desc * out.reaped as u64;
                        Some(out.producer)
                    }
                    Ok(None) => None,
                    Err(e) => panic!("benign tx flush rejected: {e}"),
                }
            }
            DmaPolicy::Iommu => {
                let iommu = dev.iommu_mut().expect("installed");
                match drv.flush_tx_iommu(iommu, &mut self.rings) {
                    Some((p, mapped)) => {
                        self.ledger.charge(
                            ExecCategory::Hypervisor,
                            costs.hyp_hypercall_fixed + costs.hyp_iommu_map * mapped as u64,
                        );
                        self.dispatch_cost +=
                            costs.hyp_hypercall_fixed + costs.hyp_iommu_map * mapped as u64;
                        Some(p)
                    }
                    None => None,
                }
            }
            DmaPolicy::Unprotected => drv.flush_tx_direct(&mut self.rings),
        };
        if let Some(p) = producer {
            self.ledger
                .charge(ExecCategory::Kernel(dom), costs.pio_write);
            self.dispatch_cost += costs.pio_write;
            drv.note_pio();
            let mut act = dev
                .mailbox_write(
                    now,
                    drv.ctx(),
                    Mailbox::TxProducer.index(),
                    p,
                    &self.rings,
                    &mut self.buses[nic],
                )
                .expect("mailbox write");
            self.faults.extend(act.faults.iter().copied());
            let irq = act.irq_at;
            self.schedule_emissions(now, sched, nic, &mut act.emissions);
            self.schedule_irq(now, sched, nic, irq);
            self.recycle_rice(nic, act);
        }
    }

    fn run_guest_xen(
        &mut self,
        _now: SimTime,
        sched: &mut Scheduler<Event>,
        state: &mut DomainState,
    ) -> bool {
        let dom = state.id;
        let costs = self.cfg.costs.clone();
        let guest_index = (dom.0 - 1) as usize;
        let Role::GuestXen { tx_pool } = &mut state.role else {
            unreachable!()
        };
        let mut budget = self.cfg.batch_limit;
        let chan = &mut self.channels[guest_index];

        // Reclaim transmit completions.
        for page in chan.front_take_tx_done() {
            tx_pool.push(page);
        }

        // Receive processing: consume delivered packets, repost pages as
        // credit.
        let pkts = chan.front_rx_take(budget as usize);
        for pkt in pkts {
            self.ledger.charge(
                ExecCategory::Kernel(dom),
                costs.stack_rx_kernel + costs.netfront_rx,
            );
            self.dispatch_cost += costs.stack_rx_kernel + costs.netfront_rx;
            self.ledger
                .charge(ExecCategory::User(dom), costs.stack_rx_user);
            self.dispatch_cost += costs.stack_rx_user;
            if self.meters.in_window {
                self.meters.rx_payload.add(pkt.frame.tcp_payload as u64);
                self.meters.packets += 1;
            }
            if let Some(w) = &mut state.workload {
                w.record_rx(pkt.frame.flow.conn, pkt.frame.tcp_payload);
            }
            self.channels[guest_index].front_post_rx_credit(pkt.page);
            budget -= 1;
            if budget == 0 {
                break;
            }
        }

        // Transmit generation.
        let mut pushed = 0u32;
        if self.cfg.direction == Direction::Transmit {
            while budget > 0 {
                let Some(w) = &mut state.workload else { break };
                let chan = &mut self.channels[guest_index];
                if chan.tx_free() == 0 || tx_pool.is_empty() {
                    break;
                }
                let unit = w.next_tx();
                let guest_no = w.guest();
                let dst = self.tx_dst_mac(guest_no, unit.nic);
                let chan = &mut self.channels[guest_index];
                let frame = Frame::tcp_data(
                    MacAddr::for_vif(guest_no),
                    dst,
                    framing::MSS,
                    unit.flow,
                    unit.seq,
                );
                let page = tx_pool.pop().expect("checked");
                chan.front_tx_push(PvPacket { frame, page })
                    .expect("checked free slot");
                w.commit_tx(unit, framing::MSS);
                self.charge(
                    ExecCategory::Kernel(dom),
                    costs.stack_tx_kernel + costs.netfront_tx,
                );
                self.charge(ExecCategory::User(dom), costs.stack_tx_user);
                pushed += 1;
                budget -= 1;
            }
            if pushed > 0 {
                self.charge(ExecCategory::Hypervisor, costs.hyp_evtchn_send);
                self.meters.driver_virq.add(1);
                self.registry.inc(self.hot.driver_virq);
                self.evt.send(DomainId::DRIVER, VirtualIrq::Netback);
                self.runq.wake(DomainId::DRIVER);
            }
        }
        let _ = sched;

        let chan = &self.channels[guest_index];
        let more_rx = chan.rx_pending() > 0;
        let more_tx = self.cfg.direction == Direction::Transmit
            && state.workload.is_some()
            && chan.tx_free() > 0
            && !tx_pool.is_empty();
        more_rx || more_tx
    }

    fn run_driver_xen(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Event>,
        state: &mut DomainState,
    ) -> bool {
        let dom = state.id;
        let costs = self.cfg.costs.clone();
        let Role::DriverXen { drivers } = &mut state.role else {
            unreachable!()
        };
        let mut budget = self.cfg.batch_limit;

        // Reap completed CDNA descriptors first so delivered receive
        // pages are unpinned before netback flips them to guests.
        for (i, drv) in drivers.iter_mut().enumerate() {
            if let PhysDriver::Cdna(c) = drv {
                let NicSlot::Rice(dev) = &self.nics[i] else {
                    unreachable!()
                };
                let reaped = self.engines[i]
                    .reap(
                        c.ctx(),
                        dev.tx_consumer(c.ctx()),
                        dev.rx_consumer(c.ctx()),
                        &mut self.mem,
                    )
                    .expect("dom0 reap");
                self.ledger.charge(
                    ExecCategory::Hypervisor,
                    costs.hyp_reap_desc * reaped as u64,
                );
                self.dispatch_cost += costs.hyp_reap_desc * reaped as u64;
            }
        }

        // --- Physical NIC ingress (receive path) ---
        // Per-guest count of new work since the last notification;
        // netback notifies every `notify_batch` packets and flushes the
        // remainder at the end of the pass.
        let mut pending_notify: Vec<u32> = vec![0; self.channels.len()];
        while budget > 0 {
            let Some(rx) = state.rx_host.pop_front() else {
                break;
            };
            budget -= 1;
            // Native/CDNA driver releases the posted page.
            let (page, drv_cost) = match &mut drivers[rx.nic] {
                PhysDriver::Native(n) => (n.rx_delivered(rx.buf), costs.native_drv_rx),
                PhysDriver::Cdna(c) => (c.rx_delivered(rx.buf), costs.cdna_dom0_drv_rx),
            };
            self.charge(
                ExecCategory::Kernel(dom),
                drv_cost + costs.bridge_per_packet + costs.netback_rx,
            );
            let dst = self.bridge.lookup(rx.frame.dst);
            match dst {
                Some(BridgePort::Frontend(guest)) => {
                    let gidx = (guest.0 - 1) as usize;
                    match self.channels[gidx].back_rx_push(rx.frame.clone(), page, &mut self.mem) {
                        Ok(credit) => {
                            self.charge(ExecCategory::Hypervisor, costs.hyp_page_flip);
                            match &mut drivers[rx.nic] {
                                PhysDriver::Native(n) => n.donate_rx_page(credit),
                                PhysDriver::Cdna(c) => c.release_rx_page(credit),
                            }
                            pending_notify[gidx] += 1;
                            if pending_notify[gidx] >= self.cfg.notify_batch {
                                pending_notify[gidx] = 0;
                                self.notify_frontend(guest);
                            }
                        }
                        Err(_) => {
                            // Guest out of credits: drop, reuse the page.
                            self.rx_credit_drops += 1;
                            match &mut drivers[rx.nic] {
                                PhysDriver::Native(n) => n.release_rx_page(page),
                                PhysDriver::Cdna(c) => c.release_rx_page(page),
                            }
                        }
                    }
                }
                _ => {
                    // Unknown destination: drop.
                    match &mut drivers[rx.nic] {
                        PhysDriver::Native(n) => n.release_rx_page(page),
                        PhysDriver::Cdna(c) => c.release_rx_page(page),
                    }
                }
            }
        }
        // Replenish physical receive rings.
        for (i, drv) in drivers.iter_mut().enumerate() {
            self.replenish_phys_rx(now, sched, dom, drv, i);
        }

        // --- Frontend egress (transmit path) ---
        let guest_count = self.channels.len();
        let mut doorbell_nics: Vec<usize> = Vec::new();
        if guest_count > 0 {
            // Netback scans every frontend ring each pass.
            self.charge(
                ExecCategory::Kernel(dom),
                costs.netback_scan_per_channel * guest_count as u64,
            );
            let share = (budget as usize / guest_count).max(1);
            for g in 0..guest_count {
                if budget == 0 {
                    break;
                }
                let take = share.min(budget as usize);
                let pkts = match self.channels[g].back_tx_take(take, &mut self.mem) {
                    Ok(p) => p,
                    Err(e) => panic!("trusted frontend failed grant map: {e}"),
                };
                for pkt in pkts {
                    budget -= 1;
                    let nic = match self.bridge.lookup(pkt.frame.dst) {
                        Some(BridgePort::Physical(n)) => n,
                        Some(BridgePort::Frontend(dst_dom)) => {
                            // Guest-to-guest: the software bridge switches
                            // the packet in host memory — copy into a
                            // fresh dom0 page, flip it to the destination,
                            // and complete the source immediately.
                            self.charge(
                                ExecCategory::Kernel(dom),
                                costs.netback_tx + costs.bridge_per_packet + costs.netback_rx,
                            );
                            let dst_idx = (dst_dom.0 - 1) as usize;
                            if let Ok(page) = self.mem.alloc(DomainId::DRIVER) {
                                match self.channels[dst_idx].back_rx_push(
                                    pkt.frame.clone(),
                                    page,
                                    &mut self.mem,
                                ) {
                                    Ok(credit) => {
                                        self.charge(ExecCategory::Hypervisor, costs.hyp_page_flip);
                                        self.mem
                                            .free(DomainId::DRIVER, credit)
                                            .expect("fresh credit page");
                                        pending_notify[dst_idx] += 1;
                                        if pending_notify[dst_idx] >= self.cfg.notify_batch {
                                            pending_notify[dst_idx] = 0;
                                            self.notify_frontend(dst_dom);
                                        }
                                    }
                                    Err(_) => {
                                        // Destination out of credits: drop.
                                        self.mem.free(DomainId::DRIVER, page).expect("fresh page");
                                    }
                                }
                            }
                            self.channels[g].back_tx_complete_page(pkt.page, &mut self.mem);
                            pending_notify[g] += 1;
                            if pending_notify[g] >= self.cfg.notify_batch {
                                pending_notify[g] = 0;
                                let src_dom = self.channels[g].guest();
                                self.notify_frontend(src_dom);
                            }
                            continue;
                        }
                        None => continue, // unknown: drop
                    };
                    // With a CDNA context the enqueue hypercall performs
                    // the pinning, so no separate grant-map charge.
                    let drv_cost = match &drivers[nic] {
                        PhysDriver::Native(_) => {
                            self.charge(ExecCategory::Hypervisor, costs.hyp_grant_map);
                            costs.native_drv_tx
                        }
                        PhysDriver::Cdna(_) => costs.cdna_dom0_drv_tx,
                    };
                    self.charge(
                        ExecCategory::Kernel(dom),
                        costs.netback_tx + costs.bridge_per_packet + drv_cost,
                    );
                    let guest = self.channels[g].guest();
                    let meta = FrameMeta {
                        dst: pkt.frame.dst,
                        src: pkt.frame.src,
                        tcp_payload: pkt.frame.tcp_payload,
                        flow: pkt.frame.flow,
                        seq: pkt.frame.seq,
                    };
                    let buf = BufferSlice::new(pkt.page.base_addr(), pkt.frame.buffer_bytes());
                    let ok = match &mut drivers[nic] {
                        PhysDriver::Native(n) => {
                            n.queue_tx_extern(buf, meta, guest, &mut self.rings).is_ok()
                        }
                        PhysDriver::Cdna(c) => c.queue_tx_extern(buf, meta, guest),
                    };
                    if ok && !doorbell_nics.contains(&nic) {
                        doorbell_nics.push(nic);
                    }
                }
            }
        }
        // Ring doorbells for NICs with new work.
        for nic in doorbell_nics {
            self.charge(ExecCategory::Kernel(dom), costs.pio_write);
            match &mut drivers[nic] {
                PhysDriver::Native(n) => {
                    n.note_doorbell();
                    let NicSlot::Conventional(dev) = &mut self.nics[nic] else {
                        unreachable!()
                    };
                    let mut act = dev
                        .tx_doorbell(now, n.tx_producer(), &self.rings, &mut self.buses[nic])
                        .expect("doorbell");
                    let irq = act.irq_at.map(|t| (t, IrqReason::Tx));
                    self.schedule_emissions(now, sched, nic, &mut act.emissions);
                    self.schedule_irq(now, sched, nic, irq);
                    self.recycle_conventional(nic, act);
                }
                PhysDriver::Cdna(c) => {
                    // dom0's CDNA context: flush through the hypervisor.
                    let NicSlot::Rice(dev) = &mut self.nics[nic] else {
                        unreachable!()
                    };
                    match c.flush_tx_validated(
                        &mut self.engines[nic],
                        dev.tx_consumer(c.ctx()),
                        &mut self.rings,
                        &mut self.mem,
                    ) {
                        Ok(Some(out)) => {
                            self.ledger.charge(
                                ExecCategory::Hypervisor,
                                costs.hyp_hypercall_fixed
                                    + costs.hyp_validate_desc * out.enqueued as u64
                                    + costs.hyp_reap_desc * out.reaped as u64,
                            );
                            self.dispatch_cost += costs.hyp_hypercall_fixed
                                + costs.hyp_validate_desc * out.enqueued as u64
                                + costs.hyp_reap_desc * out.reaped as u64;
                            c.note_pio();
                            let mut act = dev
                                .mailbox_write(
                                    now,
                                    c.ctx(),
                                    Mailbox::TxProducer.index(),
                                    out.producer,
                                    &self.rings,
                                    &mut self.buses[nic],
                                )
                                .expect("mailbox write");
                            self.faults.extend(act.faults.iter().copied());
                            let irq = act.irq_at;
                            self.schedule_emissions(now, sched, nic, &mut act.emissions);
                            self.schedule_irq(now, sched, nic, irq);
                            self.recycle_rice(nic, act);
                        }
                        Ok(None) => {}
                        Err(e) => panic!("dom0 tx flush rejected: {e}"),
                    }
                }
            }
        }

        // --- Transmit completion reclaim ---
        #[allow(clippy::needless_range_loop)] // `nic` also indexes self.nics
        for nic in 0..drivers.len() {
            let (extern_done, unmap_charges) = match &mut drivers[nic] {
                PhysDriver::Native(n) => {
                    let NicSlot::Conventional(dev) = &self.nics[nic] else {
                        unreachable!()
                    };
                    let done = n.reclaim_tx(dev.tx_consumer());
                    let c = done.len() as u64;
                    (done, c)
                }
                PhysDriver::Cdna(c) => {
                    let NicSlot::Rice(dev) = &self.nics[nic] else {
                        unreachable!()
                    };
                    let (_pool, done) = c.reclaim_tx(dev.tx_consumer(c.ctx()));
                    // Unpinning happened through the engine reap above.
                    (done, 0)
                }
            };
            self.charge(
                ExecCategory::Hypervisor,
                costs.hyp_grant_unmap * unmap_charges,
            );
            for guest in extern_done {
                let gidx = (guest.0 - 1) as usize;
                self.channels[gidx].back_tx_complete(1, &mut self.mem);
                pending_notify[gidx] += 1;
                if pending_notify[gidx] >= self.cfg.notify_batch {
                    pending_notify[gidx] = 0;
                    self.notify_frontend(guest);
                }
            }
        }

        // Flush remaining notifications.
        for (gidx, count) in pending_notify.into_iter().enumerate() {
            if count > 0 {
                self.notify_frontend(DomainId::guest(gidx as u16));
            }
        }

        let more_rx = !state.rx_host.is_empty();
        let more_tx = self.channels.iter().any(|c| c.tx_pending() > 0);
        more_rx || more_tx
    }

    fn replenish_phys_rx(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Event>,
        dom: DomainId,
        driver: &mut PhysDriver,
        nic: usize,
    ) {
        let costs = self.cfg.costs.clone();
        match driver {
            PhysDriver::Native(n) => {
                let posted = n
                    .post_rx(self.cfg.batch_limit, &mut self.rings)
                    .expect("rx post");
                if posted > 0 {
                    self.charge(ExecCategory::Kernel(dom), costs.pio_write);
                    let NicSlot::Conventional(dev) = &mut self.nics[nic] else {
                        unreachable!()
                    };
                    dev.rx_doorbell(n.rx_producer());
                }
            }
            PhysDriver::Cdna(c) => {
                let NicSlot::Rice(dev) = &mut self.nics[nic] else {
                    unreachable!()
                };
                let rx_consumer = dev.rx_consumer(c.ctx());
                match c.post_rx_validated(
                    self.cfg.batch_limit,
                    &mut self.engines[nic],
                    rx_consumer,
                    &mut self.rings,
                    &mut self.mem,
                ) {
                    Ok(Some(out)) => {
                        self.ledger.charge(
                            ExecCategory::Hypervisor,
                            costs.hyp_hypercall_fixed
                                + costs.hyp_validate_desc * out.enqueued as u64
                                + costs.hyp_reap_desc * out.reaped as u64,
                        );
                        self.dispatch_cost += costs.hyp_hypercall_fixed
                            + costs.hyp_validate_desc * out.enqueued as u64
                            + costs.hyp_reap_desc * out.reaped as u64;
                        self.ledger
                            .charge(ExecCategory::Kernel(dom), costs.pio_write);
                        self.dispatch_cost += costs.pio_write;
                        let mut act = dev
                            .mailbox_write(
                                now,
                                c.ctx(),
                                Mailbox::RxProducer.index(),
                                out.producer,
                                &self.rings,
                                &mut self.buses[nic],
                            )
                            .expect("mailbox write");
                        self.faults.extend(act.faults.iter().copied());
                        let irq = act.irq_at;
                        self.schedule_emissions(now, sched, nic, &mut act.emissions);
                        self.schedule_irq(now, sched, nic, irq);
                        self.recycle_rice(nic, act);
                    }
                    Ok(None) => {}
                    Err(e) => panic!("dom0 rx post rejected: {e}"),
                }
            }
        }
    }

    /// Netback notifies a frontend of new receive packets or transmit
    /// completions.
    fn notify_frontend(&mut self, guest: DomainId) {
        let send = self.cfg.costs.hyp_evtchn_send;
        self.charge(ExecCategory::Hypervisor, send);
        self.meters.guest_virq.add(1);
        self.registry.inc(self.hot.guest_virq);
        self.evt.send(guest, VirtualIrq::Netfront);
        self.runq.wake(guest);
    }

    fn run_native_os(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Event>,
        state: &mut DomainState,
    ) -> bool {
        let dom = state.id;
        let costs = self.cfg.costs.clone();
        let Role::NativeOs { drivers } = &mut state.role else {
            unreachable!()
        };
        let mut budget = self.cfg.batch_limit;

        // Reclaim transmit completions.
        for (i, drv) in drivers.iter_mut().enumerate() {
            let NicSlot::Conventional(dev) = &self.nics[i] else {
                unreachable!()
            };
            let _ = drv.reclaim_tx(dev.tx_consumer());
        }

        // Receive.
        let mut rx_done = 0;
        while budget > 0 {
            let Some(rx) = state.rx_host.pop_front() else {
                break;
            };
            let drv = &mut drivers[rx.nic];
            let page = drv.rx_delivered(rx.buf);
            drv.release_rx_page(page);
            self.charge(
                ExecCategory::Kernel(dom),
                costs.stack_rx_kernel + costs.native_drv_rx,
            );
            self.charge(ExecCategory::User(dom), costs.stack_rx_user);
            if self.meters.in_window {
                self.meters.rx_payload.add(rx.frame.tcp_payload as u64);
                self.meters.packets += 1;
            }
            if let Some(w) = &mut state.workload {
                w.record_rx(rx.frame.flow.conn, rx.frame.tcp_payload);
            }
            rx_done += 1;
            budget -= 1;
        }
        if rx_done > 0 {
            for (i, drv) in drivers.iter_mut().enumerate() {
                let posted = drv
                    .post_rx(self.cfg.batch_limit, &mut self.rings)
                    .expect("rx post");
                if posted > 0 {
                    self.charge(ExecCategory::Kernel(dom), costs.pio_write);
                    let NicSlot::Conventional(dev) = &mut self.nics[i] else {
                        unreachable!()
                    };
                    dev.rx_doorbell(drv.rx_producer());
                }
            }
        }

        // Transmit.
        if self.cfg.direction == Direction::Transmit {
            let mut doorbells: Vec<usize> = Vec::new();
            let mut failures = 0u32;
            while budget > 0 && failures < self.cfg.conns_per_guest as u32 {
                let Some(w) = &mut state.workload else { break };
                let unit = w.next_tx();
                let nic = unit.nic;
                let drv = &mut drivers[nic];
                if !drv.can_queue_tx(&self.rings) {
                    failures += 1;
                    continue;
                }
                failures = 0;
                let NicSlot::Conventional(dev) = &self.nics[nic] else {
                    unreachable!()
                };
                let meta = FrameMeta {
                    dst: MacAddr::for_peer(nic as u8),
                    src: dev.mac(),
                    tcp_payload: framing::MSS,
                    flow: unit.flow,
                    seq: unit.seq,
                };
                drv.queue_tx(meta, &mut self.rings).expect("checked");
                w.commit_tx(unit, framing::MSS);
                self.charge(
                    ExecCategory::Kernel(dom),
                    costs.stack_tx_kernel + costs.native_drv_tx,
                );
                self.charge(ExecCategory::User(dom), costs.stack_tx_user);
                budget -= 1;
                if !doorbells.contains(&nic) {
                    doorbells.push(nic);
                }
            }
            for nic in doorbells {
                self.charge(ExecCategory::Kernel(dom), costs.pio_write);
                let drv = &mut drivers[nic];
                drv.note_doorbell();
                let NicSlot::Conventional(dev) = &mut self.nics[nic] else {
                    unreachable!()
                };
                let mut act = dev
                    .tx_doorbell(now, drv.tx_producer(), &self.rings, &mut self.buses[nic])
                    .expect("doorbell");
                let irq = act.irq_at.map(|t| (t, IrqReason::Tx));
                self.schedule_emissions(now, sched, nic, &mut act.emissions);
                self.schedule_irq(now, sched, nic, irq);
                self.recycle_conventional(nic, act);
            }
        }

        let more_rx = !state.rx_host.is_empty();
        let more_tx = self.cfg.direction == Direction::Transmit
            && drivers.iter().any(|d| d.can_queue_tx(&self.rings));
        more_rx || more_tx
    }

    // ------------------------------------------------------------------
    // NIC/wire events
    // ------------------------------------------------------------------

    fn on_phys_irq(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Event>,
        nic: usize,
        reason: IrqReason,
    ) {
        // The hardware raises the line and (CDNA) flushes the interrupt
        // bit vector now; the hypervisor/OS services it at the next CPU
        // dispatch boundary.
        match &mut self.nics[nic] {
            NicSlot::Conventional(dev) => dev.irq_fired(now, reason),
            NicSlot::Rice(dev) => {
                let _ = dev.irq_fired(now, reason, &mut self.vec_rings[nic], &mut self.buses[nic]);
            }
        }
        self.nic_irq_count += 1;
        self.meters.nic_irq.add(1);
        self.registry.inc(self.hot.phys_irq);
        if let Some(t) = sched.tracer_mut() {
            t.instant("phys_irq", "irq", now.as_ns(), trace::pid_nic(nic), 0, None);
        }
        self.pending_irqs.push_back((nic, reason));
        self.kick_cpu(now, sched);
    }

    fn on_emission_due(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Event>,
        nic: usize,
        frame: Frame,
    ) {
        let gap = self.tx_gap_bytes(nic);
        let done = self.wires[nic].transfer(now, WireDirection::Transmit, frame.wire_bytes() + gap);
        sched.at(now, done, Event::WireTxDone { nic, frame });
    }

    fn tx_gap_bytes(&self, nic: usize) -> u32 {
        match &self.nics[nic] {
            NicSlot::Rice(dev) => (dev.config().mac_tx_gap.as_ns() / 8) as u32,
            NicSlot::Conventional(_) => 0,
        }
    }

    fn rx_gap_bytes(&self, nic: usize) -> u32 {
        match &self.nics[nic] {
            NicSlot::Rice(dev) => (dev.config().mac_rx_gap.as_ns() / 8) as u32,
            NicSlot::Conventional(_) => 0,
        }
    }

    fn on_wire_tx_done(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Event>,
        nic: usize,
        frame: Frame,
    ) {
        // The peer (or switch) takes the frame: transmit measurement.
        if self.meters.in_window {
            self.meters.tx_payload.add(frame.tcp_payload as u64);
            self.meters.packets += 1;
        }
        // Rack uplink: a frame addressed off-host is handed to the
        // top-of-rack switch; local NIC completion still runs below.
        if let Some(local) = &self.local_macs {
            if !local.contains(&frame.dst) {
                self.egress.push(EgressFrame {
                    at: now,
                    nic,
                    frame: frame.clone(),
                });
            }
        }
        // Inter-VM CDNA traffic: the external switch forwards the frame
        // straight back toward the destination guest's context.
        if self.hairpin_macs[nic].contains(&frame.dst) {
            let gap = self.rx_gap_bytes(nic);
            let done =
                self.wires[nic].transfer(now, WireDirection::Receive, frame.wire_bytes() + gap);
            sched.at(
                now,
                done + SimTime::from_us(2), // store-and-forward switch latency
                Event::WireRxArrive {
                    nic,
                    frame: frame.clone(),
                },
            );
        }
        match &mut self.nics[nic] {
            NicSlot::Conventional(dev) => {
                let mut act = dev
                    .tx_frame_sent(now, &frame, &self.rings, &mut self.buses[nic])
                    .expect("completion");
                let irq = act.irq_at.map(|t| (t, IrqReason::Tx));
                self.schedule_emissions(now, sched, nic, &mut act.emissions);
                self.schedule_irq(now, sched, nic, irq);
                self.recycle_conventional(nic, act);
            }
            NicSlot::Rice(dev) => {
                let mut act = dev.tx_frame_sent(now, &frame, &self.rings, &mut self.buses[nic]);
                self.faults.extend(act.faults.iter().copied());
                let irq = act.irq_at;
                self.schedule_emissions(now, sched, nic, &mut act.emissions);
                self.schedule_irq(now, sched, nic, irq);
                self.recycle_rice(nic, act);
            }
        }
    }

    fn on_wire_rx_arrive(
        &mut self,
        now: SimTime,
        sched: &mut Scheduler<Event>,
        nic: usize,
        frame: Frame,
    ) {
        match &mut self.nics[nic] {
            NicSlot::Conventional(dev) => {
                match dev
                    .frame_from_wire(now, frame, &self.rings, &mut self.buses[nic])
                    .expect("rx")
                {
                    RxDisposition::Delivered {
                        frame,
                        buf,
                        at: _,
                        irq_at,
                    } => {
                        let host = self.host_domain_index();
                        self.domains[host]
                            .rx_host
                            .push_back(HostRx { nic, frame, buf });
                        self.schedule_irq(now, sched, nic, irq_at.map(|t| (t, IrqReason::Rx)));
                    }
                    RxDisposition::Filtered
                    | RxDisposition::DroppedNoBuffer
                    | RxDisposition::DroppedTooSmall => {}
                }
            }
            NicSlot::Rice(dev) => {
                let act = dev.frame_from_wire(now, frame, &self.rings, &mut self.buses[nic]);
                self.faults.extend(act.faults.iter().copied());
                if let Some(d) = act.delivered {
                    // Route to the context's owner.
                    let owner = self.engines[nic]
                        .contexts()
                        .owner_of(d.ctx)
                        .expect("delivery to assigned context");
                    let idx = self.domain_index(owner);
                    self.domains[idx].rx_host.push_back(HostRx {
                        nic,
                        frame: d.frame,
                        buf: d.buf,
                    });
                }
                self.schedule_irq(now, sched, nic, act.irq_at);
            }
        }
    }

    fn on_peer_pump(&mut self, now: SimTime, sched: &mut Scheduler<Event>, nic: usize) {
        let gap = self.rx_gap_bytes(nic);
        let Some(peer) = &mut self.peers[nic] else {
            return;
        };
        let (flow, seq) = peer.next_frame(framing::MSS);
        let dst = *self.flow_dst.get(&flow).expect("flow destination known");
        let frame = Frame::tcp_data(MacAddr::for_peer(nic as u8), dst, framing::MSS, flow, seq);
        let done = self.wires[nic].transfer(now, WireDirection::Receive, frame.wire_bytes() + gap);
        sched.at(now, done, Event::WireRxArrive { nic, frame });
        sched.at(now, done, Event::PeerPump { nic });
    }

    // ------------------------------------------------------------------
    // Run-loop entry points used by the testbed
    // ------------------------------------------------------------------

    /// Seeds the initial events for a run: wakes transmitting domains,
    /// starts peer traffic, and schedules the measurement window.
    /// Returns the events the caller must enqueue at the given times.
    pub fn prime(&mut self) -> Vec<(SimTime, Event)> {
        let mut events = Vec::new();
        match self.cfg.direction {
            Direction::Transmit => {
                let ids: Vec<DomainId> = self
                    .domains
                    .iter()
                    .filter(|d| d.workload.is_some())
                    .map(|d| d.id)
                    .collect();
                for id in ids {
                    self.runq.wake(id);
                }
            }
            Direction::Receive => {
                for nic in 0..self.cfg.nics as usize {
                    if self.peers[nic].is_some() {
                        events.push((SimTime::ZERO, Event::PeerPump { nic }));
                    }
                }
            }
        }
        events.push((self.cfg.warmup, Event::StartMeasure));
        events.push((self.cfg.warmup + self.cfg.measure, Event::StopMeasure));
        if self.runq.has_runnable() {
            events.push((SimTime::ZERO, Event::CpuDispatch));
            self.dispatch_pending = true;
        }
        events
    }

    /// Revokes guest `g`'s CDNA contexts at runtime (paper §3.1: "the
    /// hypervisor can also revoke a context at any time by notifying the
    /// NIC, which will shut down all pending operations associated with
    /// the indicated context"). The guest's traffic stops; every pinned
    /// page is released; other guests are unaffected.
    ///
    /// Returns the number of pending NIC operations that were shut down.
    ///
    /// # Panics
    ///
    /// Panics if the run is not a CDNA configuration or `g` is out of
    /// range.
    pub fn revoke_guest_contexts(&mut self, g: u16) -> usize {
        assert!(
            matches!(self.cfg.io_model, IoModel::Cdna { .. }),
            "revocation applies to CDNA runs"
        );
        let dom = DomainId::guest(g);
        let idx = self.domain_index(dom);
        let mut dropped = 0;
        for (nic, &ctx) in self.ctx_of[g as usize].iter().enumerate() {
            let NicSlot::Rice(dev) = &mut self.nics[nic] else {
                unreachable!("CDNA uses RiceNICs")
            };
            dropped += dev.detach_context(ctx);
            if let Some(iommu) = dev.iommu_mut() {
                iommu.disable(ctx);
            }
            self.engines[nic]
                .revoke_context(ctx, &mut self.mem)
                .expect("assigned context");
        }
        // The guest's driver state is gone with its contexts; the domain
        // becomes inert (its vcpu still exists, like a domain whose
        // device was hot-unplugged).
        self.domains[idx].role = Role::DriverIdle;
        self.domains[idx].workload = None;
        self.domains[idx].rx_host.clear();
        dropped
    }
}

fn build_conventional(
    index: usize,
    kind: NicKind,
    owner: DomainId,
    promiscuous: bool,
    cfg: &TestbedConfig,
    mem: &mut PhysMem,
    rings: &mut RingTable,
) -> (ConventionalNic, NativeDriver) {
    let ring_pages = ((cfg.ring_size * 16) as u64).div_ceil(cdna_mem::PAGE_SIZE) as u32;
    let tx_ring_page = mem.alloc_many(owner, ring_pages).expect("ring pages")[0];
    let rx_ring_page = mem.alloc_many(owner, ring_pages).expect("ring pages")[0];
    let tx_ring = rings.create(tx_ring_page.base_addr(), cfg.ring_size);
    let rx_ring = rings.create(rx_ring_page.base_addr(), cfg.ring_size);
    let nic_cfg = match kind {
        NicKind::Intel => NicConfig::intel_e1000(),
        NicKind::RiceNic => NicConfig::ricenic_base(),
    };
    let mac = MacAddr::for_context(index as u8, 0);
    let mut dev = ConventionalNic::new(mac, nic_cfg, tx_ring, rx_ring);
    dev.set_promiscuous(promiscuous);
    // The harness drives descriptors at MSS granularity (see DESIGN.md);
    // TSO's CPU saving is captured in the cost model, so driver pools are
    // single pages.
    let drv = NativeDriver::allocate(
        owner,
        false,
        cfg.ring_size + cfg.batch_limit + 16,
        cfg.ring_size + cfg.batch_limit + 16,
        tx_ring,
        rx_ring,
        mem,
    )
    .expect("driver pools");
    (dev, drv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdna_core::DmaPolicy;
    use cdna_sim::Simulation;

    fn cfg(io: IoModel, guests: u16, dir: Direction) -> TestbedConfig {
        TestbedConfig::new(io, guests, dir).quick()
    }

    #[test]
    fn build_native_has_one_domain_per_machine() {
        let w = SystemWorld::build(cfg(
            IoModel::Native {
                nic: NicKind::Intel,
            },
            5, // ignored for native
            Direction::Transmit,
        ));
        assert_eq!(w.domains.len(), 1);
        assert!(matches!(w.domains[0].role, Role::NativeOs { .. }));
        assert!(w.engines.is_empty());
    }

    #[test]
    fn build_xen_has_dom0_plus_guests_and_bridge_entries() {
        let w = SystemWorld::build(cfg(
            IoModel::XenBridged {
                nic: NicKind::Intel,
            },
            3,
            Direction::Transmit,
        ));
        assert_eq!(w.domains.len(), 4);
        assert!(matches!(w.domains[0].role, Role::DriverXen { .. }));
        assert_eq!(w.channels.len(), 3);
        // 3 vif MACs + 2 peer MACs.
        assert_eq!(w.bridge.len(), 5);
    }

    #[test]
    fn build_cdna_assigns_contexts_and_posts_rx() {
        let w = SystemWorld::build(cfg(
            IoModel::Cdna {
                policy: DmaPolicy::Validated,
            },
            2,
            Direction::Receive,
        ));
        assert_eq!(w.engines.len(), 2);
        for e in &w.engines {
            assert_eq!(e.contexts().assigned_count(), 2);
        }
        for nic in &w.nics {
            let NicSlot::Rice(dev) = nic else {
                panic!("CDNA uses RiceNICs")
            };
            for g in 0..2 {
                let ctx = w.ctx_of[g][dev.index() as usize];
                assert_eq!(
                    dev.rx_available(ctx),
                    w.cfg.ring_size as u64,
                    "initial rx posting"
                );
            }
        }
        // Receive-direction runs have peer sources on both NICs.
        assert!(w.peers.iter().all(Option::is_some));
    }

    #[test]
    fn transmit_runs_have_no_peer_sources() {
        let w = SystemWorld::build(cfg(
            IoModel::Cdna {
                policy: DmaPolicy::Validated,
            },
            1,
            Direction::Transmit,
        ));
        assert!(w.peers.iter().all(Option::is_none));
    }

    #[test]
    fn prime_wakes_transmitters_and_schedules_measurement() {
        let mut w = SystemWorld::build(cfg(
            IoModel::Cdna {
                policy: DmaPolicy::Validated,
            },
            2,
            Direction::Transmit,
        ));
        let events = w.prime();
        assert!(w.runq.has_runnable());
        let starts = events
            .iter()
            .filter(|(_, e)| matches!(e, Event::StartMeasure))
            .count();
        let dispatches = events
            .iter()
            .filter(|(_, e)| matches!(e, Event::CpuDispatch))
            .count();
        assert_eq!(starts, 1);
        assert_eq!(dispatches, 1);
    }

    #[test]
    fn iommu_policy_installs_and_enables_per_context() {
        let w = SystemWorld::build(cfg(
            IoModel::Cdna {
                policy: DmaPolicy::Iommu,
            },
            2,
            Direction::Transmit,
        ));
        for nic in &w.nics {
            let NicSlot::Rice(dev) = nic else { panic!() };
            let iommu = dev.iommu().expect("IOMMU installed");
            for g in 0..2usize {
                let ctx = w.ctx_of[g][dev.index() as usize];
                assert!(iommu.is_enabled(ctx));
            }
        }
    }

    #[test]
    fn short_run_executes_and_moves_traffic() {
        let c = cfg(
            IoModel::Cdna {
                policy: DmaPolicy::Validated,
            },
            1,
            Direction::Transmit,
        );
        let end = c.warmup + c.measure;
        let mut sim = Simulation::new(SystemWorld::build(c));
        let primed = sim.world_mut().prime();
        for (t, e) in primed {
            sim.schedule(t, e);
        }
        sim.run_until(end);
        let w = sim.world();
        assert!(w.meters.packets > 1_000);
        assert!(w.faults.is_empty());
        assert!(!w.ledger.recording(), "window closed");
    }

    #[test]
    fn rx_destinations_differ_per_io_model() {
        let cdna = SystemWorld::build(cfg(
            IoModel::Cdna {
                policy: DmaPolicy::Validated,
            },
            1,
            Direction::Receive,
        ));
        let xen = SystemWorld::build(cfg(
            IoModel::XenBridged {
                nic: NicKind::Intel,
            },
            1,
            Direction::Receive,
        ));
        // CDNA targets context MACs; Xen targets vif MACs.
        assert_eq!(
            cdna.rx_dst_mac(0, 0),
            MacAddr::for_context(0, cdna.ctx_of[0][0].0)
        );
        assert_eq!(xen.rx_dst_mac(0, 0), MacAddr::for_vif(0));
    }
}
