//! The calibrated CPU cost model.
//!
//! Every constant is the CPU time one mechanism consumes on the paper's
//! Opteron 250 testbed. The calibration strategy (DESIGN.md §2): the
//! per-mechanism costs are chosen so that the **single-guest** Xen/Intel
//! and CDNA rows of Tables 2/3 and the native row of Table 1 come out
//! right, and everything else — the RiceNIC software-virtualization
//! rows, the protection ablation of Table 4, and the entire 1–24 guest
//! scalability sweep of Figures 3/4 — *emerges* from the simulated
//! mechanisms (scheduling, batching, interrupt coalescing, ring
//! backpressure).
//!
//! Derivation sketch for the anchors (packet = one MSS segment):
//!
//! * Native TX 5126 Mb/s ⇒ 438.9 k pkt/s at 100 % CPU ⇒ 2.28 µs/pkt
//!   total (stack + driver + user).
//! * Xen/Intel TX 1602 Mb/s ⇒ 137.2 k pkt/s with profile 19.8 % hyp /
//!   36.5 % dom0 / 40.7 % guest ⇒ 1.44 / 2.66 / 2.97 µs per packet
//!   respectively; those are split below into page-flip, bridge,
//!   netback, netfront, event-channel and interrupt costs.
//! * CDNA TX 1867 Mb/s ⇒ 159.8 k pkt/s with 10.2 % hyp / 38.5 % guest ⇒
//!   0.64 / 2.41 µs per packet, split into hypercall, validation and
//!   interrupt-dispatch costs. Disabling protection must leave only
//!   ~1.9 % hypervisor time (Table 4), which pins the interrupt-dispatch
//!   share.

use cdna_sim::SimTime;

/// Nanosecond helper for the table below.
const fn ns(v: u64) -> SimTime {
    SimTime::from_ns(v)
}

/// CPU costs of every modelled mechanism.
#[derive(Debug, Clone)]
pub struct CostModel {
    // ---- Guest / native OS network stack (per MSS packet) ----
    /// TCP/IP transmit path in the kernel (checksum offloaded).
    pub stack_tx_kernel: SimTime,
    /// User-space send work (the benchmark's buffer handling).
    pub stack_tx_user: SimTime,
    /// TCP/IP receive path in the kernel.
    pub stack_rx_kernel: SimTime,
    /// User-space receive work.
    pub stack_rx_user: SimTime,

    // ---- Drivers (per packet) ----
    /// Native (unmodified) driver, transmit side.
    pub native_drv_tx: SimTime,
    /// Native driver, receive side.
    pub native_drv_rx: SimTime,
    /// Netfront transmit extra over the native driver (grant refs,
    /// shared-ring bookkeeping).
    pub netfront_tx: SimTime,
    /// Netfront receive extra (ring consumption, credit reposting).
    pub netfront_rx: SimTime,
    /// CDNA guest driver transmit extra (request build, batch
    /// bookkeeping).
    pub cdna_drv_tx: SimTime,
    /// CDNA guest driver receive extra.
    pub cdna_drv_rx: SimTime,
    /// One programmed-I/O doorbell/mailbox write (uncached PCI write).
    pub pio_write: SimTime,

    // ---- Driver domain (per packet unless noted) ----
    /// Netback transmit processing (pull from shared ring, skb setup).
    pub netback_tx: SimTime,
    /// Netback receive processing (deliver to shared ring).
    pub netback_rx: SimTime,
    /// Software bridge lookup + forwarding.
    pub bridge_per_packet: SimTime,
    /// Scanning one (possibly empty) frontend channel during a netback
    /// pass — grows the driver domain's cost with the number of guests.
    pub netback_scan_per_channel: SimTime,
    /// Driver-domain interrupt service (per physical-NIC virq taken).
    pub drv_isr: SimTime,
    /// Driver-domain CDNA driver transmit cost per packet (mailbox
    /// interface, request batching) — replaces `native_drv_tx` when the
    /// driver domain fronts a RiceNIC.
    pub cdna_dom0_drv_tx: SimTime,
    /// Driver-domain CDNA driver receive cost per packet.
    pub cdna_dom0_drv_rx: SimTime,

    // ---- Hypervisor ----
    /// Physical interrupt capture + routing to the driver domain.
    pub hyp_isr_conventional: SimTime,
    /// Physical interrupt capture + bit-vector ring drain (CDNA).
    pub hyp_isr_cdna: SimTime,
    /// Scheduling a virtual interrupt to one flagged context's guest.
    pub hyp_cdna_vint: SimTime,
    /// Delivering an event-channel notification (newly pending).
    pub hyp_evtchn_send: SimTime,
    /// World switch between domains (register state, address space).
    pub hyp_domain_switch: SimTime,
    /// Cache/TLB refill penalty after a switch, charged to the incoming
    /// domain's kernel time. This is the dominant per-guest scaling cost:
    /// on the Opteron 250 (64 KB L1, 1 MB L2) two domains' working sets
    /// evict each other, and the paper's Figures 3/4 show ~25 % of the
    /// CPU disappearing per additional CDNA guest at low guest counts —
    /// consistent with ~15 µs of refill per world switch at the observed
    /// 13.7 k switches/s (calibrated to 13 µs).
    pub switch_cache_penalty: SimTime,
    /// Scheduler bookkeeping per dispatch decision.
    pub hyp_sched_pick: SimTime,
    /// Grant-map one TX page (Xen baseline).
    pub hyp_grant_map: SimTime,
    /// Grant-unmap one TX page.
    pub hyp_grant_unmap: SimTime,
    /// One receive page-flip exchange (two ownership transfers).
    pub hyp_page_flip: SimTime,
    /// Hypercall entry/exit (charged per batch).
    pub hyp_hypercall_fixed: SimTime,
    /// Validate + pin + stamp + copy one CDNA descriptor (paper §3.3).
    pub hyp_validate_desc: SimTime,
    /// Reap (unpin) one completed CDNA descriptor.
    pub hyp_reap_desc: SimTime,
    /// Map one page in the per-context IOMMU (the hypervisor's only
    /// data-path involvement under [`cdna_core::DmaPolicy::Iommu`],
    /// paper §5.3 — overhead the paper's Table 4 explicitly does not
    /// account for).
    pub hyp_iommu_map: SimTime,
    /// Unmap one page in the per-context IOMMU.
    pub hyp_iommu_unmap: SimTime,

    // ---- Fixed per-activation costs ----
    /// Kernel entry/softirq overhead when a domain starts running.
    pub activation_fixed: SimTime,
    /// Guest upcall handling for one delivered virtual interrupt.
    pub virq_upcall: SimTime,
    /// Native-OS interrupt service routine (no hypervisor).
    pub native_isr: SimTime,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            stack_tx_kernel: ns(1930),
            stack_tx_user: ns(50),
            stack_rx_kernel: ns(2850),
            stack_rx_user: ns(50),

            native_drv_tx: ns(300),
            native_drv_rx: ns(320),
            netfront_tx: ns(1000),
            netfront_rx: ns(460),
            cdna_drv_tx: ns(220),
            cdna_drv_rx: ns(110),
            pio_write: ns(850),

            netback_tx: ns(1750),
            netback_rx: ns(3100),
            bridge_per_packet: ns(450),
            netback_scan_per_channel: ns(300),
            drv_isr: ns(1800),
            cdna_dom0_drv_tx: ns(600),
            cdna_dom0_drv_rx: ns(700),

            hyp_isr_conventional: ns(2000),
            hyp_isr_cdna: ns(1100),
            hyp_cdna_vint: ns(450),
            hyp_evtchn_send: ns(250),
            hyp_domain_switch: ns(1500),
            switch_cache_penalty: ns(13000),
            hyp_sched_pick: ns(400),
            hyp_grant_map: ns(700),
            hyp_grant_unmap: ns(500),
            hyp_page_flip: ns(2200),
            hyp_hypercall_fixed: ns(500),
            hyp_validate_desc: ns(300),
            hyp_reap_desc: ns(100),
            hyp_iommu_map: ns(300),
            hyp_iommu_unmap: ns(150),

            activation_fixed: ns(800),
            virq_upcall: ns(1500),
            native_isr: ns(1200),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_tx_anchor_close_to_2_28us() {
        let c = CostModel::default();
        let per_pkt = c.stack_tx_kernel + c.stack_tx_user + c.native_drv_tx;
        let us = per_pkt.as_us_f64();
        assert!((us - 2.28).abs() < 0.15, "native TX per packet {us}us");
    }

    #[test]
    fn native_rx_anchor_close_to_3_22us() {
        let c = CostModel::default();
        let per_pkt = c.stack_rx_kernel + c.stack_rx_user + c.native_drv_rx;
        let us = per_pkt.as_us_f64();
        assert!((us - 3.22).abs() < 0.15, "native RX per packet {us}us");
    }

    #[test]
    fn cdna_hypervisor_tx_share_near_0_64us() {
        // validation + reap + amortized hypercall (batch ~10) + amortized
        // interrupt dispatch (13.7k int/s at 159.8k pkt/s).
        let c = CostModel::default();
        let per_pkt = c.hyp_validate_desc.as_us_f64()
            + c.hyp_reap_desc.as_us_f64()
            + c.hyp_hypercall_fixed.as_us_f64() / 10.0
            + (c.hyp_isr_cdna.as_us_f64() + c.hyp_cdna_vint.as_us_f64()) * 13.7 / 159.8
            + c.hyp_evtchn_send.as_us_f64() * 13.7 / 159.8;
        assert!(
            (per_pkt - 0.64).abs() < 0.2,
            "CDNA hypervisor TX per packet {per_pkt}us"
        );
    }
}
